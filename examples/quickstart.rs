//! Quickstart: build a functional unit, annotate it with delays for an
//! operating condition, simulate a few cycles, and see how the dynamic
//! delay — and therefore timing correctness under an overclocked clock —
//! depends on the input workload.
//!
//! Run with: `cargo run --release --example quickstart`

use tevot_repro::netlist::fu::FunctionalUnit;
use tevot_repro::sim::TimingSimulator;
use tevot_repro::timing::{sta, DelayModel, OperatingCondition};

fn main() {
    let fu = FunctionalUnit::IntAdd;
    let netlist = fu.build();
    println!("{}", netlist.stats());

    // A low-voltage, cold corner: the slowest kind of condition.
    let condition = OperatingCondition::new(0.81, 0.0);
    let model = DelayModel::tsmc45_like();
    let annotation = model.annotate(&netlist, condition);

    let report = sta::run(&netlist, &annotation);
    println!(
        "static timing at {condition}: critical path {} ps over {} cells",
        report.critical_delay_ps(),
        report.critical_path().len(),
    );

    // Simulate a few transitions and watch the *dynamic* delay move.
    let mut sim = TimingSimulator::new(&netlist, &annotation);
    let clock_ps = report.critical_delay_ps() * 7 / 10; // a 30% overclock
    println!("\noverclocked capture at {clock_ps} ps:");
    for (a, b) in [(1u32, 1u32), (0x0F0F_0F0F, 1), (u32::MAX, 1), (u32::MAX, 0)] {
        let cycle = sim.step(&fu.encode_operands(a, b));
        println!(
            "  {a:>10} + {b:>10}: dynamic delay {:>4} ps, settled {:>12}, \
             timing {}",
            cycle.dynamic_delay_ps(),
            fu.decode_output(cycle.settled_outputs()),
            if cycle.is_erroneous_at(clock_ps) { "ERRONEOUS" } else { "correct" },
        );
    }
    println!(
        "\nThe same circuit, the same clock — whether a cycle fails depends on \
         which paths the operands sensitize. That is the effect TEVoT learns."
    );
}
