//! Sweep the Fig. 3 operating-condition grid for one FU and watch the two
//! delay-variation effects the paper builds on: voltage scaling and the
//! inverse temperature dependence at low voltage.
//!
//! Run with: `cargo run --release --example condition_sweep`

use tevot_repro::core::dta::Characterizer;
use tevot_repro::core::workload::random_workload;
use tevot_repro::netlist::fu::FunctionalUnit;
use tevot_repro::timing::ConditionGrid;

fn main() {
    let fu = FunctionalUnit::IntAdd;
    let characterizer = Characterizer::new(fu);
    let workload = random_workload(fu, 300, 7);

    println!("average dynamic delay of {fu} (300 random transitions):\n");
    println!("{:>14} {:>12} {:>12}", "condition", "avg (ps)", "static (ps)");
    for cond in ConditionGrid::fig3().iter() {
        let trace = characterizer.trace(cond, &workload);
        let avg: f64 =
            trace.cycles().iter().skip(1).map(|c| c.dynamic_delay_ps() as f64).sum::<f64>()
                / (trace.cycles().len() - 1) as f64;
        println!("{:>14} {avg:>12.0} {:>12}", cond.to_string(), trace.critical_delay_ps());
    }

    println!(
        "\nReading the table: delay falls as V rises; at 0.81 V heating the die \
         *speeds it up* (inverse temperature dependence), at 1.00 V heating \
         slows it down — the same crossover the paper reports in Fig. 3."
    );
}
