//! Inject timing errors into the Sobel filter at increasing per-FU timing
//! error rates and watch the output quality (PSNR) collapse across the
//! paper's 30 dB acceptability threshold.
//!
//! Run with: `cargo run --release --example sobel_quality`

use tevot_repro::imgproc::quality::inject_and_score;
use tevot_repro::imgproc::synth::synthetic_corpus;
use tevot_repro::imgproc::{Application, FuErrorRates, ACCEPTABLE_PSNR_DB};

fn main() {
    let corpus = synthetic_corpus(4, 48, 48, 11);
    println!(
        "Sobel output quality vs injected timing error rate \
         (acceptable means PSNR >= {ACCEPTABLE_PSNR_DB} dB):\n"
    );
    println!("{:>10} {:>12} {:>12}", "TER", "mean PSNR", "acceptable");
    for ter in [0.0, 1e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1] {
        let rates = FuErrorRates { int_add: ter, int_mul: ter, fp_add: ter, fp_mul: ter };
        let outcome = inject_and_score(Application::Sobel, &corpus, rates, 1);
        println!(
            "{:>10.4} {:>9.1} dB {:>11.0}%",
            ter,
            outcome.mean_psnr_db(),
            outcome.acceptance_rate() * 100.0,
        );
    }
    println!(
        "\nThis is why an accurate error model matters: the difference between \
         a predicted TER of 0.1% and 1% is the difference between shippable \
         and unusable output."
    );
}
