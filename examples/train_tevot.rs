//! Train a TEVoT model end to end at one operating condition, evaluate it
//! on unseen vectors, and round-trip it through the model persistence
//! format (the paper promises to publish pre-trained models; this is that
//! artifact).
//!
//! Run with: `cargo run --release --example train_tevot`

use std::error::Error;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tevot_repro::core::dta::Characterizer;
use tevot_repro::core::eval::{evaluate_predictor, mean_accuracy};
use tevot_repro::core::workload::random_workload;
use tevot_repro::core::{build_delay_dataset, FeatureEncoding, TevotModel, TevotParams};
use tevot_repro::netlist::fu::FunctionalUnit;
use tevot_repro::timing::{ClockSpeedup, OperatingCondition};

fn main() -> Result<(), Box<dyn Error>> {
    let fu = FunctionalUnit::FpAdd;
    let condition = OperatingCondition::new(0.85, 50.0);
    let characterizer = Characterizer::new(fu);

    // Phase 1: dynamic timing analysis (gate-level simulation).
    eprintln!("characterizing {fu} at {condition}...");
    let train = random_workload(fu, 1200, 1);
    let truth = characterizer.characterize(condition, &train, &ClockSpeedup::PAPER);
    println!(
        "characterized {} cycles; fastest error-free period {} ps, \
         TER at 15% overclock {:.1}%",
        truth.num_cycles(),
        truth.clock_periods_ps()[0] * 21 / 20,
        truth.timing_error_rate(2) * 100.0,
    );

    // Phase 2: train on the Eq. 3 feature matrix.
    let data = build_delay_dataset(FeatureEncoding::with_history(), &[(&train, &truth)]);
    let mut rng = SmallRng::seed_from_u64(0);
    let model = TevotModel::train(&data, &TevotParams::default(), &mut rng);

    // Phase 3: evaluate on unseen vectors (Eq. 4).
    let test = random_workload(fu, 400, 2);
    let test_truth =
        characterizer.characterize_with_periods(condition, &test, truth.clock_periods_ps());
    let mut predictor = model.clone();
    let points = evaluate_predictor(&mut predictor, &test, &test_truth);
    for p in &points {
        println!(
            "clock {:>5} ps: accuracy {:.1}% (ground-truth TER {:.1}%)",
            p.clock_ps,
            p.accuracy * 100.0,
            p.ground_truth_ter * 100.0,
        );
    }
    println!("mean accuracy: {:.1}%", mean_accuracy(&points) * 100.0);

    // Persist and reload: predictions must be bit-identical.
    let mut bytes = Vec::new();
    model.save(&mut bytes)?;
    let reloaded = TevotModel::load(bytes.as_slice())?;
    let ops = test.operands();
    assert_eq!(
        model.predict_delay_ps(condition, ops[1], ops[0]),
        reloaded.predict_delay_ps(condition, ops[1], ops[0]),
    );
    println!("model round-tripped through {} bytes", bytes.len());
    Ok(())
}
