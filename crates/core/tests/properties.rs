//! Property tests for the TEVoT core: feature-encoding invertibility,
//! workload trace round-trips and characterization invariants.

use proptest::prelude::*;
use tevot::dta::Characterizer;
use tevot::workload::{characterization_workload, random_workload};
use tevot::{FeatureEncoding, Workload};
use tevot_netlist::fu::FunctionalUnit;
use tevot_timing::OperatingCondition;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The Eq. 3 encoding is lossless: every operand bit and the condition
    /// are recoverable from the feature vector.
    #[test]
    fn encoding_is_invertible(
        a: u32, b: u32, pa: u32, pb: u32,
        v in 0.81f64..=1.0, t in 0.0f64..=100.0,
    ) {
        let cond = OperatingCondition::new(v, t);
        let f = FeatureEncoding::with_history().encode(cond, (a, b), (pa, pb));
        let word = |off: usize| -> u32 {
            (0..32).fold(0u32, |acc, i| acc | ((f[off + i] != 0.0) as u32) << i)
        };
        prop_assert_eq!(word(0), a);
        prop_assert_eq!(word(32), b);
        prop_assert_eq!(word(64), pa);
        prop_assert_eq!(word(96), pb);
        prop_assert_eq!(f[128], v);
        prop_assert_eq!(f[129], t);
        // Bit features are strictly 0/1.
        prop_assert!(f[..128].iter().all(|&x| x == 0.0 || x == 1.0));
    }

    /// Workload text traces round-trip arbitrary operand streams.
    #[test]
    fn trace_roundtrip(pairs in prop::collection::vec((any::<u32>(), any::<u32>()), 1..50)) {
        let w = Workload::new("prop", pairs);
        prop_assert_eq!(Workload::from_text(&w.to_text()).unwrap(), w);
    }

    /// Characterization invariants on arbitrary small workloads: delays
    /// bounded by STA, error flags consistent with the clock ordering.
    #[test]
    fn characterization_invariants(seed: u64, n in 4usize..24) {
        let fu = FunctionalUnit::IntAdd;
        let characterizer = Characterizer::new(fu);
        let cond = OperatingCondition::new(0.9, 25.0);
        let work = random_workload(fu, n, seed);
        let crit = characterizer.critical_delay_ps(cond);
        let slow = crit + 10;
        let fast = crit / 2;
        let c = characterizer.characterize_with_periods(cond, &work, &[slow, fast]);
        prop_assert_eq!(c.num_cycles(), n);
        for (cycle, &d) in c.delays_ps().iter().enumerate() {
            prop_assert!(d <= crit, "delay {d} beyond critical {crit}");
            // Above the critical path nothing is erroneous.
            prop_assert!(!c.erroneous(0)[cycle]);
            // A cycle erroneous at the fast clock must actually have late
            // toggles.
            if c.erroneous(1)[cycle] {
                prop_assert!(d > fast);
            }
        }
        prop_assert!(c.timing_error_rate(0) <= c.timing_error_rate(1) + 1e-12);
    }

    /// The Fmax characterization suite always embeds its directed corners,
    /// for every FU and length.
    #[test]
    fn characterization_suite_has_corners(n in 40usize..200, seed: u64) {
        for fu in [FunctionalUnit::IntAdd, FunctionalUnit::FpAdd] {
            let w = characterization_workload(fu, n, seed);
            prop_assert_eq!(w.len(), n);
            // Roughly a third of the slots are directed patterns; the
            // all-zero pair is the first corner and must appear.
            let corner = if fu.is_float() {
                (1.0f32.to_bits(), (-1.000_000_1f32).to_bits())
            } else {
                (0, 0)
            };
            prop_assert!(w.operands().contains(&corner), "{fu}");
        }
    }
}
