//! The baseline error models of Sec. IV-C / Table III.
//!
//! * [`DelayBased`] — predicts an error whenever the clock period is below
//!   the maximum delay measured offline at that condition ([16], [4],
//!   [17]): workload-oblivious and therefore maximally pessimistic under
//!   overclocking.
//! * [`TerBased`] — predicts errors stochastically at the timing error
//!   rate measured offline ([19], [8]): the model used throughout
//!   approximate computing.
//! * TEVoT-NH — TEVoT trained without the history input: obtained by
//!   training a [`TevotModel`](crate::TevotModel) with
//!   [`FeatureEncoding::without_history`](crate::FeatureEncoding).
//!
//! All predictors (including TEVoT itself) answer through the common
//! [`ErrorPredictor`] trait so the evaluation and error-injection machinery
//! treats them interchangeably.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tevot_timing::OperatingCondition;

use crate::dta::Characterization;
use crate::model::TevotModel;

/// A model that classifies one FU cycle as timing-correct or
/// timing-erroneous.
///
/// `previous`/`current` are the operand pairs of cycles `t-1` and `t`
/// (workload context); baselines that ignore the workload simply don't
/// read them. The receiver is `&mut` because the TER-based baseline draws
/// from an internal RNG.
pub trait ErrorPredictor {
    /// Predicts whether the cycle `previous -> current` at `cond`, clocked
    /// with `clock_ps`, is timing-erroneous.
    fn predict_error(
        &mut self,
        cond: OperatingCondition,
        clock_ps: u64,
        current: (u32, u32),
        previous: (u32, u32),
    ) -> bool;

    /// Display name for result tables.
    fn name(&self) -> &'static str;
}

impl ErrorPredictor for TevotModel {
    fn predict_error(
        &mut self,
        cond: OperatingCondition,
        clock_ps: u64,
        current: (u32, u32),
        previous: (u32, u32),
    ) -> bool {
        TevotModel::predict_error(self, cond, clock_ps, current, previous)
    }

    fn name(&self) -> &'static str {
        if self.encoding().has_history() {
            "TEVoT"
        } else {
            "TEVoT-NH"
        }
    }
}

fn same_condition(a: OperatingCondition, b: OperatingCondition) -> bool {
    (a.voltage() - b.voltage()).abs() < 5e-4 && (a.temperature() - b.temperature()).abs() < 0.5
}

/// The Delay-based baseline: per-condition maximum delay, measured offline.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayBased {
    entries: Vec<(OperatingCondition, u64)>,
}

impl DelayBased {
    /// Calibrates from offline characterization runs (one or more per
    /// condition; the maximum across runs at the same condition wins).
    ///
    /// # Panics
    ///
    /// Panics if `runs` is empty.
    pub fn calibrate<'a>(runs: impl IntoIterator<Item = &'a Characterization>) -> Self {
        let mut entries: Vec<(OperatingCondition, u64)> = Vec::new();
        for ch in runs {
            let max = ch.max_dynamic_delay_ps();
            match entries.iter_mut().find(|(c, _)| same_condition(*c, ch.condition())) {
                Some((_, m)) => *m = (*m).max(max),
                None => entries.push((ch.condition(), max)),
            }
        }
        assert!(!entries.is_empty(), "no characterization runs supplied");
        DelayBased { entries }
    }

    /// The calibrated maximum delay at `cond`.
    ///
    /// # Panics
    ///
    /// Panics if the condition was never characterized — a baseline can
    /// only answer at its calibration points, exactly as in the paper.
    pub fn max_delay_ps(&self, cond: OperatingCondition) -> u64 {
        self.entries
            .iter()
            .find(|(c, _)| same_condition(*c, cond))
            .unwrap_or_else(|| panic!("condition {cond} was not calibrated"))
            .1
    }
}

impl ErrorPredictor for DelayBased {
    fn predict_error(
        &mut self,
        cond: OperatingCondition,
        clock_ps: u64,
        _current: (u32, u32),
        _previous: (u32, u32),
    ) -> bool {
        clock_ps < self.max_delay_ps(cond)
    }

    fn name(&self) -> &'static str {
        "Delay-based"
    }
}

/// The TER-based baseline: per-(condition, clock) timing error rates
/// measured offline, replayed as Bernoulli draws.
#[derive(Debug, Clone, PartialEq)]
pub struct TerBased {
    entries: Vec<(OperatingCondition, Vec<(u64, f64)>)>,
    rng: SmallRng,
}

impl TerBased {
    /// Calibrates from offline characterization runs; `seed` fixes the
    /// Bernoulli stream for reproducibility.
    ///
    /// # Panics
    ///
    /// Panics if `runs` is empty.
    pub fn calibrate<'a>(runs: impl IntoIterator<Item = &'a Characterization>, seed: u64) -> Self {
        let mut entries: Vec<(OperatingCondition, Vec<(u64, f64)>)> = Vec::new();
        for ch in runs {
            let rates: Vec<(u64, f64)> = ch
                .clock_periods_ps()
                .iter()
                .enumerate()
                .map(|(i, &p)| (p, ch.timing_error_rate(i)))
                .collect();
            match entries.iter_mut().find(|(c, _)| same_condition(*c, ch.condition())) {
                Some((_, existing)) => existing.extend(rates),
                None => entries.push((ch.condition(), rates)),
            }
        }
        assert!(!entries.is_empty(), "no characterization runs supplied");
        // Normalize every rate list once: ascending by period, one entry
        // per period (the stable sort keeps run order among equals, so
        // the earliest calibration run wins a duplicate period). The
        // lookups below rely on this ordering to binary-search and to
        // interpolate between *bracketing* periods.
        for (_, rates) in &mut entries {
            rates.sort_by_key(|&(p, _)| p);
            rates.dedup_by_key(|&mut (p, _)| p);
        }
        TerBased { entries, rng: SmallRng::seed_from_u64(seed) }
    }

    /// The calibrated clock/TER curve answering for `cond`.
    ///
    /// An exactly calibrated condition is used when available; otherwise
    /// the **nearest** calibrated condition answers (distance measured
    /// with voltage in ~10 mV units and temperature in ~10 °C units so
    /// the two axes weigh comparably across the paper's 0.8–1.0 V /
    /// 0–80 °C grid; ties resolve to the earliest calibration run).
    /// Earlier revisions panicked on uncalibrated conditions, which took
    /// down whole sweeps over off-grid points.
    fn rates_for(&self, cond: OperatingCondition) -> &[(u64, f64)] {
        let (_, rates) = self
            .entries
            .iter()
            .find(|(c, _)| same_condition(*c, cond))
            .or_else(|| {
                self.entries.iter().min_by(|(a, _), (b, _)| {
                    condition_distance(*a, cond).total_cmp(&condition_distance(*b, cond))
                })
            })
            .expect("calibration has at least one condition");
        rates
    }

    /// The calibrated TER at `(cond, clock_ps)`, interpolated linearly
    /// between the two bracketing calibrated clock periods.
    ///
    /// Exactly calibrated periods return their exact measured rate;
    /// periods outside the calibrated range clamp to the nearest end of
    /// the curve. Guardband sweeps that query between calibration points
    /// therefore see a piecewise-linear TER curve instead of the
    /// staircase artifacts the old nearest-point snap produced (still
    /// available as [`ter_nearest`](Self::ter_nearest)). Off-grid
    /// conditions answer from the nearest calibrated condition (see
    /// `rates_for`).
    pub fn ter(&self, cond: OperatingCondition, clock_ps: u64) -> f64 {
        let rates = self.rates_for(cond);
        match rates.binary_search_by_key(&clock_ps, |&(p, _)| p) {
            Ok(i) => rates[i].1,
            Err(0) => rates[0].1,
            Err(i) if i == rates.len() => rates[rates.len() - 1].1,
            Err(i) => {
                let (p0, r0) = rates[i - 1];
                let (p1, r1) = rates[i];
                r0 + (r1 - r0) * (clock_ps - p0) as f64 / (p1 - p0) as f64
            }
        }
    }

    /// The raw nearest-point lookup: the TER measured at the calibrated
    /// clock period closest to `clock_ps` (ties resolve to the faster
    /// period). This is the pre-interpolation behaviour, kept for
    /// callers that want the measured rate of an actual calibration
    /// point rather than an interpolated estimate.
    pub fn ter_nearest(&self, cond: OperatingCondition, clock_ps: u64) -> f64 {
        self.rates_for(cond)
            .iter()
            .min_by_key(|(p, _)| p.abs_diff(clock_ps))
            .expect("calibration has at least one clock")
            .1
    }
}

/// Squared distance between conditions with voltage in 10 mV units and
/// temperature in 10 °C units, so 10 mV and 10 °C are "equally far".
fn condition_distance(a: OperatingCondition, b: OperatingCondition) -> f64 {
    let dv = (a.voltage() - b.voltage()) / 0.01;
    let dt = (a.temperature() - b.temperature()) / 10.0;
    dv * dv + dt * dt
}

impl ErrorPredictor for TerBased {
    fn predict_error(
        &mut self,
        cond: OperatingCondition,
        clock_ps: u64,
        _current: (u32, u32),
        _previous: (u32, u32),
    ) -> bool {
        let ter = self.ter(cond, clock_ps);
        self.rng.gen::<f64>() < ter
    }

    fn name(&self) -> &'static str {
        "TER-based"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dta::Characterizer;
    use crate::workload::random_workload;
    use tevot_netlist::fu::FunctionalUnit;
    use tevot_timing::ClockSpeedup;

    fn chars() -> Vec<Characterization> {
        let fu = FunctionalUnit::IntAdd;
        let ch = Characterizer::new(fu);
        let w = random_workload(fu, 200, 11);
        [(0.85, 0.0), (0.95, 50.0)]
            .iter()
            .map(|&(v, t)| ch.characterize(OperatingCondition::new(v, t), &w, &ClockSpeedup::PAPER))
            .collect()
    }

    #[test]
    fn delay_based_is_pessimistic_under_overclocking() {
        let cs = chars();
        let mut db = DelayBased::calibrate(&cs);
        let cond = cs[0].condition();
        // Any clock below the measured max delay -> always "error".
        for &p in cs[0].clock_periods_ps() {
            if p < db.max_delay_ps(cond) {
                assert!(db.predict_error(cond, p, (1, 1), (0, 0)));
            }
        }
        // A clock above the max delay -> never "error".
        let relaxed = db.max_delay_ps(cond) + 100;
        assert!(!db.predict_error(cond, relaxed, (1, 1), (0, 0)));
        assert_eq!(ErrorPredictor::name(&db), "Delay-based");
    }

    #[test]
    fn ter_based_matches_calibrated_rate() {
        let cs = chars();
        let cond = cs[0].condition();
        let period = cs[0].clock_periods_ps()[2];
        let expect = cs[0].timing_error_rate(2);
        let mut tb = TerBased::calibrate(&cs, 99);
        let n = 4000;
        let hits = (0..n).filter(|_| tb.predict_error(cond, period, (0, 0), (0, 0))).count();
        let freq = hits as f64 / n as f64;
        assert!(
            (freq - expect).abs() < 0.05,
            "Bernoulli frequency {freq} vs calibrated TER {expect}"
        );
    }

    #[test]
    #[should_panic(expected = "was not calibrated")]
    fn unknown_condition_panics() {
        let cs = chars();
        let db = DelayBased::calibrate(&cs);
        let _ = db.max_delay_ps(OperatingCondition::new(0.99, 100.0));
    }

    #[test]
    fn ter_falls_back_to_nearest_calibrated_condition() {
        let cs = chars(); // calibrated at (0.85 V, 0 °C) and (0.95 V, 50 °C)
        let tb = TerBased::calibrate(&cs, 7);
        let period = cs[0].clock_periods_ps()[1];
        // Slightly off the first grid point -> answered by the first run.
        let near_first = OperatingCondition::new(0.86, 5.0);
        assert_eq!(tb.ter(near_first, period), tb.ter(cs[0].condition(), period));
        // Clearly nearer the second grid point -> answered by the second.
        let near_second = OperatingCondition::new(0.97, 60.0);
        let second_period = cs[1].clock_periods_ps()[1];
        assert_eq!(tb.ter(near_second, second_period), cs[1].timing_error_rate(1));
        // And prediction through the trait no longer panics off-grid.
        let mut tb = tb;
        let _ = tb.predict_error(OperatingCondition::new(1.2, 99.0), period, (0, 0), (0, 0));
    }

    #[test]
    fn ter_interpolates_between_calibrated_periods() {
        let cs = chars();
        let cond = cs[0].condition();
        let tb = TerBased::calibrate(&cs, 3);
        // Pick two adjacent calibrated periods with distinct rates (the
        // speedup sweep is monotone, so some pair must differ unless the
        // whole curve is flat).
        let mut periods: Vec<u64> = cs[0].clock_periods_ps().to_vec();
        periods.sort_unstable();
        for pair in periods.windows(2) {
            let (p0, p1) = (pair[0], pair[1]);
            let (r0, r1) = (tb.ter(cond, p0), tb.ter(cond, p1));
            // Exact calibrated periods answer exactly.
            assert_eq!(r0, tb.ter_nearest(cond, p0));
            if p1 - p0 < 2 {
                continue;
            }
            let mid = p0 + (p1 - p0) / 2;
            let expect = r0 + (r1 - r0) * (mid - p0) as f64 / (p1 - p0) as f64;
            let got = tb.ter(cond, mid);
            assert!(
                (got - expect).abs() < 1e-12,
                "midpoint {mid} between {p0}/{p1}: {got} vs {expect}"
            );
            // Interpolation is bracketed by the endpoint rates.
            let (lo, hi) = (r0.min(r1), r0.max(r1));
            assert!((lo..=hi).contains(&got));
        }
        // Outside the calibrated range the curve clamps to its ends.
        let (min_p, max_p) = (periods[0], periods[periods.len() - 1]);
        assert_eq!(tb.ter(cond, min_p / 2), tb.ter(cond, min_p));
        assert_eq!(tb.ter(cond, max_p + 10_000), tb.ter(cond, max_p));
    }

    #[test]
    fn ter_nearest_snaps_where_interpolation_blends() {
        let cs = chars();
        let cond = cs[0].condition();
        let tb = TerBased::calibrate(&cs, 5);
        let mut periods: Vec<u64> = cs[0].clock_periods_ps().to_vec();
        periods.sort_unstable();
        // Find an adjacent pair with distinct rates; just past the
        // midpoint the nearest lookup snaps to one endpoint while the
        // interpolated value sits strictly between.
        let pair = periods
            .windows(2)
            .find(|w| w[1] - w[0] >= 4 && tb.ter(cond, w[0]) != tb.ter(cond, w[1]))
            .expect("speedup sweep has adjacent periods with distinct rates");
        let probe = pair[0] + (pair[1] - pair[0]) * 3 / 4;
        assert_eq!(tb.ter_nearest(cond, probe), tb.ter(cond, pair[1]));
        let blended = tb.ter(cond, probe);
        let (r0, r1) = (tb.ter(cond, pair[0]), tb.ter(cond, pair[1]));
        assert!(blended > r0.min(r1) && blended < r0.max(r1));
    }

    #[test]
    fn duplicate_conditions_merge() {
        let cs = chars();
        let doubled: Vec<&Characterization> = cs.iter().chain(cs.iter()).collect();
        let db = DelayBased::calibrate(doubled.into_iter());
        assert_eq!(db.max_delay_ps(cs[0].condition()), cs[0].max_dynamic_delay_ps());
    }
}
