//! Dynamic timing analysis: the training/ground-truth data factory.
//!
//! This is the first phase of Fig. 2: for one functional unit, one
//! operating condition and one workload, run the delay-annotated gate-level
//! simulation and record every cycle's dynamic delay plus the timing-error
//! ground truth at each clock period of interest. One characterization
//! serves simultaneously as a row source for the training matrices (Eq. 3)
//! and as the simulation ground truth that Eq. 4 scores models against.

use tevot_netlist::fu::FunctionalUnit;
use tevot_netlist::Netlist;
use tevot_resil::checkpoint::CheckpointDir;
use tevot_resil::codec::{ByteReader, ByteWriter};
use tevot_resil::{CancelToken, ResultExt, TevotError};
use tevot_sim::{CycleResult, Engine, LevelizedSimulator, TimingSimulator};
use tevot_timing::{sta, ClockSpeedup, DelayModel, OperatingCondition};

use crate::workload::Workload;

fn fu_tag(fu: FunctionalUnit) -> u8 {
    match fu {
        FunctionalUnit::IntAdd => 0,
        FunctionalUnit::IntMul => 1,
        FunctionalUnit::FpAdd => 2,
        FunctionalUnit::FpMul => 3,
    }
}

fn fu_from_tag(tag: u8) -> Option<FunctionalUnit> {
    match tag {
        0 => Some(FunctionalUnit::IntAdd),
        1 => Some(FunctionalUnit::IntMul),
        2 => Some(FunctionalUnit::FpAdd),
        3 => Some(FunctionalUnit::FpMul),
        _ => None,
    }
}

/// The raw per-cycle simulation record of one (FU, condition, workload)
/// run: every output toggle of every cycle.
///
/// A trace is clock-agnostic — the ground truth for *any* clock period can
/// be derived from it via [`SimTrace::characterization`] without
/// re-simulating, which is how one characterization run serves all three
/// of the paper's clock speedups.
#[derive(Debug, Clone, PartialEq)]
pub struct SimTrace {
    fu: FunctionalUnit,
    condition: OperatingCondition,
    critical_delay_ps: u64,
    cycles: Vec<CycleResult>,
}

impl SimTrace {
    /// The functional unit simulated.
    pub fn fu(&self) -> FunctionalUnit {
        self.fu
    }

    /// The operating condition of the run.
    pub fn condition(&self) -> OperatingCondition {
        self.condition
    }

    /// The STA critical-path delay (ps) at this condition.
    pub fn critical_delay_ps(&self) -> u64 {
        self.critical_delay_ps
    }

    /// Per-cycle records.
    pub fn cycles(&self) -> &[CycleResult] {
        &self.cycles
    }

    /// The maximum dynamic delay observed, excluding the cold-start cycle.
    ///
    /// This is the workload's **fastest error-free clock period**: clocking
    /// any faster makes at least one cycle erroneous. The paper's 5/10/15 %
    /// speedups are applied to this frequency "so that the output has
    /// timing errors" (Sec. V-A).
    pub fn fastest_error_free_period_ps(&self) -> u64 {
        self.cycles.iter().skip(1).map(CycleResult::dynamic_delay_ps).max().unwrap_or(0)
    }

    /// Extracts a [`Characterization`] (per-cycle delays + ground-truth
    /// error flags) at the given clock periods.
    ///
    /// Error classes derive independently per clock period, so the
    /// per-period loop runs on the `tevot-par` pool; the ordered
    /// reduction keeps the output identical to a serial derivation.
    pub fn characterization(&self, clock_periods_ps: &[u64]) -> Characterization {
        let delays: Vec<u64> = self.cycles.iter().map(CycleResult::dynamic_delay_ps).collect();
        let erroneous = tevot_par::map(clock_periods_ps, |&p| {
            self.cycles.iter().map(|c| c.is_erroneous_at(p)).collect()
        });
        Characterization {
            fu: self.fu,
            condition: self.condition,
            clock_periods_ps: clock_periods_ps.to_vec(),
            critical_delay_ps: self.critical_delay_ps,
            delays_ps: delays,
            erroneous,
        }
    }
}

/// The per-cycle record of one (FU, condition, workload) characterization
/// run.
#[derive(Debug, Clone, PartialEq)]
pub struct Characterization {
    fu: FunctionalUnit,
    condition: OperatingCondition,
    clock_periods_ps: Vec<u64>,
    critical_delay_ps: u64,
    delays_ps: Vec<u64>,
    erroneous: Vec<Vec<bool>>,
}

impl Characterization {
    /// The functional unit characterized.
    pub fn fu(&self) -> FunctionalUnit {
        self.fu
    }

    /// The operating condition of the run.
    pub fn condition(&self) -> OperatingCondition {
        self.condition
    }

    /// The clock periods (ps) at which ground truth was extracted.
    pub fn clock_periods_ps(&self) -> &[u64] {
        &self.clock_periods_ps
    }

    /// The STA critical-path delay (ps) at this condition — the "fastest
    /// error-free" period the paper's speedups are relative to.
    pub fn critical_delay_ps(&self) -> u64 {
        self.critical_delay_ps
    }

    /// Per-cycle dynamic delays (ps); index 0 is the cold-start cycle.
    pub fn delays_ps(&self) -> &[u64] {
        &self.delays_ps
    }

    /// Ground-truth error flags for clock period `period_idx`, one per
    /// cycle.
    pub fn erroneous(&self, period_idx: usize) -> &[bool] {
        &self.erroneous[period_idx]
    }

    /// Number of simulated cycles.
    pub fn num_cycles(&self) -> usize {
        self.delays_ps.len()
    }

    /// Mean dynamic delay (ps), excluding the cold-start cycle — the
    /// quantity plotted in the paper's Fig. 3.
    pub fn average_delay_ps(&self) -> f64 {
        if self.delays_ps.len() <= 1 {
            return 0.0;
        }
        let tail = &self.delays_ps[1..];
        tail.iter().map(|&d| d as f64).sum::<f64>() / tail.len() as f64
    }

    /// Maximum dynamic delay observed (excluding the cold start) — the
    /// Delay-based baseline's per-condition calibration value.
    pub fn max_dynamic_delay_ps(&self) -> u64 {
        self.delays_ps.iter().skip(1).copied().max().unwrap_or(0)
    }

    /// The timing error rate at clock period `period_idx`, excluding the
    /// cold-start cycle — the TER-based baseline's calibration value and
    /// the quantity injected into applications.
    pub fn timing_error_rate(&self, period_idx: usize) -> f64 {
        let flags = &self.erroneous[period_idx];
        if flags.len() <= 1 {
            return 0.0;
        }
        flags[1..].iter().filter(|&&e| e).count() as f64 / (flags.len() - 1) as f64
    }

    /// Serializes the characterization to the checkpoint payload format:
    /// a deterministic, bit-exact little-endian encoding (floats travel
    /// as raw IEEE-754 bits), so a characterization restored from a
    /// checkpoint shard compares equal to the original.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u8(1); // payload format version
        w.put_u8(fu_tag(self.fu));
        w.put_f64(self.condition.voltage());
        w.put_f64(self.condition.temperature());
        w.put_u64(self.critical_delay_ps);
        w.put_u64_slice(&self.clock_periods_ps);
        w.put_u64_slice(&self.delays_ps);
        w.put_u64(self.erroneous.len() as u64);
        for flags in &self.erroneous {
            w.put_bools(flags);
        }
        w.into_bytes()
    }

    /// Deserializes a characterization written by [`Self::to_bytes`],
    /// validating structure (the error-flag matrix must match the period
    /// and cycle counts) as well as encoding.
    ///
    /// # Errors
    ///
    /// [`tevot_resil::ErrorKind::Corrupt`] naming the offending byte
    /// offset on truncation, an unknown version or unit tag, a
    /// non-finite condition, or mismatched matrix dimensions.
    pub fn from_bytes(bytes: &[u8]) -> Result<Characterization, TevotError> {
        let mut r = ByteReader::new(bytes);
        let version = r.u8()?;
        if version != 1 {
            return Err(r.corrupt(format!("unsupported characterization version {version}")));
        }
        let tag = r.u8()?;
        let fu = fu_from_tag(tag).ok_or_else(|| r.corrupt(format!("unknown unit tag {tag}")))?;
        let voltage = r.f64()?;
        let temperature = r.f64()?;
        if !(voltage.is_finite() && voltage > 0.0 && temperature.is_finite()) {
            return Err(r.corrupt(format!(
                "implausible operating condition ({voltage} V, {temperature} C)"
            )));
        }
        let critical_delay_ps = r.u64()?;
        let clock_periods_ps = r.u64_slice()?;
        let delays_ps = r.u64_slice()?;
        let num_periods = r.len_prefix(1)?;
        if num_periods != clock_periods_ps.len() {
            return Err(r.corrupt(format!(
                "error matrix has {num_periods} periods, header lists {}",
                clock_periods_ps.len()
            )));
        }
        let erroneous = (0..num_periods)
            .map(|_| {
                let flags = r.bools()?;
                if flags.len() != delays_ps.len() {
                    return Err(r.corrupt(format!(
                        "error flags cover {} cycles, delays cover {}",
                        flags.len(),
                        delays_ps.len()
                    )));
                }
                Ok(flags)
            })
            .collect::<Result<Vec<_>, _>>()?;
        r.finish()?;
        Ok(Characterization {
            fu,
            condition: OperatingCondition::new(voltage, temperature),
            clock_periods_ps,
            critical_delay_ps,
            delays_ps,
            erroneous,
        })
    }
}

/// Characterizes one functional unit across conditions and workloads.
///
/// Owns the unit's netlist; one instance amortizes netlist construction
/// over a whole condition sweep.
///
/// # Examples
///
/// ```
/// use tevot::dta::Characterizer;
/// use tevot::workload::random_workload;
/// use tevot_netlist::fu::FunctionalUnit;
/// use tevot_timing::{ClockSpeedup, OperatingCondition};
///
/// let fu = FunctionalUnit::IntAdd;
/// let ch = Characterizer::new(fu);
/// let work = random_workload(fu, 50, 0);
/// let result = ch.characterize(
///     OperatingCondition::new(0.85, 25.0),
///     &work,
///     &ClockSpeedup::PAPER,
/// );
/// assert_eq!(result.num_cycles(), 50);
/// assert!(result.average_delay_ps() > 0.0);
/// // Overclocking must produce some errors on random data.
/// assert!(result.timing_error_rate(2) > 0.0);
/// ```
#[derive(Debug)]
pub struct Characterizer {
    fu: FunctionalUnit,
    netlist: Netlist,
    delay_model: DelayModel,
    engine: Engine,
}

impl Characterizer {
    /// Builds the characterizer with the default netlist and delay model.
    pub fn new(fu: FunctionalUnit) -> Self {
        Self::with_delay_model(fu, DelayModel::tsmc45_like())
    }

    /// Builds the characterizer with a custom delay model.
    pub fn with_delay_model(fu: FunctionalUnit, delay_model: DelayModel) -> Self {
        Characterizer { fu, netlist: fu.build(), delay_model, engine: Engine::default() }
    }

    /// Uses a caller-supplied netlist (e.g. the carry-lookahead adder
    /// variant for the micro-architecture ablation).
    ///
    /// # Panics
    ///
    /// Panics if the netlist's port widths do not match the unit's.
    pub fn with_netlist(fu: FunctionalUnit, netlist: Netlist, delay_model: DelayModel) -> Self {
        assert_eq!(netlist.inputs().len(), fu.input_bits(), "input width mismatch");
        assert_eq!(netlist.outputs().len(), fu.output_bits(), "output width mismatch");
        Characterizer { fu, netlist, delay_model, engine: Engine::default() }
    }

    /// Selects the simulation engine for subsequent traces. Both engines
    /// produce bit-identical [`SimTrace`]s (pinned by the differential
    /// oracle suite); [`Engine::Levelized`] is the default because sweeps
    /// re-simulate the same netlist hundreds of times.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// The engine traces run on.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The functional unit under characterization.
    pub fn fu(&self) -> FunctionalUnit {
        self.fu
    }

    /// The unit's netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The delay model in use.
    pub fn delay_model(&self) -> &DelayModel {
        &self.delay_model
    }

    /// The STA critical-path delay (ps) at `cond`.
    pub fn critical_delay_ps(&self, cond: OperatingCondition) -> u64 {
        let ann = self.delay_model.annotate(&self.netlist, cond);
        sta::run(&self.netlist, &ann).critical_delay_ps()
    }

    /// Simulates `workload` at `cond` and returns the clock-agnostic
    /// per-cycle trace.
    pub fn trace(&self, cond: OperatingCondition, workload: &Workload) -> SimTrace {
        let _span = tevot_obs::span!(
            "dta",
            "{:?} V={} T={} ({} cycles)",
            self.fu,
            cond.voltage(),
            cond.temperature(),
            workload.operands().len()
        );
        let (ann, crit) = {
            let _span = tevot_obs::span!("annotate");
            let ann = self.delay_model.annotate(&self.netlist, cond);
            let crit = sta::run(&self.netlist, &ann).critical_delay_ps();
            (ann, crit)
        };
        let cycles = match self.engine {
            Engine::Event => {
                let _span = tevot_obs::span!("sim", "{} cycles", workload.operands().len());
                let mut sim = TimingSimulator::new(&self.netlist, &ann);
                let mut input = Vec::with_capacity(self.fu.input_bits());
                workload
                    .operands()
                    .iter()
                    .map(|&(a, b)| {
                        input.clear();
                        input.extend((0..32).map(|i| a >> i & 1 == 1));
                        input.extend((0..32).map(|i| b >> i & 1 == 1));
                        sim.step(&input)
                    })
                    .collect()
            }
            Engine::Levelized => {
                let _span = tevot_obs::span!("sim.lev", "{} cycles", workload.operands().len());
                let vectors: Vec<Vec<bool>> = workload
                    .operands()
                    .iter()
                    .map(|&(a, b)| {
                        let mut input = Vec::with_capacity(self.fu.input_bits());
                        input.extend((0..32).map(|i| a >> i & 1 == 1));
                        input.extend((0..32).map(|i| b >> i & 1 == 1));
                        input
                    })
                    .collect();
                LevelizedSimulator::new(&self.netlist, &ann).run(&vectors)
            }
        };
        SimTrace { fu: self.fu, condition: cond, critical_delay_ps: crit, cycles }
    }

    /// Convenience: traces `workload` at `cond` and extracts ground truth
    /// at the clock periods obtained by applying `speedups` to the
    /// workload's own fastest error-free period.
    ///
    /// Multi-dataset experiments should instead call [`Self::trace`] per
    /// dataset and derive a common period basis from the training
    /// workload's trace.
    pub fn characterize(
        &self,
        cond: OperatingCondition,
        workload: &Workload,
        speedups: &[ClockSpeedup],
    ) -> Characterization {
        let _span = tevot_obs::span!("characterize");
        let trace = self.trace(cond, workload);
        let base = trace.fastest_error_free_period_ps();
        let periods: Vec<u64> = speedups.iter().map(|s| s.apply_to_period(base)).collect();
        trace.characterization(&periods)
    }

    /// Traces `workload` at `cond` and extracts ground truth at explicit
    /// clock periods (ps).
    pub fn characterize_with_periods(
        &self,
        cond: OperatingCondition,
        workload: &Workload,
        clock_periods_ps: &[u64],
    ) -> Characterization {
        self.trace(cond, workload).characterization(clock_periods_ps)
    }

    /// Traces `workload` at every condition of a sweep, one `tevot-par`
    /// task per condition (the paper's per-(V, T) characterization is
    /// embarrassingly parallel: each condition re-annotates and
    /// re-simulates the same netlist independently). Results come back
    /// in `conditions` order and are bit-identical to a serial sweep at
    /// any `--jobs` level.
    pub fn trace_sweep(
        &self,
        conditions: &[OperatingCondition],
        workload: &Workload,
    ) -> Vec<SimTrace> {
        let _span = tevot_obs::span!("sweep", "{} conditions", conditions.len());
        let progress = tevot_obs::progress::Progress::new(
            format!("sweep {}", self.fu),
            conditions.len() as u64,
        );
        let traces = tevot_par::map(conditions, |&cond| {
            let trace = self.trace(cond, workload);
            progress.tick();
            trace
        });
        progress.finish();
        traces
    }

    /// Parallel form of [`Self::characterize`]: characterizes `workload`
    /// at every condition (each at the clock periods obtained from its
    /// own fastest error-free period), in `conditions` order.
    pub fn characterize_sweep(
        &self,
        conditions: &[OperatingCondition],
        workload: &Workload,
        speedups: &[ClockSpeedup],
    ) -> Vec<Characterization> {
        self.trace_sweep(conditions, workload)
            .iter()
            .map(|trace| {
                let base = trace.fastest_error_free_period_ps();
                let periods: Vec<u64> = speedups.iter().map(|s| s.apply_to_period(base)).collect();
                trace.characterization(&periods)
            })
            .collect()
    }

    /// The fingerprint of a sweep configuration: every input that shapes
    /// a sweep's output (unit, conditions, speedups, workload operands).
    /// Two sweeps share a checkpoint directory only when their
    /// fingerprints match.
    pub fn sweep_fingerprint(
        &self,
        conditions: &[OperatingCondition],
        workload: &Workload,
        speedups: &[ClockSpeedup],
    ) -> u64 {
        let mut w = ByteWriter::new();
        w.put_u8(fu_tag(self.fu));
        w.put_u64(conditions.len() as u64);
        for c in conditions {
            w.put_f64(c.voltage());
            w.put_f64(c.temperature());
        }
        w.put_u64(speedups.len() as u64);
        for s in speedups {
            w.put_f64(s.fraction());
        }
        w.put_u64(workload.operands().len() as u64);
        for &(a, b) in workload.operands() {
            w.put_u32(a);
            w.put_u32(b);
        }
        tevot_resil::codec::fnv1a64(&w.into_bytes())
    }

    /// Checkpointed, cancellable form of [`Self::characterize_sweep`]:
    /// every completed condition is committed to `ckpt` as an atomic
    /// shard (`cond-<index>`), and conditions whose shard already exists
    /// and verifies are loaded instead of re-simulated. A run killed (or
    /// cancelled via `token`) mid-sweep therefore resumes from its last
    /// completed condition, and the resumed output is **bit-identical**
    /// to an uninterrupted sweep at any `--jobs` level.
    ///
    /// The directory is bound to this sweep's
    /// [fingerprint](Self::sweep_fingerprint) on first use; resuming
    /// with a different unit, grid, speedup set, or workload is refused.
    ///
    /// # Errors
    ///
    /// [`tevot_resil::ErrorKind::Corrupt`] when `ckpt` belongs to a
    /// different configuration, [`tevot_resil::ErrorKind::Cancelled`]
    /// when `token` fires mid-sweep (completed shards stay on disk), and
    /// [`tevot_resil::ErrorKind::Io`] when a shard cannot be written
    /// after retries.
    pub fn characterize_sweep_ckpt(
        &self,
        conditions: &[OperatingCondition],
        workload: &Workload,
        speedups: &[ClockSpeedup],
        ckpt: &CheckpointDir,
        token: &CancelToken,
    ) -> Result<Vec<Characterization>, TevotError> {
        let _span = tevot_obs::span!("sweep.ckpt", "{} conditions", conditions.len());
        ckpt.bind_manifest(self.sweep_fingerprint(conditions, workload, speedups))
            .ctx(|| format!("bind checkpoint directory {}", ckpt.path().display()))?;

        let mut results: Vec<Option<Characterization>> = Vec::with_capacity(conditions.len());
        let mut missing: Vec<usize> = Vec::new();
        for (i, condition) in conditions.iter().enumerate() {
            let restored = ckpt.read_valid(&format!("cond-{i}")).and_then(|payload| {
                match Characterization::from_bytes(&payload) {
                    Ok(c) if c.condition() == *condition => Some(c),
                    Ok(_) => {
                        tevot_obs::warn!("checkpoint: shard cond-{i} is for another condition");
                        None
                    }
                    Err(e) => {
                        tevot_obs::warn!("checkpoint: shard cond-{i} undecodable ({e})");
                        None
                    }
                }
            });
            if restored.is_none() {
                missing.push(i);
            } else {
                tevot_obs::metrics::RESIL_CKPT_SHARDS_RESUMED.incr();
            }
            results.push(restored);
        }
        if !missing.is_empty() && missing.len() < conditions.len() {
            tevot_obs::info!(
                "sweep: resuming, {} of {} conditions already checkpointed",
                conditions.len() - missing.len(),
                conditions.len()
            );
        }

        let progress =
            tevot_obs::progress::Progress::new(format!("sweep {}", self.fu), missing.len() as u64);
        let computed = tevot_par::map_cancellable(token, &missing, |&i| {
            let trace = self.trace(conditions[i], workload);
            let base = trace.fastest_error_free_period_ps();
            let periods: Vec<u64> = speedups.iter().map(|s| s.apply_to_period(base)).collect();
            let c = trace.characterization(&periods);
            let write = ckpt.write(&format!("cond-{i}"), &c.to_bytes());
            progress.tick();
            write.map(|()| c)
        })?;
        progress.finish();
        for (slot, outcome) in missing.into_iter().zip(computed) {
            results[slot] = Some(outcome.ctx(|| format!("checkpoint condition {slot}"))?);
        }
        Ok(results.into_iter().map(|c| c.expect("every condition filled")).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::random_workload;

    fn quick_char(fu: FunctionalUnit, v: f64, t: f64, n: usize) -> Characterization {
        let ch = Characterizer::new(fu);
        let w = random_workload(fu, n, 7);
        ch.characterize(OperatingCondition::new(v, t), &w, &ClockSpeedup::PAPER)
    }

    #[test]
    fn ground_truth_matches_delay_comparison_mostly() {
        let c = quick_char(FunctionalUnit::IntAdd, 0.9, 25.0, 150);
        // With three guard periods below the critical path, errors happen
        // exactly when the dynamic delay exceeds the period (glitch-restores
        // are possible but rare).
        let mut agree = 0;
        let mut total = 0;
        for (p_idx, &period) in c.clock_periods_ps().iter().enumerate() {
            for (cycle, &d) in c.delays_ps().iter().enumerate() {
                total += 1;
                if (d > period) == c.erroneous(p_idx)[cycle] {
                    agree += 1;
                }
            }
        }
        assert!(agree as f64 / total as f64 > 0.95, "agreement {agree}/{total}");
    }

    #[test]
    fn deeper_speedup_means_more_errors() {
        let c = quick_char(FunctionalUnit::IntAdd, 0.85, 50.0, 300);
        let t5 = c.timing_error_rate(0);
        let t15 = c.timing_error_rate(2);
        assert!(t15 >= t5, "15% speedup TER {t15} < 5% TER {t5}");
        assert!(t15 > 0.0, "15% overclock should produce errors on random data");
    }

    #[test]
    fn speedup_periods_are_below_critical_path() {
        let c = quick_char(FunctionalUnit::IntAdd, 0.81, 0.0, 20);
        for &p in c.clock_periods_ps() {
            assert!(p < c.critical_delay_ps());
        }
        assert!(c.max_dynamic_delay_ps() <= c.critical_delay_ps());
    }

    #[test]
    fn average_excludes_cold_start() {
        let ch = Characterizer::new(FunctionalUnit::IntAdd);
        // Two identical vectors: cycle 1 has zero toggles, so the average
        // over non-cold cycles is 0 even though cycle 0 settled from zero.
        let w = Workload::new("w", vec![(5, 5), (5, 5)]);
        let c = ch.characterize(OperatingCondition::nominal(), &w, &ClockSpeedup::PAPER);
        assert!(c.delays_ps()[0] > 0);
        assert_eq!(c.average_delay_ps(), 0.0);
    }

    #[test]
    fn characterization_bytes_round_trip_bit_exactly() {
        let c = quick_char(FunctionalUnit::IntMul, 0.88, 75.0, 40);
        let restored = Characterization::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(restored, c);
    }

    #[test]
    fn truncated_characterization_bytes_are_corrupt_not_panic() {
        let bytes = quick_char(FunctionalUnit::IntAdd, 0.9, 25.0, 10).to_bytes();
        for cut in 0..bytes.len() {
            let e = Characterization::from_bytes(&bytes[..cut]).unwrap_err();
            assert_eq!(e.kind(), tevot_resil::ErrorKind::Corrupt, "cut at {cut}");
        }
    }

    #[test]
    fn garbage_characterization_bytes_are_rejected() {
        // Unknown unit tag.
        let mut bytes = quick_char(FunctionalUnit::IntAdd, 0.9, 25.0, 10).to_bytes();
        bytes[1] = 200;
        assert!(Characterization::from_bytes(&bytes).is_err());
        // Non-finite voltage.
        let mut bytes = quick_char(FunctionalUnit::IntAdd, 0.9, 25.0, 10).to_bytes();
        bytes[2..10].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        let e = Characterization::from_bytes(&bytes).unwrap_err();
        assert!(e.to_string().contains("implausible operating condition"), "{e}");
    }

    #[test]
    fn checkpointed_sweep_resumes_bit_identically() {
        use tevot_resil::checkpoint::CheckpointDir;
        use tevot_resil::CancelToken;

        let dir = std::env::temp_dir().join(format!("tevot_dta_ckpt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ch = Characterizer::new(FunctionalUnit::IntAdd);
        let w = random_workload(FunctionalUnit::IntAdd, 30, 11);
        let conds: Vec<OperatingCondition> = [(0.85, 0.0), (0.9, 50.0), (1.0, 100.0)]
            .map(|(v, t)| OperatingCondition::new(v, t))
            .into();
        let plain = ch.characterize_sweep(&conds, &w, &ClockSpeedup::PAPER);

        let ckpt = CheckpointDir::open(&dir).unwrap();
        let token = CancelToken::new();
        let first =
            ch.characterize_sweep_ckpt(&conds, &w, &ClockSpeedup::PAPER, &ckpt, &token).unwrap();
        assert_eq!(first, plain);
        // Second run restores every condition from shards.
        let before = tevot_obs::metrics::RESIL_CKPT_SHARDS_RESUMED.get();
        let second =
            ch.characterize_sweep_ckpt(&conds, &w, &ClockSpeedup::PAPER, &ckpt, &token).unwrap();
        assert_eq!(second, plain);
        assert_eq!(tevot_obs::metrics::RESIL_CKPT_SHARDS_RESUMED.get(), before + 3);

        // A different workload must be refused, not silently mixed in.
        let other = random_workload(FunctionalUnit::IntAdd, 30, 12);
        let e = ch
            .characterize_sweep_ckpt(&conds, &other, &ClockSpeedup::PAPER, &ckpt, &token)
            .unwrap_err();
        assert_eq!(e.kind(), tevot_resil::ErrorKind::Corrupt);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn both_engines_trace_bit_identically() {
        let fu = FunctionalUnit::IntAdd;
        let w = random_workload(fu, 80, 5);
        let cond = OperatingCondition::new(0.85, 50.0);
        let lev = Characterizer::new(fu).trace(cond, &w);
        let ev = Characterizer::new(fu).with_engine(Engine::Event).trace(cond, &w);
        assert_eq!(lev, ev);
        assert_eq!(Characterizer::new(fu).engine(), Engine::Levelized);
    }

    #[test]
    fn clock_edge_boundary_error_iff_delay_exceeds_period() {
        // Paper semantics (Sec. III): a cycle is erroneous iff its dynamic
        // delay exceeds the clock period — a toggle landing *exactly* on
        // the edge is captured. Pin the boundary through the full
        // trace → characterization path, not just CycleResult.
        let fu = FunctionalUnit::IntAdd;
        let ch = Characterizer::new(fu);
        let trace = ch.trace(OperatingCondition::nominal(), &random_workload(fu, 20, 9));
        let d = trace.cycles()[3].dynamic_delay_ps();
        assert!(d > 0, "random operands must toggle outputs");
        let c = trace.characterization(&[d - 1, d, d + 1]);
        assert!(c.erroneous(0)[3], "period just below the delay must err");
        assert!(!c.erroneous(1)[3], "a toggle exactly at the edge is captured");
        assert!(!c.erroneous(2)[3]);
        assert_eq!(c.erroneous(1)[3], trace.cycles()[3].is_erroneous_at(d));
        assert_eq!(
            trace.cycles()[3].sample_at(d),
            trace.cycles()[3].settled_outputs(),
            "sampling at the edge sees the settled word when delay == period"
        );
    }

    #[test]
    fn custom_netlist_adder_style() {
        use tevot_netlist::fu::AdderStyle;
        let fu = FunctionalUnit::IntAdd;
        let rca = fu.build_with_adder_style(AdderStyle::RippleCarry);
        let ch = Characterizer::with_netlist(fu, rca, DelayModel::tsmc45_like());
        let w = random_workload(fu, 50, 3);
        let c = ch.characterize(OperatingCondition::nominal(), &w, &ClockSpeedup::PAPER);
        assert!(c.average_delay_ps() > 0.0);
        // The default (carry-lookahead) critical path is shorter than the
        // ripple-carry variant's.
        let cla = Characterizer::new(fu);
        assert!(cla.critical_delay_ps(OperatingCondition::nominal()) < c.critical_delay_ps());
    }
}
