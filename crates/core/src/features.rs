//! The TEVoT variability feature encoding.
//!
//! Sec. IV-B1 of the paper: the feature vector is
//! `{V, T, x[t], x[t-1]}` — the operating condition plus the bit-level
//! current input and the bit-level *previous* input, because "the previous
//! input sets the state and current input toggles the circuit nodes based
//! on current state". For a two-operand 32-bit FU that is 64 + 64 + 2 = 130
//! features (Eq. 3). The TEVoT-NH ablation drops the history half.

use tevot_timing::OperatingCondition;

/// Feature layout: whether the history input `x[t-1]` is included.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureEncoding {
    history: bool,
}

impl FeatureEncoding {
    /// The full TEVoT encoding: `{bits(x[t]), bits(x[t-1]), V, T}`.
    pub fn with_history() -> Self {
        FeatureEncoding { history: true }
    }

    /// The TEVoT-NH ablation: `{bits(x[t]), V, T}` only.
    pub fn without_history() -> Self {
        FeatureEncoding { history: false }
    }

    /// Whether history features are included.
    pub fn has_history(self) -> bool {
        self.history
    }

    /// Total feature dimension (130 with history, 66 without).
    pub fn num_features(self) -> usize {
        if self.history {
            130
        } else {
            66
        }
    }

    /// Encodes one cycle into `out` (cleared first).
    ///
    /// Layout, matching Eq. 3: the 64 bits of `x[t]` (operand `a` LSB
    /// first, then operand `b`), then — with history — the 64 bits of
    /// `x[t-1]`, then `V` (volts) and `T` (degrees Celsius).
    pub fn encode_into(
        self,
        cond: OperatingCondition,
        current: (u32, u32),
        previous: (u32, u32),
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.reserve(self.num_features());
        push_bits(out, current.0);
        push_bits(out, current.1);
        if self.history {
            push_bits(out, previous.0);
            push_bits(out, previous.1);
        }
        out.push(cond.voltage());
        out.push(cond.temperature());
        tevot_obs::metrics::CORE_ROWS_FEATURIZED.incr();
    }

    /// Allocating convenience form of [`Self::encode_into`].
    pub fn encode(
        self,
        cond: OperatingCondition,
        current: (u32, u32),
        previous: (u32, u32),
    ) -> Vec<f64> {
        let mut out = Vec::new();
        self.encode_into(cond, current, previous, &mut out);
        out
    }
}

fn push_bits(out: &mut Vec<f64>, word: u32) {
    for i in 0..32 {
        out.push((word >> i & 1) as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_match_eq3() {
        assert_eq!(FeatureEncoding::with_history().num_features(), 130);
        assert_eq!(FeatureEncoding::without_history().num_features(), 66);
    }

    #[test]
    fn layout_is_bits_then_condition() {
        let cond = OperatingCondition::new(0.85, 75.0);
        let f = FeatureEncoding::with_history().encode(cond, (0b101, 0), (u32::MAX, 1));
        assert_eq!(f.len(), 130);
        // x[t] operand a: bits 0..32.
        assert_eq!(&f[0..3], &[1.0, 0.0, 1.0]);
        // x[t] operand b: all zero.
        assert!(f[32..64].iter().all(|&b| b == 0.0));
        // x[t-1] operand a: all ones.
        assert!(f[64..96].iter().all(|&b| b == 1.0));
        // x[t-1] operand b: bit 0 only.
        assert_eq!(f[96], 1.0);
        assert!(f[97..128].iter().all(|&b| b == 0.0));
        // Condition tail.
        assert_eq!(f[128], 0.85);
        assert_eq!(f[129], 75.0);
    }

    #[test]
    fn no_history_drops_previous_input() {
        let cond = OperatingCondition::new(1.0, 0.0);
        let a = FeatureEncoding::without_history().encode(cond, (7, 8), (9, 10));
        let b = FeatureEncoding::without_history().encode(cond, (7, 8), (999, 999));
        assert_eq!(a, b, "history must not influence the NH encoding");
        assert_eq!(a.len(), 66);
    }

    #[test]
    fn encode_into_reuses_buffer() {
        let cond = OperatingCondition::nominal();
        let enc = FeatureEncoding::with_history();
        let mut buf = vec![1.0; 7];
        enc.encode_into(cond, (1, 2), (3, 4), &mut buf);
        assert_eq!(buf.len(), 130);
        assert_eq!(buf, enc.encode(cond, (1, 2), (3, 4)));
    }
}
