//! Train-time reference statistics, persisted inside the model file for
//! online drift detection.
//!
//! TEVoT's value is predicting timing errors *under shifting (V, T)* —
//! which makes the training sweep's own (V, T) coverage the natural
//! drift reference: if live traffic's operating conditions (or the
//! model's own prediction distribution) stop resembling the sweep, the
//! model is extrapolating and its error bars are off. At train time
//! [`ReferenceStats::collect`] snapshots three fixed-bin histograms —
//! requested voltage, temperature, and the training-label delay
//! distribution — and `TevotModel::save` appends them to the model
//! file as a versioned `TVRS` block. At serve time, `tevot-watch` bins
//! live request features against these references and alerts on the
//! Population Stability Index (see [`tevot_obs::drift`]).
//!
//! Voltage and temperature use fixed global specs (so every model bins
//! identically and the serve side needs no negotiation); the delay spec
//! derives from the observed training labels.

use std::io::{Read, Write};

use tevot_ml::persist::LoadModelError;
use tevot_obs::drift::{HistSpec, ReferenceHist};
use tevot_timing::OperatingCondition;

/// Magic prefix of the serialized reference block.
pub const REFERENCE_MAGIC: &[u8; 4] = b"TVRS";
/// Current reference-block format version.
pub const REFERENCE_VERSION: u32 = 1;
/// Bins per reference histogram.
pub const REFERENCE_BINS: usize = 16;

/// The fixed global voltage binning: 0.5–1.3 V in 50 mV bins, covering
/// every grid the characterizer accepts (out-of-range clamps to edges).
pub fn voltage_spec() -> HistSpec {
    HistSpec::new(0.5, 1.3, REFERENCE_BINS)
}

/// The fixed global temperature binning: −20–140 °C in 10 °C bins.
pub fn temperature_spec() -> HistSpec {
    HistSpec::new(-20.0, 140.0, REFERENCE_BINS)
}

/// Reference histograms snapshotted at train time.
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceStats {
    /// Training-sweep voltage distribution (spec: [`voltage_spec`]).
    pub voltage: ReferenceHist,
    /// Training-sweep temperature distribution (spec:
    /// [`temperature_spec`]).
    pub temperature: ReferenceHist,
    /// Training-label dynamic-delay distribution, picoseconds (spec
    /// derived from the observed labels).
    pub delay_ps: ReferenceHist,
}

impl ReferenceStats {
    /// Snapshots the references from the training sweep: `conditions`
    /// weighted by `rows_per_condition` (each grid point contributes one
    /// training row per workload cycle) and the label delays.
    ///
    /// # Panics
    ///
    /// Panics when `delays_ps` is empty or `conditions` is empty.
    pub fn collect(conditions: &[OperatingCondition], delays_ps: &[f64]) -> ReferenceStats {
        assert!(!conditions.is_empty(), "reference needs at least one condition");
        assert!(!delays_ps.is_empty(), "reference needs at least one delay label");
        let voltage =
            ReferenceHist::collect(voltage_spec(), conditions.iter().map(|c| c.voltage()));
        let temperature =
            ReferenceHist::collect(temperature_spec(), conditions.iter().map(|c| c.temperature()));
        let max = delays_ps.iter().copied().fold(f64::MIN, f64::max);
        // Headroom above the largest training delay, so moderately
        // slower live predictions still land in interior bins.
        let hi = (max * 1.25).max(1.0);
        let delay_ps = ReferenceHist::collect(
            HistSpec::new(0.0, hi, REFERENCE_BINS),
            delays_ps.iter().copied(),
        );
        ReferenceStats { voltage, temperature, delay_ps }
    }

    /// Serializes the block: `TVRS`, version, then the three histograms.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to(&self, mut writer: impl Write) -> std::io::Result<()> {
        writer.write_all(REFERENCE_MAGIC)?;
        writer.write_all(&REFERENCE_VERSION.to_le_bytes())?;
        for hist in [&self.voltage, &self.temperature, &self.delay_ps] {
            writer.write_all(&hist.spec.lo.to_le_bytes())?;
            writer.write_all(&hist.spec.hi.to_le_bytes())?;
            writer.write_all(&(hist.spec.bins as u32).to_le_bytes())?;
            for &count in &hist.counts {
                writer.write_all(&count.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Deserializes a block written by [`Self::write_to`].
    ///
    /// # Errors
    ///
    /// [`LoadModelError`] on truncation, a bad magic/version, or an
    /// implausible histogram shape.
    pub fn read_from(mut reader: impl Read) -> Result<ReferenceStats, LoadModelError> {
        let read_exact = |reader: &mut dyn Read, buf: &mut [u8]| -> Result<(), LoadModelError> {
            reader.read_exact(buf).map_err(|e| {
                if e.kind() == std::io::ErrorKind::UnexpectedEof {
                    LoadModelError::format(0, "truncated reference block")
                } else {
                    e.into()
                }
            })
        };
        let mut magic = [0u8; 4];
        read_exact(&mut reader, &mut magic)?;
        if &magic != REFERENCE_MAGIC {
            return Err(LoadModelError::format(0, "bad reference-block magic"));
        }
        let mut word = [0u8; 4];
        read_exact(&mut reader, &mut word)?;
        let version = u32::from_le_bytes(word);
        if version != REFERENCE_VERSION {
            return Err(LoadModelError::format(
                4,
                format!("unsupported reference-block version {version}"),
            ));
        }
        let mut hist = |_: usize| -> Result<ReferenceHist, LoadModelError> {
            let mut f = [0u8; 8];
            read_exact(&mut reader, &mut f)?;
            let lo = f64::from_le_bytes(f);
            read_exact(&mut reader, &mut f)?;
            let hi = f64::from_le_bytes(f);
            let mut word = [0u8; 4];
            read_exact(&mut reader, &mut word)?;
            let bins = u32::from_le_bytes(word) as usize;
            if !(lo.is_finite() && hi.is_finite() && hi > lo) || bins == 0 || bins > 4096 {
                return Err(LoadModelError::format(
                    0,
                    format!("implausible reference histogram ([{lo}, {hi}], {bins} bins)"),
                ));
            }
            let mut counts = Vec::with_capacity(bins);
            let mut c = [0u8; 8];
            for _ in 0..bins {
                read_exact(&mut reader, &mut c)?;
                counts.push(u64::from_le_bytes(c));
            }
            Ok(ReferenceHist { spec: HistSpec::new(lo, hi, bins), counts })
        };
        let voltage = hist(0)?;
        let temperature = hist(1)?;
        let delay_ps = hist(2)?;
        Ok(ReferenceStats { voltage, temperature, delay_ps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> ReferenceStats {
        let conditions =
            vec![OperatingCondition::new(0.9, 25.0), OperatingCondition::new(1.0, 75.0)];
        let delays: Vec<f64> = (1..=100).map(f64::from).collect();
        ReferenceStats::collect(&conditions, &delays)
    }

    #[test]
    fn collect_bins_conditions_and_delays() {
        let s = stats();
        assert_eq!(s.voltage.total(), 2);
        assert_eq!(s.temperature.total(), 2);
        assert_eq!(s.delay_ps.total(), 100);
        // Delay spec leaves headroom above the max label.
        assert_eq!(s.delay_ps.spec.hi, 125.0);
        // Distinct voltages land in distinct bins.
        assert_ne!(s.voltage.spec.bin(0.9), s.voltage.spec.bin(0.7));
    }

    #[test]
    fn round_trips_through_bytes() {
        let s = stats();
        let mut buf = Vec::new();
        s.write_to(&mut buf).unwrap();
        let loaded = ReferenceStats::read_from(buf.as_slice()).unwrap();
        assert_eq!(loaded, s);
    }

    #[test]
    fn rejects_corrupt_blocks() {
        let s = stats();
        let mut buf = Vec::new();
        s.write_to(&mut buf).unwrap();
        // Truncation.
        assert!(ReferenceStats::read_from(&buf[..buf.len() - 3]).is_err());
        // Bad magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(ReferenceStats::read_from(bad.as_slice()).is_err());
        // Bad version.
        let mut bad = buf.clone();
        bad[4] = 99;
        assert!(ReferenceStats::read_from(bad.as_slice()).is_err());
        // Implausible bin count.
        let mut bad = buf;
        bad[8 + 16] = 0xff;
        bad[8 + 17] = 0xff;
        assert!(ReferenceStats::read_from(bad.as_slice()).is_err());
    }
}
