//! The TEVoT model: a random-forest dynamic-delay regressor.
//!
//! Per Sec. III of the paper, TEVoT does not learn the error function
//! `f_e(V, T, t_clk, I)` directly; it learns the dynamic-delay function
//! `D = f_d(V, T, I)` (Eq. 2) and classifies a cycle as erroneous when the
//! predicted delay exceeds the clock period. One trained model therefore
//! serves every clock speed.

use std::io::{Read, Write};

use rand::Rng;
use tevot_ml::persist::{self, LoadModelError};
use tevot_ml::{Dataset, ForestParams, RandomForestRegressor};
use tevot_timing::OperatingCondition;

use crate::dta::Characterization;
use crate::features::FeatureEncoding;
use crate::reference::ReferenceStats;
use crate::workload::Workload;

/// Builds the Eq. 3 feature/label matrices from characterization runs.
///
/// Each `(workload, characterization)` pair contributes one row per cycle
/// `t >= 1` (the cold-start cycle has no history input): features
/// `{x[t], x[t-1], V, T}` under `encoding`, label `D[t]` in picoseconds.
///
/// Runs featurize independently (one `tevot-par` task each) and the
/// per-run blocks concatenate in `runs` order, so the matrix is
/// bit-identical to a serial build at any `--jobs` level.
///
/// # Panics
///
/// Panics if a workload's length differs from its characterization's cycle
/// count, or if `runs` produces no rows.
pub fn build_delay_dataset(
    encoding: FeatureEncoding,
    runs: &[(&Workload, &Characterization)],
) -> Dataset {
    let blocks = tevot_par::map(runs, |&(workload, ch)| {
        assert_eq!(workload.len(), ch.num_cycles(), "workload/characterization cycle mismatch");
        let ops = workload.operands();
        let mut block =
            Dataset::with_capacity(encoding.num_features(), ops.len().saturating_sub(1));
        let mut row = Vec::with_capacity(encoding.num_features());
        for t in 1..ops.len() {
            encoding.encode_into(ch.condition(), ops[t], ops[t - 1], &mut row);
            block.push(&row, ch.delays_ps()[t] as f64);
        }
        block
    });
    let capacity: usize = runs.iter().map(|(w, _)| w.len().saturating_sub(1)).sum();
    let mut data = Dataset::with_capacity(encoding.num_features(), capacity);
    for block in &blocks {
        data.append(block);
    }
    assert!(!data.is_empty(), "no training rows produced");
    data
}

/// TEVoT hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TevotParams {
    /// The random-forest configuration (paper default: 10 trees, all
    /// features considered at each split).
    pub forest: ForestParams,
    /// The feature layout; [`FeatureEncoding::without_history`] yields the
    /// TEVoT-NH ablation.
    pub encoding: FeatureEncoding,
}

impl Default for TevotParams {
    fn default() -> Self {
        TevotParams { forest: ForestParams::default(), encoding: FeatureEncoding::with_history() }
    }
}

/// A trained TEVoT model.
///
/// # Examples
///
/// See the crate-level documentation for the full train-and-evaluate
/// pipeline; the unit tests below exercise a miniature version.
#[derive(Debug, Clone, PartialEq)]
pub struct TevotModel {
    forest: RandomForestRegressor,
    encoding: FeatureEncoding,
    reference: Option<ReferenceStats>,
}

impl TevotModel {
    /// Trains on a delay dataset produced by [`build_delay_dataset`].
    ///
    /// # Panics
    ///
    /// Panics if the dataset width does not match `params.encoding`.
    pub fn train(data: &Dataset, params: &TevotParams, rng: &mut impl Rng) -> Self {
        assert_eq!(
            data.num_features(),
            params.encoding.num_features(),
            "dataset width does not match the feature encoding"
        );
        let _span =
            tevot_obs::span!("fit", "{} rows x {} features", data.len(), data.num_features());
        TevotModel {
            forest: RandomForestRegressor::fit(data, &params.forest, rng),
            encoding: params.encoding,
            reference: None,
        }
    }

    /// The train-time reference statistics, when the model carries them
    /// (models saved before the reference block, or trained without one,
    /// return `None`).
    pub fn reference(&self) -> Option<&ReferenceStats> {
        self.reference.as_ref()
    }

    /// Attaches train-time reference statistics; they persist through
    /// [`Self::save`] and feed serve-side drift monitoring.
    pub fn set_reference(&mut self, reference: ReferenceStats) {
        self.reference = Some(reference);
    }

    /// The feature encoding this model was trained with.
    pub fn encoding(&self) -> FeatureEncoding {
        self.encoding
    }

    /// The underlying forest.
    pub fn forest(&self) -> &RandomForestRegressor {
        &self.forest
    }

    /// Normalized feature importances paired with human-readable feature
    /// names (`a[t] bit 31`, `b[t-1] bit 0`, `V`, `T`, ...) — the
    /// interpretability that made the paper pick the random forest: "it
    /// can interpret the significance disparity between different
    /// features" (Sec. IV-B2).
    pub fn feature_importances(&self) -> Vec<(String, f64)> {
        let imp = self.forest.feature_importances();
        imp.into_iter().enumerate().map(|(i, v)| (self.feature_name(i), v)).collect()
    }

    fn feature_name(&self, index: usize) -> String {
        let history = self.encoding.has_history();
        let words: &[&str] =
            if history { &["a[t]", "b[t]", "a[t-1]", "b[t-1]"] } else { &["a[t]", "b[t]"] };
        let bits = words.len() * 32;
        match index {
            i if i < bits => format!("{} bit {}", words[i / 32], i % 32),
            i if i == bits => "V".into(),
            i if i == bits + 1 => "T".into(),
            i => format!("feature {i}"),
        }
    }

    /// Predicts the dynamic delay (ps) of the transition
    /// `previous -> current` at `cond`.
    pub fn predict_delay_ps(
        &self,
        cond: OperatingCondition,
        current: (u32, u32),
        previous: (u32, u32),
    ) -> f64 {
        let row = self.encoding.encode(cond, current, previous);
        tevot_obs::metrics::CORE_PREDICTIONS.incr();
        self.forest.predict(&row)
    }

    /// Classifies the cycle: timing-erroneous iff the predicted delay
    /// exceeds `clock_ps`.
    pub fn predict_error(
        &self,
        cond: OperatingCondition,
        clock_ps: u64,
        current: (u32, u32),
        previous: (u32, u32),
    ) -> bool {
        self.predict_delay_ps(cond, current, previous) > clock_ps as f64
    }

    /// Serializes the model (see `tevot_ml::persist` for the forest
    /// format). The header tag is a bitfield: bit 0 = history features,
    /// bit 1 = a [`ReferenceStats`] block follows the forest.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, mut writer: impl Write) -> std::io::Result<()> {
        let mut tag: u8 = if self.encoding.has_history() { 1 } else { 0 };
        if self.reference.is_some() {
            tag |= 2;
        }
        writer.write_all(&[b'T', b'V', tag])?;
        persist::save_regressor(&self.forest, &mut writer)?;
        match &self.reference {
            Some(reference) => reference.write_to(writer),
            None => Ok(()),
        }
    }

    /// Deserializes a model written by [`Self::save`].
    ///
    /// # Errors
    ///
    /// Returns [`LoadModelError`] on I/O failure or malformed data,
    /// naming the byte offset where decoding stopped.
    pub fn load(mut reader: impl Read) -> Result<TevotModel, LoadModelError> {
        let mut header = [0u8; 3];
        reader.read_exact(&mut header).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                LoadModelError::format(0, "truncated: shorter than the 3-byte header")
            } else {
                e.into()
            }
        })?;
        if &header[..2] != b"TV" || header[2] > 3 {
            return Err(LoadModelError::format(0, "not a TEVoT model"));
        }
        let encoding = if header[2] & 1 == 1 {
            FeatureEncoding::with_history()
        } else {
            FeatureEncoding::without_history()
        };
        let forest = persist::load_regressor(&mut reader)?;
        // Pre-reference files (tags 0/1) end at the forest and load with
        // reference = None; bit 1 promises a trailing TVRS block.
        let reference =
            if header[2] & 2 == 2 { Some(ReferenceStats::read_from(reader)?) } else { None };
        Ok(TevotModel { forest, encoding, reference })
    }

    /// Saves the model to `path` (failpoint: `model.save`).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors, including injected ones.
    pub fn save_path(&self, path: &std::path::Path) -> std::io::Result<()> {
        tevot_resil::fail::eval("model.save")?;
        let mut writer = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.save(&mut writer)?;
        writer.flush()
    }

    /// Loads a model from `path`; a truncated or corrupt file yields a
    /// typed error naming the path and byte offset (failpoint:
    /// `model.load`).
    ///
    /// # Errors
    ///
    /// [`LoadModelError::AtPath`] wrapping the underlying failure.
    pub fn load_path(path: &std::path::Path) -> Result<TevotModel, LoadModelError> {
        persist::open_model(path)
            .and_then(|f| Self::load(std::io::BufReader::new(f)))
            .map_err(|e| e.at_path(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dta::Characterizer;
    use crate::workload::random_workload;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tevot_netlist::fu::FunctionalUnit;
    use tevot_timing::ClockSpeedup;

    fn tiny_setup() -> (Workload, Characterization) {
        let fu = FunctionalUnit::IntAdd;
        let ch = Characterizer::new(fu);
        let w = random_workload(fu, 800, 5);
        let c = ch.characterize(OperatingCondition::new(0.9, 25.0), &w, &ClockSpeedup::PAPER);
        (w, c)
    }

    #[test]
    fn dataset_shape_matches_eq3() {
        let (w, c) = tiny_setup();
        let data = build_delay_dataset(FeatureEncoding::with_history(), &[(&w, &c)]);
        assert_eq!(data.num_features(), 130);
        assert_eq!(data.len(), 799, "one row per cycle t >= 1");
        // Labels are the measured dynamic delays.
        assert_eq!(data.label(0), c.delays_ps()[1] as f64);
    }

    #[test]
    fn trained_model_tracks_delay_scale() {
        let (w, c) = tiny_setup();
        let data = build_delay_dataset(FeatureEncoding::with_history(), &[(&w, &c)]);
        let mut rng = SmallRng::seed_from_u64(1);
        let model = TevotModel::train(&data, &TevotParams::default(), &mut rng);
        // In-sample delay predictions should correlate strongly.
        let ops = w.operands();
        let mut pred = Vec::new();
        let mut actual = Vec::new();
        for t in 1..ops.len() {
            pred.push(model.predict_delay_ps(c.condition(), ops[t], ops[t - 1]));
            actual.push(c.delays_ps()[t] as f64);
        }
        // Bootstrapped trees see ~63% of rows each, so even in-sample
        // predictions carry out-of-bag error; 0.7 is a robust floor.
        let r2 = tevot_ml::metrics::r_squared(&pred, &actual);
        assert!(r2 > 0.7, "in-sample R^2 {r2}");
    }

    #[test]
    fn error_classification_uses_clock_period() {
        let (w, c) = tiny_setup();
        let data = build_delay_dataset(FeatureEncoding::with_history(), &[(&w, &c)]);
        let mut rng = SmallRng::seed_from_u64(1);
        let model = TevotModel::train(&data, &TevotParams::default(), &mut rng);
        let ops = w.operands();
        // A clock far above the critical path can never be erroneous; a
        // 1 ps clock always is.
        let huge = c.critical_delay_ps() * 10;
        assert!(!model.predict_error(c.condition(), huge, ops[5], ops[4]));
        assert!(model.predict_error(c.condition(), 1, ops[5], ops[4]));
    }

    #[test]
    fn save_load_roundtrip() {
        let (w, c) = tiny_setup();
        let data = build_delay_dataset(FeatureEncoding::with_history(), &[(&w, &c)]);
        let mut rng = SmallRng::seed_from_u64(1);
        let model = TevotModel::train(&data, &TevotParams::default(), &mut rng);
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let loaded = TevotModel::load(buf.as_slice()).unwrap();
        let ops = w.operands();
        assert_eq!(
            model.predict_delay_ps(c.condition(), ops[2], ops[1]),
            loaded.predict_delay_ps(c.condition(), ops[2], ops[1])
        );
        assert!(loaded.encoding().has_history());
    }

    #[test]
    fn reference_block_round_trips_and_is_optional() {
        let (w, c) = tiny_setup();
        let data = build_delay_dataset(FeatureEncoding::with_history(), &[(&w, &c)]);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut model = TevotModel::train(&data, &TevotParams::default(), &mut rng);

        // Without a reference, the pre-reference byte stream is emitted:
        // old loaders keep working and reference() stays None.
        let mut plain = Vec::new();
        model.save(&mut plain).unwrap();
        assert_eq!(plain[2], 1, "history-only tag for reference-free models");
        assert!(TevotModel::load(plain.as_slice()).unwrap().reference().is_none());

        let delays: Vec<f64> = c.delays_ps().iter().map(|&d| d as f64).collect();
        model.set_reference(ReferenceStats::collect(&[c.condition()], &delays));
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        assert_eq!(buf[2], 3, "history + reference bits");
        let loaded = TevotModel::load(buf.as_slice()).unwrap();
        assert_eq!(loaded, model);
        let reference = loaded.reference().expect("reference block survives the round-trip");
        assert_eq!(reference.voltage.total(), 1);
        assert_eq!(reference.delay_ps.total() as usize, c.delays_ps().len());

        // A truncated reference block is a load error, not a silent None.
        assert!(TevotModel::load(&buf[..buf.len() - 5]).is_err());
        // Unknown future tags are rejected.
        let mut future = plain;
        future[2] = 4;
        assert!(TevotModel::load(future.as_slice()).is_err());
    }

    #[test]
    #[should_panic(expected = "does not match the feature encoding")]
    fn encoding_mismatch_is_rejected() {
        let (w, c) = tiny_setup();
        let data = build_delay_dataset(FeatureEncoding::without_history(), &[(&w, &c)]);
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = TevotModel::train(&data, &TevotParams::default(), &mut rng);
    }
}
