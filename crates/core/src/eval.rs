//! Model evaluation against gate-level ground truth (Fig. 2, right; Eq. 4).

use tevot_timing::OperatingCondition;

use crate::baselines::ErrorPredictor;
use crate::dta::Characterization;
use crate::workload::Workload;

/// Accuracy of one predictor at one (condition, clock period) point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyPoint {
    /// The operating condition evaluated.
    pub condition: OperatingCondition,
    /// The clock period in picoseconds.
    pub clock_ps: u64,
    /// Eq. 4 prediction accuracy: matched cycles / total cycles.
    pub accuracy: f64,
    /// The ground-truth timing error rate at this point, for context.
    pub ground_truth_ter: f64,
}

/// Evaluates `predictor` on one characterization run, producing one
/// [`AccuracyPoint`] per clock period.
///
/// Cycle 0 (cold start, no history input) is excluded, mirroring training.
///
/// # Panics
///
/// Panics if the workload length differs from the characterization's cycle
/// count or the run has fewer than two cycles.
pub fn evaluate_predictor(
    predictor: &mut dyn ErrorPredictor,
    workload: &Workload,
    ground_truth: &Characterization,
) -> Vec<AccuracyPoint> {
    assert_eq!(
        workload.len(),
        ground_truth.num_cycles(),
        "workload/characterization cycle mismatch"
    );
    assert!(workload.len() >= 2, "need at least two cycles to evaluate");
    let ops = workload.operands();
    let cond = ground_truth.condition();
    ground_truth
        .clock_periods_ps()
        .iter()
        .enumerate()
        .map(|(p_idx, &clock_ps)| {
            tevot_obs::instant!("eval.period");
            let truth = ground_truth.erroneous(p_idx);
            let mut matched = 0usize;
            for t in 1..ops.len() {
                let predicted = predictor.predict_error(cond, clock_ps, ops[t], ops[t - 1]);
                if predicted == truth[t] {
                    matched += 1;
                }
            }
            AccuracyPoint {
                condition: cond,
                clock_ps,
                accuracy: matched as f64 / (ops.len() - 1) as f64,
                ground_truth_ter: ground_truth.timing_error_rate(p_idx),
            }
        })
        .collect()
}

/// Why an [`OracleReplay`] could not answer for a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleError {
    /// The queried clock period is not one of the characterization's
    /// extraction periods.
    UnknownPeriod {
        /// The clock period (ps) that was asked for.
        clock_ps: u64,
    },
    /// The characterization has fewer than two cycles, so there is no
    /// non-cold-start cycle to replay (and no valid cursor modulus).
    TooFewCycles {
        /// The characterization's cycle count.
        num_cycles: usize,
    },
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleError::UnknownPeriod { clock_ps } => {
                write!(f, "clock period {clock_ps} ps was not characterized")
            }
            OracleError::TooFewCycles { num_cycles } => {
                write!(f, "characterization has {num_cycles} cycle(s); need at least 2 to replay")
            }
        }
    }
}

impl std::error::Error for OracleError {}

/// A predictor that replays a characterization's ground truth cycle by
/// cycle — the perfect-information upper bound every model is implicitly
/// compared against (it scores 100 % under [`evaluate_predictor`]).
///
/// Earlier revisions panicked on degenerate inputs (`% 0` on a
/// single-cycle characterization, `.expect` on an uncharacterized clock
/// period); [`Self::try_predict`] reports both as a typed
/// [`OracleError`] instead, and the [`ErrorPredictor`] impl degrades to
/// predicting "no error" so sweeps skip such points gracefully.
#[derive(Debug, Clone)]
pub struct OracleReplay<'a> {
    truth: &'a Characterization,
    cursor: usize,
}

impl<'a> OracleReplay<'a> {
    /// An oracle replaying `truth`, starting at the first non-cold cycle.
    pub fn new(truth: &'a Characterization) -> Self {
        OracleReplay { truth, cursor: 0 }
    }

    /// The ground-truth error flag of the next cycle at `clock_ps`,
    /// advancing (and wrapping) the replay cursor.
    ///
    /// # Errors
    ///
    /// [`OracleError::UnknownPeriod`] when `clock_ps` is not an
    /// extraction period of the characterization;
    /// [`OracleError::TooFewCycles`] when the run has fewer than two
    /// cycles. Neither failure advances the cursor.
    pub fn try_predict(&mut self, clock_ps: u64) -> Result<bool, OracleError> {
        let num_cycles = self.truth.num_cycles();
        if num_cycles < 2 {
            return Err(OracleError::TooFewCycles { num_cycles });
        }
        let p_idx = self
            .truth
            .clock_periods_ps()
            .iter()
            .position(|&p| p == clock_ps)
            .ok_or(OracleError::UnknownPeriod { clock_ps })?;
        let t = self.cursor;
        self.cursor = (t + 1) % (num_cycles - 1);
        Ok(self.truth.erroneous(p_idx)[t + 1])
    }
}

impl ErrorPredictor for OracleReplay<'_> {
    fn predict_error(
        &mut self,
        _cond: OperatingCondition,
        clock_ps: u64,
        _current: (u32, u32),
        _previous: (u32, u32),
    ) -> bool {
        self.try_predict(clock_ps).unwrap_or(false)
    }

    fn name(&self) -> &'static str {
        "oracle"
    }
}

/// The model-estimated timing error rate on a workload at one clock period
/// — the quantity handed to the application-level error injector for each
/// model in Sec. V-D.
pub fn predicted_ter(
    predictor: &mut dyn ErrorPredictor,
    workload: &Workload,
    cond: OperatingCondition,
    clock_ps: u64,
) -> f64 {
    let ops = workload.operands();
    assert!(ops.len() >= 2, "need at least two cycles");
    let errors = (1..ops.len())
        .filter(|&t| predictor.predict_error(cond, clock_ps, ops[t], ops[t - 1]))
        .count();
    errors as f64 / (ops.len() - 1) as f64
}

/// Averages the accuracy over a set of points (the "average prediction
/// accuracy across conditions and clock speeds" of Table III).
///
/// # Panics
///
/// Panics on an empty set.
pub fn mean_accuracy(points: &[AccuracyPoint]) -> f64 {
    assert!(!points.is_empty(), "no accuracy points");
    points.iter().map(|p| p.accuracy).sum::<f64>() / points.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dta::Characterizer;
    use crate::features::FeatureEncoding;
    use crate::model::{build_delay_dataset, TevotModel, TevotParams};
    use crate::workload::random_workload;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tevot_netlist::fu::FunctionalUnit;
    use tevot_timing::ClockSpeedup;

    fn setup() -> (Workload, Characterization) {
        let fu = FunctionalUnit::IntAdd;
        let ch = Characterizer::new(fu);
        let w = random_workload(fu, 250, 21);
        let c = ch.characterize(OperatingCondition::new(0.88, 25.0), &w, &ClockSpeedup::PAPER);
        (w, c)
    }

    #[test]
    fn oracle_scores_perfectly() {
        let (w, c) = setup();
        let mut oracle = OracleReplay::new(&c);
        let points = evaluate_predictor(&mut oracle, &w, &c);
        assert_eq!(points.len(), 3);
        for p in &points {
            assert_eq!(p.accuracy, 1.0, "oracle must match ground truth at {}", p.clock_ps);
        }
        assert_eq!(mean_accuracy(&points), 1.0);
    }

    #[test]
    fn oracle_reports_unknown_period_instead_of_panicking() {
        let (w, c) = setup();
        let mut oracle = OracleReplay::new(&c);
        let bogus = c.clock_periods_ps().iter().max().unwrap() + 12_345;
        assert_eq!(oracle.try_predict(bogus), Err(OracleError::UnknownPeriod { clock_ps: bogus }));
        // Through the ErrorPredictor trait the failure degrades to "no
        // error" — a graceful skip — and the cursor has not advanced, so
        // a full evaluation afterwards still replays from cycle 1.
        assert!(!oracle.predict_error(c.condition(), bogus, (0, 0), (0, 0)));
        let points = evaluate_predictor(&mut oracle, &w, &c);
        assert!(points.iter().all(|p| p.accuracy == 1.0));
    }

    #[test]
    fn oracle_reports_too_few_cycles_instead_of_dividing_by_zero() {
        // A 1-cycle characterization used to hit `(t + 1) % (num_cycles - 1)`
        // with a zero modulus.
        let fu = FunctionalUnit::IntAdd;
        let chz = Characterizer::new(fu);
        let w = random_workload(fu, 1, 9);
        let c = chz.characterize(OperatingCondition::new(0.88, 25.0), &w, &ClockSpeedup::PAPER);
        let mut oracle = OracleReplay::new(&c);
        let p = c.clock_periods_ps()[0];
        assert_eq!(oracle.try_predict(p), Err(OracleError::TooFewCycles { num_cycles: 1 }));
        assert!(!oracle.predict_error(c.condition(), p, (0, 0), (0, 0)));
    }

    #[test]
    fn trained_tevot_beats_coin_flip_out_of_sample() {
        let fu = FunctionalUnit::IntAdd;
        let chz = Characterizer::new(fu);
        let cond = OperatingCondition::new(0.88, 25.0);
        let train_w = random_workload(fu, 600, 1);
        let test_w = random_workload(fu, 200, 2);
        let train_c = chz.characterize(cond, &train_w, &ClockSpeedup::PAPER);
        let test_c = chz.characterize(cond, &test_w, &ClockSpeedup::PAPER);
        let data = build_delay_dataset(FeatureEncoding::with_history(), &[(&train_w, &train_c)]);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut model = TevotModel::train(&data, &TevotParams::default(), &mut rng);
        let points = evaluate_predictor(&mut model, &test_w, &test_c);
        let acc = mean_accuracy(&points);
        assert!(acc > 0.8, "out-of-sample accuracy {acc}");
    }

    #[test]
    fn predicted_ter_is_a_rate() {
        let (w, c) = setup();
        let mut oracle = OracleReplay::new(&c);
        let p = c.clock_periods_ps()[1];
        let ter = predicted_ter(&mut oracle, &w, c.condition(), p);
        assert!((0.0..=1.0).contains(&ter));
        // Oracle predictions replay ground truth, so the rates agree.
        assert!((ter - c.timing_error_rate(1)).abs() < 1e-9);
    }
}
