//! Model evaluation against gate-level ground truth (Fig. 2, right; Eq. 4).

use tevot_timing::OperatingCondition;

use crate::baselines::ErrorPredictor;
use crate::dta::Characterization;
use crate::workload::Workload;

/// Accuracy of one predictor at one (condition, clock period) point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyPoint {
    /// The operating condition evaluated.
    pub condition: OperatingCondition,
    /// The clock period in picoseconds.
    pub clock_ps: u64,
    /// Eq. 4 prediction accuracy: matched cycles / total cycles.
    pub accuracy: f64,
    /// The ground-truth timing error rate at this point, for context.
    pub ground_truth_ter: f64,
}

/// Evaluates `predictor` on one characterization run, producing one
/// [`AccuracyPoint`] per clock period.
///
/// Cycle 0 (cold start, no history input) is excluded, mirroring training.
///
/// # Panics
///
/// Panics if the workload length differs from the characterization's cycle
/// count or the run has fewer than two cycles.
pub fn evaluate_predictor(
    predictor: &mut dyn ErrorPredictor,
    workload: &Workload,
    ground_truth: &Characterization,
) -> Vec<AccuracyPoint> {
    assert_eq!(
        workload.len(),
        ground_truth.num_cycles(),
        "workload/characterization cycle mismatch"
    );
    assert!(workload.len() >= 2, "need at least two cycles to evaluate");
    let ops = workload.operands();
    let cond = ground_truth.condition();
    ground_truth
        .clock_periods_ps()
        .iter()
        .enumerate()
        .map(|(p_idx, &clock_ps)| {
            tevot_obs::instant!("eval.period");
            let truth = ground_truth.erroneous(p_idx);
            let mut matched = 0usize;
            for t in 1..ops.len() {
                let predicted = predictor.predict_error(cond, clock_ps, ops[t], ops[t - 1]);
                if predicted == truth[t] {
                    matched += 1;
                }
            }
            AccuracyPoint {
                condition: cond,
                clock_ps,
                accuracy: matched as f64 / (ops.len() - 1) as f64,
                ground_truth_ter: ground_truth.timing_error_rate(p_idx),
            }
        })
        .collect()
}

/// The model-estimated timing error rate on a workload at one clock period
/// — the quantity handed to the application-level error injector for each
/// model in Sec. V-D.
pub fn predicted_ter(
    predictor: &mut dyn ErrorPredictor,
    workload: &Workload,
    cond: OperatingCondition,
    clock_ps: u64,
) -> f64 {
    let ops = workload.operands();
    assert!(ops.len() >= 2, "need at least two cycles");
    let errors = (1..ops.len())
        .filter(|&t| predictor.predict_error(cond, clock_ps, ops[t], ops[t - 1]))
        .count();
    errors as f64 / (ops.len() - 1) as f64
}

/// Averages the accuracy over a set of points (the "average prediction
/// accuracy across conditions and clock speeds" of Table III).
///
/// # Panics
///
/// Panics on an empty set.
pub fn mean_accuracy(points: &[AccuracyPoint]) -> f64 {
    assert!(!points.is_empty(), "no accuracy points");
    points.iter().map(|p| p.accuracy).sum::<f64>() / points.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dta::Characterizer;
    use crate::features::FeatureEncoding;
    use crate::model::{build_delay_dataset, TevotModel, TevotParams};
    use crate::workload::random_workload;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tevot_netlist::fu::FunctionalUnit;
    use tevot_timing::ClockSpeedup;

    /// An oracle that replays the ground truth — must score 100%.
    struct Oracle<'a> {
        truth: &'a Characterization,
        cursor: std::cell::Cell<usize>,
    }

    impl ErrorPredictor for Oracle<'_> {
        fn predict_error(
            &mut self,
            _cond: OperatingCondition,
            clock_ps: u64,
            _current: (u32, u32),
            _previous: (u32, u32),
        ) -> bool {
            let p_idx = self
                .truth
                .clock_periods_ps()
                .iter()
                .position(|&p| p == clock_ps)
                .expect("known period");
            let t = self.cursor.get();
            self.cursor.set((t + 1) % (self.truth.num_cycles() - 1));
            self.truth.erroneous(p_idx)[t + 1]
        }

        fn name(&self) -> &'static str {
            "oracle"
        }
    }

    fn setup() -> (Workload, Characterization) {
        let fu = FunctionalUnit::IntAdd;
        let ch = Characterizer::new(fu);
        let w = random_workload(fu, 250, 21);
        let c = ch.characterize(OperatingCondition::new(0.88, 25.0), &w, &ClockSpeedup::PAPER);
        (w, c)
    }

    #[test]
    fn oracle_scores_perfectly() {
        let (w, c) = setup();
        let mut oracle = Oracle { truth: &c, cursor: std::cell::Cell::new(0) };
        let points = evaluate_predictor(&mut oracle, &w, &c);
        assert_eq!(points.len(), 3);
        for p in &points {
            assert_eq!(p.accuracy, 1.0, "oracle must match ground truth at {}", p.clock_ps);
        }
        assert_eq!(mean_accuracy(&points), 1.0);
    }

    #[test]
    fn trained_tevot_beats_coin_flip_out_of_sample() {
        let fu = FunctionalUnit::IntAdd;
        let chz = Characterizer::new(fu);
        let cond = OperatingCondition::new(0.88, 25.0);
        let train_w = random_workload(fu, 600, 1);
        let test_w = random_workload(fu, 200, 2);
        let train_c = chz.characterize(cond, &train_w, &ClockSpeedup::PAPER);
        let test_c = chz.characterize(cond, &test_w, &ClockSpeedup::PAPER);
        let data = build_delay_dataset(FeatureEncoding::with_history(), &[(&train_w, &train_c)]);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut model = TevotModel::train(&data, &TevotParams::default(), &mut rng);
        let points = evaluate_predictor(&mut model, &test_w, &test_c);
        let acc = mean_accuracy(&points);
        assert!(acc > 0.8, "out-of-sample accuracy {acc}");
    }

    #[test]
    fn predicted_ter_is_a_rate() {
        let (w, c) = setup();
        let mut oracle = Oracle { truth: &c, cursor: std::cell::Cell::new(0) };
        let p = c.clock_periods_ps()[1];
        let ter = predicted_ter(&mut oracle, &w, c.condition(), p);
        assert!((0.0..=1.0).contains(&ter));
        // Oracle predictions replay ground truth, so the rates agree.
        assert!((ter - c.timing_error_rate(1)).abs() < 1e-9);
    }
}
