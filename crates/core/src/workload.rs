//! Workload (operand stream) generation.
//!
//! The paper trains on "200K randomly generated data" using "the
//! homogeneous distribution of two operands over 2D input space" (ref. 22) and
//! tests on operand traces profiled from two image-processing applications.
//! This module provides the random streams; the profiled application
//! streams come from `tevot-imgproc`, which records every FU operand pair
//! the Sobel/Gaussian filters issue.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tevot_netlist::fu::FunctionalUnit;

/// A named stream of operand pairs for one functional unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    name: String,
    operands: Vec<(u32, u32)>,
}

impl Workload {
    /// Wraps an operand stream under a display name.
    ///
    /// # Panics
    ///
    /// Panics on an empty stream.
    pub fn new(name: impl Into<String>, operands: Vec<(u32, u32)>) -> Self {
        assert!(!operands.is_empty(), "empty workload");
        Workload { name: name.into(), operands }
    }

    /// Display name (e.g. `"random_data"`, `"sobel_data"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operand pairs, in issue order.
    pub fn operands(&self) -> &[(u32, u32)] {
        &self.operands
    }

    /// Number of operand pairs.
    pub fn len(&self) -> usize {
        self.operands.len()
    }

    /// Always false: construction rejects empty streams.
    pub fn is_empty(&self) -> bool {
        self.operands.is_empty()
    }

    /// A shortened copy with at most `n` leading pairs.
    pub fn truncated(&self, n: usize) -> Workload {
        Workload {
            name: self.name.clone(),
            operands: self.operands[..self.operands.len().min(n)].to_vec(),
        }
    }

    /// Concatenates two workloads (used for the paper's mixed training set:
    /// random data plus a slice of application data).
    pub fn concat(&self, other: &Workload, name: impl Into<String>) -> Workload {
        let mut operands = self.operands.clone();
        operands.extend_from_slice(&other.operands);
        Workload { name: name.into(), operands }
    }

    /// Serializes as a text trace: one `aaaaaaaa bbbbbbbb` hex pair per
    /// line, with a `# name` header — the interchange format for bringing
    /// externally profiled operand streams into the pipeline.
    pub fn to_text(&self) -> String {
        let mut out = format!("# {}\n", self.name);
        for &(a, b) in &self.operands {
            out.push_str(&format!("{a:08x} {b:08x}\n"));
        }
        out
    }

    /// Parses a text trace written by [`Self::to_text`] (blank lines and
    /// `#` comments are skipped; bare hex words, with or without `0x`).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line, or an empty
    /// trace.
    pub fn from_text(text: &str) -> Result<Workload, String> {
        let mut name = String::from("trace");
        let mut operands = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(comment) = line.strip_prefix('#') {
                if operands.is_empty() && !comment.trim().is_empty() {
                    name = comment.trim().to_string();
                }
                continue;
            }
            let mut words = line.split_whitespace();
            let parse = |w: Option<&str>| -> Result<u32, String> {
                let w = w.ok_or_else(|| format!("line {}: expected two words", lineno + 1))?;
                let w = w.strip_prefix("0x").unwrap_or(w);
                u32::from_str_radix(w, 16)
                    .map_err(|_| format!("line {}: bad hex word {w:?}", lineno + 1))
            };
            let a = parse(words.next())?;
            let b = parse(words.next())?;
            if words.next().is_some() {
                return Err(format!("line {}: trailing tokens", lineno + 1));
            }
            operands.push((a, b));
        }
        if operands.is_empty() {
            return Err("trace contains no operand pairs".into());
        }
        Ok(Workload { name, operands })
    }
}

/// Generates the paper's homogeneous random workload for `fu`.
///
/// Integer units draw both operands uniformly from the full 32-bit space.
/// Floating-point units draw uniformly from sign x exponent x fraction with
/// the exponent restricted to finite, normal encodings spanning a wide
/// magnitude range (the FP circuits flush subnormals and have no NaN
/// semantics; see `tevot-netlist`'s golden models).
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn random_workload(fu: FunctionalUnit, n: usize, seed: u64) -> Workload {
    assert!(n > 0, "empty workload requested");
    let mut rng = SmallRng::seed_from_u64(seed ^ fu as u64);
    let mut operands = Vec::with_capacity(n);
    for _ in 0..n {
        let pair = if fu.is_float() {
            (random_float_bits(&mut rng), random_float_bits(&mut rng))
        } else {
            (rng.gen::<u32>(), rng.gen::<u32>())
        };
        operands.push(pair);
    }
    Workload::new("random_data", operands)
}

/// A uniformly random normal (or zero) `f32` bit pattern with exponent in
/// a +/- 2^20 magnitude band around 1.0.
fn random_float_bits(rng: &mut SmallRng) -> u32 {
    let sign = (rng.gen::<bool>() as u32) << 31;
    // Biased exponent 107..=147: magnitudes from ~1e-6 to ~1e6.
    let exp: u32 = rng.gen_range(107..=147);
    let frac: u32 = rng.gen::<u32>() & 0x7F_FFFF;
    sign | exp << 23 | frac
}

/// Directed corner operand pairs for the integer units: sign boundaries,
/// all-ones/zeros, alternating patterns and small mixed-sign values whose
/// transitions exercise full carry-propagate runs.
const INT_CORNERS: &[(u32, u32)] = &[
    (0, 0),
    (u32::MAX, 1),
    (0x7FFF_FFFF, 1),
    (0x8000_0000, u32::MAX),
    (0xAAAA_AAAA, 0x5555_5555),
    (0x5555_5555, 0x5555_5555),
    // Small mixed-sign sums whose results flip sign from one cycle to the
    // next: each pair of rows exercises a full sign-extension
    // carry-propagate run starting at a different bit position, sampling
    // the whole family of long paths (per-gate variation makes them differ
    // by ~10 %).
    (5, 0xFFFF_FFF6),           // 5 + (-10) = -5
    (7, 2),                     // +9 right after: sign flip from bit ~3
    (100, 0xFFFF_FF38),         // 100 + (-200) = -100
    (300, 21),                  // +321: flip from bit ~8
    (1500, 0xFFFF_F448),        // 1500 + (-3000) = -1500
    (2000, 1000),               // +3000: flip from bit ~11
    (70_000, 0xFFFE_EE90),      // 70000 + (-140000) = -70000
    (100_000, 30_000),          // +130000: flip from bit ~17
    (9_000_000, 0xFF76_A700),   // 9e6 + (-18e6) = -9e6
    (12_000_000, 4_000_000),    // +16e6: flip from bit ~24
    (0xFFFF_FF9C, 0xFFFF_FFD8), // (-100) + (-40)
    (120, 0xFFFF_FF88),         // 120 + (-120): exact cancellation
    (u32::MAX, u32::MAX),
    (1, 0),
];

/// Directed corner operand pairs for the floating-point adder: equal-and-
/// opposite values (massive cancellation), wide exponent differences
/// (long alignment shifts), precision-boundary rounding and sign flips.
///
/// Magnitudes stay inside the random workload's `1e-6 .. 1e6` band: an
/// Fmax characterization targets the paths the deployed workloads can
/// reach, not the overflow-clamp corner no image kernel ever exercises.
fn fp_add_corners() -> Vec<(u32, u32)> {
    let f = |x: f32| x.to_bits();
    vec![
        (f(1.0), f(-1.000_000_1)),
        (f(1.5e5), f(-1.499_99e5)),
        (f(9.9e5), f(9.9e5)),
        (f(1e-6), f(1e6)),
        (f(-1e6), f(1e-6)),
        (f(16_777_215.0), f(1.0)),
        (f(0.0), f(-0.0)),
        (f(1.2e-6), f(1.2e-6)),
        (f(0.1), f(0.2)),
        (f(123456.78), f(-123456.7)),
    ]
}

/// Directed corner operand pairs for the floating-point multiplier: wide
/// exponent products (underflow flushes), sign flips and magnitude sweeps.
/// All-ones-significand rounding corners are excluded for the same reason
/// the adder list stays inside the workload band: they sensitize the
/// round-increment chain after the longest array path, a pattern no pixel
/// workload produces.
fn fp_mul_corners() -> Vec<(u32, u32)> {
    let f = |x: f32| x.to_bits();
    vec![
        (f(9.9e5), f(9.9e5)),
        (f(1e-6), f(1e6)),
        (f(-1e6), f(1e-6)),
        (f(0.0), f(-0.0)),
        (f(1.2e-6), f(1.2e-6)),
        (f(0.1), f(0.2)),
        (f(123456.78), f(-0.007)),
        (f(-3.5), f(3.5)),
    ]
}

/// Generates the **characterization workload** used to measure an FU's
/// fastest error-free clock period: random vectors interleaved with
/// directed corner transitions, the way an industrial Fmax/STA
/// characterization suite combines random and pattern vectors so that the
/// long sensitizable paths (full carry-propagate runs, massive
/// cancellations, maximum alignment shifts) are actually exercised.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn characterization_workload(fu: FunctionalUnit, n: usize, seed: u64) -> Workload {
    assert!(n > 0, "empty workload requested");
    let corners: Vec<(u32, u32)> = match fu {
        FunctionalUnit::FpAdd => fp_add_corners(),
        FunctionalUnit::FpMul => fp_mul_corners(),
        FunctionalUnit::IntAdd | FunctionalUnit::IntMul => INT_CORNERS.to_vec(),
    };
    let random = random_workload(fu, n, seed ^ 0xC0FFEE);
    let mut operands = Vec::with_capacity(n + 1);
    let mut corner_cursor = 0;
    for (i, &pair) in random.operands().iter().enumerate() {
        // Every third cycle is a directed pattern, so corner->random,
        // random->corner and corner->corner transitions all occur.
        if i % 3 == 2 {
            operands.push(corners[corner_cursor % corners.len()]);
            corner_cursor += 1;
        } else {
            operands.push(pair);
        }
    }
    Workload::new("characterization", operands)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_workload_is_deterministic() {
        let a = random_workload(FunctionalUnit::IntAdd, 100, 1);
        let b = random_workload(FunctionalUnit::IntAdd, 100, 1);
        let c = random_workload(FunctionalUnit::IntAdd, 100, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 100);
        assert_eq!(a.name(), "random_data");
    }

    #[test]
    fn float_workload_stays_finite_and_normal() {
        let w = random_workload(FunctionalUnit::FpMul, 500, 3);
        for &(a, b) in w.operands() {
            for bits in [a, b] {
                let exp = bits >> 23 & 0xFF;
                assert!(exp > 0 && exp < 255, "exp {exp} out of the normal band");
                let v = f32::from_bits(bits);
                assert!(v.is_finite());
                assert!(v.abs() > 1e-7 && v.abs() < 1e7, "magnitude {v}");
            }
        }
    }

    #[test]
    fn different_units_get_different_streams() {
        let add = random_workload(FunctionalUnit::IntAdd, 10, 1);
        let mul = random_workload(FunctionalUnit::IntMul, 10, 1);
        assert_ne!(add.operands(), mul.operands());
    }

    #[test]
    fn text_trace_roundtrip() {
        let w = Workload::new("my trace", vec![(0xDEAD_BEEF, 1), (2, 0xFFFF_FFFF)]);
        let text = w.to_text();
        let parsed = Workload::from_text(&text).unwrap();
        assert_eq!(parsed, w);
        // 0x prefixes and comments are tolerated.
        let alt = "# alt\n0xdeadbeef 0x00000001\n\n# comment\n00000002 ffffffff\n";
        let parsed = Workload::from_text(alt).unwrap();
        assert_eq!(parsed.operands(), w.operands());
        assert_eq!(parsed.name(), "alt");
    }

    #[test]
    fn text_trace_rejects_malformed_lines() {
        assert!(Workload::from_text("").is_err());
        assert!(Workload::from_text("zz yy\n").unwrap_err().contains("line 1"));
        assert!(Workload::from_text("00000001\n").unwrap_err().contains("two words"));
        assert!(Workload::from_text("1 2 3\n").unwrap_err().contains("trailing"));
    }

    #[test]
    fn characterization_mixes_corners_and_random() {
        let w = characterization_workload(FunctionalUnit::IntAdd, 300, 1);
        assert_eq!(w.len(), 300);
        // Corner pairs appear...
        assert!(w.operands().contains(&(u32::MAX, 1)));
        // ...and so do random ones (values outside the corner list).
        let corners: std::collections::HashSet<(u32, u32)> = INT_CORNERS.iter().copied().collect();
        assert!(w.operands().iter().any(|p| !corners.contains(p)));
    }

    #[test]
    fn fp_characterization_exercises_cancellation() {
        let w = characterization_workload(FunctionalUnit::FpAdd, 60, 1);
        let cancel = (1.0f32.to_bits(), (-1.000_000_1f32).to_bits());
        assert!(w.operands().contains(&cancel));
    }

    #[test]
    fn truncate_and_concat() {
        let a = random_workload(FunctionalUnit::IntAdd, 50, 1);
        let b = random_workload(FunctionalUnit::IntAdd, 30, 9);
        let t = a.truncated(20);
        assert_eq!(t.len(), 20);
        let c = t.concat(&b, "mixed");
        assert_eq!(c.len(), 50);
        assert_eq!(c.name(), "mixed");
        assert_eq!(&c.operands()[..20], t.operands());
    }
}
