//! TEVoT: a supervised-learning timing-error model for functional units
//! under dynamic voltage and temperature variations.
//!
//! Reproduction of Jiao, Ma, Chang, Jiang — DAC 2020. TEVoT predicts, for
//! a functional unit, whether each output is *timing correct* or *timing
//! erroneous* as a function of supply voltage, temperature, clock period
//! and — crucially — the input workload `x[t]` together with its history
//! `x[t-1]`. Rather than learning the error function directly it learns
//! the cycle's **dynamic delay** (Eq. 2) with a random-forest regressor
//! and compares against the clock period, so one model serves every clock
//! speed.
//!
//! The crate mirrors the paper's Fig. 2 pipeline:
//!
//! 1. **Dynamic timing analysis** — [`dta::Characterizer`] drives the
//!    gate-level timing simulator across operating conditions and records
//!    per-cycle dynamic delays plus timing-error ground truth.
//! 2. **Model training** — [`FeatureEncoding`] builds the
//!    `{x[t], x[t-1], V, T}` matrices (Eq. 3), and
//!    [`TevotModel::train`] fits the forest.
//! 3. **Model evaluation** — [`eval::evaluate_predictor`] scores any
//!    [`ErrorPredictor`] against simulation ground truth (Eq. 4),
//!    including the paper's baselines [`DelayBased`], [`TerBased`] and the
//!    TEVoT-NH ablation.
//!
//! # Examples
//!
//! Train TEVoT at one condition and score it on unseen data:
//!
//! ```
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//! use tevot::dta::Characterizer;
//! use tevot::eval::{evaluate_predictor, mean_accuracy};
//! use tevot::workload::random_workload;
//! use tevot::{build_delay_dataset, FeatureEncoding, TevotModel, TevotParams};
//! use tevot_netlist::fu::FunctionalUnit;
//! use tevot_timing::{ClockSpeedup, OperatingCondition};
//!
//! let fu = FunctionalUnit::IntAdd;
//! let characterizer = Characterizer::new(fu);
//! let cond = OperatingCondition::new(0.9, 50.0);
//!
//! let train = random_workload(fu, 400, 2);
//! let truth = characterizer.characterize(cond, &train, &ClockSpeedup::PAPER);
//! let data = build_delay_dataset(FeatureEncoding::with_history(), &[(&train, &truth)]);
//! let mut rng = SmallRng::seed_from_u64(0);
//! let mut model = TevotModel::train(&data, &TevotParams::default(), &mut rng);
//!
//! let test = random_workload(fu, 100, 3);
//! let test_truth = characterizer.characterize(cond, &test, &ClockSpeedup::PAPER);
//! let points = evaluate_predictor(&mut model, &test, &test_truth);
//! assert!(mean_accuracy(&points) > 0.7);
//! ```

#![warn(missing_docs)]

mod baselines;
pub mod dta;
pub mod eval;
mod features;
mod model;
pub mod reference;
pub mod workload;

pub use baselines::{DelayBased, ErrorPredictor, TerBased};
pub use features::FeatureEncoding;
pub use model::{build_delay_dataset, TevotModel, TevotParams};
pub use workload::Workload;
