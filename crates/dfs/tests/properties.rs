//! Controller invariants under arbitrary inputs: the recommended period
//! is monotone in the guardband, never undercuts the predicted delay,
//! and the feedback margin respects its clamp under adversarial error
//! sequences.

use proptest::prelude::*;
use tevot_dfs::{
    recommended_t_clk_ps, ClockController, FeedbackConfig, GuardbandPolicy, ReplayOutcome,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// More guardband can only lengthen the recommended period.
    #[test]
    fn t_clk_is_monotone_in_guardband(
        predicted in 0.0f64..50_000.0,
        m1 in 0.0f64..10_000.0,
        m2 in 0.0f64..10_000.0,
    ) {
        let (lo, hi) = if m1 <= m2 { (m1, m2) } else { (m2, m1) };
        prop_assert!(
            recommended_t_clk_ps(predicted, lo) <= recommended_t_clk_ps(predicted, hi),
            "margin {lo} -> {hi} shrank the period at predicted {predicted}"
        );
    }

    /// The recommended period never undercuts the predicted delay, for
    /// any margin the policies can produce (including junk).
    #[test]
    fn t_clk_never_below_predicted_delay(
        predicted in 0.0f64..50_000.0,
        margin in -10_000.0f64..10_000.0,
    ) {
        let t = recommended_t_clk_ps(predicted, margin);
        prop_assert!(t as f64 >= predicted, "t_clk {t} below predicted {predicted}");
        prop_assert!(t >= 1);
    }

    /// The controller's live margin honours the same bound: whatever the
    /// policy state, a recommendation covers the predicted delay.
    #[test]
    fn controller_recommendation_covers_prediction(
        predicted in 0.0f64..50_000.0,
        margin in 0.0f64..5_000.0,
        errors in prop::collection::vec(any::<bool>(), 0..64),
    ) {
        for policy in [
            GuardbandPolicy::fixed(margin),
            GuardbandPolicy::Feedback(FeedbackConfig::default()),
        ] {
            let mut c = ClockController::new(policy);
            for &e in &errors {
                c.observe(e);
            }
            let r = c.recommend_for_delay(predicted);
            prop_assert!(r.t_clk_ps as f64 >= predicted);
            prop_assert!(r.margin_ps >= 0.0);
        }
    }

    /// Under any error sequence — including adversarial all-error and
    /// all-clean runs — the feedback margin stays inside [min, max]
    /// after every single observation.
    #[test]
    fn feedback_margin_stays_clamped(
        target in 0.0f64..=1.0,
        kp in 0.0f64..500.0,
        ki in 0.0f64..100.0,
        min in 0.0f64..1_000.0,
        span in 0.0f64..1_000.0,
        initial in -2_000.0f64..4_000.0,
        errors in prop::collection::vec(any::<bool>(), 1..256),
    ) {
        let cfg = FeedbackConfig {
            target_error_rate: target,
            kp_ps: kp,
            ki_ps: ki,
            min_margin_ps: min,
            max_margin_ps: min + span,
            initial_margin_ps: initial,
        };
        let mut c = ClockController::new(GuardbandPolicy::Feedback(cfg));
        prop_assert!(c.margin_ps() >= cfg.min_margin_ps && c.margin_ps() <= cfg.max_margin_ps);
        for &e in &errors {
            c.observe(e);
            prop_assert!(
                c.margin_ps() >= cfg.min_margin_ps && c.margin_ps() <= cfg.max_margin_ps,
                "margin {} escaped [{}, {}]", c.margin_ps(), cfg.min_margin_ps, cfg.max_margin_ps
            );
        }
    }

    /// Replay accounting is internally consistent for any outcome.
    #[test]
    fn outcome_rates_are_consistent(
        cycles in 1usize..10_000,
        errors_frac in 0.0f64..=1.0,
        period in 1u64..100_000,
    ) {
        let errors = (cycles as f64 * errors_frac) as usize;
        let o = ReplayOutcome { cycles, errors, total_t_clk_ps: period * cycles as u64 };
        prop_assert!((0.0..=1.0).contains(&o.error_rate()));
        prop_assert!((o.mean_t_clk_ps() - period as f64).abs() < 1e-9);
        let expected = 1e6 / period as f64;
        prop_assert!((o.throughput_ops_per_us() - expected).abs() / expected < 1e-9);
    }
}
