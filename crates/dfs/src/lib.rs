//! `tevot-dfs`: closed-loop adaptive clocking — the TEVoT delay model as
//! an *actuator* instead of a classifier.
//!
//! The DFS papers in PAPERS.md ("A Unified Learning Platform for Dynamic
//! Frequency Scaling in Pipelined Processors", "A Machine Learning
//! Pipeline Stage for Adaptive Frequency Adjustment") close the loop the
//! same way: predict the propagation delay of the *next* input
//! transition, add a guardband, and clock the unit at the predicted-safe
//! period. [`ClockController`] wraps a trained
//! [`TevotModel`](tevot::TevotModel) in exactly that loop:
//!
//! ```text
//! t_clk = ceil(predict_delay_ps(V, T, x[t], x[t-1]) + margin)
//! ```
//!
//! with the margin supplied by a pluggable [`GuardbandPolicy`]:
//!
//! * [`GuardbandPolicy::Fixed`] — a constant margin in picoseconds.
//! * [`GuardbandPolicy::Quantile`] — a margin calibrated offline as a
//!   quantile of held-out prediction residuals (`actual − predicted`),
//!   see [`quantile_margin_ps`].
//! * [`GuardbandPolicy::Feedback`] — a PI-style policy that tightens or
//!   relaxes the margin online from the *observed* error rate fed back
//!   through [`ClockController::observe`].
//!
//! The arithmetic that turns a predicted delay plus a margin into a
//! clock period lives in one pure function, [`recommended_t_clk_ps`], so
//! the offline CLI (`tevot dfs`), the replay harness, and the served
//! `POST /dfs` endpoint are bit-identical by construction.
//!
//! [`replay`] is the oracle-in-the-loop evaluation harness: it walks an
//! operand trace through the controller against per-cycle ground-truth
//! delays from the gate-level simulator (a cycle is erroneous iff its
//! actual dynamic delay exceeds the recommended period) and accumulates
//! the throughput-vs-error-rate outcome that the `dfs_pareto` experiment
//! sweeps into Pareto tables.

use tevot::reference::ReferenceStats;
use tevot::TevotModel;
use tevot_obs::metrics::{DFS_DECISIONS, DFS_ERRORS_OBSERVED};
use tevot_timing::OperatingCondition;

/// One clock decision: the model's predicted delay, the margin the
/// policy applied, and the resulting recommended period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Recommendation {
    /// The model's predicted dynamic delay for the transition, ps.
    pub predicted_delay_ps: f64,
    /// The guardband the policy applied, ps (never negative).
    pub margin_ps: f64,
    /// The recommended clock period:
    /// [`recommended_t_clk_ps`]`(predicted_delay_ps, margin_ps)`.
    pub t_clk_ps: u64,
}

/// The single place where a predicted delay plus a guardband becomes a
/// clock period — shared verbatim by the offline CLI, the replay
/// harness, and the serve endpoint so their recommendations are
/// bit-identical.
///
/// Non-finite or negative margins clamp to zero; the result is rounded
/// *up* to an integral picosecond (a truncated period could sit below
/// the predicted delay), is never below `ceil(predicted_delay_ps)`, and
/// never below 1 ps.
pub fn recommended_t_clk_ps(predicted_delay_ps: f64, margin_ps: f64) -> u64 {
    let margin = if margin_ps.is_finite() { margin_ps.max(0.0) } else { 0.0 };
    let predicted = if predicted_delay_ps.is_finite() { predicted_delay_ps.max(0.0) } else { 0.0 };
    (predicted + margin).ceil().max(predicted.ceil()).max(1.0) as u64
}

/// Configuration of the PI-style feedback guardband policy.
///
/// Every observed cycle produces an error signal
/// `e = observed_error − target_error_rate` (so a clean cycle pulls the
/// margin down by roughly `kp_ps · target_error_rate` and an erroneous
/// cycle pushes it up by roughly `kp_ps`); the margin is
/// `initial_margin_ps + kp_ps · e + ki_ps · Σe`, clamped to
/// `[min_margin_ps, max_margin_ps]`. The integral term is anti-windup
/// clamped so it can never demand a margin outside the clamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeedbackConfig {
    /// The error rate the loop steers toward (e.g. `0.01` for 1%).
    pub target_error_rate: f64,
    /// Proportional gain, ps per unit error signal.
    pub kp_ps: f64,
    /// Integral gain, ps per unit accumulated error signal.
    pub ki_ps: f64,
    /// Hard lower clamp on the margin, ps.
    pub min_margin_ps: f64,
    /// Hard upper clamp on the margin, ps.
    pub max_margin_ps: f64,
    /// The margin before any feedback arrives, ps.
    pub initial_margin_ps: f64,
}

impl Default for FeedbackConfig {
    fn default() -> FeedbackConfig {
        FeedbackConfig {
            target_error_rate: 0.01,
            kp_ps: 40.0,
            ki_ps: 4.0,
            min_margin_ps: 0.0,
            max_margin_ps: 400.0,
            initial_margin_ps: 120.0,
        }
    }
}

impl FeedbackConfig {
    fn validate(&self) {
        assert!(
            self.target_error_rate.is_finite() && (0.0..=1.0).contains(&self.target_error_rate),
            "target_error_rate must be a rate in [0, 1]"
        );
        assert!(
            self.kp_ps.is_finite() && self.kp_ps >= 0.0,
            "kp_ps must be finite and non-negative"
        );
        assert!(
            self.ki_ps.is_finite() && self.ki_ps >= 0.0,
            "ki_ps must be finite and non-negative"
        );
        assert!(
            self.min_margin_ps.is_finite()
                && self.max_margin_ps.is_finite()
                && 0.0 <= self.min_margin_ps
                && self.min_margin_ps <= self.max_margin_ps,
            "need 0 <= min_margin_ps <= max_margin_ps"
        );
        assert!(self.initial_margin_ps.is_finite(), "initial_margin_ps must be finite");
    }
}

/// How a [`ClockController`] picks the guardband added to each predicted
/// delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GuardbandPolicy {
    /// A constant margin, ps.
    Fixed {
        /// The margin, ps (negative values clamp to zero at use).
        margin_ps: f64,
    },
    /// A constant margin calibrated offline from held-out residuals
    /// (see [`quantile_margin_ps`]); the quantile is carried along for
    /// reporting.
    Quantile {
        /// The residual quantile the margin was calibrated at.
        quantile: f64,
        /// The calibrated margin, ps.
        margin_ps: f64,
    },
    /// A PI-style margin driven by observed errors.
    Feedback(FeedbackConfig),
}

impl GuardbandPolicy {
    /// A fixed-margin policy.
    pub fn fixed(margin_ps: f64) -> GuardbandPolicy {
        GuardbandPolicy::Fixed { margin_ps }
    }

    /// A quantile policy calibrated from held-out residuals: the margin
    /// is [`quantile_margin_ps`]`(residuals_ps, quantile)`.
    ///
    /// # Panics
    ///
    /// Panics when `residuals_ps` is empty or `quantile` is outside
    /// `[0, 1]`.
    pub fn quantile_of(quantile: f64, residuals_ps: &[f64]) -> GuardbandPolicy {
        GuardbandPolicy::Quantile {
            quantile,
            margin_ps: quantile_margin_ps(residuals_ps, quantile),
        }
    }

    /// A short human-readable label for tables and logs.
    pub fn label(&self) -> String {
        match self {
            GuardbandPolicy::Fixed { margin_ps } => format!("fixed+{margin_ps:.0}ps"),
            GuardbandPolicy::Quantile { quantile, margin_ps } => {
                format!("q{:.2}+{margin_ps:.0}ps", quantile)
            }
            GuardbandPolicy::Feedback(cfg) => {
                format!("pi(target={:.3})", cfg.target_error_rate)
            }
        }
    }

    fn initial_margin_ps(&self) -> f64 {
        match self {
            GuardbandPolicy::Fixed { margin_ps } | GuardbandPolicy::Quantile { margin_ps, .. } => {
                margin_ps.max(0.0)
            }
            GuardbandPolicy::Feedback(cfg) => {
                cfg.initial_margin_ps.clamp(cfg.min_margin_ps, cfg.max_margin_ps)
            }
        }
    }
}

/// The interpolated `quantile` (R-7 convention, matching
/// [`tevot_obs::metrics::quantile_sorted`]) of the residuals, clamped to
/// be non-negative — a negative guardband would undercut the predicted
/// delay.
///
/// Residuals are `actual − predicted` over a held-out calibration
/// trace; see [`calibration_residuals_ps`].
///
/// # Panics
///
/// Panics when `residuals_ps` has no finite entry or `quantile` is
/// outside `[0, 1]`.
pub fn quantile_margin_ps(residuals_ps: &[f64], quantile: f64) -> f64 {
    assert!((0.0..=1.0).contains(&quantile), "quantile must be in [0, 1]");
    let mut sorted: Vec<f64> = residuals_ps.iter().copied().filter(|r| r.is_finite()).collect();
    assert!(!sorted.is_empty(), "need at least one finite residual");
    sorted.sort_by(f64::total_cmp);
    tevot_obs::metrics::quantile_sorted(&sorted, quantile)
        .expect("non-empty sorted residuals")
        .max(0.0)
}

/// Per-cycle prediction residuals `actual − predicted` over a
/// calibration trace, skipping the cold-start cycle 0 (its "previous"
/// operands are undefined).
///
/// `operands[t]` transitions from `operands[t-1]`; `actual_delays_ps[t]`
/// is the simulator's dynamic delay for that cycle.
///
/// # Panics
///
/// Panics when the slices disagree in length.
pub fn calibration_residuals_ps(
    model: &TevotModel,
    cond: OperatingCondition,
    operands: &[(u32, u32)],
    actual_delays_ps: &[u64],
) -> Vec<f64> {
    assert_eq!(operands.len(), actual_delays_ps.len(), "operands and delays must align");
    (1..operands.len())
        .map(|t| {
            actual_delays_ps[t] as f64 - model.predict_delay_ps(cond, operands[t], operands[t - 1])
        })
        .collect()
}

/// True when `cond` falls inside the (V, T) envelope the model was
/// trained on, judged against the non-empty bins of its
/// [`ReferenceStats`] histograms.
///
/// The training sweep's voltage and temperature land in fixed global
/// bins (50 mV / 10 °C); a condition in or between occupied bins is
/// in-envelope, anything outside the occupied range is extrapolation.
/// Serving uses this to refuse clock recommendations off the
/// characterized grid — a guardband calibrated in-envelope says nothing
/// about the model's error out there.
pub fn condition_in_envelope(stats: &ReferenceStats, cond: OperatingCondition) -> bool {
    let within = |hist: &tevot_obs::drift::ReferenceHist, x: f64| -> bool {
        let occupied: Vec<usize> = (0..hist.counts.len()).filter(|&i| hist.counts[i] > 0).collect();
        let (Some(&first), Some(&last)) = (occupied.first(), occupied.last()) else {
            return true; // no reference data: nothing to judge against
        };
        let width = (hist.spec.hi - hist.spec.lo) / hist.spec.bins as f64;
        let lo = hist.spec.lo + first as f64 * width;
        let hi = hist.spec.lo + (last + 1) as f64 * width;
        (lo..hi).contains(&x)
    };
    within(&stats.voltage, cond.voltage()) && within(&stats.temperature, cond.temperature())
}

/// A clock controller: a guardband policy plus its live feedback state.
///
/// Stateless policies (fixed, quantile) make `recommend*` a pure
/// function of the predicted delay; the feedback policy additionally
/// evolves its margin through [`observe`](Self::observe).
#[derive(Debug, Clone)]
pub struct ClockController {
    policy: GuardbandPolicy,
    margin_ps: f64,
    integral: f64,
    decisions: u64,
    errors_observed: u64,
}

impl ClockController {
    /// A controller running `policy`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid [`FeedbackConfig`] (non-finite gains or
    /// `min_margin_ps > max_margin_ps`).
    pub fn new(policy: GuardbandPolicy) -> ClockController {
        if let GuardbandPolicy::Feedback(cfg) = &policy {
            cfg.validate();
        }
        let margin_ps = policy.initial_margin_ps();
        ClockController { policy, margin_ps, integral: 0.0, decisions: 0, errors_observed: 0 }
    }

    /// The policy this controller runs.
    pub fn policy(&self) -> &GuardbandPolicy {
        &self.policy
    }

    /// The margin the next recommendation will apply, ps.
    pub fn margin_ps(&self) -> f64 {
        self.margin_ps
    }

    /// Recommendations issued so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Errors fed back through [`observe`](Self::observe) so far.
    pub fn errors_observed(&self) -> u64 {
        self.errors_observed
    }

    /// A recommendation for an already-predicted delay.
    pub fn recommend_for_delay(&mut self, predicted_delay_ps: f64) -> Recommendation {
        self.decisions += 1;
        DFS_DECISIONS.incr();
        let margin_ps = self.margin_ps.max(0.0);
        Recommendation {
            predicted_delay_ps,
            margin_ps,
            t_clk_ps: recommended_t_clk_ps(predicted_delay_ps, margin_ps),
        }
    }

    /// Predicts the delay of `previous -> current` at `cond` and
    /// recommends a clock period for it.
    pub fn recommend(
        &mut self,
        model: &TevotModel,
        cond: OperatingCondition,
        current: (u32, u32),
        previous: (u32, u32),
    ) -> Recommendation {
        let predicted = model.predict_delay_ps(cond, current, previous);
        self.recommend_for_delay(predicted)
    }

    /// Feeds one observed cycle back into the controller; `erroneous`
    /// is whether the cycle missed timing at the recommended period.
    ///
    /// Only the feedback policy moves its margin; the fixed and
    /// quantile policies just count.
    pub fn observe(&mut self, erroneous: bool) {
        if erroneous {
            self.errors_observed += 1;
            DFS_ERRORS_OBSERVED.incr();
        }
        if let GuardbandPolicy::Feedback(cfg) = &self.policy {
            let e = (erroneous as u8) as f64 - cfg.target_error_rate;
            self.integral += e;
            if cfg.ki_ps > 0.0 {
                // Anti-windup: the integral may never demand a margin
                // outside the clamp, so a long error-free run can't
                // bank an arbitrarily large correction.
                let lo = (cfg.min_margin_ps - cfg.initial_margin_ps) / cfg.ki_ps;
                let hi = (cfg.max_margin_ps - cfg.initial_margin_ps) / cfg.ki_ps;
                self.integral = self.integral.clamp(lo, hi);
            }
            self.margin_ps = (cfg.initial_margin_ps + cfg.kp_ps * e + cfg.ki_ps * self.integral)
                .clamp(cfg.min_margin_ps, cfg.max_margin_ps);
        }
    }
}

/// The accumulated outcome of a closed-loop replay (or of fixed-clock
/// operation over the same trace, via [`fixed_clock_outcome`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayOutcome {
    /// Evaluated cycles (the cold-start cycle 0 is excluded).
    pub cycles: usize,
    /// Cycles whose actual dynamic delay exceeded the applied period.
    pub errors: usize,
    /// Sum of the applied clock periods, ps.
    pub total_t_clk_ps: u64,
}

impl ReplayOutcome {
    /// Observed timing-error rate (0 for an empty replay).
    pub fn error_rate(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.errors as f64 / self.cycles as f64
        }
    }

    /// Mean applied clock period, ps (0 for an empty replay).
    pub fn mean_t_clk_ps(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_t_clk_ps as f64 / self.cycles as f64
        }
    }

    /// Operations per microsecond at the applied clocks — the
    /// throughput axis of the Pareto tables.
    pub fn throughput_ops_per_us(&self) -> f64 {
        if self.total_t_clk_ps == 0 {
            0.0
        } else {
            self.cycles as f64 * 1e6 / self.total_t_clk_ps as f64
        }
    }
}

/// Replays an operand trace through `controller` with ground-truth
/// per-cycle delays as the error oracle.
///
/// For each cycle `t >= 1` the controller recommends a period for the
/// transition `operands[t-1] -> operands[t]`; the cycle is erroneous iff
/// `actual_delays_ps[t] > t_clk` (the simulator's clock-edge semantics),
/// and the verdict is fed straight back through
/// [`ClockController::observe`] — the closed loop. Cycle 0 is the
/// cold start and is skipped, matching
/// [`calibration_residuals_ps`].
///
/// # Panics
///
/// Panics when the slices disagree in length.
pub fn replay(
    controller: &mut ClockController,
    model: &TevotModel,
    cond: OperatingCondition,
    operands: &[(u32, u32)],
    actual_delays_ps: &[u64],
) -> ReplayOutcome {
    assert_eq!(operands.len(), actual_delays_ps.len(), "operands and delays must align");
    let _span = tevot_obs::span!("dfs.replay", "{} cycles", operands.len().saturating_sub(1));
    let mut outcome = ReplayOutcome { cycles: 0, errors: 0, total_t_clk_ps: 0 };
    for t in 1..operands.len() {
        let rec = controller.recommend(model, cond, operands[t], operands[t - 1]);
        let erroneous = actual_delays_ps[t] > rec.t_clk_ps;
        controller.observe(erroneous);
        outcome.cycles += 1;
        outcome.errors += erroneous as usize;
        outcome.total_t_clk_ps += rec.t_clk_ps;
    }
    outcome
}

/// The same trace clocked at a fixed `period_ps` — the baseline the
/// adaptive controller is measured against. Cycle 0 is skipped exactly
/// as in [`replay`].
pub fn fixed_clock_outcome(period_ps: u64, actual_delays_ps: &[u64]) -> ReplayOutcome {
    let cycles = actual_delays_ps.len().saturating_sub(1);
    let errors = actual_delays_ps.iter().skip(1).filter(|&&d| d > period_ps).count();
    ReplayOutcome { cycles, errors, total_t_clk_ps: period_ps * cycles as u64 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_clk_rounds_up_and_floors_at_one() {
        assert_eq!(recommended_t_clk_ps(900.2, 0.0), 901);
        assert_eq!(recommended_t_clk_ps(900.0, 0.5), 901);
        assert_eq!(recommended_t_clk_ps(0.0, 0.0), 1);
        // Negative and non-finite margins clamp to zero.
        assert_eq!(recommended_t_clk_ps(100.0, -50.0), 100);
        assert_eq!(recommended_t_clk_ps(100.0, f64::NAN), 100);
        assert_eq!(recommended_t_clk_ps(f64::NAN, 10.0), 10);
    }

    #[test]
    fn fixed_policy_applies_constant_margin() {
        let mut c = ClockController::new(GuardbandPolicy::fixed(50.0));
        let r = c.recommend_for_delay(900.0);
        assert_eq!(r.t_clk_ps, 950);
        assert_eq!(r.margin_ps, 50.0);
        // Feedback is a no-op for the fixed policy.
        c.observe(true);
        c.observe(true);
        assert_eq!(c.recommend_for_delay(900.0).t_clk_ps, 950);
        assert_eq!(c.errors_observed(), 2);
        assert_eq!(c.decisions(), 2);
    }

    #[test]
    fn quantile_margin_interpolates_and_clamps() {
        let residuals = [-20.0, 0.0, 10.0, 30.0];
        // R-7 interpolation over 4 points: q=0.5 sits between 0 and 10.
        assert_eq!(quantile_margin_ps(&residuals, 0.5), 5.0);
        assert_eq!(quantile_margin_ps(&residuals, 1.0), 30.0);
        // All-negative residuals clamp to a zero margin.
        assert_eq!(quantile_margin_ps(&[-5.0, -1.0], 1.0), 0.0);
        let policy = GuardbandPolicy::quantile_of(1.0, &residuals);
        assert_eq!(ClockController::new(policy).margin_ps(), 30.0);
    }

    #[test]
    fn feedback_margin_rises_on_errors_and_decays_when_clean() {
        let cfg = FeedbackConfig::default();
        let mut c = ClockController::new(GuardbandPolicy::Feedback(cfg));
        let initial = c.margin_ps();
        c.observe(true);
        assert!(c.margin_ps() > initial, "an error must widen the margin");
        let widened = c.margin_ps();
        for _ in 0..50 {
            c.observe(false);
        }
        assert!(c.margin_ps() < widened, "a clean run must tighten the margin");
        assert!(c.margin_ps() >= cfg.min_margin_ps && c.margin_ps() <= cfg.max_margin_ps);
    }

    #[test]
    fn feedback_margin_saturates_at_clamp() {
        let cfg = FeedbackConfig::default();
        let mut c = ClockController::new(GuardbandPolicy::Feedback(cfg));
        for _ in 0..10_000 {
            c.observe(true);
        }
        assert_eq!(c.margin_ps(), cfg.max_margin_ps);
        for _ in 0..10_000 {
            c.observe(false);
        }
        assert_eq!(c.margin_ps(), cfg.min_margin_ps);
        // And it recovers promptly after saturation (anti-windup).
        for _ in 0..5 {
            c.observe(true);
        }
        assert!(c.margin_ps() > cfg.min_margin_ps);
    }

    #[test]
    fn replay_counts_errors_against_the_oracle() {
        // A synthetic "model" is overkill here; drive the controller
        // arithmetic directly through fixed_clock_outcome and the
        // recommend_for_delay path.
        let actual = [500u64, 900, 700, 1100, 800];
        let fixed = fixed_clock_outcome(900, &actual);
        assert_eq!(fixed.cycles, 4);
        assert_eq!(fixed.errors, 1); // only the 1100 ps cycle misses
        assert_eq!(fixed.total_t_clk_ps, 3600);
        assert!((fixed.error_rate() - 0.25).abs() < 1e-12);
        assert!((fixed.mean_t_clk_ps() - 900.0).abs() < 1e-12);
        assert!((fixed.throughput_ops_per_us() - 4.0 * 1e6 / 3600.0).abs() < 1e-9);
    }

    #[test]
    fn envelope_accepts_training_grid_and_rejects_extrapolation() {
        let conds = [
            OperatingCondition::new(0.81, 0.0),
            OperatingCondition::new(0.9, 50.0),
            OperatingCondition::new(1.0, 100.0),
        ];
        let delays: Vec<f64> = (1..=20).map(f64::from).collect();
        let stats = ReferenceStats::collect(&conds, &delays);
        for c in conds {
            assert!(condition_in_envelope(&stats, c), "training corner {c:?} must be in");
        }
        // Between training corners is fine; outside the occupied bins
        // is extrapolation.
        assert!(condition_in_envelope(&stats, OperatingCondition::new(0.9, 25.0)));
        assert!(!condition_in_envelope(&stats, OperatingCondition::new(0.6, 25.0)));
        assert!(!condition_in_envelope(&stats, OperatingCondition::new(1.2, 25.0)));
        assert!(!condition_in_envelope(&stats, OperatingCondition::new(0.9, 130.0)));
    }

    #[test]
    fn policy_labels_are_stable() {
        assert_eq!(GuardbandPolicy::fixed(50.0).label(), "fixed+50ps");
        assert_eq!(
            GuardbandPolicy::Quantile { quantile: 0.99, margin_ps: 42.0 }.label(),
            "q0.99+42ps"
        );
        assert_eq!(
            GuardbandPolicy::Feedback(FeedbackConfig::default()).label(),
            "pi(target=0.010)"
        );
    }
}
