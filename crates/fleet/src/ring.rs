//! Consistent hashing for the replica router.
//!
//! Each node contributes a fixed number of virtual nodes, placed on a
//! 64-bit ring by FNV-1a hashing of `"{node}:{vnode}"`. A request key
//! hashes to a point on the ring and walks clockwise; the first distinct
//! nodes encountered are the failover order. Because node positions
//! depend only on the node index, the mapping is stable across router
//! restarts, and ejecting a node moves only the keys that hashed to it —
//! the property that keeps per-replica caches warm through failures.

use tevot_resil::codec::fnv1a64;

/// Virtual nodes per physical node: enough to spread keys within a few
/// percent of uniform at single-digit node counts.
const VNODES_PER_NODE: usize = 64;

/// FNV-1a alone clusters badly on the short, similar strings ring
/// points are named by; a splitmix64-style finalizer gives the avalanche
/// the ring needs for an even spread.
fn ring_hash(key: &[u8]) -> u64 {
    let mut h = fnv1a64(key);
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// A consistent-hash ring over `nodes` physical nodes.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(position, node)` sorted by position.
    points: Vec<(u64, usize)>,
    nodes: usize,
}

impl Ring {
    /// A ring over node indices `0..nodes`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero — an empty ring has no owner for any
    /// key.
    pub fn new(nodes: usize) -> Ring {
        assert!(nodes > 0, "a ring needs at least one node");
        let mut points = Vec::with_capacity(nodes * VNODES_PER_NODE);
        for node in 0..nodes {
            for vnode in 0..VNODES_PER_NODE {
                points.push((ring_hash(format!("{node}:{vnode}").as_bytes()), node));
            }
        }
        points.sort_unstable();
        Ring { points, nodes }
    }

    /// The number of physical nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Every node, ordered by ring distance from `key`: element 0 is the
    /// key's owner, the rest are its failover sequence.
    pub fn candidates(&self, key: &str) -> Vec<usize> {
        let hash = ring_hash(key.as_bytes());
        let start = self.points.partition_point(|&(pos, _)| pos < hash);
        let mut order = Vec::with_capacity(self.nodes);
        for i in 0..self.points.len() {
            let (_, node) = self.points[(start + i) % self.points.len()];
            if !order.contains(&node) {
                order.push(node);
                if order.len() == self.nodes {
                    break;
                }
            }
        }
        order
    }

    /// The owner of `key` (the first candidate).
    pub fn owner(&self, key: &str) -> usize {
        self.candidates(key)[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_cover_all_nodes_exactly_once() {
        let ring = Ring::new(4);
        for key in ["int-add|0.90|25", "int-mul|0.81|100", "x", ""] {
            let mut candidates = ring.candidates(key);
            assert_eq!(candidates.len(), 4);
            candidates.sort_unstable();
            assert_eq!(candidates, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn mapping_is_deterministic() {
        let a = Ring::new(3);
        let b = Ring::new(3);
        for i in 0..100 {
            let key = format!("key-{i}");
            assert_eq!(a.candidates(&key), b.candidates(&key));
        }
    }

    #[test]
    fn keys_spread_across_nodes() {
        let ring = Ring::new(4);
        let mut counts = [0usize; 4];
        for i in 0..1000 {
            counts[ring.owner(&format!("fu|{}|{}", i % 7, i))] += 1;
        }
        for (node, &count) in counts.iter().enumerate() {
            assert!(count > 100, "node {node} owns only {count}/1000 keys");
        }
    }

    #[test]
    fn removing_a_node_moves_only_its_keys() {
        // Consistent hashing's defining property: keys owned by a
        // surviving node keep their owner when another node leaves.
        let four = Ring::new(4);
        let three = Ring::new(3);
        for i in 0..500 {
            let key = format!("key-{i}");
            let owner = four.owner(&key);
            if owner < 3 {
                assert_eq!(three.owner(&key), owner, "{key} moved needlessly");
            }
        }
    }
}
