//! The coordinator's work-unit ledger: leases with heartbeat expiry.
//!
//! Every sweep condition is one unit. A unit is `Pending` until a worker
//! leases it, `Leased` while that worker holds it, and `Done` once a
//! checkpoint shard for it has been committed. A lease is kept alive by
//! the worker's heartbeats; when the deadline lapses — the worker
//! crashed, hung, or was killed — [`LeaseTable::expire`] returns the
//! unit to `Pending` and the next lease request hands it to a live
//! worker. Completion is idempotent: a worker that commits its shard
//! just before dying loses nothing, and a unit completed twice (the
//! original lessee raced its replacement) is still just `Done` — the
//! shards are byte-identical by construction.

use std::collections::HashMap;
use std::time::{Duration, Instant};

/// State of one work unit.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Unit {
    Pending,
    Leased { worker: String, deadline: Instant },
    Done,
}

/// The coordinator's answer to a lease request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Grant {
    /// Work on this unit index.
    Unit(usize),
    /// Nothing free right now, but outstanding leases may still expire —
    /// ask again after a short wait.
    Wait,
    /// Every unit is done; the worker should exit.
    Done,
}

/// Lease-tracked unit states for a fixed-size batch of work.
#[derive(Debug)]
pub struct LeaseTable {
    units: Vec<Unit>,
    lease: Duration,
    last_seen: HashMap<String, Instant>,
}

impl LeaseTable {
    /// A table of `total` pending units with the given lease duration
    /// (the heartbeat grace period before a silent worker's units are
    /// reassigned).
    pub fn new(total: usize, lease: Duration) -> LeaseTable {
        LeaseTable { units: vec![Unit::Pending; total], lease, last_seen: HashMap::new() }
    }

    /// The lease duration units are granted for.
    pub fn lease_duration(&self) -> Duration {
        self.lease
    }

    /// Marks `unit` done without a lease — used when a resume pre-scan
    /// finds a valid shard already on disk.
    pub fn mark_done(&mut self, unit: usize) {
        self.units[unit] = Unit::Done;
    }

    /// Leases the lowest pending unit to `worker` (also counts as a
    /// heartbeat).
    pub fn grant(&mut self, worker: &str) -> Grant {
        let now = Instant::now();
        self.last_seen.insert(worker.to_string(), now);
        if self.done() {
            return Grant::Done;
        }
        for (i, unit) in self.units.iter_mut().enumerate() {
            if *unit == Unit::Pending {
                *unit = Unit::Leased { worker: worker.to_string(), deadline: now + self.lease };
                tevot_obs::metrics::FLEET_LEASES_GRANTED.incr();
                return Grant::Unit(i);
            }
        }
        Grant::Wait
    }

    /// Marks `unit` done. Idempotent, and valid from any worker: by the
    /// time a completion arrives the shard is already committed, so a
    /// late completion from an expired lease is still real work.
    pub fn complete(&mut self, worker: &str, unit: usize) {
        self.last_seen.insert(worker.to_string(), Instant::now());
        if unit < self.units.len() && self.units[unit] != Unit::Done {
            self.units[unit] = Unit::Done;
            tevot_obs::metrics::FLEET_UNITS_COMPLETED.incr();
        }
    }

    /// Records a heartbeat from `worker` and extends its lease
    /// deadlines.
    pub fn heartbeat(&mut self, worker: &str) {
        let now = Instant::now();
        self.last_seen.insert(worker.to_string(), now);
        for unit in &mut self.units {
            if let Unit::Leased { worker: w, deadline } = unit {
                if w == worker {
                    *deadline = now + self.lease;
                }
            }
        }
    }

    /// Returns every unit whose lease deadline has lapsed to `Pending`
    /// and reports how many were reassigned.
    pub fn expire(&mut self) -> usize {
        let now = Instant::now();
        let mut expired = 0;
        for unit in &mut self.units {
            if let Unit::Leased { worker, deadline } = unit {
                if *deadline < now {
                    tevot_obs::warn!(
                        "fleet: lease on a unit held by {worker} expired; reassigning"
                    );
                    *unit = Unit::Pending;
                    expired += 1;
                }
            }
        }
        expired
    }

    /// Returns every unit leased by `worker` to `Pending` — called the
    /// moment the coordinator observes the worker's death, without
    /// waiting for the lease to lapse.
    pub fn release_worker(&mut self, worker: &str) -> usize {
        let mut released = 0;
        for unit in &mut self.units {
            if matches!(unit, Unit::Leased { worker: w, .. } if w == worker) {
                *unit = Unit::Pending;
                released += 1;
            }
        }
        released
    }

    /// Whether every unit is done.
    pub fn done(&self) -> bool {
        self.units.iter().all(|u| *u == Unit::Done)
    }

    /// `(pending, leased, done)` unit counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for unit in &self.units {
            match unit {
                Unit::Pending => counts.0 += 1,
                Unit::Leased { .. } => counts.1 += 1,
                Unit::Done => counts.2 += 1,
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_lowest_pending_and_completes() {
        let mut table = LeaseTable::new(3, Duration::from_secs(60));
        assert_eq!(table.grant("a"), Grant::Unit(0));
        assert_eq!(table.grant("b"), Grant::Unit(1));
        table.complete("a", 0);
        assert_eq!(table.grant("a"), Grant::Unit(2));
        assert_eq!(table.grant("b"), Grant::Wait, "everything is leased or done");
        table.complete("a", 2);
        table.complete("b", 1);
        assert!(table.done());
        assert_eq!(table.grant("a"), Grant::Done);
    }

    #[test]
    fn completion_is_idempotent_and_cross_worker() {
        let mut table = LeaseTable::new(1, Duration::from_secs(60));
        assert_eq!(table.grant("a"), Grant::Unit(0));
        table.complete("b", 0); // replacement finished it first
        table.complete("a", 0); // original's late completion is harmless
        assert!(table.done());
    }

    #[test]
    fn expired_leases_are_reassigned() {
        let mut table = LeaseTable::new(2, Duration::from_millis(1));
        assert_eq!(table.grant("doomed"), Grant::Unit(0));
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(table.expire(), 1);
        assert_eq!(table.grant("survivor"), Grant::Unit(0), "unit 0 is pending again");
    }

    #[test]
    fn heartbeat_extends_the_deadline() {
        let mut table = LeaseTable::new(1, Duration::from_millis(40));
        assert_eq!(table.grant("w"), Grant::Unit(0));
        for _ in 0..4 {
            std::thread::sleep(Duration::from_millis(15));
            table.heartbeat("w");
        }
        assert_eq!(table.expire(), 0, "a heartbeating worker keeps its lease");
    }

    #[test]
    fn release_worker_frees_all_its_leases() {
        let mut table = LeaseTable::new(3, Duration::from_secs(60));
        assert_eq!(table.grant("w"), Grant::Unit(0));
        assert_eq!(table.grant("w"), Grant::Unit(1));
        assert_eq!(table.release_worker("w"), 2);
        assert_eq!(table.counts(), (3, 0, 0));
    }

    #[test]
    fn resume_prescan_marks_done() {
        let mut table = LeaseTable::new(2, Duration::from_secs(60));
        table.mark_done(1);
        assert_eq!(table.counts(), (1, 0, 1));
        assert_eq!(table.grant("w"), Grant::Unit(0));
    }
}
