//! The sweep coordinator: shard a condition grid across worker
//! processes, survive their deaths, finish bit-identical.
//!
//! The coordinator owns three things: the [`LeaseTable`] journal of work
//! units, a loopback [`MiniServer`] speaking the fleet wire protocol,
//! and one monitor thread per worker slot. Workers are ordinary `tevot
//! fleet-worker` processes (or threads, for in-process tests) that pull
//! unit indices over HTTP, simulate the condition, and commit the result
//! as a `tevot-resil` checkpoint shard before acknowledging.
//!
//! # Why the result is bit-identical at any worker count
//!
//! Workers never hand results to the coordinator — they hand them to the
//! checkpoint directory, through the exact serialization the
//! single-process checkpointed sweep uses. The coordinator's last step
//! is [`Characterizer::characterize_sweep_ckpt`] on that directory,
//! which validates every shard (recomputing any that are missing,
//! truncated, or for the wrong condition) and assembles results in grid
//! order. Sharding therefore only decides *who computes* each shard;
//! *what* a shard contains is fixed by the fingerprint-bound
//! configuration. Even the degenerate fleet — every worker dead, zero
//! shards written — degrades to the ordinary single-process sweep.
//!
//! # Wire protocol (`tevot-fleet/1`)
//!
//! ```text
//! GET  /fleet/config     -> run configuration + fingerprint (hex)
//! POST /fleet/lease      {"worker":id}            -> {"unit":i} | {"wait_ms":k} | {"done":true}
//! POST /fleet/complete   {"worker":id,"unit":i}   -> {"ok":true}
//! POST /fleet/heartbeat  {"worker":id}            -> {"ok":true}
//! GET  /fleet/status     -> {"pending":p,"leased":l,"done":d,...}
//! ```

use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use tevot::dta::{Characterization, Characterizer};
use tevot::workload::random_workload;
use tevot_netlist::fu::FunctionalUnit;
use tevot_obs::json::Json;
use tevot_obs::metrics::{FLEET_HEARTBEATS, FLEET_REASSIGNED, FLEET_WORKERS_SPAWNED};
use tevot_resil::checkpoint::CheckpointDir;
use tevot_resil::{CancelToken, ResultExt, TevotError};
use tevot_serve::http::{Request, Response};
use tevot_timing::{ClockSpeedup, OperatingCondition};

use crate::lease::{Grant, LeaseTable};
use crate::service::{Handler, MiniServer};

/// How the coordinator runs its workers.
#[derive(Debug, Clone)]
pub enum WorkerMode {
    /// Fork real processes: `program args... --coordinator <addr>
    /// --worker-id <id>`. This is the production mode — a killed worker
    /// takes nothing down but itself.
    Process {
        /// The worker executable (normally the `tevot` binary itself).
        program: PathBuf,
        /// Arguments before the coordinator flags (normally
        /// `["fleet-worker"]`).
        args: Vec<String>,
    },
    /// Run workers as in-process threads — same protocol over loopback,
    /// no fork. For tests and benches; a panicking thread stands in for
    /// a dying process.
    Thread,
}

/// A sharded sweep's full configuration.
#[derive(Debug, Clone)]
pub struct FleetSweepSpec {
    /// Functional unit to characterize.
    pub fu: FunctionalUnit,
    /// Random-workload vector count (workers rebuild the workload from
    /// `(fu, vectors, seed)`, so it never crosses the wire).
    pub vectors: usize,
    /// Random-workload seed.
    pub seed: u64,
    /// Simulation engine.
    pub engine: tevot_sim::Engine,
    /// The (V, T) grid to shard.
    pub conditions: Vec<OperatingCondition>,
    /// Clock-speedup set for ground-truth extraction.
    pub speedups: Vec<ClockSpeedup>,
    /// Checkpoint directory: the work-unit journal and the only channel
    /// results travel through.
    pub ckpt_dir: PathBuf,
    /// Worker count.
    pub workers: usize,
    /// Heartbeat grace period before a silent worker's units are
    /// reassigned.
    pub lease: Duration,
    /// Total replacement workers the fleet may spawn before it stops
    /// respawning and lets the coordinator finish the remainder.
    pub max_respawns: usize,
    /// Process or thread workers.
    pub mode: WorkerMode,
}

impl FleetSweepSpec {
    /// A spec with production defaults: 10 s leases, a respawn budget of
    /// twice the worker count, thread mode (callers spawning processes
    /// override `mode`).
    pub fn new(
        fu: FunctionalUnit,
        vectors: usize,
        seed: u64,
        ckpt_dir: impl Into<PathBuf>,
    ) -> Self {
        FleetSweepSpec {
            fu,
            vectors,
            seed,
            engine: tevot_sim::Engine::default(),
            conditions: Vec::new(),
            speedups: ClockSpeedup::PAPER.to_vec(),
            ckpt_dir: ckpt_dir.into(),
            workers: 2,
            lease: Duration::from_secs(10),
            max_respawns: 4,
            mode: WorkerMode::Thread,
        }
    }
}

/// How one worker generation ended, as seen by its monitor.
enum Exit {
    /// Exited zero / returned `Ok` — the sweep is done for this worker.
    Clean,
    /// Killed by the coordinator's own shutdown.
    Stopped,
    /// Crashed, was killed externally, or returned an error.
    Died,
    /// Could not even be spawned; the slot gives up.
    Unspawnable,
}

/// Runs a sharded sweep and returns the characterizations in grid
/// order, bit-identical to [`Characterizer::characterize_sweep`] at any
/// worker count and through any number of worker deaths.
///
/// # Errors
///
/// [`tevot_resil::ErrorKind::Corrupt`] when `ckpt_dir` belongs to a
/// different run configuration, [`tevot_resil::ErrorKind::Cancelled`]
/// when `token` fires, [`tevot_resil::ErrorKind::Io`] on unrecoverable
/// shard or socket failures.
pub fn run_sweep(
    spec: &FleetSweepSpec,
    token: &CancelToken,
) -> Result<Vec<Characterization>, TevotError> {
    let _span = tevot_obs::span!(
        "fleet.sweep",
        "{} conds, {} workers",
        spec.conditions.len(),
        spec.workers
    );
    if spec.conditions.is_empty() {
        return Ok(Vec::new());
    }
    let workers = spec.workers.max(1);
    let characterizer = Characterizer::new(spec.fu).with_engine(spec.engine);
    let workload = random_workload(spec.fu, spec.vectors, spec.seed);
    let ckpt = CheckpointDir::open(&spec.ckpt_dir)?;
    let fingerprint = characterizer.sweep_fingerprint(&spec.conditions, &workload, &spec.speedups);
    // Refuse a foreign directory *before* any worker starts writing.
    ckpt.bind_manifest(fingerprint)
        .ctx(|| format!("bind checkpoint directory {}", ckpt.path().display()))?;

    // Resume pre-scan: anything already journaled is not work.
    let mut table = LeaseTable::new(spec.conditions.len(), spec.lease);
    for (i, condition) in spec.conditions.iter().enumerate() {
        let valid = ckpt
            .read_valid(&format!("cond-{i}"))
            .and_then(|payload| Characterization::from_bytes(&payload).ok())
            .is_some_and(|c| c.condition() == *condition);
        if valid {
            table.mark_done(i);
        }
    }
    let (pending, _, done) = table.counts();
    if done > 0 {
        tevot_obs::info!(
            "fleet: resuming, {done} of {} conditions already journaled",
            done + pending
        );
    }

    let table = Arc::new(Mutex::new(table));
    let all_done = table.lock().expect("lease table").done();
    if !all_done {
        let config_json = Arc::new(config_json(spec, fingerprint));
        let mut server =
            MiniServer::start("127.0.0.1:0", 1 << 16, protocol_handler(&table, &config_json))
                .map_err(|e| TevotError::from(e).context("bind fleet coordinator"))?;
        let addr = server.local_addr().to_string();
        tevot_obs::info!(
            "fleet: coordinating {} conditions across {workers} workers on {addr}",
            spec.conditions.len()
        );

        let stop = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(workers));
        let respawns = Arc::new(AtomicUsize::new(spec.max_respawns));
        let monitors: Vec<_> = (0..workers)
            .map(|slot| {
                let mode = spec.mode.clone();
                let addr = addr.clone();
                let table = Arc::clone(&table);
                let stop = Arc::clone(&stop);
                let active = Arc::clone(&active);
                let respawns = Arc::clone(&respawns);
                std::thread::spawn(move || {
                    monitor_slot(slot, &mode, &addr, &table, &stop, &respawns);
                    active.fetch_sub(1, Ordering::Relaxed);
                })
            })
            .collect();

        let outcome = loop {
            if let Err(e) = token.check("fleet sweep") {
                break Err(e);
            }
            {
                let mut t = table.lock().expect("lease table");
                let expired = t.expire();
                if expired > 0 {
                    FLEET_REASSIGNED.add(expired as u64);
                }
                if t.done() {
                    break Ok(());
                }
            }
            if active.load(Ordering::Relaxed) == 0 {
                tevot_obs::warn!(
                    "fleet: every worker exited with work remaining; \
                     the coordinator finishes the rest itself"
                );
                break Ok(());
            }
            std::thread::sleep(Duration::from_millis(100));
        };

        // Shutting the server down first makes thread-mode workers fail
        // their next protocol call and exit; the stop flag makes
        // process monitors kill their children.
        stop.store(true, Ordering::Relaxed);
        server.shutdown();
        for monitor in monitors {
            let _ = monitor.join();
        }
        outcome?;
    }

    // Final assembly: the single-process checkpointed sweep over the
    // shared journal. It validates every shard and computes whatever the
    // fleet did not finish, which is exactly what makes the fleet's
    // output bit-identical to a serial run.
    characterizer.characterize_sweep_ckpt(&spec.conditions, &workload, &spec.speedups, &ckpt, token)
}

/// The `/fleet/config` document, built once per run.
pub(crate) fn config_json(spec: &FleetSweepSpec, fingerprint: u64) -> String {
    Json::obj(vec![
        ("schema", Json::Str("tevot-fleet/1".into())),
        ("fu", Json::Str(spec.fu.slug().into())),
        ("vectors", Json::from(spec.vectors as u64)),
        // Decimal string: u64 seeds above 2^53 would lose bits as JSON
        // numbers.
        ("seed", Json::Str(spec.seed.to_string())),
        ("engine", Json::Str(spec.engine.name().into())),
        ("speedups", Json::Arr(spec.speedups.iter().map(|s| Json::Num(s.fraction())).collect())),
        (
            "conditions",
            Json::Arr(
                spec.conditions
                    .iter()
                    .map(|c| Json::Arr(vec![Json::Num(c.voltage()), Json::Num(c.temperature())]))
                    .collect(),
            ),
        ),
        ("ckpt_dir", Json::Str(spec.ckpt_dir.display().to_string())),
        ("fingerprint", Json::Str(format!("{fingerprint:#018x}"))),
        ("lease_ms", Json::from(spec.lease.as_millis() as u64)),
    ])
    .to_string()
}

/// The coordinator's request handler over the shared lease table.
fn protocol_handler(table: &Arc<Mutex<LeaseTable>>, config: &Arc<String>) -> Handler {
    let table = Arc::clone(table);
    let config = Arc::clone(config);
    Arc::new(move |req: &Request| {
        let body_field = |key: &str| -> Option<Json> {
            let text = std::str::from_utf8(&req.body).ok()?;
            tevot_obs::json::parse(text).ok()?.get(key).cloned()
        };
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/fleet/config") => Response::json(200, (*config).clone()),
            ("POST", "/fleet/lease") => {
                let Some(worker) = body_field("worker").and_then(|w| w.as_str().map(String::from))
                else {
                    return Response::json(400, "{\"error\":\"lease needs a worker id\"}");
                };
                match table.lock().expect("lease table").grant(&worker) {
                    Grant::Unit(i) => Response::json(200, format!("{{\"unit\":{i}}}")),
                    Grant::Wait => Response::json(200, "{\"wait_ms\":200}"),
                    Grant::Done => Response::json(200, "{\"done\":true}"),
                }
            }
            ("POST", "/fleet/complete") => {
                let worker = body_field("worker").and_then(|w| w.as_str().map(String::from));
                let unit = body_field("unit").and_then(|u| u.as_u64());
                match (worker, unit) {
                    (Some(worker), Some(unit)) => {
                        table.lock().expect("lease table").complete(&worker, unit as usize);
                        Response::json(200, "{\"ok\":true}")
                    }
                    _ => Response::json(400, "{\"error\":\"complete needs worker and unit\"}"),
                }
            }
            ("POST", "/fleet/heartbeat") => {
                let Some(worker) = body_field("worker").and_then(|w| w.as_str().map(String::from))
                else {
                    return Response::json(400, "{\"error\":\"heartbeat needs a worker id\"}");
                };
                FLEET_HEARTBEATS.incr();
                table.lock().expect("lease table").heartbeat(&worker);
                Response::json(200, "{\"ok\":true}")
            }
            ("GET", "/fleet/status") => {
                let (pending, leased, done) = table.lock().expect("lease table").counts();
                Response::json(
                    200,
                    format!(
                        "{{\"schema\":\"tevot-fleet/1\",\"pending\":{pending},\
                         \"leased\":{leased},\"done\":{done},\"total\":{}}}",
                        pending + leased + done
                    ),
                )
            }
            _ => Response::json(404, "{\"error\":\"unknown fleet endpoint\"}"),
        }
    })
}

/// One worker slot's supervision loop: spawn, wait, on death release the
/// leases and respawn (with the chaos environment scrubbed) while the
/// fleet-wide respawn budget lasts.
fn monitor_slot(
    slot: usize,
    mode: &WorkerMode,
    addr: &str,
    table: &Arc<Mutex<LeaseTable>>,
    stop: &Arc<AtomicBool>,
    respawns: &Arc<AtomicUsize>,
) {
    let mut generation = 0usize;
    loop {
        let id = format!("w{slot}g{generation}");
        let _span = tevot_obs::span!("fleet.worker", "{}", id);
        FLEET_WORKERS_SPAWNED.incr();
        let exit = match mode {
            WorkerMode::Process { program, args } => {
                run_process_worker(program, args, addr, &id, generation > 0, stop)
            }
            WorkerMode::Thread => run_thread_worker(addr, &id, stop),
        };
        match exit {
            Exit::Clean | Exit::Stopped | Exit::Unspawnable => return,
            Exit::Died => {
                let released = table.lock().expect("lease table").release_worker(&id);
                if released > 0 {
                    FLEET_REASSIGNED.add(released as u64);
                }
                tevot_obs::warn!(
                    "fleet: worker {id} died ({released} units reassigned immediately)"
                );
                if stop.load(Ordering::Relaxed) || table.lock().expect("lease table").done() {
                    return;
                }
                // Decrement the shared budget; stop respawning once the
                // fleet has burned through it.
                if respawns
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |left| left.checked_sub(1))
                    .is_err()
                {
                    tevot_obs::warn!("fleet: respawn budget exhausted; slot {slot} stays down");
                    return;
                }
                generation += 1;
            }
        }
    }
}

/// Spawns and supervises one worker process generation.
fn run_process_worker(
    program: &PathBuf,
    args: &[String],
    addr: &str,
    id: &str,
    scrub_chaos: bool,
    stop: &Arc<AtomicBool>,
) -> Exit {
    let mut cmd = Command::new(program);
    cmd.args(args).arg("--coordinator").arg(addr).arg("--worker-id").arg(id).stdout(Stdio::null());
    if scrub_chaos {
        // Replacement workers run clean: the chaos harness injects
        // faults into first-generation workers, and recovery must
        // converge instead of killing every replacement at the same
        // site.
        cmd.env("TEVOT_FAIL", "");
    }
    let mut child = match cmd.spawn() {
        Ok(child) => child,
        Err(e) => {
            tevot_obs::error!("fleet: cannot spawn worker {id} ({})", e);
            return Exit::Unspawnable;
        }
    };
    loop {
        if stop.load(Ordering::Relaxed) {
            let _ = child.kill();
            let _ = child.wait();
            return Exit::Stopped;
        }
        match child.try_wait() {
            Ok(Some(status)) => {
                return if status.success() { Exit::Clean } else { Exit::Died };
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(50)),
            Err(_) => {
                let _ = child.kill();
                return Exit::Died;
            }
        }
    }
}

/// Runs one worker generation as an in-process thread. A panic (e.g. an
/// injected `fleet.task=panic` failpoint) counts as death, like a
/// killed process.
fn run_thread_worker(addr: &str, id: &str, stop: &Arc<AtomicBool>) -> Exit {
    let addr = addr.to_string();
    let id_owned = id.to_string();
    let handle = std::thread::spawn(move || crate::worker::run(&addr, &id_owned));
    loop {
        if handle.is_finished() {
            return match handle.join() {
                Ok(Ok(())) => Exit::Clean,
                Ok(Err(e)) => {
                    tevot_obs::warn!("fleet: worker {id} failed: {e}");
                    Exit::Died
                }
                Err(_) => Exit::Died, // panicked
            };
        }
        if stop.load(Ordering::Relaxed) {
            // Threads cannot be killed; the server shutdown fails the
            // worker's next protocol call, so just wait it out.
            return match handle.join() {
                Ok(Ok(())) => Exit::Clean,
                _ => Exit::Stopped,
            };
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Vec<OperatingCondition> {
        (0..n)
            .map(|i| {
                let f = i as f64 / (n - 1).max(1) as f64;
                OperatingCondition::new(0.85 + 0.1 * f, 100.0 * f)
            })
            .collect()
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tevot_fleet_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn thread_fleet_matches_serial_sweep() {
        let dir = scratch("thread");
        let mut spec = FleetSweepSpec::new(FunctionalUnit::IntAdd, 40, 11, &dir);
        spec.conditions = grid(4);
        spec.workers = 3;
        let token = CancelToken::new();
        let fleet = run_sweep(&spec, &token).expect("fleet sweep");

        let serial = Characterizer::new(spec.fu).with_engine(spec.engine).characterize_sweep(
            &spec.conditions,
            &random_workload(spec.fu, spec.vectors, spec.seed),
            &spec.speedups,
        );
        assert_eq!(fleet, serial, "fleet output must be bit-identical to the serial sweep");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fleet_survives_every_worker_dying() {
        // After two clean evaluations, fleet.task panics every worker
        // thread (replacements included — the env-scoped failpoint is
        // process-global in thread mode). The respawn budget drains,
        // every slot goes dark, and the coordinator still finishes with
        // the correct result.
        let dir = scratch("chaos");
        let _chaos = tevot_resil::fail::scoped("fleet.task=panic#2");
        let mut spec = FleetSweepSpec::new(FunctionalUnit::IntAdd, 30, 5, &dir);
        spec.conditions = grid(5);
        spec.workers = 2;
        spec.max_respawns = 2;
        spec.lease = Duration::from_secs(30);
        let token = CancelToken::new();
        let fleet = run_sweep(&spec, &token).expect("fleet sweep under chaos");
        drop(_chaos);

        let serial = Characterizer::new(spec.fu).characterize_sweep(
            &spec.conditions,
            &random_workload(spec.fu, spec.vectors, spec.seed),
            &spec.speedups,
        );
        assert_eq!(fleet, serial, "chaos must not change the output");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_checkpoint_directory_is_refused() {
        let dir = scratch("foreign");
        let ckpt = CheckpointDir::open(&dir).unwrap();
        ckpt.bind_manifest(0xDEAD_BEEF).unwrap();
        let mut spec = FleetSweepSpec::new(FunctionalUnit::IntAdd, 30, 5, &dir);
        spec.conditions = grid(2);
        let e = run_sweep(&spec, &CancelToken::new()).unwrap_err();
        assert_eq!(e.kind(), tevot_resil::ErrorKind::Corrupt);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_with_truncated_shard_recomputes_it() {
        let dir = scratch("truncated");
        let mut spec = FleetSweepSpec::new(FunctionalUnit::IntAdd, 30, 9, &dir);
        spec.conditions = grid(3);
        let token = CancelToken::new();
        let first = run_sweep(&spec, &token).expect("first run");

        // Truncate one shard mid-write, as a crash would leave it.
        let ckpt = CheckpointDir::open(&dir).unwrap();
        let victim = ckpt.shard_path("cond-1");
        let bytes = std::fs::read(&victim).unwrap();
        std::fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();

        let second = run_sweep(&spec, &token).expect("resume over truncated shard");
        assert_eq!(first, second, "redone shard must be bit-identical");
        assert!(ckpt.read_valid("cond-1").is_some(), "shard must be re-journaled");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
