//! tevot-fleet — fault-tolerant multi-process fleets for TEVoT.
//!
//! Two production shapes, both built on the workspace's own substrate
//! (the `tevot-serve` HTTP subset, `tevot-resil` checkpoint shards,
//! `tevot-obs` counters) with zero external dependencies:
//!
//! * **Sharded sweeps** ([`sweep`], [`worker`], [`lease`]) — a
//!   coordinator process shards a (V, T) condition grid across N worker
//!   processes. Work units travel over a tiny loopback HTTP protocol
//!   (`/fleet/lease`, `/fleet/complete`, `/fleet/heartbeat`) and every
//!   completed unit is journaled as an atomic `tevot-resil` checkpoint
//!   shard. A worker that crashes, hangs, or is `kill -9`ed simply stops
//!   heartbeating: its leases expire and the units are reassigned. The
//!   final assembly step *is* the single-process checkpointed sweep, so
//!   the fleet's output is **bit-identical** to a serial run at any
//!   worker count — even if every worker dies, the coordinator finishes
//!   the remainder itself.
//! * **Replicated serving** ([`router`], [`ring`]) — `tevot serve
//!   --replicas N` puts N replica processes behind a consistent-hash
//!   router keyed on (model, condition bucket). Health checks eject a
//!   dead replica, respawn it, and re-admit it once `/healthz` answers
//!   again; a request whose replica dies mid-exchange fails over along
//!   the hash ring with bounded retry. Rolling deploys drain one replica
//!   at a time, so a hot model swap never takes the service down.
//!
//! Chaos is first-class: the `TEVOT_FAIL` failpoint `fleet.task=kill`
//! aborts a worker at a work-unit boundary, which is how CI proves the
//! recovery paths instead of hoping for them (see the `fleet-chaos`
//! job). Fleet activity is observable through the `fleet.*` counters and
//! per-worker `fleet.worker` spans.

pub mod lease;
pub mod ring;
pub mod router;
pub mod service;
pub mod sweep;
pub mod worker;

pub use lease::{Grant, LeaseTable};
pub use ring::Ring;
pub use router::{
    InProcessLauncher, ProcessReplicaLauncher, ReplicaHandle, ReplicaLauncher, Router, RouterConfig,
};
pub use service::MiniServer;
pub use sweep::{run_sweep, FleetSweepSpec, WorkerMode};
