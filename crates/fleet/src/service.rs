//! A small embeddable HTTP server over the `tevot-serve` protocol
//! subset.
//!
//! Both fleet control planes — the sweep coordinator's lease endpoints
//! and the serving router — are plain request/response services with a
//! handler function, no batching and no model registry, so they share
//! this accept loop instead of dragging in the full `tevot-serve`
//! server. Connections are keep-alive with the same idle-timeout /
//! cancel-poll discipline as tevot-serve, and request parsing inherits
//! every cap from [`tevot_serve::http`] (431/413 on abusive peers).

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use tevot_serve::http::{read_request, write_response, ReadError, Request, Response};

/// How often blocked reads and the accept loop wake to poll for
/// shutdown.
const POLL: Duration = Duration::from_millis(50);

/// The handler invoked for every parsed request.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// A minimal threaded HTTP server around a single handler function.
pub struct MiniServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl MiniServer {
    /// Binds `addr` (`host:0` picks a free port) and starts serving
    /// `handler` on a thread per connection.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(addr: &str, max_body: usize, handler: Handler) -> std::io::Result<MiniServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let stop = Arc::clone(&stop);
                            let handler = Arc::clone(&handler);
                            std::thread::spawn(move || {
                                connection_loop(stream, max_body, &handler, &stop);
                            });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL);
                        }
                        Err(_) => std::thread::sleep(POLL),
                    }
                }
            })
        };
        Ok(MiniServer { addr, stop, accept: Some(accept) })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and unblocks the accept thread. Connections
    /// currently parked in an idle read notice within one poll period.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }

    /// Blocks until [`Self::shutdown`] is called from another thread (or
    /// the accept thread dies).
    pub fn join(&mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MiniServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn connection_loop(stream: TcpStream, max_body: usize, handler: &Handler, stop: &AtomicBool) {
    stream.set_nodelay(true).ok();
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader, max_body) {
            Ok(req) => {
                let response = handler(&req);
                let close = req.wants_close() || stop.load(Ordering::Relaxed);
                if write_response(&mut writer, &response, close).is_err() || close {
                    return;
                }
            }
            Err(ReadError::Eof) => return,
            Err(ReadError::IdleTimeout) => {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
            }
            Err(ReadError::Malformed(m)) => {
                let body = format!("{{\"error\":{}}}", tevot_obs::json::Json::from(m.as_str()));
                let _ = write_response(&mut writer, &Response::json(400, body), true);
                return;
            }
            Err(ReadError::BodyTooLarge(n)) => {
                let body = format!("{{\"error\":\"request body of {n} bytes too large\"}}");
                let _ = write_response(&mut writer, &Response::json(413, body), true);
                return;
            }
            Err(e @ (ReadError::HeadTooLarge(_) | ReadError::TooManyHeaders(_))) => {
                let body = format!(
                    "{{\"error\":{}}}",
                    tevot_obs::json::Json::from(e.to_string().as_str())
                );
                let _ = write_response(&mut writer, &Response::json(431, body), true);
                return;
            }
            Err(ReadError::Io(_)) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_and_shuts_down() {
        let handler: Handler = Arc::new(|req: &Request| {
            Response::json(
                200,
                format!("{{\"path\":{}}}", tevot_obs::json::Json::from(req.path.as_str())),
            )
        });
        let mut server = MiniServer::start("127.0.0.1:0", 1 << 16, handler).unwrap();
        let addr = server.local_addr().to_string();
        let (status, body) = tevot_serve::http::get(&addr, "/ping").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("/ping"), "{body}");
        let (status, body) = tevot_serve::http::post(&addr, "/echo", "{\"x\":1}").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("/echo"), "{body}");
        server.shutdown();
        assert!(
            tevot_serve::http::get(&addr, "/ping").is_err(),
            "a stopped server should refuse new connections"
        );
    }
}
