//! The replicated-serving router: consistent-hash placement, health
//! ejection, bounded failover, rolling deploys.
//!
//! `tevot serve --replicas N` runs N ordinary `tevot serve` processes on
//! ephemeral loopback ports and puts this router in front of them.
//! Requests are placed by hashing `(model, voltage bucket, temperature
//! bucket)` onto a [`Ring`]: the same operating region lands on the same
//! replica, keeping its per-condition working set warm, and the ring
//! order doubles as the failover sequence. A replica that dies — or
//! merely stops answering `/healthz` — is ejected, respawned, and
//! re-admitted only after its health probe passes again; requests caught
//! in the blast radius retry with backoff along the ring instead of
//! surfacing a 5xx.
//!
//! Rolling deploys (`POST /models/<name>` against the router) drain one
//! replica at a time: stop routing to it, wait for its in-flight
//! requests, forward the swap, re-admit, move on. A failed swap stops
//! the roll with the fleet still serving on the old model everywhere
//! else.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tevot::TevotModel;
use tevot_obs::metrics::{
    FLEET_DEPLOYS, FLEET_EJECTED, FLEET_FAILOVERS, FLEET_READMITTED, FLEET_ROUTED,
};
use tevot_serve::http::{self, Request, Response};
use tevot_serve::{ServeConfig, Server, DEFAULT_MODEL};

use crate::ring::Ring;
use crate::service::{Handler, MiniServer};

/// One serving replica the router can route to, health-check, and kill.
pub trait ReplicaHandle: Send {
    /// The replica's `host:port`.
    fn addr(&self) -> String;
    /// The OS pid, when the replica is a real process.
    fn pid(&self) -> Option<u32>;
    /// Whether the replica is still running (process alive / server
    /// held). A `false` here is a stronger signal than a failed probe:
    /// the replica is gone, not slow.
    fn alive(&mut self) -> bool;
    /// Tears the replica down immediately.
    fn kill(&mut self);
}

/// Launches replicas; the router uses it both at startup and to respawn
/// the dead.
pub trait ReplicaLauncher: Send + Sync {
    /// Starts replica `index` and returns once it is ready to serve.
    ///
    /// # Errors
    ///
    /// Propagates spawn/bind failures; on respawn the router retries on
    /// the next health tick.
    fn launch(&self, index: usize) -> std::io::Result<Box<dyn ReplicaHandle>>;
}

/// Spawns real `tevot serve` child processes on ephemeral ports,
/// discovering each replica's port through its `--port-file`.
pub struct ProcessReplicaLauncher {
    /// The serve executable (normally the `tevot` binary).
    pub program: PathBuf,
    /// Arguments after `serve` and before the router-owned `--addr` /
    /// `--port-file` flags (model path, batching knobs...).
    pub base_args: Vec<String>,
    /// Directory for `replica-{i}.addr` port files.
    pub port_dir: PathBuf,
}

struct ProcessReplica {
    child: Child,
    addr: String,
}

impl ReplicaHandle for ProcessReplica {
    fn addr(&self) -> String {
        self.addr.clone()
    }
    fn pid(&self) -> Option<u32> {
        Some(self.child.id())
    }
    fn alive(&mut self) -> bool {
        matches!(self.child.try_wait(), Ok(None))
    }
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl ReplicaLauncher for ProcessReplicaLauncher {
    fn launch(&self, index: usize) -> std::io::Result<Box<dyn ReplicaHandle>> {
        std::fs::create_dir_all(&self.port_dir)?;
        let port_file = self.port_dir.join(format!("replica-{index}.addr"));
        let _ = std::fs::remove_file(&port_file);
        // `--parent-pid` arms the replica's orphan watchdog: if this
        // router dies ungracefully (SIGKILL — `Drop` never runs), the
        // reparented replica notices and exits instead of leaking.
        let mut child = Command::new(&self.program)
            .arg("serve")
            .args(&self.base_args)
            .arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--port-file")
            .arg(&port_file)
            .arg("--parent-pid")
            .arg(std::process::id().to_string())
            .stdout(Stdio::null())
            .spawn()?;
        // The replica writes its bound address (tmp + rename) after
        // binding; wait for the file, then for a green health probe, so
        // a freshly launched slot is immediately routable.
        let deadline = Instant::now() + Duration::from_secs(10);
        let addr = loop {
            if let Ok(addr) = std::fs::read_to_string(&port_file) {
                let addr = addr.trim().to_string();
                if !addr.is_empty() {
                    break addr;
                }
            }
            if let Ok(Some(status)) = child.try_wait() {
                return Err(std::io::Error::other(format!(
                    "replica {index} exited ({status}) before publishing its port"
                )));
            }
            if Instant::now() > deadline {
                let _ = child.kill();
                return Err(std::io::Error::other(format!(
                    "replica {index} did not publish its port within 10s"
                )));
            }
            std::thread::sleep(Duration::from_millis(25));
        };
        while !matches!(http::get(&addr, "/healthz"), Ok((200, _))) {
            if Instant::now() > deadline {
                let _ = child.kill();
                return Err(std::io::Error::other(format!(
                    "replica {index} on {addr} never answered /healthz"
                )));
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        Ok(Box::new(ProcessReplica { child, addr }))
    }
}

/// Runs replicas as in-process [`tevot_serve::Server`]s — no fork, same
/// router semantics. Used by `serve_load --replicas` and the bench
/// suite to self-host a replicated fleet.
pub struct InProcessLauncher {
    /// The model every replica serves as `default`.
    pub model: TevotModel,
}

struct InProcessReplica {
    server: Option<Server>,
    addr: String,
}

impl ReplicaHandle for InProcessReplica {
    fn addr(&self) -> String {
        self.addr.clone()
    }
    fn pid(&self) -> Option<u32> {
        None
    }
    fn alive(&mut self) -> bool {
        self.server.is_some()
    }
    fn kill(&mut self) {
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
    }
}

impl ReplicaLauncher for InProcessLauncher {
    fn launch(&self, _index: usize) -> std::io::Result<Box<dyn ReplicaHandle>> {
        let server = Server::start(ServeConfig::default())?;
        server.state().registry.insert(DEFAULT_MODEL, self.model.clone());
        let addr = server.local_addr().to_string();
        Ok(Box::new(InProcessReplica { server: Some(server), addr }))
    }
}

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Router bind address (`host:0` picks a free port).
    pub addr: String,
    /// Replica count.
    pub replicas: usize,
    /// Request-body cap forwarded requests must fit in.
    pub max_body: usize,
    /// Health-probe period.
    pub health_interval: Duration,
    /// Consecutive failed probes before a live-but-unresponsive replica
    /// is ejected (a dead process is ejected on the first tick).
    pub eject_after: u32,
    /// Full passes over the failover ring before a request gives up
    /// with 503.
    pub retry_attempts: u32,
    /// Base backoff between failover passes (scales linearly per pass).
    pub retry_backoff: Duration,
    /// Replica respawns the router will attempt over its lifetime
    /// before leaving a slot dark.
    pub max_restarts: usize,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            replicas: 2,
            max_body: 1 << 20,
            health_interval: Duration::from_millis(250),
            eject_after: 2,
            retry_attempts: 3,
            retry_backoff: Duration::from_millis(10),
            max_restarts: 8,
        }
    }
}

/// One replica slot's routing state.
struct Slot {
    handle: Box<dyn ReplicaHandle>,
    addr: String,
    healthy: bool,
    draining: bool,
    fails: u32,
    restarts: usize,
    inflight: Arc<AtomicUsize>,
}

struct Shared {
    slots: Mutex<Vec<Slot>>,
    ring: Ring,
    launcher: Arc<dyn ReplicaLauncher>,
    config: RouterConfig,
}

/// The consistent-hash front door for a fleet of serving replicas.
pub struct Router {
    shared: Arc<Shared>,
    server: MiniServer,
    stop: Arc<AtomicBool>,
    health: Option<JoinHandle<()>>,
}

impl Router {
    /// Launches `config.replicas` replicas through `launcher`, binds the
    /// router address, and starts the health loop.
    ///
    /// # Errors
    ///
    /// Fails (tearing down anything already launched) if a replica
    /// cannot start or the router address cannot be bound.
    pub fn start(
        config: RouterConfig,
        launcher: Arc<dyn ReplicaLauncher>,
    ) -> std::io::Result<Router> {
        assert!(config.replicas > 0, "a router needs at least one replica");
        let mut slots = Vec::with_capacity(config.replicas);
        for index in 0..config.replicas {
            match launcher.launch(index) {
                Ok(handle) => {
                    let addr = handle.addr();
                    slots.push(Slot {
                        handle,
                        addr,
                        healthy: true,
                        draining: false,
                        fails: 0,
                        restarts: 0,
                        inflight: Arc::new(AtomicUsize::new(0)),
                    });
                }
                Err(e) => {
                    for slot in &mut slots {
                        slot.handle.kill();
                    }
                    return Err(e);
                }
            }
        }
        let shared = Arc::new(Shared {
            slots: Mutex::new(slots),
            ring: Ring::new(config.replicas),
            launcher,
            config: config.clone(),
        });
        let server = {
            let shared = Arc::clone(&shared);
            let handler: Handler = Arc::new(move |req: &Request| route(&shared, req));
            MiniServer::start(&config.addr, config.max_body, handler)?
        };
        let stop = Arc::new(AtomicBool::new(false));
        let health = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || health_loop(&shared, &stop))
        };
        tevot_obs::info!(
            "fleet: router on {} fronting {} replicas",
            server.local_addr(),
            config.replicas
        );
        Ok(Router { shared, server, stop, health: Some(health) })
    }

    /// The router's bound address.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.server.local_addr()
    }

    /// Replica pids, by slot (None for in-process replicas).
    pub fn pids(&self) -> Vec<Option<u32>> {
        self.shared.slots.lock().expect("slots").iter().map(|s| s.handle.pid()).collect()
    }

    /// Kills replica `index` outright — the chaos hook for tests that
    /// cannot send signals (in-process replicas). The health loop
    /// notices, respawns, and re-admits it.
    pub fn kill_replica(&self, index: usize) {
        let mut slots = self.shared.slots.lock().expect("slots");
        if let Some(slot) = slots.get_mut(index) {
            slot.handle.kill();
            slot.healthy = false;
            FLEET_EJECTED.incr();
        }
    }

    /// Blocks until the router is shut down from another thread — the
    /// foreground of `tevot serve --replicas`.
    pub fn join(&mut self) {
        self.server.join();
    }

    /// Stops the health loop, kills every replica, and closes the
    /// router socket.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.health.take() {
            let _ = handle.join();
        }
        for slot in self.shared.slots.lock().expect("slots").iter_mut() {
            slot.handle.kill();
        }
        self.server.shutdown();
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The placement key: same model + operating region → same replica.
/// Buckets are coarse on purpose (50 mV, 25 °C) so a sweep over nearby
/// conditions reuses one replica's warm path.
fn placement_key(req: &Request) -> String {
    let parsed = std::str::from_utf8(&req.body).ok().and_then(|s| tevot_obs::json::parse(s).ok());
    match parsed {
        Some(doc) => {
            let model = doc
                .get("model")
                .and_then(|m| m.as_str().map(String::from))
                .unwrap_or_else(|| DEFAULT_MODEL.to_string());
            let vb = doc.get("voltage").and_then(|v| v.as_f64()).map(|v| (v / 0.05).round() as i64);
            let tb =
                doc.get("temperature").and_then(|t| t.as_f64()).map(|t| (t / 25.0).round() as i64);
            match (vb, tb) {
                (Some(vb), Some(tb)) => format!("{model}|v{vb}|t{tb}"),
                _ => format!("{model}|{}", req.path),
            }
        }
        None => req.path.clone(),
    }
}

/// The router's request handler.
fn route(shared: &Shared, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/router/healthz") => {
            let slots = shared.slots.lock().expect("slots");
            let healthy = slots.iter().filter(|s| s.healthy && !s.draining).count();
            let status = if healthy > 0 { 200 } else { 503 };
            Response::json(
                status,
                format!("{{\"healthy\":{healthy},\"replicas\":{}}}", slots.len()),
            )
        }
        ("GET", "/fleet/status") => {
            let slots = shared.slots.lock().expect("slots");
            let replicas: Vec<String> = slots
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    format!(
                        "{{\"index\":{i},\"addr\":\"{}\",\"pid\":{},\"healthy\":{},\
                         \"draining\":{},\"restarts\":{}}}",
                        s.addr,
                        s.handle.pid().map_or("null".to_string(), |p| p.to_string()),
                        s.healthy,
                        s.draining,
                        s.restarts
                    )
                })
                .collect();
            Response::json(
                200,
                format!("{{\"schema\":\"tevot-fleet/1\",\"replicas\":[{}]}}", replicas.join(",")),
            )
        }
        ("POST", path) if path.strip_prefix("/models/").is_some_and(|n| !n.is_empty()) => {
            rolling_deploy(shared, req)
        }
        _ => forward(shared, req),
    }
}

/// Forwards `req` along the ring with ejection-on-error and bounded
/// retry. Only transport failures fail over; an HTTP-level error (4xx,
/// shed 503) is the replica's answer and is relayed as-is.
fn forward(shared: &Shared, req: &Request) -> Response {
    let candidates = shared.ring.candidates(&placement_key(req));
    for round in 0..shared.config.retry_attempts {
        for &index in &candidates {
            let (addr, inflight) = {
                let slots = shared.slots.lock().expect("slots");
                let slot = &slots[index];
                if !slot.healthy || slot.draining {
                    continue;
                }
                (slot.addr.clone(), Arc::clone(&slot.inflight))
            };
            inflight.fetch_add(1, Ordering::Relaxed);
            let outcome = exchange(&addr, req);
            inflight.fetch_sub(1, Ordering::Relaxed);
            match outcome {
                Ok(response) => {
                    FLEET_ROUTED.incr();
                    return response;
                }
                Err(e) => {
                    // Transport failure: the replica is gone or wedged.
                    // Eject it now rather than waiting for the probe.
                    tevot_obs::warn!("fleet: replica {index} failed mid-exchange ({e}); ejecting");
                    FLEET_FAILOVERS.incr();
                    let mut slots = shared.slots.lock().expect("slots");
                    if slots[index].healthy {
                        slots[index].healthy = false;
                        FLEET_EJECTED.incr();
                    }
                }
            }
        }
        std::thread::sleep(shared.config.retry_backoff * (round + 1));
    }
    Response::json(503, "{\"error\":\"no healthy replica\",\"kind\":\"shed\"}")
        .with_header("Retry-After", "1")
}

/// One buffered request/response exchange with a replica.
fn exchange(addr: &str, req: &Request) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut head =
        format!("{} {} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n", req.method, req.path);
    head.push_str("Content-Type: application/json\r\n");
    head.push_str(&format!("Content-Length: {}\r\n\r\n", req.body.len()));
    stream.write_all(head.as_bytes())?;
    stream.write_all(&req.body)?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_reply(&raw)
}

/// Parses a buffered replica reply into a relayable [`Response`],
/// keeping the headers clients act on (`Retry-After`, `X-Request-Id`).
fn parse_reply(raw: &[u8]) -> std::io::Result<Response> {
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| std::io::Error::other("replica reply had no header terminator"))?;
    let head = String::from_utf8_lossy(&raw[..split]);
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other("replica reply had no status line"))?;
    let body = String::from_utf8_lossy(&raw[split + 4..]).into_owned();
    let mut response = Response::json(status, body);
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if matches!(name.trim().to_ascii_lowercase().as_str(), "retry-after" | "x-request-id") {
                response = response.with_header(name.trim(), value.trim().to_string());
            }
        }
    }
    Ok(response)
}

/// Drains replicas one at a time and forwards the model swap to each —
/// the fleet never has fewer than `replicas - 1` serving slots during a
/// deploy. Any failure stops the roll with a 502.
fn rolling_deploy(shared: &Shared, req: &Request) -> Response {
    let _span = tevot_obs::span!("fleet.deploy", "{}", req.path);
    let total = shared.slots.lock().expect("slots").len();
    for index in 0..total {
        let (addr, inflight) = {
            let mut slots = shared.slots.lock().expect("slots");
            let slot = &mut slots[index];
            if !slot.healthy {
                // A dead slot respawns with whatever model its launcher
                // provides; skipping keeps the roll moving.
                continue;
            }
            slot.draining = true;
            (slot.addr.clone(), Arc::clone(&slot.inflight))
        };
        // Drain: new requests already skip this slot; wait (bounded)
        // for in-flight ones to finish.
        let deadline = Instant::now() + Duration::from_secs(2);
        while inflight.load(Ordering::Relaxed) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let outcome = exchange(&addr, req);
        shared.slots.lock().expect("slots")[index].draining = false;
        match outcome {
            Ok(response) if response.status == 200 => {}
            Ok(response) => {
                let body = String::from_utf8_lossy(&response.body).into_owned();
                return Response::json(
                    502,
                    format!(
                        "{{\"error\":\"deploy stopped at replica {index}\",\
                         \"replica_status\":{},\"replica_body\":{}}}",
                        response.status,
                        tevot_obs::json::Json::Str(body)
                    ),
                );
            }
            Err(e) => {
                return Response::json(
                    502,
                    format!(
                        "{{\"error\":{}}}",
                        tevot_obs::json::Json::Str(format!(
                            "deploy stopped at replica {index}: {e}"
                        ))
                    ),
                );
            }
        }
    }
    FLEET_DEPLOYS.incr();
    Response::json(200, format!("{{\"ok\":true,\"replicas\":{total}}}"))
}

/// The health loop: respawn dead replicas, probe the rest, eject and
/// re-admit on probe evidence.
fn health_loop(shared: &Shared, stop: &AtomicBool) {
    while !stop.load(Ordering::Relaxed) {
        let total = shared.slots.lock().expect("slots").len();
        for index in 0..total {
            if stop.load(Ordering::Relaxed) {
                return;
            }
            // Phase 1 (under the lock, cheap): liveness + respawn
            // eligibility.
            let respawn = {
                let mut slots = shared.slots.lock().expect("slots");
                let slot = &mut slots[index];
                if slot.handle.alive() {
                    None
                } else {
                    if slot.healthy {
                        slot.healthy = false;
                        FLEET_EJECTED.incr();
                    }
                    (slot.restarts < shared.config.max_restarts).then_some(slot.restarts + 1)
                }
            };
            // Phase 2 (no lock): launching can take seconds; routing
            // must not stall behind it.
            if let Some(restarts) = respawn {
                tevot_obs::warn!("fleet: replica {index} is dead; respawning (restart {restarts})");
                match shared.launcher.launch(index) {
                    Ok(handle) => {
                        let addr = handle.addr();
                        let mut slots = shared.slots.lock().expect("slots");
                        let slot = &mut slots[index];
                        slot.handle = handle;
                        slot.addr = addr;
                        slot.restarts = restarts;
                        slot.fails = 0;
                        // Not healthy yet: the probe below re-admits.
                    }
                    Err(e) => {
                        tevot_obs::warn!("fleet: respawn of replica {index} failed ({e})");
                        shared.slots.lock().expect("slots")[index].restarts = restarts;
                        continue;
                    }
                }
            }
            // Phase 3 (no lock): probe, then apply the verdict.
            let addr = shared.slots.lock().expect("slots")[index].addr.clone();
            let probe_ok = matches!(http::get(&addr, "/healthz"), Ok((200, _)));
            let mut slots = shared.slots.lock().expect("slots");
            let slot = &mut slots[index];
            if probe_ok {
                slot.fails = 0;
                if !slot.healthy && slot.handle.alive() {
                    slot.healthy = true;
                    FLEET_READMITTED.incr();
                    tevot_obs::info!("fleet: replica {index} on {} re-admitted", slot.addr);
                }
            } else {
                slot.fails += 1;
                if slot.healthy && slot.fails >= shared.config.eject_after {
                    slot.healthy = false;
                    FLEET_EJECTED.incr();
                    tevot_obs::warn!(
                        "fleet: replica {index} failed {} probes; ejected",
                        slot.fails
                    );
                }
            }
        }
        std::thread::sleep(shared.config.health_interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scriptable fake replica: a MiniServer that answers /healthz and
    /// echoes everything else, plus handles that can "die".
    struct FakeReplica {
        server: Option<MiniServer>,
        addr: String,
    }

    impl ReplicaHandle for FakeReplica {
        fn addr(&self) -> String {
            self.addr.clone()
        }
        fn pid(&self) -> Option<u32> {
            None
        }
        fn alive(&mut self) -> bool {
            self.server.is_some()
        }
        fn kill(&mut self) {
            if let Some(mut server) = self.server.take() {
                server.shutdown();
            }
        }
    }

    struct FakeLauncher;

    impl ReplicaLauncher for FakeLauncher {
        fn launch(&self, index: usize) -> std::io::Result<Box<dyn ReplicaHandle>> {
            let handler: Handler = Arc::new(move |req: &Request| {
                if req.path == "/healthz" {
                    Response::json(200, "{\"ok\":true}")
                } else {
                    Response::json(
                        200,
                        format!("{{\"replica\":{index},\"path\":\"{}\"}}", req.path),
                    )
                }
            });
            let server = MiniServer::start("127.0.0.1:0", 1 << 16, handler)?;
            let addr = server.local_addr().to_string();
            Ok(Box::new(FakeReplica { server: Some(server), addr }))
        }
    }

    fn quick_config(replicas: usize) -> RouterConfig {
        RouterConfig {
            replicas,
            health_interval: Duration::from_millis(25),
            ..RouterConfig::default()
        }
    }

    #[test]
    fn routes_and_reports_status() {
        let mut router = Router::start(quick_config(2), Arc::new(FakeLauncher)).unwrap();
        let addr = router.local_addr().to_string();
        let (status, body) = http::get(&addr, "/router/healthz").unwrap();
        assert_eq!(status, 200, "{body}");
        let (status, body) =
            http::post(&addr, "/predict", "{\"voltage\":0.9,\"temperature\":25}").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("replica"), "{body}");
        let (status, body) = http::get(&addr, "/fleet/status").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"replicas\""), "{body}");
        router.shutdown();
    }

    #[test]
    fn same_condition_sticks_to_one_replica() {
        let mut router = Router::start(quick_config(3), Arc::new(FakeLauncher)).unwrap();
        let addr = router.local_addr().to_string();
        let body = "{\"voltage\":0.85,\"temperature\":50,\"a\":1,\"b\":2}";
        let (_, first) = http::post(&addr, "/predict", body).unwrap();
        for _ in 0..5 {
            let (_, again) = http::post(&addr, "/predict", body).unwrap();
            assert_eq!(first, again, "placement must be sticky per condition bucket");
        }
        router.shutdown();
    }

    #[test]
    fn killed_replica_fails_over_then_readmits() {
        let mut router = Router::start(quick_config(2), Arc::new(FakeLauncher)).unwrap();
        let addr = router.local_addr().to_string();
        router.kill_replica(0);
        // Every request still succeeds: the ring fails over to the
        // survivor.
        for i in 0..6 {
            let body = format!("{{\"voltage\":0.{},\"temperature\":{}}}", 80 + i, i * 20);
            let (status, reply) = http::post(&addr, "/predict", &body).unwrap();
            assert_eq!(status, 200, "request {i} should fail over: {reply}");
        }
        // The health loop respawns and re-admits the corpse.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let (_, body) = http::get(&addr, "/router/healthz").unwrap();
            if body.contains("\"healthy\":2") {
                break;
            }
            assert!(Instant::now() < deadline, "replica 0 was never re-admitted: {body}");
            std::thread::sleep(Duration::from_millis(25));
        }
        assert!(FLEET_READMITTED.get() > 0);
        router.shutdown();
    }

    #[test]
    fn rolling_deploy_touches_every_replica() {
        let mut router = Router::start(quick_config(2), Arc::new(FakeLauncher)).unwrap();
        let addr = router.local_addr().to_string();
        let (status, body) =
            http::post(&addr, "/models/default", "{\"path\":\"/tmp/whatever.tevot\"}").unwrap();
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"replicas\":2"), "{body}");
        router.shutdown();
    }
}
