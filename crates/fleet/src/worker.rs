//! The sweep worker: lease a condition, simulate it, commit the shard.
//!
//! A worker is stateless on purpose. Its entire configuration arrives
//! from `GET /fleet/config` — functional unit, workload recipe, grid,
//! speedups, checkpoint directory, and the run fingerprint — and its
//! only output is atomic checkpoint shards plus `POST /fleet/complete`
//! acknowledgements. That makes a dead worker's half-finished unit
//! trivially safe: either the shard rename happened (the unit is done,
//! a replacement's recompute writes the identical bytes) or it did not
//! (the lease expires and someone else computes it from scratch).
//!
//! Two defenses keep a confused worker from corrupting a run:
//!
//! * it recomputes the sweep fingerprint from the received config and
//!   refuses to proceed if it disagrees with the coordinator's;
//! * it binds the checkpoint manifest itself, so even a worker pointed
//!   at the wrong directory cannot mix shards from different runs.
//!
//! The `fleet.task` failpoint fires at each work-unit boundary; with
//! `TEVOT_FAIL=fleet.task=kill#N` the worker aborts mid-sweep, which is
//! how the chaos tests produce real worker corpses on demand.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use tevot::dta::Characterizer;
use tevot::workload::random_workload;
use tevot_netlist::fu::FunctionalUnit;
use tevot_obs::json::Json;
use tevot_resil::checkpoint::CheckpointDir;
use tevot_resil::{ErrorKind, TevotError};
use tevot_serve::http;
use tevot_timing::{ClockSpeedup, OperatingCondition};

/// Attempts to reach the coordinator before giving up (the coordinator
/// binds its socket before spawning workers, so this only rides out
/// scheduler lag).
const CONNECT_ATTEMPTS: usize = 20;

/// Delay between coordinator connection attempts.
const CONNECT_BACKOFF: Duration = Duration::from_millis(100);

/// Retries for individual protocol posts after the config is in hand.
const POST_ATTEMPTS: usize = 3;

/// The worker-side view of `/fleet/config`.
#[derive(Debug)]
struct WorkerConfig {
    fu: FunctionalUnit,
    vectors: usize,
    seed: u64,
    engine: tevot_sim::Engine,
    conditions: Vec<OperatingCondition>,
    speedups: Vec<ClockSpeedup>,
    ckpt_dir: PathBuf,
    fingerprint: u64,
    lease: Duration,
}

/// Stops and joins the heartbeat thread when the worker exits — on
/// success, error, *and* unwind, so an injected panic never leaves a
/// zombie heartbeat keeping dead leases alive.
struct HeartbeatGuard {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Drop for HeartbeatGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Runs one worker against the coordinator at `coordinator`
/// (`host:port`), identifying itself as `worker_id`, until the sweep is
/// done.
///
/// # Errors
///
/// [`ErrorKind::Io`] when the coordinator is unreachable,
/// [`ErrorKind::Corrupt`] on a fingerprint or manifest mismatch,
/// [`ErrorKind::Parse`] on a config document this version does not
/// understand.
pub fn run(coordinator: &str, worker_id: &str) -> Result<(), TevotError> {
    let _span = tevot_obs::span!("fleet.worker.run", "{worker_id} -> {coordinator}");
    let config = fetch_config(coordinator)?;
    let characterizer = Characterizer::new(config.fu).with_engine(config.engine);
    let workload = random_workload(config.fu, config.vectors, config.seed);

    // Defense one: the fingerprint we compute from the config we
    // received must match the one the coordinator advertised.
    let local = characterizer.sweep_fingerprint(&config.conditions, &workload, &config.speedups);
    if local != config.fingerprint {
        return Err(TevotError::corrupt(format!(
            "worker {worker_id}: config fingerprint {:#018x} != locally computed {local:#018x}",
            config.fingerprint
        )));
    }
    // Defense two: bind the manifest, like every other checkpoint user.
    let ckpt = CheckpointDir::open(&config.ckpt_dir)?;
    ckpt.bind_manifest(config.fingerprint)?;

    let _heartbeat = start_heartbeat(coordinator, worker_id, config.lease);

    loop {
        let grant = post_with_retry(
            coordinator,
            "/fleet/lease",
            &format!("{{\"worker\":{}}}", Json::from(worker_id)),
        )?;
        if grant.get("done").is_some() {
            tevot_obs::info!("fleet: worker {worker_id} done, exiting");
            return Ok(());
        }
        if let Some(wait) = grant.get("wait_ms").and_then(Json::as_u64) {
            std::thread::sleep(Duration::from_millis(wait));
            continue;
        }
        let Some(unit) = grant.get("unit").and_then(Json::as_u64).map(|u| u as usize) else {
            return Err(TevotError::parse(format!(
                "worker {worker_id}: unintelligible lease grant {grant}"
            )));
        };
        let Some(condition) = config.conditions.get(unit).copied() else {
            return Err(TevotError::corrupt(format!(
                "worker {worker_id}: leased unit {unit} beyond the {}-condition grid",
                config.conditions.len()
            )));
        };

        let _unit_span = tevot_obs::span!("fleet.unit", "cond {unit}");
        // The chaos harness's kill site: a work-unit boundary, where a
        // real crash is most likely and recovery is fully exercised.
        tevot_resil::fail::eval("fleet.task")
            .map_err(|e| TevotError::from(e).context("fleet.task failpoint"))?;

        // Exactly the single-process checkpointed sweep's compute path,
        // which is what keeps shards byte-identical across runners.
        let trace = characterizer.trace(condition, &workload);
        let base = trace.fastest_error_free_period_ps();
        let periods: Vec<u64> = config.speedups.iter().map(|s| s.apply_to_period(base)).collect();
        let characterization = trace.characterization(&periods);
        ckpt.write(&format!("cond-{unit}"), &characterization.to_bytes())?;

        post_with_retry(
            coordinator,
            "/fleet/complete",
            &format!("{{\"worker\":{},\"unit\":{unit}}}", Json::from(worker_id)),
        )?;
    }
}

/// Fetches and parses `/fleet/config`, retrying the initial connection.
fn fetch_config(coordinator: &str) -> Result<WorkerConfig, TevotError> {
    let mut last_err: Option<std::io::Error> = None;
    for _ in 0..CONNECT_ATTEMPTS {
        match http::get(coordinator, "/fleet/config") {
            Ok((200, body)) => return parse_config(&body),
            Ok((status, body)) => {
                return Err(TevotError::new(
                    ErrorKind::Io,
                    format!("coordinator answered /fleet/config with {status}: {body}"),
                ));
            }
            Err(e) => {
                last_err = Some(e);
                std::thread::sleep(CONNECT_BACKOFF);
            }
        }
    }
    Err(TevotError::from(last_err.expect("at least one attempt"))
        .context(format!("reach fleet coordinator at {coordinator}")))
}

/// Parses the `tevot-fleet/1` config document.
fn parse_config(body: &str) -> Result<WorkerConfig, TevotError> {
    let bad = |what: &str| TevotError::parse(format!("fleet config: {what}"));
    let doc = tevot_obs::json::parse(body)
        .map_err(|e| TevotError::parse(format!("fleet config: {e}")))?;
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != "tevot-fleet/1" {
        return Err(bad(&format!("unsupported schema {schema:?}")));
    }
    let fu = doc
        .get("fu")
        .and_then(Json::as_str)
        .and_then(FunctionalUnit::from_name)
        .ok_or_else(|| bad("unknown functional unit"))?;
    let vectors =
        doc.get("vectors").and_then(Json::as_u64).ok_or_else(|| bad("missing vectors"))? as usize;
    let seed = doc
        .get("seed")
        .and_then(Json::as_str)
        .and_then(|s| s.parse::<u64>().ok())
        .ok_or_else(|| bad("missing seed"))?;
    let engine = doc
        .get("engine")
        .and_then(Json::as_str)
        .and_then(tevot_sim::Engine::from_name)
        .ok_or_else(|| bad("unknown engine"))?;
    let speedups = doc
        .get("speedups")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("missing speedups"))?
        .iter()
        .map(|s| s.as_f64().map(ClockSpeedup::new).ok_or_else(|| bad("bad speedup")))
        .collect::<Result<Vec<_>, _>>()?;
    let conditions = doc
        .get("conditions")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("missing conditions"))?
        .iter()
        .map(|c| match c.as_arr() {
            Some([v, t]) => match (v.as_f64(), t.as_f64()) {
                (Some(v), Some(t)) => Ok(OperatingCondition::new(v, t)),
                _ => Err(bad("non-numeric condition")),
            },
            _ => Err(bad("condition is not a [V, T] pair")),
        })
        .collect::<Result<Vec<_>, _>>()?;
    let ckpt_dir = doc
        .get("ckpt_dir")
        .and_then(Json::as_str)
        .map(PathBuf::from)
        .ok_or_else(|| bad("missing ckpt_dir"))?;
    let fingerprint = doc
        .get("fingerprint")
        .and_then(Json::as_str)
        .and_then(|s| u64::from_str_radix(s.trim_start_matches("0x"), 16).ok())
        .ok_or_else(|| bad("missing fingerprint"))?;
    let lease_ms = doc.get("lease_ms").and_then(Json::as_u64).unwrap_or(10_000);
    Ok(WorkerConfig {
        fu,
        vectors,
        seed,
        engine,
        conditions,
        speedups,
        ckpt_dir,
        fingerprint,
        lease: Duration::from_millis(lease_ms),
    })
}

/// Starts the background heartbeat at a quarter of the lease period.
/// Three consecutive failed posts mean the coordinator is gone and the
/// thread exits on its own; the guard stops it on any worker exit path.
fn start_heartbeat(coordinator: &str, worker_id: &str, lease: Duration) -> HeartbeatGuard {
    let stop = Arc::new(AtomicBool::new(false));
    let interval = (lease / 4).max(Duration::from_millis(25));
    let coordinator = coordinator.to_string();
    let body = format!("{{\"worker\":{}}}", Json::from(worker_id));
    let handle = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut misses = 0usize;
            while !stop.load(Ordering::Relaxed) && misses < 3 {
                // Sleep in short slices so the guard's join never waits
                // out a full interval.
                let mut left = interval;
                while !stop.load(Ordering::Relaxed) && !left.is_zero() {
                    let nap = left.min(Duration::from_millis(25));
                    std::thread::sleep(nap);
                    left = left.saturating_sub(nap);
                }
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                match http::post(&coordinator, "/fleet/heartbeat", &body) {
                    Ok((200, _)) => misses = 0,
                    _ => misses += 1,
                }
            }
        })
    };
    HeartbeatGuard { stop, handle: Some(handle) }
}

/// Posts `body` to the coordinator with a short retry, parsing the JSON
/// reply.
fn post_with_retry(coordinator: &str, path: &str, body: &str) -> Result<Json, TevotError> {
    let mut last: Option<TevotError> = None;
    for attempt in 0..POST_ATTEMPTS {
        match http::post(coordinator, path, body) {
            Ok((200, reply)) => {
                return tevot_obs::json::parse(&reply)
                    .map_err(|e| TevotError::parse(format!("fleet reply to {path}: {e}")));
            }
            Ok((status, reply)) => {
                return Err(TevotError::new(
                    ErrorKind::Io,
                    format!("coordinator answered {path} with {status}: {reply}"),
                ));
            }
            Err(e) => {
                last = Some(TevotError::from(e).context(format!("POST {path}")));
                std::thread::sleep(CONNECT_BACKOFF * (attempt as u32 + 1));
            }
        }
    }
    Err(last.expect("at least one attempt"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_round_trips_through_the_wire_format() {
        let spec = crate::FleetSweepSpec::new(FunctionalUnit::IntAdd, 64, u64::MAX - 7, "/tmp/x");
        let mut spec = spec;
        spec.conditions =
            vec![OperatingCondition::new(0.81, 25.0), OperatingCondition::new(1.0, 100.0)];
        let body = crate::sweep::config_json(&spec, 0xFEED_FACE_CAFE_BEEF);
        let parsed = parse_config(&body).expect("parse own config");
        assert_eq!(parsed.fu, spec.fu);
        assert_eq!(parsed.vectors, spec.vectors);
        assert_eq!(parsed.seed, spec.seed, "u64 seeds must survive the wire exactly");
        assert_eq!(parsed.engine, spec.engine);
        assert_eq!(parsed.conditions, spec.conditions);
        assert_eq!(parsed.speedups.len(), spec.speedups.len());
        assert_eq!(parsed.fingerprint, 0xFEED_FACE_CAFE_BEEF);
        assert_eq!(parsed.lease, spec.lease);
    }

    #[test]
    fn foreign_schema_is_refused() {
        let e = parse_config("{\"schema\":\"tevot-fleet/9\"}").unwrap_err();
        assert_eq!(e.kind(), ErrorKind::Parse);
    }
}
