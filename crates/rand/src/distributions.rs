//! Distributions: the [`Standard`] distribution and uniform ranges.

use crate::RngCore;

/// Types that can produce values of `T` given a source of randomness.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: uniform over all values for
/// integers and `bool`, uniform over `[0, 1)` for floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty : $via:ident),* $(,)?) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}

standard_int!(
    u8: next_u32,
    u16: next_u32,
    u32: next_u32,
    u64: next_u64,
    usize: next_u64,
    i8: next_u32,
    i16: next_u32,
    i32: next_u32,
    i64: next_u64,
    isize: next_u64,
);

impl Distribution<u128> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    /// Uniform over `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    /// Uniform over `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

pub mod uniform {
    //! Uniform sampling from range expressions, the engine behind
    //! [`Rng::gen_range`](crate::Rng::gen_range).

    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Range expressions `gen_range` accepts.
    pub trait SampleRange<T> {
        /// Samples one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        /// Whether the range contains no values.
        fn is_empty(&self) -> bool;
    }

    /// Samples uniformly from `[0, span)` by widening multiplication —
    /// bias is at most 2^-64 per draw, far below anything the workspace
    /// could observe.
    #[inline]
    fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        ((rng.next_u64() as u128 * span as u128) >> 64) as u64
    }

    macro_rules! int_range {
        ($($t:ty),* $(,)?) => {$(
            impl SampleRange<$t> for Range<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + sample_below(rng, span) as i128) as $t
                }
                #[inline]
                fn is_empty(&self) -> bool {
                    self.start >= self.end
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = self.into_inner();
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        // Only reachable for full-width 64-bit ranges.
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + sample_below(rng, span as u64) as i128) as $t
                }
                #[inline]
                fn is_empty(&self) -> bool {
                    self.start() > self.end()
                }
            }
        )*};
    }

    int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range {
        ($($t:ty),* $(,)?) => {$(
            impl SampleRange<$t> for Range<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                    self.start + (self.end - self.start) * unit
                }
                #[inline]
                fn is_empty(&self) -> bool {
                    self.start >= self.end || self.start.is_nan() || self.end.is_nan()
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = self.into_inner();
                    let unit = (rng.next_u64() >> 11) as $t * (1.0 / ((1u64 << 53) - 1) as $t);
                    lo + (hi - lo) * unit
                }
                #[inline]
                fn is_empty(&self) -> bool {
                    self.start() > self.end() || self.start().is_nan() || self.end().is_nan()
                }
            }
        )*};
    }

    float_range!(f32, f64);
}

#[cfg(test)]
mod tests {
    use super::uniform::SampleRange;
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn inclusive_range_reaches_both_ends() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..500 {
            match (0u32..=3).sample_single(&mut rng) {
                0 => lo_seen = true,
                3 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn negative_int_ranges() {
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..500 {
            let v = (-5i32..5).sample_single(&mut rng);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn standard_bool_is_balanced() {
        let mut rng = SmallRng::seed_from_u64(7);
        let trues = (0..1000).filter(|_| Distribution::<bool>::sample(&Standard, &mut rng)).count();
        assert!((350..650).contains(&trues), "bool bias: {trues}/1000");
    }
}
