//! Sequence helpers: random element choice and in-place shuffles.

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Returns a uniformly random element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Shuffles only enough to place a uniformly random `amount`-element
    /// subset, fully shuffled, at the **front** of the slice; returns
    /// `(shuffled_front, rest)`.
    ///
    /// Callers in this workspace read the selected subset from the front,
    /// so unlike upstream `rand` (which accumulates it at the tail) the
    /// front is the contract here.
    fn partial_shuffle<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        amount: usize,
    ) -> (&mut [Self::Item], &mut [Self::Item]);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }

    fn partial_shuffle<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        amount: usize,
    ) -> (&mut [T], &mut [T]) {
        let amount = amount.min(self.len());
        for i in 0..amount {
            let j = rng.gen_range(i..self.len());
            self.swap(i, j);
        }
        self.split_at_mut(amount)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle virtually never fixes everything");
    }

    #[test]
    fn partial_shuffle_selects_from_whole_slice() {
        let mut rng = SmallRng::seed_from_u64(12);
        let mut tail_hits = 0;
        for _ in 0..100 {
            let mut v: Vec<u32> = (0..10).collect();
            let (front, rest) = v.partial_shuffle(&mut rng, 3);
            assert_eq!(front.len(), 3);
            assert_eq!(rest.len(), 7);
            if front.iter().any(|&x| x >= 7) {
                tail_hits += 1;
            }
        }
        // Elements originally beyond index 6 must be reachable.
        assert!(tail_hits > 30, "tail never selected: {tail_hits}");
    }

    #[test]
    fn choose_covers_all_and_handles_empty() {
        let mut rng = SmallRng::seed_from_u64(13);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1u8, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(*items.choose(&mut rng).unwrap() - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
