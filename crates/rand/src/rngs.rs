//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic generator (xoshiro256++).
///
/// Like upstream's `SmallRng`, the exact algorithm and stream are not a
/// stability guarantee — only seeded determinism within one build is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = Self::rotl(self.s[3], 45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state is the one fixed point of xoshiro; nudge it.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 0x94D0_49BB_1331_11EB, 1];
        }
        SmallRng { s }
    }
}

/// The standard generator; aliased to [`SmallRng`] in this stand-in.
pub type StdRng = SmallRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_does_not_stick_at_zero() {
        let mut rng = SmallRng::from_seed([0; 32]);
        assert_ne!(rng.next_u64(), 0);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn output_looks_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut ones = 0u32;
        for _ in 0..1000 {
            ones += rng.next_u64().count_ones();
        }
        // 64 000 bits, expect ~32 000 ones.
        assert!((30_000..34_000).contains(&ones), "bit bias: {ones}");
    }
}
