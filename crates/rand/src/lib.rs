//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small API subset it actually uses: [`Rng`], [`SeedableRng`],
//! [`rngs::SmallRng`] (xoshiro256++), uniform ranges for `gen_range`, the
//! [`Standard`](distributions::Standard) distribution for `gen`, and the
//! slice helpers in [`seq`]. Streams are deterministic per seed but are
//! **not** bit-compatible with upstream `rand` — the workspace only relies
//! on seeded reproducibility, never on specific stream values.

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::uniform::SampleRange;
use distributions::{Distribution, Standard};

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        assert!(!range.is_empty(), "cannot sample from an empty range");
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        let unit: f64 = Standard.sample(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size byte seed.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the same
    /// construction upstream `rand` uses) and constructs the generator.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }

    /// Constructs the generator from environmental entropy (the system
    /// hasher's per-process random state).
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

fn entropy_seed() -> u64 {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    let mut hasher = RandomState::new().build_hasher();
    hasher.write_u64(0xDAC2_0200);
    hasher.finish()
}

/// Samples one value of type `T` from a freshly entropy-seeded generator.
pub fn random<T>() -> T
where
    Standard: Distribution<T>,
{
    rngs::SmallRng::from_entropy().gen()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::SmallRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..7);
            assert!((3..7).contains(&v));
            let f = rng.gen_range(-2.5..4.5);
            assert!((-2.5..4.5).contains(&f));
            let i = rng.gen_range(107..=147u32);
            assert!((107..=147).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_stay_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
