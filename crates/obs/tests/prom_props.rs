//! Property tests for the Prometheus text exposition: any registry name
//! mangles to a valid metric name, any counter or histogram state
//! renders to text the strict parser accepts and round-trips exactly,
//! and label escaping is lossless for arbitrary strings.

use proptest::prelude::*;
use tevot_obs::prom::{escape_label_value, metric_name, parse, render_counter, render_histogram};

/// Printable-ASCII strings (space..tilde) of 1..=max bytes — covers
/// every character class the mangler must normalize.
fn printable(max: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u8>(), 1..max)
        .prop_map(|bytes| bytes.iter().map(|b| (b % 95 + 32) as char).collect())
}

/// Strings over a hostile palette for label values: quotes, backslashes
/// and newlines mixed with ordinary text.
fn label_text() -> impl Strategy<Value = String> {
    let palette = ['a', 'Z', '9', ' ', '{', '}', ',', '=', '\\', '"', '\n'];
    prop::collection::vec(0usize..palette.len(), 0..40)
        .prop_map(move |picks| picks.into_iter().map(|i| palette[i]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Mangled names always match the exposition grammar
    /// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
    #[test]
    fn metric_names_are_always_valid(name in printable(40)) {
        let prom = metric_name(&name);
        let mut chars = prom.chars();
        let first = chars.next().expect("mangled name is never empty");
        prop_assert!(first.is_ascii_alphabetic() || first == '_' || first == ':');
        prop_assert!(
            chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid character in {:?}", prom
        );
    }

    /// Escaping any string (quotes, backslashes, newlines and all)
    /// produces a label value the parser recovers verbatim.
    #[test]
    fn label_escaping_round_trips(raw in label_text()) {
        let line = format!("m{{l=\"{}\"}} 1", escape_label_value(&raw));
        let samples = parse(&line).expect("escaped label must parse");
        prop_assert_eq!(samples.len(), 1);
        prop_assert_eq!(&samples[0].labels, &vec![("l".to_string(), raw)]);
    }

    /// Any counter renders to exactly one sample the parser reads back
    /// with the `_total` suffix and the exact value.
    #[test]
    fn counters_render_and_parse_back(name in printable(24), value in any::<u64>()) {
        let mut out = String::new();
        render_counter(&mut out, &name, value);
        let samples = parse(&out).expect("rendered counter must parse");
        prop_assert_eq!(samples.len(), 1);
        prop_assert_eq!(samples[0].name.as_str(), format!("{}_total", metric_name(&name)));
        // u64 -> f64 is lossy above 2^53; compare through the same cast.
        prop_assert_eq!(samples[0].value, value as f64);
        prop_assert!(samples[0].labels.is_empty());
    }

    /// Any histogram state renders to a parseable family whose buckets
    /// are cumulative and consistent with `_count` and `_sum`.
    #[test]
    fn histograms_render_and_parse_back(
        name in printable(24),
        raw_bounds in prop::collection::vec(1u64..1_000_000, 1..8),
        raw_counts in prop::collection::vec(0u64..10_000, 8),
        sum in 0u64..1_000_000_000,
    ) {
        let mut bounds = raw_bounds;
        bounds.sort_unstable();
        bounds.dedup();
        // One count per bound plus the overflow bucket.
        let counts: Vec<u64> =
            raw_counts.into_iter().cycle().take(bounds.len() + 1).collect();

        let mut out = String::new();
        render_histogram(&mut out, &name, &bounds, &counts, sum);
        let samples = parse(&out).expect("rendered histogram must parse");
        // bounds buckets + the +Inf bucket + _sum + _count.
        prop_assert_eq!(samples.len(), bounds.len() + 3);

        let prom = metric_name(&name);
        let buckets = &samples[..bounds.len() + 1];
        let mut previous = 0.0;
        for (i, bucket) in buckets.iter().enumerate() {
            prop_assert_eq!(bucket.name.as_str(), format!("{}_bucket", prom));
            let (key, le) = &bucket.labels[0];
            prop_assert_eq!(key.as_str(), "le");
            if i < bounds.len() {
                prop_assert_eq!(le.as_str(), bounds[i].to_string());
            } else {
                prop_assert_eq!(le.as_str(), "+Inf");
            }
            prop_assert!(bucket.value >= previous, "buckets must be cumulative");
            previous = bucket.value;
        }
        let total: u64 = counts.iter().sum();
        prop_assert_eq!(buckets.last().unwrap().value, total as f64);
        prop_assert_eq!(samples[bounds.len() + 1].name.as_str(), format!("{}_sum", prom));
        prop_assert_eq!(samples[bounds.len() + 1].value, sum as f64);
        prop_assert_eq!(samples[bounds.len() + 2].name.as_str(), format!("{}_count", prom));
        prop_assert_eq!(samples[bounds.len() + 2].value, total as f64);
    }
}
