//! Overhead guard: with tracing disabled, the event-recording path must
//! cost ~nothing — no allocation and no captured state, so `instant!`
//! hooks can sit inside the simulator's per-cycle loop without taxing
//! runs that never asked for a trace.
//!
//! The proof uses a counting global allocator: this file is its own test
//! binary with exactly one `#[test]`, so no concurrent test can allocate
//! on another thread while the probe section runs. "Single branch" is a
//! structural property of `trace::enabled()` (one relaxed atomic load
//! gating everything else); what is asserted here is its observable
//! consequence — zero allocations and zero recorded events across a
//! million disabled hook executions.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn disabled_event_recording_neither_allocates_nor_records() {
    assert!(!tevot_obs::trace::enabled(), "tracing must default to off");

    // Warm up any lazily-initialized statics outside the probe window
    // (thread-locals, the level cache behind enabled()).
    tevot_obs::instant!("warmup");
    tevot_obs::trace::begin("warmup");
    tevot_obs::trace::end("warmup");

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..1_000_000 {
        tevot_obs::instant!("sim.cycle");
        tevot_obs::trace::begin("hot");
        tevot_obs::trace::end("hot");
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "disabled recording path must not allocate");

    let (events, dropped) = tevot_obs::trace::snapshot();
    assert!(events.is_empty(), "disabled recording path must not capture events");
    assert_eq!(dropped, 0);

    // Sanity check the counterfactual: the same hooks do work (and may
    // allocate ring storage) once enabled, so the guard above is really
    // measuring the disabled branch.
    tevot_obs::trace::enable_with_capacity(16);
    tevot_obs::instant!("sim.cycle");
    let (events, _) = tevot_obs::trace::snapshot();
    assert_eq!(events.len(), 1);
    tevot_obs::trace::reset();
}
