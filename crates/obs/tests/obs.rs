//! Integration tests for `tevot-obs`: span nesting, concurrent counter
//! updates, histogram edge cases and the JSON round trip.
//!
//! The span registry is global, so tests that assert on span paths use
//! unique names and never assert global emptiness.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use tevot_obs::json::{parse, Json};
use tevot_obs::metrics::{Counter, Histogram};
use tevot_obs::report::{Snapshot, SCHEMA};
use tevot_obs::span;

fn span_count(snapshot: &[(String, tevot_obs::span::SpanStat)], path: &str) -> Option<u64> {
    snapshot.iter().find(|(p, _)| p == path).map(|(_, s)| s.count)
}

#[test]
fn nested_spans_build_a_tree() {
    {
        let _outer = span!("it_outer");
        for _ in 0..3 {
            let _mid = span!("it_mid");
            let _inner = span!("it_inner");
        }
    }
    // A sibling at top level must not nest under it_outer.
    {
        let _sibling = span!("it_sibling");
    }
    let snap = tevot_obs::span::snapshot();
    assert_eq!(span_count(&snap, "it_outer"), Some(1));
    assert_eq!(span_count(&snap, "it_outer/it_mid"), Some(3));
    assert_eq!(span_count(&snap, "it_outer/it_mid/it_inner"), Some(3));
    assert_eq!(span_count(&snap, "it_sibling"), Some(1));
    assert_eq!(span_count(&snap, "it_outer/it_sibling"), None);
    // Sorted order puts the parent immediately before its children.
    let outer_idx = snap.iter().position(|(p, _)| p == "it_outer").unwrap();
    assert_eq!(snap[outer_idx + 1].0, "it_outer/it_mid");
}

#[test]
fn spans_on_different_threads_aggregate_into_one_node() {
    let handles: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(|| {
                let _g = span!("it_threaded");
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = tevot_obs::span::snapshot();
    assert_eq!(span_count(&snap, "it_threaded"), Some(4));
}

#[test]
fn counter_is_exact_under_concurrent_updates() {
    static C: Counter = Counter::new("it.concurrent");
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 20_000;
    let go = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let go = Arc::clone(&go);
            std::thread::spawn(move || {
                while !go.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                for i in 0..PER_THREAD {
                    if i % 2 == 0 {
                        C.incr();
                    } else {
                        C.add(1);
                    }
                }
            })
        })
        .collect();
    go.store(true, Ordering::Release);
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(C.get(), THREADS as u64 * PER_THREAD);
}

#[test]
fn histogram_is_exact_under_concurrent_updates() {
    static H: Histogram = Histogram::new("it.concurrent_hist", &[4, 9]);
    let handles: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                for v in 0..1000u64 {
                    H.record((v + t) % 12);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(H.total(), 4000);
    // Values 0..=4 -> bucket 0, 5..=9 -> bucket 1, 10..11 -> overflow.
    let counts = H.counts();
    assert_eq!(counts.len(), 3);
    assert!(counts.iter().all(|&c| c > 0));
}

#[test]
fn histogram_single_bound_and_extremes() {
    static H: Histogram = Histogram::new("it.edge", &[0]);
    H.record(0); // inclusive: lands in bucket 0
    H.record(1); // overflow
    H.record(u64::MAX); // overflow
    assert_eq!(H.counts(), vec![1, 2]);
}

#[test]
fn json_report_round_trips_losslessly() {
    {
        let _g = span!("it_roundtrip");
    }
    tevot_obs::metrics::SIM_EVENTS.add(17);
    tevot_obs::metrics::SIM_CYCLE_DELAY_PS.record(1234);

    let snapshot = Snapshot::capture();
    let doc = snapshot.to_json();
    let text = doc.to_string();
    let parsed = parse(&text).unwrap();
    assert_eq!(parsed, doc, "writer output must parse back to the same value");

    assert_eq!(parsed.get("schema").and_then(Json::as_str), Some(SCHEMA));
    let counters = parsed.get("counters").and_then(Json::as_arr).unwrap();
    let events = counters
        .iter()
        .find(|c| c.get("name").and_then(Json::as_str) == Some("sim.events_processed"))
        .expect("sim.events_processed is registered");
    assert!(events.get("value").and_then(Json::as_u64).unwrap() >= 17);
    let spans = parsed.get("spans").and_then(Json::as_arr).unwrap();
    assert!(spans.iter().any(|s| s.get("path").and_then(Json::as_str) == Some("it_roundtrip")));

    // The stderr summary renders the same snapshot without panicking and
    // mentions the same data.
    let rendered = snapshot.render();
    assert!(rendered.contains("sim.events_processed"));
    assert!(rendered.contains("it_roundtrip"));
}

#[test]
fn log_macros_compile_and_respect_level() {
    tevot_obs::set_level(tevot_obs::Level::Warn);
    assert!(tevot_obs::enabled(tevot_obs::Level::Error));
    assert!(tevot_obs::enabled(tevot_obs::Level::Warn));
    assert!(!tevot_obs::enabled(tevot_obs::Level::Info));
    tevot_obs::error!("an error: {}", 1);
    tevot_obs::warn!("a warning");
    tevot_obs::info!("suppressed");
    tevot_obs::debug!("suppressed {}", "too");
    tevot_obs::set_level(tevot_obs::Level::Info);
}
