//! Golden-file test for the `obs-diff` delta table: the rendered output
//! for a canned pair of `tevot-obs/1` reports must match
//! `tests/golden/obs_diff.txt` byte for byte (modulo trailing newline).

use tevot_obs::diff::{render_diff, Report};

const BASE: &str = r#"{
  "schema": "tevot-obs/1",
  "spans": [
    {"path": "train", "total_ns": 2000000, "count": 1},
    {"path": "train/characterize", "total_ns": 1500000, "count": 9}
  ],
  "counters": [
    {"name": "sim.cycles_simulated", "value": 1000},
    {"name": "sim.gate_evaluations", "value": 250000}
  ],
  "histograms": [
    {"name": "sim.cycle_delay_ps", "bounds": [100, 200, 400],
     "counts": [10, 20, 10, 0]}
  ]
}"#;

const CAND: &str = r#"{
  "schema": "tevot-obs/1",
  "spans": [
    {"path": "train", "total_ns": 3000000, "count": 1},
    {"path": "train/evaluate", "total_ns": 500000, "count": 3}
  ],
  "counters": [
    {"name": "sim.cycles_simulated", "value": 1500},
    {"name": "sim.gate_evaluations", "value": 250000}
  ],
  "histograms": [
    {"name": "sim.cycle_delay_ps", "bounds": [100, 200, 400],
     "counts": [5, 20, 25, 0]}
  ]
}"#;

#[test]
fn rendered_diff_matches_golden() {
    let a = Report::parse(BASE).unwrap();
    let b = Report::parse(CAND).unwrap();
    let rendered = render_diff(&a, &b);
    let golden = include_str!("golden/obs_diff.txt");
    assert_eq!(
        rendered.trim_end(),
        golden.trim_end(),
        "\n--- actual ---\n{rendered}\n--- end actual ---"
    );
}
