//! Declarative SLOs and multi-window burn-rate alerting.
//!
//! An [`Slo`] is an upper-bound objective over a watch series, written
//! `serve.p99_us<5000` (see [`Slo::parse_list`] for the `--slo` flag
//! grammar). An [`SloMonitor`] evaluates one objective against a
//! sampled time series using the two-window burn-rate scheme the SRE
//! literature recommends:
//!
//! * **burn rate** over a window = `mean(series in window) / threshold`
//!   — `1.0` means the signal sits exactly at its objective, `2.0`
//!   means it is twice over budget.
//! * The monitor **fires** on the tick where *both* the fast and the
//!   slow window burn at or above `factor` (fast catches the incident,
//!   slow suppresses blips), and stays silent while already firing.
//! * It **re-arms** (clears) on the first tick where either window
//!   drops below `factor`, so a flapping signal produces edge-triggered
//!   alerts rather than one alert per tick.
//!
//! Alerts are returned as structured [`Alert`] values; the caller (the
//! serve watch loop) records them into the trace ring and the
//! `watch.alerts` counter.

use crate::watch::Sample;

/// Default fast window (catches incidents quickly).
pub const DEFAULT_FAST_MS: u64 = 10_000;
/// Default slow window (suppresses one-tick blips).
pub const DEFAULT_SLOW_MS: u64 = 60_000;

/// An upper-bound objective over a watch series: `series < threshold`.
#[derive(Debug, Clone, PartialEq)]
pub struct Slo {
    /// The watch series the objective constrains (e.g. `serve.p99_us`,
    /// `serve.error_ratio`, `serve.shed_ratio`).
    pub series: String,
    /// The objective's upper bound (must be positive: burn rate divides
    /// by it).
    pub threshold: f64,
}

impl Slo {
    /// Parses one `series<threshold` objective.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed part.
    pub fn parse(text: &str) -> Result<Slo, String> {
        let (series, threshold) = text
            .split_once('<')
            .ok_or_else(|| format!("SLO {text:?} must look like \"serve.p99_us<5000\""))?;
        let series = series.trim();
        if series.is_empty() {
            return Err(format!("SLO {text:?} names no series"));
        }
        let threshold: f64 = threshold
            .trim()
            .parse()
            .map_err(|_| format!("SLO {text:?} has a non-numeric threshold"))?;
        if !threshold.is_finite() || threshold <= 0.0 {
            return Err(format!("SLO {text:?} threshold must be a positive number"));
        }
        Ok(Slo { series: series.to_string(), threshold })
    }

    /// Parses a comma-separated objective list (the `--slo` flag value),
    /// e.g. `serve.p99_us<5000,serve.error_ratio<0.01`.
    ///
    /// # Errors
    ///
    /// Returns the first parse failure.
    pub fn parse_list(text: &str) -> Result<Vec<Slo>, String> {
        text.split(',').map(str::trim).filter(|part| !part.is_empty()).map(Slo::parse).collect()
    }
}

/// Fast/slow window widths and the burn-rate factor at which both must
/// burn before an alert fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnRateConfig {
    /// Fast-window width, milliseconds.
    pub fast_ms: u64,
    /// Slow-window width, milliseconds.
    pub slow_ms: u64,
    /// Burn-rate multiple required in both windows (1.0 = at budget).
    pub factor: f64,
}

impl Default for BurnRateConfig {
    fn default() -> BurnRateConfig {
        BurnRateConfig { fast_ms: DEFAULT_FAST_MS, slow_ms: DEFAULT_SLOW_MS, factor: 1.0 }
    }
}

/// A structured alert, emitted on the tick a monitor starts firing.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Alert family: `"slo"` (burn-rate) or `"drift"` (PSI).
    pub kind: &'static str,
    /// The series or drift feature that alerted.
    pub series: String,
    /// The configured objective (SLO threshold or PSI alert level).
    pub threshold: f64,
    /// Fast-window burn rate (for drift alerts: the PSI value itself).
    pub burn_fast: f64,
    /// Slow-window burn rate (for drift alerts: the PSI value itself).
    pub burn_slow: f64,
    /// Wall-clock milliseconds (Unix epoch) when the alert fired.
    pub at_ms: u64,
}

/// Mean of the samples with `wall_ms` in `(now_ms - window_ms, now_ms]`;
/// `None` when the window is empty.
pub fn window_mean(samples: &[Sample], now_ms: u64, window_ms: u64) -> Option<f64> {
    let lo = now_ms.saturating_sub(window_ms);
    let mut sum = 0.0;
    let mut n = 0u64;
    for s in samples {
        if s.wall_ms > lo && s.wall_ms <= now_ms {
            sum += s.value;
            n += 1;
        }
    }
    (n > 0).then(|| sum / n as f64)
}

/// Evaluates one [`Slo`] against its series with edge-triggered
/// two-window burn-rate semantics (see the module docs).
#[derive(Debug, Clone)]
pub struct SloMonitor {
    /// The objective under watch.
    pub slo: Slo,
    /// Window widths and firing factor.
    pub config: BurnRateConfig,
    firing: bool,
}

impl SloMonitor {
    /// A monitor for `slo` under `config`, initially not firing.
    pub fn new(slo: Slo, config: BurnRateConfig) -> SloMonitor {
        SloMonitor { slo, config, firing: false }
    }

    /// Whether the monitor is currently in the firing state.
    pub fn firing(&self) -> bool {
        self.firing
    }

    /// The burn rates `(fast, slow)` at `now_ms` (`None` per window when
    /// it holds no samples).
    pub fn burn_rates(&self, samples: &[Sample], now_ms: u64) -> (Option<f64>, Option<f64>) {
        let burn = |window_ms| {
            window_mean(samples, now_ms, window_ms).map(|mean| mean / self.slo.threshold)
        };
        (burn(self.config.fast_ms), burn(self.config.slow_ms))
    }

    /// One evaluation tick. Returns `Some(Alert)` exactly on the
    /// transition into the firing state; an empty window counts as not
    /// burning.
    pub fn evaluate(&mut self, samples: &[Sample], now_ms: u64) -> Option<Alert> {
        let (fast, slow) = self.burn_rates(samples, now_ms);
        let burning = match (fast, slow) {
            (Some(f), Some(s)) => f >= self.config.factor && s >= self.config.factor,
            _ => false,
        };
        if burning && !self.firing {
            self.firing = true;
            return Some(Alert {
                kind: "slo",
                series: self.slo.series.clone(),
                threshold: self.slo.threshold,
                burn_fast: fast.unwrap_or(0.0),
                burn_slow: slow.unwrap_or(0.0),
                at_ms: now_ms,
            });
        }
        if !burning {
            self.firing = false;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values: &[(u64, f64)]) -> Vec<Sample> {
        values.iter().map(|&(wall_ms, value)| Sample { wall_ms, value }).collect()
    }

    #[test]
    fn slo_grammar_round_trips() {
        let slos =
            Slo::parse_list("serve.p99_us<5000, serve.error_ratio<0.01,serve.shed_ratio<0.05")
                .unwrap();
        assert_eq!(slos.len(), 3);
        assert_eq!(slos[0], Slo { series: "serve.p99_us".into(), threshold: 5000.0 });
        assert_eq!(slos[1].threshold, 0.01);
        assert!(Slo::parse("serve.p99_us").is_err());
        assert!(Slo::parse("<5").is_err());
        assert!(Slo::parse("x<zero").is_err());
        assert!(Slo::parse("x<-1").is_err());
        assert!(Slo::parse_list("").unwrap().is_empty());
    }

    #[test]
    fn window_mean_respects_bounds() {
        let s = series(&[(1000, 10.0), (2000, 20.0), (3000, 30.0)]);
        assert_eq!(window_mean(&s, 3000, 1500), Some(25.0));
        assert_eq!(window_mean(&s, 3000, 10_000), Some(20.0));
        assert_eq!(window_mean(&s, 500, 400), None);
    }

    #[test]
    fn fires_exactly_at_the_documented_threshold() {
        // Objective: value < 100. Samples sit exactly AT 100 → burn 1.0,
        // which meets factor 1.0 and fires; at 99.99 it must not.
        let slo = Slo::parse("x<100").unwrap();
        let config = BurnRateConfig { fast_ms: 1000, slow_ms: 5000, factor: 1.0 };
        let mut at = SloMonitor::new(slo.clone(), config);
        let exactly = series(&[(100, 100.0), (600, 100.0), (4000, 100.0), (4900, 100.0)]);
        assert!(at.evaluate(&exactly, 5000).is_some(), "burn 1.0 at factor 1.0 fires");
        let mut under = SloMonitor::new(slo, config);
        let just_under = series(&[(100, 99.99), (600, 99.99), (4000, 99.99), (4900, 99.99)]);
        assert!(under.evaluate(&just_under, 5000).is_none(), "burn < factor stays quiet");
    }

    #[test]
    fn both_windows_must_burn() {
        let slo = Slo::parse("x<10").unwrap();
        let config = BurnRateConfig { fast_ms: 1000, slow_ms: 10_000, factor: 1.0 };
        let mut m = SloMonitor::new(slo, config);
        // A long healthy history with one hot recent tick: the fast
        // window burns (50/10 = 5x), but the slow one averages down to
        // (9*1 + 50)/10 = 5.9 → burn 0.59 → no alert.
        let mut points: Vec<(u64, f64)> = (1..=9).map(|i| (i * 1000, 1.0)).collect();
        points.push((9900, 50.0));
        assert!(m.evaluate(&series(&points), 10_000).is_none());
        assert!(!m.firing());
    }

    #[test]
    fn alerts_are_edge_triggered_and_rearm() {
        let slo = Slo::parse("x<10").unwrap();
        let config = BurnRateConfig { fast_ms: 1000, slow_ms: 1000, factor: 1.0 };
        let mut m = SloMonitor::new(slo, config);
        let hot = series(&[(900, 50.0), (950, 50.0)]);
        let alert = m.evaluate(&hot, 1000).expect("first hot tick fires");
        assert_eq!(alert.kind, "slo");
        assert_eq!(alert.series, "x");
        assert_eq!(alert.burn_fast, 5.0);
        assert_eq!(alert.at_ms, 1000);
        // Still hot: firing latches, no second alert.
        assert!(m.evaluate(&hot, 1001).is_none());
        assert!(m.firing());
        // Cooled: re-arms...
        let cool = series(&[(1900, 1.0)]);
        assert!(m.evaluate(&cool, 2000).is_none());
        assert!(!m.firing());
        // ...and a new incident fires again.
        let hot2 = series(&[(2900, 50.0)]);
        assert!(m.evaluate(&hot2, 3000).is_some());
    }

    #[test]
    fn empty_windows_never_fire() {
        let slo = Slo::parse("x<10").unwrap();
        let mut m = SloMonitor::new(slo, BurnRateConfig::default());
        assert!(m.evaluate(&[], 1_000_000).is_none());
        assert!(!m.firing());
    }
}
