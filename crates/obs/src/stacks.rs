//! Live per-thread span-stack slots for statistical profiling.
//!
//! Every thread that opens a span publishes its *current span path* into
//! a lock-light slot: one interned path id behind a single
//! [`AtomicUsize`]. A sampler (see the `tevot-prof` crate) periodically
//! reads every slot and charges the elapsed interval to whatever path
//! each thread was inside — statistical profiling with no signal
//! handlers and no native unwinding, fully portable.
//!
//! Cost model: when profiling is disabled (the default) a span
//! enter/exit performs exactly one relaxed [`AtomicBool`] load, the same
//! discipline as [`trace`](crate::trace). When enabled, enter interns
//! the path (a mutex + map lookup, hit after the first occurrence of a
//! path) and stores one atomic; exit stores one atomic. Span paths are
//! interned forever — the table is bounded by the number of distinct
//! span paths, which is small by construction (stage granularity, never
//! per-event).
//!
//! The current path id is also mirrored into a const-initialized
//! thread-local readable from inside a global allocator
//! ([`current_path_id`]) so `tevot-prof`'s `TevotAlloc` can attribute
//! allocations to span paths without ever allocating or locking itself.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Path id meaning "this thread is not inside any span".
pub const IDLE: usize = 0;

/// Sentinel returned by [`publish`] when there is nothing to restore.
pub(crate) const NO_PREV: usize = usize::MAX;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether stack-slot publishing is active. One relaxed load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns on stack-slot publishing (spans start paying the publish cost).
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns publishing back off. Already-published slots are left as-is;
/// they reset to [`IDLE`] as the spans that set them close.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Interned path table: id 0 is reserved for [`IDLE`]; path id `n`
/// lives at `paths[n - 1]`. Interned strings are leaked — the set of
/// distinct span paths is small and stable, and `&'static str` keys let
/// both the sampler and the allocator resolve ids without cloning.
struct PathTable {
    ids: BTreeMap<&'static str, usize>,
    paths: Vec<&'static str>,
}

static TABLE: Mutex<PathTable> = Mutex::new(PathTable { ids: BTreeMap::new(), paths: Vec::new() });

fn intern(path: &str) -> usize {
    let mut table = TABLE.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(&id) = table.ids.get(path) {
        return id;
    }
    let leaked: &'static str = Box::leak(path.to_owned().into_boxed_str());
    table.paths.push(leaked);
    let id = table.paths.len(); // ids start at 1; 0 is IDLE
    table.ids.insert(leaked, id);
    id
}

/// Resolves a path id back to its interned path, or `None` for
/// [`IDLE`] / unknown ids.
pub fn path_for_id(id: usize) -> Option<&'static str> {
    if id == IDLE {
        return None;
    }
    let table = TABLE.lock().unwrap_or_else(|e| e.into_inner());
    table.paths.get(id - 1).copied()
}

/// One thread's published position. `path_id` is the only hot field;
/// `free` lets exited threads hand their slot to new threads so the
/// registry stays bounded by peak thread count.
struct Slot {
    path_id: AtomicUsize,
    free: AtomicBool,
}

static REGISTRY: Mutex<Vec<Arc<Slot>>> = Mutex::new(Vec::new());

/// Owns this thread's slot; returns it to the free pool on thread exit.
struct SlotHandle(Arc<Slot>);

impl Drop for SlotHandle {
    fn drop(&mut self) {
        self.0.path_id.store(IDLE, Ordering::Relaxed);
        self.0.free.store(true, Ordering::Release);
    }
}

thread_local! {
    static SLOT: SlotHandle = SlotHandle(acquire_slot());
    /// Mirror of the slot's path id, readable from a global allocator:
    /// const-initialized and `Drop`-free, so access never allocates.
    static ALLOC_PATH: Cell<usize> = const { Cell::new(IDLE) };
}

fn acquire_slot() -> Arc<Slot> {
    let mut registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    for slot in registry.iter() {
        if slot.free.compare_exchange(true, false, Ordering::Acquire, Ordering::Relaxed).is_ok() {
            return Arc::clone(slot);
        }
    }
    let slot = Arc::new(Slot { path_id: AtomicUsize::new(IDLE), free: AtomicBool::new(false) });
    registry.push(Arc::clone(&slot));
    slot
}

/// Publishes `path` as this thread's current position; returns the
/// previous path id so the caller can [`restore`] it on span exit.
/// Called by [`SpanGuard::enter`](crate::span::SpanGuard) when
/// [`enabled`].
pub(crate) fn publish(path: &str) -> usize {
    let id = intern(path);
    let prev = SLOT.with(|slot| slot.0.path_id.swap(id, Ordering::Relaxed));
    let _ = ALLOC_PATH.try_with(|cell| cell.set(id));
    prev
}

/// Restores a previously published path id (span exit).
pub(crate) fn restore(prev: usize) {
    if prev == NO_PREV {
        return;
    }
    SLOT.with(|slot| slot.0.path_id.store(prev, Ordering::Relaxed));
    let _ = ALLOC_PATH.try_with(|cell| cell.set(prev));
}

/// The span path the calling thread is currently inside, as an id.
///
/// Safe to call from a `GlobalAlloc` implementation: reads a
/// const-initialized thread-local and never allocates, locks, or
/// initializes lazily. Returns [`IDLE`] outside any span (or while the
/// thread-local area is being torn down).
#[inline]
pub fn current_path_id() -> usize {
    ALLOC_PATH.try_with(Cell::get).unwrap_or(IDLE)
}

/// Snapshot of every live thread's current span path. Threads that are
/// idle (no open span) are skipped. This is the sampler's read side:
/// one registry lock, one relaxed load per thread, one table lock.
pub fn sample_paths() -> Vec<&'static str> {
    let ids: Vec<usize> = {
        let registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
        registry
            .iter()
            .filter(|slot| !slot.free.load(Ordering::Acquire))
            .map(|slot| slot.path_id.load(Ordering::Relaxed))
            .filter(|&id| id != IDLE)
            .collect()
    };
    let table = TABLE.lock().unwrap_or_else(|e| e.into_inner());
    ids.into_iter().filter_map(|id| table.paths.get(id - 1).copied()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_toggle_round_trips() {
        // Other tests may race on the global flag; exercise the local
        // transition only.
        enable();
        assert!(enabled());
        disable();
        assert!(!enabled());
    }

    #[test]
    fn intern_is_stable_and_resolvable() {
        let a = intern("stacks.test/alpha");
        let b = intern("stacks.test/beta");
        assert_ne!(a, b);
        assert_eq!(intern("stacks.test/alpha"), a);
        assert_eq!(path_for_id(a), Some("stacks.test/alpha"));
        assert_eq!(path_for_id(IDLE), None);
    }

    #[test]
    fn publish_and_restore_drive_the_slot_and_alloc_mirror() {
        let prev = publish("stacks.test/outer");
        let outer = current_path_id();
        assert_eq!(path_for_id(outer), Some("stacks.test/outer"));
        let mid = publish("stacks.test/outer/inner");
        assert_eq!(path_for_id(current_path_id()), Some("stacks.test/outer/inner"));
        restore(mid);
        assert_eq!(current_path_id(), outer);
        restore(prev);
    }

    #[test]
    fn sample_paths_sees_published_threads() {
        let done = std::sync::mpsc::channel::<()>();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let ready = done.0;
        let handle = std::thread::spawn(move || {
            let prev = publish("stacks.test/worker");
            ready.send(()).unwrap();
            release_rx.recv().unwrap();
            restore(prev);
        });
        done.1.recv().unwrap();
        let sampled = sample_paths();
        assert!(sampled.contains(&"stacks.test/worker"), "expected worker path in {sampled:?}");
        release_tx.send(()).unwrap();
        handle.join().unwrap();
    }
}
