//! Run-to-run diffing of `tevot-obs/1` reports.
//!
//! Two metrics JSON documents (written by `--metrics`) rarely tell a
//! story side by side; this module parses both and renders one delta
//! table over spans, counters and histograms — the engine behind
//! `tevot obs-diff a.json b.json`.
//!
//! Keys are matched by name; a key present in only one report renders
//! with `-` on the other side. Histograms contribute three derived rows
//! each (`total`, `~p50`, `~p99`, the quantiles interpolated via
//! [`metrics::quantile_from`](crate::metrics::quantile_from)).
//!
//! `tevot-prof/1` self-time tables diff through the same machinery:
//! standalone prof documents parse into [`Report::profile`], embedded
//! `profile` blocks ride along with full reports, and pre-profile
//! reports derive self time from their span totals — in every case the
//! diff renders a "self time (ms)" section ordered by delta magnitude.

use crate::json::{parse, Json};
use crate::metrics::quantile_from;

/// One histogram's raw data as read from a report.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramData {
    /// Registry name.
    pub name: String,
    /// Inclusive upper bucket edges.
    pub bounds: Vec<u64>,
    /// Per-bucket counts (one per bound plus overflow).
    pub counts: Vec<u64>,
}

/// A parsed `tevot-obs/1` (or standalone `tevot-prof/1`) document,
/// structurally validated.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// `(path, total_ns, count)` per span, in document order.
    pub spans: Vec<(String, f64, u64)>,
    /// `(name, value)` per counter, in document order.
    pub counters: Vec<(String, u64)>,
    /// Histogram data, in document order.
    pub histograms: Vec<HistogramData>,
    /// `(path, self_ns)` per span from the `tevot-prof/1` self-time
    /// block (embedded `profile` member or a standalone prof document);
    /// derived from `spans` when the document predates the block.
    pub profile: Vec<(String, f64)>,
}

impl Report {
    /// Parses and validates a metrics document: either a full
    /// `tevot-obs/1` report or a standalone `tevot-prof/1` self-time
    /// table (which fills only [`Report::profile`]).
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntactic or structural
    /// problem (bad JSON, wrong/missing schema tag, malformed entries).
    pub fn parse(text: &str) -> Result<Report, String> {
        let doc = parse(text).map_err(|e| e.to_string())?;
        match doc.get("schema").and_then(Json::as_str) {
            Some(crate::report::SCHEMA) => {}
            Some(crate::report::PROF_SCHEMA) => {
                let mut report = Report::default();
                parse_hot_paths(&doc, &mut report.profile)?;
                return Ok(report);
            }
            Some(other) => {
                return Err(format!(
                    "unsupported schema {other:?} (expected tevot-obs/1 or tevot-prof/1)"
                ))
            }
            None => return Err("not a tevot-obs report: missing \"schema\" member".into()),
        }
        let arr = |key: &str| -> Result<&[Json], String> {
            doc.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("missing or non-array {key:?} member"))
        };
        let mut report = Report::default();
        for span in arr("spans")? {
            report.spans.push((
                span.get("path")
                    .and_then(Json::as_str)
                    .ok_or("span entry without \"path\"")?
                    .to_string(),
                span.get("total_ns").and_then(Json::as_f64).ok_or("span entry without total_ns")?,
                span.get("count").and_then(Json::as_u64).ok_or("span entry without count")?,
            ));
        }
        for counter in arr("counters")? {
            report.counters.push((
                counter
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("counter entry without \"name\"")?
                    .to_string(),
                counter.get("value").and_then(Json::as_u64).ok_or("counter entry without value")?,
            ));
        }
        for hist in arr("histograms")? {
            let ints = |key: &str| -> Result<Vec<u64>, String> {
                hist.get(key)
                    .and_then(Json::as_arr)
                    .map(|items| items.iter().filter_map(Json::as_u64).collect())
                    .ok_or_else(|| format!("histogram entry without {key:?}"))
            };
            report.histograms.push(HistogramData {
                name: hist
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("histogram entry without \"name\"")?
                    .to_string(),
                bounds: ints("bounds")?,
                counts: ints("counts")?,
            });
        }
        if let Some(profile) = doc.get("profile") {
            parse_hot_paths(profile, &mut report.profile)?;
        } else {
            // Reports written before the profile block shipped: derive
            // self time from the span totals (total minus direct
            // children, clamped), same arithmetic as the reporter.
            let mut child_totals: std::collections::BTreeMap<&str, f64> = Default::default();
            for (path, total_ns, _) in &report.spans {
                if let Some((parent, _)) = path.rsplit_once('/') {
                    *child_totals.entry(parent).or_default() += total_ns;
                }
            }
            report.profile = report
                .spans
                .iter()
                .map(|(path, total_ns, _)| {
                    let children = child_totals.get(path.as_str()).copied().unwrap_or(0.0);
                    (path.clone(), (total_ns - children).max(0.0))
                })
                .collect();
        }
        Ok(report)
    }
}

/// Reads a `tevot-prof/1` `hot_paths` array into `(path, self_ns)`
/// pairs.
fn parse_hot_paths(block: &Json, out: &mut Vec<(String, f64)>) -> Result<(), String> {
    let entries = block
        .get("hot_paths")
        .and_then(Json::as_arr)
        .ok_or("tevot-prof block without \"hot_paths\" array")?;
    for entry in entries {
        out.push((
            entry
                .get("path")
                .and_then(Json::as_str)
                .ok_or("hot_paths entry without \"path\"")?
                .to_string(),
            entry.get("self_ns").and_then(Json::as_f64).ok_or("hot_paths entry without self_ns")?,
        ));
    }
    Ok(())
}

/// One comparable quantity with a display precision.
#[derive(Debug, Clone, Copy)]
struct Cell {
    value: Option<f64>,
    decimals: usize,
}

impl Cell {
    fn text(self) -> String {
        match self.value {
            Some(v) => format!("{v:.prec$}", prec = self.decimals),
            None => "-".into(),
        }
    }
}

fn delta_cells(a: Option<f64>, b: Option<f64>, decimals: usize) -> (String, String) {
    match (a, b) {
        (Some(a), Some(b)) => {
            let delta = format!("{:+.prec$}", b - a, prec = decimals);
            let pct = if a != 0.0 {
                format!("{:+.1}%", (b - a) / a * 100.0)
            } else if b == 0.0 {
                "0.0%".into()
            } else {
                "new".into()
            };
            (delta, pct)
        }
        _ => ("-".into(), "-".into()),
    }
}

/// Merges two keyed sequences: keys of `a` in order, then `b`-only keys.
fn union_keys<'a, T>(
    a: &'a [(String, T)],
    b: &'a [(String, T)],
) -> Vec<(&'a str, Option<&'a T>, Option<&'a T>)> {
    let find =
        |side: &'a [(String, T)], key: &str| side.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    let mut keys: Vec<&str> = a.iter().map(|(k, _)| k.as_str()).collect();
    for (k, _) in b {
        if !keys.contains(&k.as_str()) {
            keys.push(k);
        }
    }
    keys.into_iter().map(|k| (k, find(a, k), find(b, k))).collect()
}

fn section(out: &mut String, title: &str, rows: &[(String, Cell, Cell)]) {
    if rows.is_empty() {
        return;
    }
    out.push_str(&format!("{title}:\n"));
    out.push_str(&format!(
        "  {:<32} {:>12} {:>12} {:>12} {:>8}\n",
        "name", "a", "b", "delta", "delta%"
    ));
    for (name, a, b) in rows {
        let (delta, pct) = delta_cells(a.value, b.value, a.decimals.max(b.decimals));
        out.push_str(&format!(
            "  {:<32} {:>12} {:>12} {:>12} {:>8}\n",
            name,
            a.text(),
            b.text(),
            delta,
            pct
        ));
    }
}

/// Renders one self-time delta table (the `tevot-prof/1` renderer,
/// shared with `bench_compare`'s regression summaries): rows are keyed
/// by span path, valued in whatever unit the caller supplies, sorted by
/// absolute delta descending and truncated to `limit`.
pub fn render_self_time_delta(
    title: &str,
    a: &[(String, f64)],
    b: &[(String, f64)],
    limit: usize,
) -> String {
    let mut rows: Vec<(String, Cell, Cell)> = union_keys(a, b)
        .into_iter()
        .map(|(key, a_v, b_v)| {
            (
                key.to_string(),
                Cell { value: a_v.copied(), decimals: 3 },
                Cell { value: b_v.copied(), decimals: 3 },
            )
        })
        .collect();
    rows.sort_by(|x, y| {
        let magnitude = |row: &(String, Cell, Cell)| {
            (row.2.value.unwrap_or(0.0) - row.1.value.unwrap_or(0.0)).abs()
        };
        magnitude(y).total_cmp(&magnitude(x)).then_with(|| x.0.cmp(&y.0))
    });
    rows.truncate(limit);
    let mut out = String::new();
    section(&mut out, title, &rows);
    out
}

/// Renders the delta table between two parsed reports (`a` = before /
/// baseline, `b` = after / candidate).
pub fn render_diff(a: &Report, b: &Report) -> String {
    let mut out = String::new();
    out.push_str("── tevot-obs diff (a → b) ──\n");

    let a_spans: Vec<(String, (f64, u64))> =
        a.spans.iter().map(|(k, ns, c)| (k.clone(), (*ns, *c))).collect();
    let b_spans: Vec<(String, (f64, u64))> =
        b.spans.iter().map(|(k, ns, c)| (k.clone(), (*ns, *c))).collect();
    let mut rows = Vec::new();
    for (key, a_stat, b_stat) in union_keys(&a_spans, &b_spans) {
        let ms = |stat: Option<&(f64, u64)>| stat.map(|(ns, _)| ns / 1e6);
        rows.push((
            key.to_string(),
            Cell { value: ms(a_stat), decimals: 3 },
            Cell { value: ms(b_stat), decimals: 3 },
        ));
    }
    section(&mut out, "spans (total ms)", &rows);

    let to_ms = |profile: &[(String, f64)]| -> Vec<(String, f64)> {
        profile.iter().map(|(k, ns)| (k.clone(), ns / 1e6)).collect()
    };
    out.push_str(&render_self_time_delta(
        "self time (ms)",
        &to_ms(&a.profile),
        &to_ms(&b.profile),
        usize::MAX,
    ));

    let mut rows = Vec::new();
    for (key, a_v, b_v) in union_keys(&a.counters, &b.counters) {
        rows.push((
            key.to_string(),
            Cell { value: a_v.map(|&v| v as f64), decimals: 0 },
            Cell { value: b_v.map(|&v| v as f64), decimals: 0 },
        ));
    }
    section(&mut out, "counters", &rows);

    let a_hists: Vec<(String, &HistogramData)> =
        a.histograms.iter().map(|h| (h.name.clone(), h)).collect();
    let b_hists: Vec<(String, &HistogramData)> =
        b.histograms.iter().map(|h| (h.name.clone(), h)).collect();
    let mut rows = Vec::new();
    for (key, a_h, b_h) in union_keys(&a_hists, &b_hists) {
        let total = |h: Option<&&HistogramData>| h.map(|h| h.counts.iter().sum::<u64>() as f64);
        let quant = |h: Option<&&HistogramData>, q: f64| {
            h.and_then(|h| quantile_from(&h.bounds, &h.counts, q))
        };
        rows.push((
            format!("{key}.total"),
            Cell { value: total(a_h), decimals: 0 },
            Cell { value: total(b_h), decimals: 0 },
        ));
        for (label, q) in [("~p50", 0.5), ("~p99", 0.99)] {
            rows.push((
                format!("{key}.{label}"),
                Cell { value: quant(a_h, q), decimals: 1 },
                Cell { value: quant(b_h, q), decimals: 1 },
            ));
        }
    }
    section(&mut out, "histograms", &rows);

    if a_spans.is_empty() && b_spans.is_empty() && a.counters.is_empty() && b.counters.is_empty() {
        out.push_str("(both reports are empty)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: &str = r#"{"schema":"tevot-obs/1",
        "spans":[{"path":"study","total_ns":4000000,"count":1},
                 {"path":"study/train","total_ns":1000000,"count":2}],
        "counters":[{"name":"sim.cycles_simulated","value":100},
                    {"name":"ml.node_splits","value":40}],
        "histograms":[{"name":"sim.cycle_delay_ps","bounds":[100,200],
                       "counts":[10,10,0],"total":20}]}"#;
    const B: &str = r#"{"schema":"tevot-obs/1",
        "spans":[{"path":"study","total_ns":5000000,"count":1},
                 {"path":"study/evaluate","total_ns":500000,"count":1}],
        "counters":[{"name":"sim.cycles_simulated","value":150}],
        "histograms":[{"name":"sim.cycle_delay_ps","bounds":[100,200],
                       "counts":[0,10,10],"total":20}]}"#;

    #[test]
    fn parses_well_formed_reports() {
        let a = Report::parse(A).unwrap();
        assert_eq!(a.spans.len(), 2);
        assert_eq!(a.counters[0], ("sim.cycles_simulated".into(), 100));
        assert_eq!(a.histograms[0].counts, vec![10, 10, 0]);
    }

    #[test]
    fn rejects_wrong_schema_and_garbage() {
        assert!(Report::parse("not json").unwrap_err().contains("JSON parse error"));
        assert!(Report::parse("{\"schema\":\"bogus/9\",\"spans\":[]}")
            .unwrap_err()
            .contains("unsupported schema"));
        assert!(Report::parse("{\"spans\":[]}").unwrap_err().contains("missing \"schema\""));
        assert!(Report::parse("{\"schema\":\"tevot-obs/1\"}")
            .unwrap_err()
            .contains("missing or non-array"));
    }

    #[test]
    fn diff_covers_union_of_keys_with_deltas() {
        let a = Report::parse(A).unwrap();
        let b = Report::parse(B).unwrap();
        let text = render_diff(&a, &b);
        // Shared span: 4 ms -> 5 ms, +25%.
        assert!(text.contains("study"), "{text}");
        assert!(text.contains("+25.0%"), "{text}");
        // a-only and b-only keys render with '-' on the absent side.
        assert!(text.contains("study/train"), "{text}");
        assert!(text.contains("study/evaluate"), "{text}");
        assert!(text.contains('-'), "{text}");
        // Counters: 100 -> 150 (+50%), and the a-only counter appears.
        assert!(text.contains("+50.0%"), "{text}");
        assert!(text.contains("ml.node_splits"), "{text}");
        // Histogram quantiles shift right: p50 moves from 100 to 200.
        assert!(text.contains("sim.cycle_delay_ps.~p50"), "{text}");
        assert!(text.contains("+100.0%"), "{text}");
    }

    #[test]
    fn old_reports_derive_self_time_from_span_totals() {
        let a = Report::parse(A).unwrap();
        // study: 4 ms total - 1 ms child = 3 ms self; leaf keeps its own.
        assert_eq!(a.profile[0], ("study".into(), 3_000_000.0));
        assert_eq!(a.profile[1], ("study/train".into(), 1_000_000.0));
    }

    #[test]
    fn standalone_prof_documents_parse_and_diff() {
        let a = r#"{"schema":"tevot-prof/1","hot_paths":[
            {"path":"sweep/dta/sim","self_ns":9000000,"total_ns":9000000,"count":5},
            {"path":"sweep","self_ns":1000000,"total_ns":10000000,"count":1}]}"#;
        let b = r#"{"schema":"tevot-prof/1","hot_paths":[
            {"path":"sweep/dta/sim","self_ns":4000000,"total_ns":4000000,"count":5},
            {"path":"sweep","self_ns":1000000,"total_ns":5000000,"count":1}]}"#;
        let a = Report::parse(a).unwrap();
        let b = Report::parse(b).unwrap();
        assert!(a.spans.is_empty() && a.counters.is_empty());
        assert_eq!(a.profile.len(), 2);
        let text = render_diff(&a, &b);
        assert!(text.contains("self time (ms)"), "{text}");
        assert!(text.contains("sweep/dta/sim"), "{text}");
        assert!(text.contains("-5.000"), "{text}");
    }

    #[test]
    fn self_time_delta_sorts_by_magnitude_and_truncates() {
        let a = vec![("tiny".to_string(), 1.0), ("big".to_string(), 10.0)];
        let b = vec![("tiny".to_string(), 1.5), ("big".to_string(), 2.0)];
        let text = render_self_time_delta("self time (ms)", &a, &b, 1);
        assert!(text.contains("big"), "{text}");
        assert!(!text.contains("tiny"), "truncated to top 1: {text}");
    }

    #[test]
    fn diff_of_identical_reports_has_zero_deltas() {
        let a = Report::parse(A).unwrap();
        let text = render_diff(&a, &a);
        assert!(text.contains("+0.000"), "{text}");
        assert!(text.contains("+0.0%"), "{text}");
    }
}
