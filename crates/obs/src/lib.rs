//! `tevot-obs` — zero-dependency observability for the TEVoT pipeline.
//!
//! Three cooperating facilities, all built on `std` alone:
//!
//! * **Leveled logging** — [`error!`], [`warn!`], [`info!`], [`debug!`]
//!   macros writing to stderr, filtered by a global [`Level`] that is
//!   initialized from the `TEVOT_LOG` environment variable
//!   (`off|error|warn|info|debug`) and can be overridden by CLI flags via
//!   [`set_level`] / [`adjust_level`].
//! * **Span timers** — [`span!`] creates an RAII guard that measures the
//!   wall time of a pipeline stage; nested guards aggregate into a global
//!   per-stage tree (see [`span`]). `debug_span!` sites compile away
//!   entirely unless the `debug-spans` feature is on.
//! * **Metrics** — a global registry of relaxed-atomic [`metrics::Counter`]s
//!   and fixed-bucket [`metrics::Histogram`]s (with interpolated
//!   p50/p90/p99 quantiles) for the pipeline's hot paths (gate
//!   evaluations, simulated events, training iterations, ...).
//! * **Timeline traces** — [`trace`] records begin/end/instant events
//!   into a bounded ring buffer (fed by the span guards plus explicit
//!   [`instant!`] hooks) and exports Chrome/Perfetto trace-format JSON —
//!   the substrate behind the `--trace <path>` flag.
//! * **Progress** — [`progress::Progress`] prints rate-limited progress
//!   lines with an ETA for long sweeps.
//!
//! [`report`] renders spans + metrics as a human-readable stderr summary
//! and serializes them to a versioned JSON document (`tevot-obs/1`) — the
//! substrate behind the CLI's and the experiment binaries' `--metrics`
//! flag. [`diff`] compares two such documents and renders the delta.
//!
//! Production telemetry (`tevot-watch`) builds on those primitives:
//! [`watch`] is a fixed-memory time-series ring store sampled off the
//! registry, [`prom`] renders/parses Prometheus text exposition, [`slo`]
//! evaluates declarative objectives with multi-window burn-rate
//! alerting, and [`drift`] holds the PSI math for online model-drift
//! detection.

#![warn(missing_docs)]

pub mod diff;
pub mod drift;
pub mod json;
pub mod metrics;
pub mod progress;
pub mod prom;
pub mod report;
pub mod slo;
pub mod span;
pub mod stacks;
pub mod trace;
pub mod watch;

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Once;

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Logging disabled.
    Off = 0,
    /// Unrecoverable or data-loss conditions.
    Error = 1,
    /// Suspicious conditions the run survives.
    Warn = 2,
    /// Stage-level progress (the default).
    Info = 3,
    /// Per-item detail; hot-path diagnostics.
    Debug = 4,
}

impl Level {
    /// Parses a `TEVOT_LOG`-style name, case-insensitively.
    pub fn parse(name: &str) -> Option<Level> {
        match name.to_ascii_lowercase().as_str() {
            "off" | "quiet" | "none" => Some(Level::Off),
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" | "trace" => Some(Level::Debug),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Off,
            1 => Level::Error,
            2 => Level::Warn,
            3 => Level::Info,
            _ => Level::Debug,
        }
    }

    /// The label printed in log lines.
    pub fn label(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// 255 marks "not yet initialized from the environment".
const LEVEL_UNSET: u8 = u8::MAX;
static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);
static LEVEL_INIT: Once = Once::new();

fn init_level_from_env() {
    LEVEL_INIT.call_once(|| {
        let level =
            std::env::var("TEVOT_LOG").ok().and_then(|v| Level::parse(&v)).unwrap_or(Level::Info);
        // Respect an explicit set_level() that ran before the first log.
        let _ =
            LEVEL.compare_exchange(LEVEL_UNSET, level as u8, Ordering::Relaxed, Ordering::Relaxed);
    });
}

/// The current global log level.
pub fn level() -> Level {
    init_level_from_env();
    Level::from_u8(LEVEL.load(Ordering::Relaxed))
}

/// Sets the global log level, overriding `TEVOT_LOG`.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
    // Make sure a later lazy init cannot overwrite the explicit choice.
    init_level_from_env();
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Shifts the global level by `delta` steps (positive → more verbose), the
/// semantics of repeated `--verbose` / `-q` flags.
pub fn adjust_level(delta: i32) {
    let current = level() as u8 as i32;
    let new = (current + delta).clamp(Level::Off as u8 as i32, Level::Debug as u8 as i32);
    set_level(Level::from_u8(new as u8));
}

/// Whether messages at `level` are currently emitted.
#[inline]
pub fn enabled(level: Level) -> bool {
    level != Level::Off && level <= self::level()
}

#[doc(hidden)]
pub fn __log(level: Level, target: &str, args: std::fmt::Arguments<'_>) {
    use std::io::Write as _;
    let stderr = std::io::stderr();
    let mut handle = stderr.lock();
    // A failed write to stderr leaves nowhere to report; drop it.
    let _ = writeln!(handle, "[{} {target}] {args}", level.label());
}

/// Logs at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        if $crate::enabled($crate::Level::Error) {
            $crate::__log($crate::Level::Error, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        if $crate::enabled($crate::Level::Warn) {
            $crate::__log($crate::Level::Warn, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::enabled($crate::Level::Info) {
            $crate::__log($crate::Level::Info, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::enabled($crate::Level::Debug) {
            $crate::__log($crate::Level::Debug, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Opens a timing span; the returned guard records wall time into the
/// global stage tree when dropped.
///
/// ```
/// {
///     let _outer = tevot_obs::span!("characterize");
///     let _inner = tevot_obs::span!("trace", "{} vectors", 500);
///     // ... work ...
/// } // both recorded; "trace" nests under "characterize"
/// ```
///
/// The optional format arguments are logged at [`Level::Debug`] when the
/// span opens; they do not change the span's aggregation key.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name)
    };
    ($name:expr, $($arg:tt)*) => {{
        $crate::debug!("{} {}", $name, format_args!($($arg)*));
        $crate::span::SpanGuard::enter($name)
    }};
}

/// Records a point-in-time event on the timeline trace (a no-op unless
/// tracing is enabled — one relaxed load, no allocation).
///
/// The name must be a `'static` string literal so the recording path
/// stays allocation-free:
///
/// ```
/// tevot_obs::instant!("sim.cycle");
/// ```
#[macro_export]
macro_rules! instant {
    ($name:expr) => {
        if $crate::trace::enabled() {
            $crate::trace::instant($name);
        }
    };
}

/// Like [`span!`], but compiled out (a no-op guard) unless the
/// `debug-spans` feature is enabled — for spans inside per-cycle or
/// per-node loops that would otherwise distort the measurement.
#[cfg(feature = "debug-spans")]
#[macro_export]
macro_rules! debug_span {
    ($($arg:tt)*) => { $crate::span!($($arg)*) };
}

/// Like [`span!`], but compiled out (a no-op guard) unless the
/// `debug-spans` feature is enabled — for spans inside per-cycle or
/// per-node loops that would otherwise distort the measurement.
#[cfg(not(feature = "debug-spans"))]
#[macro_export]
macro_rules! debug_span {
    ($($arg:tt)*) => {
        $crate::span::SpanGuard::disabled()
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("info"), Some(Level::Info));
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("off"), Some(Level::Off));
        assert_eq!(Level::parse("bogus"), None);
    }

    #[test]
    fn level_ordering_matches_severity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Debug);
        assert!(!enabled(Level::Off));
    }
}
