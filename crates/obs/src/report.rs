//! The reporter: renders span timings + metrics as a human-readable
//! stderr summary and serializes them to a versioned JSON document.
//!
//! Schema `tevot-obs/1`:
//!
//! ```json
//! {
//!   "schema": "tevot-obs/1",
//!   "spans": [
//!     {"path": "study/characterize", "total_ns": 123456, "count": 3}
//!   ],
//!   "counters": [
//!     {"name": "sim.events_processed", "value": 42}
//!   ],
//!   "histograms": [
//!     {"name": "sim.cycle_delay_ps",
//!      "bounds": [250, 500],
//!      "counts": [10, 5, 1],
//!      "total": 16,
//!      "p50": 287.5, "p90": 470.0, "p99": 500.0}
//!   ]
//! }
//! ```
//!
//! `spans` is sorted by slash-joined path (parents precede children);
//! `counters`/`histograms` follow registry order. `counts` has one entry
//! per bound plus a trailing overflow bucket; `p50`/`p90`/`p99` are
//! interpolated quantile estimates ([`metrics::quantile_from`]), `null`
//! when the histogram is empty. The quantile members were added after the
//! first `tevot-obs/1` reports shipped; the schema stays `tevot-obs/1`
//! because the addition is purely additive and consumers ignore unknown
//! members. The same precedent covers the later additions: per-span
//! `self_ns`/`min_ns`/`max_ns` members and a top-level `profile` member
//! — an embedded `tevot-prof/1` block listing every path by descending
//! self time (`{"schema": "tevot-prof/1", "hot_paths": [{"path": ...,
//! "self_ns": ..., "total_ns": ..., "count": ...}]}`). The stderr
//! summary and the JSON document are rendered from the same
//! [`Snapshot`], so they always agree.

use std::io::Write;
use std::path::{Path, PathBuf};

use crate::json::Json;
use crate::metrics;
use crate::span::{self, SpanStat, PATH_SEPARATOR};

/// The schema identifier written into every JSON report.
pub const SCHEMA: &str = "tevot-obs/1";

/// Schema identifier of the embedded self-time profile block (also used
/// standalone by `tevot-prof` tooling and understood by `obs-diff`).
pub const PROF_SCHEMA: &str = "tevot-prof/1";

/// A point-in-time copy of every span, counter, and histogram.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Span paths with accumulated stats, sorted by path.
    pub spans: Vec<(String, SpanStat)>,
    /// `(name, value)` for every registered counter, in registry order.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, bounds, counts)` for every registered histogram.
    pub histograms: Vec<(&'static str, &'static [u64], Vec<u64>)>,
}

impl Snapshot {
    /// Captures the current state of the global registries.
    pub fn capture() -> Snapshot {
        Snapshot {
            spans: span::snapshot(),
            counters: metrics::counters().iter().map(|c| (c.name(), c.get())).collect(),
            histograms: metrics::histograms()
                .iter()
                .map(|h| (h.name(), h.bounds(), h.counts()))
                .collect(),
        }
    }

    /// Self time of every span path, aligned with `self.spans`: total
    /// wall time minus the totals of *direct* children, clamped at zero
    /// (a child running on several threads can accumulate more wall
    /// time than its parent).
    pub fn self_times_ns(&self) -> Vec<u128> {
        let mut child_totals: std::collections::BTreeMap<&str, u128> =
            std::collections::BTreeMap::new();
        for (path, stat) in &self.spans {
            if let Some((parent, _)) = path.rsplit_once(PATH_SEPARATOR) {
                *child_totals.entry(parent).or_default() += stat.total_ns;
            }
        }
        self.spans
            .iter()
            .map(|(path, stat)| {
                stat.total_ns.saturating_sub(child_totals.get(path.as_str()).copied().unwrap_or(0))
            })
            .collect()
    }

    /// Span indices sorted by descending self time (ties by path), the
    /// order of the hot-path table.
    fn hot_order(&self, self_ns: &[u128]) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.spans.len()).collect();
        order.sort_by(|&a, &b| {
            self_ns[b].cmp(&self_ns[a]).then_with(|| self.spans[a].0.cmp(&self.spans[b].0))
        });
        order
    }

    /// Serializes to the versioned `tevot-obs/1` JSON document.
    pub fn to_json(&self) -> Json {
        let self_ns = self.self_times_ns();
        let spans = self
            .spans
            .iter()
            .zip(&self_ns)
            .map(|((path, stat), &self_ns)| {
                Json::obj(vec![
                    ("path", Json::Str(path.clone())),
                    ("total_ns", Json::Num(stat.total_ns as f64)),
                    ("self_ns", Json::Num(self_ns as f64)),
                    ("count", Json::from(stat.count)),
                    ("min_ns", Json::Num(stat.min_ns as f64)),
                    ("max_ns", Json::Num(stat.max_ns as f64)),
                ])
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(name, value)| {
                Json::obj(vec![("name", Json::from(*name)), ("value", Json::from(*value))])
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(name, bounds, counts)| {
                let q = |p: f64| {
                    metrics::quantile_from(bounds, counts, p).map(Json::Num).unwrap_or(Json::Null)
                };
                Json::obj(vec![
                    ("name", Json::from(*name)),
                    ("bounds", Json::Arr(bounds.iter().map(|&b| Json::from(b)).collect())),
                    ("counts", Json::Arr(counts.iter().map(|&c| Json::from(c)).collect())),
                    ("total", Json::from(counts.iter().sum::<u64>())),
                    ("p50", q(0.5)),
                    ("p90", q(0.9)),
                    ("p99", q(0.99)),
                ])
            })
            .collect();
        let hot_paths = self
            .hot_order(&self_ns)
            .into_iter()
            .map(|i| {
                let (path, stat) = &self.spans[i];
                Json::obj(vec![
                    ("path", Json::Str(path.clone())),
                    ("self_ns", Json::Num(self_ns[i] as f64)),
                    ("total_ns", Json::Num(stat.total_ns as f64)),
                    ("count", Json::from(stat.count)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("schema", Json::from(SCHEMA)),
            ("spans", Json::Arr(spans)),
            ("counters", Json::Arr(counters)),
            ("histograms", Json::Arr(histograms)),
            // Additive member (consumers ignore unknown members, same
            // precedent as the quantile fields): the self-time profile,
            // an embedded tevot-prof/1 block sorted hottest-first.
            (
                "profile",
                Json::obj(vec![
                    ("schema", Json::from(PROF_SCHEMA)),
                    ("hot_paths", Json::Arr(hot_paths)),
                ]),
            ),
        ])
    }

    /// Renders the human-readable summary: a stage-time tree followed by
    /// non-zero counters and histograms.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("── tevot-obs summary ──\n");
        if self.spans.is_empty() {
            out.push_str("stages: (none recorded)\n");
        } else {
            let self_ns = self.self_times_ns();
            // Tree walk with siblings ordered hottest-first (by self
            // time), so the expensive stage tops each level instead of
            // whatever sorts first alphabetically.
            let index: std::collections::BTreeMap<&str, usize> =
                self.spans.iter().enumerate().map(|(i, (path, _))| (path.as_str(), i)).collect();
            let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.spans.len()];
            let mut roots: Vec<usize> = Vec::new();
            for (i, (path, _)) in self.spans.iter().enumerate() {
                match path.rsplit_once(PATH_SEPARATOR).and_then(|(parent, _)| index.get(parent)) {
                    Some(&p) => children[p].push(i),
                    None => roots.push(i),
                }
            }
            let by_self_desc = |siblings: &mut Vec<usize>| {
                siblings.sort_by(|&a, &b| {
                    self_ns[b].cmp(&self_ns[a]).then_with(|| self.spans[a].0.cmp(&self.spans[b].0))
                });
            };
            by_self_desc(&mut roots);
            for list in &mut children {
                by_self_desc(list);
            }
            out.push_str("stages:\n");
            let mut stack: Vec<usize> = roots.into_iter().rev().collect();
            while let Some(i) = stack.pop() {
                let (path, stat) = &self.spans[i];
                let depth = path.matches(PATH_SEPARATOR).count();
                let name = path.rsplit(PATH_SEPARATOR).next().unwrap_or(path);
                let ms = stat.total_ns as f64 / 1e6;
                out.push_str(&format!(
                    "  {:indent$}{name:<24} {ms:>10.3} ms  x{}\n",
                    "",
                    stat.count,
                    indent = depth * 2,
                ));
                stack.extend(children[i].iter().rev());
            }
            out.push_str("hot paths (self time):\n");
            for i in self.hot_order(&self_ns).into_iter().take(8) {
                let (path, stat) = &self.spans[i];
                out.push_str(&format!(
                    "  {path:<40} self {:>9.3} ms  total {:>9.3} ms  x{}\n",
                    self_ns[i] as f64 / 1e6,
                    stat.total_ns as f64 / 1e6,
                    stat.count,
                ));
            }
        }
        let live: Vec<_> = self.counters.iter().filter(|(_, v)| *v > 0).collect();
        if !live.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in live {
                out.push_str(&format!("  {name:<28} {value:>14}\n"));
            }
        }
        for (name, bounds, counts) in &self.histograms {
            let total: u64 = counts.iter().sum();
            if total == 0 {
                continue;
            }
            out.push_str(&format!("histogram {name} (total {total}):\n"));
            if let (Some(p50), Some(p90), Some(p99)) = (
                metrics::quantile_from(bounds, counts, 0.5),
                metrics::quantile_from(bounds, counts, 0.9),
                metrics::quantile_from(bounds, counts, 0.99),
            ) {
                out.push_str(&format!("  ~quantiles p50={p50:.0} p90={p90:.0} p99={p99:.0}\n"));
            }
            let peak = counts.iter().copied().max().unwrap_or(1).max(1);
            for (i, &count) in counts.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                let edge = match bounds.get(i) {
                    Some(b) => format!("<= {b}"),
                    None => format!("> {}", bounds.last().unwrap_or(&0)),
                };
                let bar = "#".repeat(((count * 24).div_ceil(peak)) as usize);
                out.push_str(&format!("  {edge:>10} {count:>12} {bar}\n"));
            }
        }
        out
    }
}

/// Writes `snapshot` as JSON to `path`.
///
/// # Errors
///
/// Returns the I/O error with the offending path in the message.
pub fn write_json(snapshot: &Snapshot, path: &Path) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path).map_err(|e| {
        std::io::Error::new(e.kind(), format!("cannot write metrics to {}: {e}", path.display()))
    })?;
    writeln!(file, "{}", snapshot.to_json())
}

/// RAII reporter: on drop, captures a [`Snapshot`], writes it as JSON if
/// a path was configured, and prints the stderr summary when requested.
///
/// The stderr summary prints when either [`FinishGuard::summary`] was
/// enabled or the `TEVOT_OBS_SUMMARY` environment variable is set (to
/// anything but `0`); a JSON path alone stays quiet so scripted runs can
/// collect metrics without extra output.
#[derive(Debug, Default)]
pub struct FinishGuard {
    metrics_path: Option<PathBuf>,
    trace_path: Option<PathBuf>,
    summary: bool,
}

impl FinishGuard {
    /// A guard that does nothing unless configured.
    pub fn new() -> FinishGuard {
        FinishGuard::default()
    }

    /// Writes the JSON report to `path` on drop (the `--metrics <path>`
    /// flag). `None` leaves the current setting unchanged.
    pub fn metrics_path(mut self, path: Option<PathBuf>) -> FinishGuard {
        if path.is_some() {
            self.metrics_path = path;
        }
        self
    }

    /// Enables timeline-event recording now and writes the Chrome
    /// trace-format JSON to `path` on drop (the `--trace <path>` flag).
    /// `None` leaves the current setting unchanged.
    pub fn trace_path(mut self, path: Option<PathBuf>) -> FinishGuard {
        if path.is_some() {
            crate::trace::enable();
            self.trace_path = path;
        }
        self
    }

    /// Forces the stderr summary on drop.
    pub fn summary(mut self, enabled: bool) -> FinishGuard {
        self.summary = enabled;
        self
    }
}

fn env_summary_requested() -> bool {
    matches!(std::env::var("TEVOT_OBS_SUMMARY"), Ok(v) if !v.is_empty() && v != "0")
}

impl Drop for FinishGuard {
    fn drop(&mut self) {
        if let Some(path) = &self.trace_path {
            match crate::trace::write_chrome_trace(path) {
                Ok(()) => crate::info!("trace written to {}", path.display()),
                Err(e) => crate::error!("{e}"),
            }
        }
        let want_summary = self.summary || env_summary_requested();
        if self.metrics_path.is_none() && !want_summary {
            return;
        }
        let snapshot = Snapshot::capture();
        if let Some(path) = &self.metrics_path {
            match write_json(&snapshot, path) {
                Ok(()) => crate::info!("metrics written to {}", path.display()),
                Err(e) => crate::error!("{e}"),
            }
        }
        if want_summary {
            let _ = std::io::stderr().lock().write_all(snapshot.render().as_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(total_ns: u128, count: u64) -> SpanStat {
        SpanStat { total_ns, count, min_ns: total_ns / count.max(1) as u128, max_ns: total_ns }
    }

    fn sample() -> Snapshot {
        Snapshot {
            spans: vec![
                ("study".into(), stat(5_000_000, 1)),
                ("study/train".into(), stat(2_000_000, 4)),
            ],
            counters: vec![("sim.events_processed", 42), ("ml.train_iterations", 0)],
            histograms: vec![("sim.toggles_per_cycle", &[1, 2][..], vec![3, 0, 7])],
        }
    }

    #[test]
    fn json_document_has_schema_and_all_sections() {
        let doc = sample().to_json();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        let spans = doc.get("spans").and_then(Json::as_arr).unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].get("path").and_then(Json::as_str), Some("study/train"));
        assert_eq!(spans[1].get("count").and_then(Json::as_u64), Some(4));
        let counters = doc.get("counters").and_then(Json::as_arr).unwrap();
        assert_eq!(counters[0].get("value").and_then(Json::as_u64), Some(42));
        let hists = doc.get("histograms").and_then(Json::as_arr).unwrap();
        assert_eq!(hists[0].get("total").and_then(Json::as_u64), Some(10));
        assert_eq!(hists[0].get("counts").and_then(Json::as_arr).unwrap().len(), 3);
        // 7 of 10 observations sit in the overflow bucket, so p50 and p99
        // both saturate at the last finite bound.
        assert_eq!(hists[0].get("p50").and_then(Json::as_f64), Some(2.0));
        assert_eq!(hists[0].get("p99").and_then(Json::as_f64), Some(2.0));
    }

    #[test]
    fn empty_histogram_serializes_null_quantiles() {
        let snapshot = Snapshot {
            spans: vec![],
            counters: vec![],
            histograms: vec![("empty.hist", &[1][..], vec![0, 0])],
        };
        let doc = snapshot.to_json();
        let hists = doc.get("histograms").and_then(Json::as_arr).unwrap();
        assert_eq!(hists[0].get("p50"), Some(&Json::Null));
        // The render path skips empty histograms entirely.
        assert!(!snapshot.render().contains("empty.hist"));
    }

    #[test]
    fn json_report_round_trips_through_parser() {
        let doc = sample().to_json();
        let parsed = crate::json::parse(&doc.to_string()).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn render_nests_children_and_skips_zero_counters() {
        let text = sample().render();
        assert!(text.contains("study"), "{text}");
        assert!(text.contains("    train"), "child indented: {text}");
        assert!(text.contains("sim.events_processed"), "{text}");
        assert!(!text.contains("ml.train_iterations"), "zero counter hidden: {text}");
        assert!(text.contains("histogram sim.toggles_per_cycle (total 10)"), "{text}");
        assert!(text.contains("~quantiles p50=2 p90=2 p99=2"), "{text}");
        assert!(text.contains("> 2"), "overflow bucket labeled: {text}");
    }

    #[test]
    fn self_time_subtracts_direct_children_and_clamps() {
        let snapshot = Snapshot {
            spans: vec![
                ("study".into(), stat(5_000_000, 1)),
                ("study/train".into(), stat(2_000_000, 4)),
                // Parallel children can out-accumulate the parent; the
                // parent's self time clamps at zero instead of wrapping.
                ("study/train/fit".into(), stat(9_000_000, 8)),
            ],
            counters: vec![],
            histograms: vec![],
        };
        let self_ns = snapshot.self_times_ns();
        assert_eq!(self_ns, vec![3_000_000, 0, 9_000_000]);
    }

    #[test]
    fn render_sorts_siblings_by_self_time_and_lists_hot_paths() {
        let snapshot = Snapshot {
            spans: vec![
                ("study".into(), stat(10_000_000, 1)),
                ("study/aaa_cheap".into(), stat(1_000_000, 1)),
                ("study/zzz_hot".into(), stat(8_000_000, 1)),
            ],
            counters: vec![],
            histograms: vec![],
        };
        let text = snapshot.render();
        let hot = text.find("zzz_hot").expect("hot child rendered");
        let cheap = text.find("aaa_cheap").expect("cheap child rendered");
        assert!(hot < cheap, "hot sibling first despite sorting later by name: {text}");
        assert!(text.contains("hot paths (self time):"), "{text}");
        // Hottest self time leads the table: zzz_hot (8 ms self) beats
        // study (10 total - 9 children = 1 ms self).
        let table = &text[text.find("hot paths").unwrap()..];
        assert!(
            table.find("study/zzz_hot").unwrap() < table.find("study/aaa_cheap").unwrap(),
            "{table}"
        );
    }

    #[test]
    fn json_spans_carry_self_and_extremes_and_profile_block() {
        let doc = sample().to_json();
        let spans = doc.get("spans").and_then(Json::as_arr).unwrap();
        assert_eq!(spans[0].get("self_ns").and_then(Json::as_f64), Some(3_000_000.0));
        assert!(spans[0].get("min_ns").is_some() && spans[0].get("max_ns").is_some());
        let profile = doc.get("profile").unwrap();
        assert_eq!(profile.get("schema").and_then(Json::as_str), Some(PROF_SCHEMA));
        let hot = profile.get("hot_paths").and_then(Json::as_arr).unwrap();
        assert_eq!(hot[0].get("path").and_then(Json::as_str), Some("study"));
        assert_eq!(hot[0].get("self_ns").and_then(Json::as_f64), Some(3_000_000.0));
    }
}
