//! The reporter: renders span timings + metrics as a human-readable
//! stderr summary and serializes them to a versioned JSON document.
//!
//! Schema `tevot-obs/1`:
//!
//! ```json
//! {
//!   "schema": "tevot-obs/1",
//!   "spans": [
//!     {"path": "study/characterize", "total_ns": 123456, "count": 3}
//!   ],
//!   "counters": [
//!     {"name": "sim.events_processed", "value": 42}
//!   ],
//!   "histograms": [
//!     {"name": "sim.cycle_delay_ps",
//!      "bounds": [250, 500],
//!      "counts": [10, 5, 1],
//!      "total": 16,
//!      "p50": 287.5, "p90": 470.0, "p99": 500.0}
//!   ]
//! }
//! ```
//!
//! `spans` is sorted by slash-joined path (parents precede children);
//! `counters`/`histograms` follow registry order. `counts` has one entry
//! per bound plus a trailing overflow bucket; `p50`/`p90`/`p99` are
//! interpolated quantile estimates ([`metrics::quantile_from`]), `null`
//! when the histogram is empty. The quantile members were added after the
//! first `tevot-obs/1` reports shipped; the schema stays `tevot-obs/1`
//! because the addition is purely additive and consumers ignore unknown
//! members. The stderr summary and the JSON document are rendered from
//! the same [`Snapshot`], so they always agree.

use std::io::Write;
use std::path::{Path, PathBuf};

use crate::json::Json;
use crate::metrics;
use crate::span::{self, SpanStat, PATH_SEPARATOR};

/// The schema identifier written into every JSON report.
pub const SCHEMA: &str = "tevot-obs/1";

/// A point-in-time copy of every span, counter, and histogram.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Span paths with accumulated stats, sorted by path.
    pub spans: Vec<(String, SpanStat)>,
    /// `(name, value)` for every registered counter, in registry order.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, bounds, counts)` for every registered histogram.
    pub histograms: Vec<(&'static str, &'static [u64], Vec<u64>)>,
}

impl Snapshot {
    /// Captures the current state of the global registries.
    pub fn capture() -> Snapshot {
        Snapshot {
            spans: span::snapshot(),
            counters: metrics::counters().iter().map(|c| (c.name(), c.get())).collect(),
            histograms: metrics::histograms()
                .iter()
                .map(|h| (h.name(), h.bounds(), h.counts()))
                .collect(),
        }
    }

    /// Serializes to the versioned `tevot-obs/1` JSON document.
    pub fn to_json(&self) -> Json {
        let spans = self
            .spans
            .iter()
            .map(|(path, stat)| {
                Json::obj(vec![
                    ("path", Json::Str(path.clone())),
                    ("total_ns", Json::Num(stat.total_ns as f64)),
                    ("count", Json::from(stat.count)),
                ])
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(name, value)| {
                Json::obj(vec![("name", Json::from(*name)), ("value", Json::from(*value))])
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(name, bounds, counts)| {
                let q = |p: f64| {
                    metrics::quantile_from(bounds, counts, p).map(Json::Num).unwrap_or(Json::Null)
                };
                Json::obj(vec![
                    ("name", Json::from(*name)),
                    ("bounds", Json::Arr(bounds.iter().map(|&b| Json::from(b)).collect())),
                    ("counts", Json::Arr(counts.iter().map(|&c| Json::from(c)).collect())),
                    ("total", Json::from(counts.iter().sum::<u64>())),
                    ("p50", q(0.5)),
                    ("p90", q(0.9)),
                    ("p99", q(0.99)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("schema", Json::from(SCHEMA)),
            ("spans", Json::Arr(spans)),
            ("counters", Json::Arr(counters)),
            ("histograms", Json::Arr(histograms)),
        ])
    }

    /// Renders the human-readable summary: a stage-time tree followed by
    /// non-zero counters and histograms.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("── tevot-obs summary ──\n");
        if self.spans.is_empty() {
            out.push_str("stages: (none recorded)\n");
        } else {
            out.push_str("stages:\n");
            for (path, stat) in &self.spans {
                let depth = path.matches(PATH_SEPARATOR).count();
                let name = path.rsplit(PATH_SEPARATOR).next().unwrap_or(path);
                let ms = stat.total_ns as f64 / 1e6;
                out.push_str(&format!(
                    "  {:indent$}{name:<24} {ms:>10.3} ms  x{}\n",
                    "",
                    stat.count,
                    indent = depth * 2,
                ));
            }
        }
        let live: Vec<_> = self.counters.iter().filter(|(_, v)| *v > 0).collect();
        if !live.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in live {
                out.push_str(&format!("  {name:<28} {value:>14}\n"));
            }
        }
        for (name, bounds, counts) in &self.histograms {
            let total: u64 = counts.iter().sum();
            if total == 0 {
                continue;
            }
            out.push_str(&format!("histogram {name} (total {total}):\n"));
            if let (Some(p50), Some(p90), Some(p99)) = (
                metrics::quantile_from(bounds, counts, 0.5),
                metrics::quantile_from(bounds, counts, 0.9),
                metrics::quantile_from(bounds, counts, 0.99),
            ) {
                out.push_str(&format!("  ~quantiles p50={p50:.0} p90={p90:.0} p99={p99:.0}\n"));
            }
            let peak = counts.iter().copied().max().unwrap_or(1).max(1);
            for (i, &count) in counts.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                let edge = match bounds.get(i) {
                    Some(b) => format!("<= {b}"),
                    None => format!("> {}", bounds.last().unwrap_or(&0)),
                };
                let bar = "#".repeat(((count * 24).div_ceil(peak)) as usize);
                out.push_str(&format!("  {edge:>10} {count:>12} {bar}\n"));
            }
        }
        out
    }
}

/// Writes `snapshot` as JSON to `path`.
///
/// # Errors
///
/// Returns the I/O error with the offending path in the message.
pub fn write_json(snapshot: &Snapshot, path: &Path) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path).map_err(|e| {
        std::io::Error::new(e.kind(), format!("cannot write metrics to {}: {e}", path.display()))
    })?;
    writeln!(file, "{}", snapshot.to_json())
}

/// RAII reporter: on drop, captures a [`Snapshot`], writes it as JSON if
/// a path was configured, and prints the stderr summary when requested.
///
/// The stderr summary prints when either [`FinishGuard::summary`] was
/// enabled or the `TEVOT_OBS_SUMMARY` environment variable is set (to
/// anything but `0`); a JSON path alone stays quiet so scripted runs can
/// collect metrics without extra output.
#[derive(Debug, Default)]
pub struct FinishGuard {
    metrics_path: Option<PathBuf>,
    trace_path: Option<PathBuf>,
    summary: bool,
}

impl FinishGuard {
    /// A guard that does nothing unless configured.
    pub fn new() -> FinishGuard {
        FinishGuard::default()
    }

    /// Writes the JSON report to `path` on drop (the `--metrics <path>`
    /// flag). `None` leaves the current setting unchanged.
    pub fn metrics_path(mut self, path: Option<PathBuf>) -> FinishGuard {
        if path.is_some() {
            self.metrics_path = path;
        }
        self
    }

    /// Enables timeline-event recording now and writes the Chrome
    /// trace-format JSON to `path` on drop (the `--trace <path>` flag).
    /// `None` leaves the current setting unchanged.
    pub fn trace_path(mut self, path: Option<PathBuf>) -> FinishGuard {
        if path.is_some() {
            crate::trace::enable();
            self.trace_path = path;
        }
        self
    }

    /// Forces the stderr summary on drop.
    pub fn summary(mut self, enabled: bool) -> FinishGuard {
        self.summary = enabled;
        self
    }
}

fn env_summary_requested() -> bool {
    matches!(std::env::var("TEVOT_OBS_SUMMARY"), Ok(v) if !v.is_empty() && v != "0")
}

impl Drop for FinishGuard {
    fn drop(&mut self) {
        if let Some(path) = &self.trace_path {
            match crate::trace::write_chrome_trace(path) {
                Ok(()) => crate::info!("trace written to {}", path.display()),
                Err(e) => crate::error!("{e}"),
            }
        }
        let want_summary = self.summary || env_summary_requested();
        if self.metrics_path.is_none() && !want_summary {
            return;
        }
        let snapshot = Snapshot::capture();
        if let Some(path) = &self.metrics_path {
            match write_json(&snapshot, path) {
                Ok(()) => crate::info!("metrics written to {}", path.display()),
                Err(e) => crate::error!("{e}"),
            }
        }
        if want_summary {
            let _ = std::io::stderr().lock().write_all(snapshot.render().as_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            spans: vec![
                ("study".into(), SpanStat { total_ns: 5_000_000, count: 1 }),
                ("study/train".into(), SpanStat { total_ns: 2_000_000, count: 4 }),
            ],
            counters: vec![("sim.events_processed", 42), ("ml.train_iterations", 0)],
            histograms: vec![("sim.toggles_per_cycle", &[1, 2][..], vec![3, 0, 7])],
        }
    }

    #[test]
    fn json_document_has_schema_and_all_sections() {
        let doc = sample().to_json();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        let spans = doc.get("spans").and_then(Json::as_arr).unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].get("path").and_then(Json::as_str), Some("study/train"));
        assert_eq!(spans[1].get("count").and_then(Json::as_u64), Some(4));
        let counters = doc.get("counters").and_then(Json::as_arr).unwrap();
        assert_eq!(counters[0].get("value").and_then(Json::as_u64), Some(42));
        let hists = doc.get("histograms").and_then(Json::as_arr).unwrap();
        assert_eq!(hists[0].get("total").and_then(Json::as_u64), Some(10));
        assert_eq!(hists[0].get("counts").and_then(Json::as_arr).unwrap().len(), 3);
        // 7 of 10 observations sit in the overflow bucket, so p50 and p99
        // both saturate at the last finite bound.
        assert_eq!(hists[0].get("p50").and_then(Json::as_f64), Some(2.0));
        assert_eq!(hists[0].get("p99").and_then(Json::as_f64), Some(2.0));
    }

    #[test]
    fn empty_histogram_serializes_null_quantiles() {
        let snapshot = Snapshot {
            spans: vec![],
            counters: vec![],
            histograms: vec![("empty.hist", &[1][..], vec![0, 0])],
        };
        let doc = snapshot.to_json();
        let hists = doc.get("histograms").and_then(Json::as_arr).unwrap();
        assert_eq!(hists[0].get("p50"), Some(&Json::Null));
        // The render path skips empty histograms entirely.
        assert!(!snapshot.render().contains("empty.hist"));
    }

    #[test]
    fn json_report_round_trips_through_parser() {
        let doc = sample().to_json();
        let parsed = crate::json::parse(&doc.to_string()).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn render_nests_children_and_skips_zero_counters() {
        let text = sample().render();
        assert!(text.contains("study"), "{text}");
        assert!(text.contains("    train"), "child indented: {text}");
        assert!(text.contains("sim.events_processed"), "{text}");
        assert!(!text.contains("ml.train_iterations"), "zero counter hidden: {text}");
        assert!(text.contains("histogram sim.toggles_per_cycle (total 10)"), "{text}");
        assert!(text.contains("~quantiles p50=2 p90=2 p99=2"), "{text}");
        assert!(text.contains("> 2"), "overflow bucket labeled: {text}");
    }
}
