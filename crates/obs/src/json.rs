//! Hand-rolled JSON: a value model, a writer, and a parser.
//!
//! The repo ethos is "rebuilt from scratch in Rust" and the build
//! environment has no registry access, so the metrics reporter carries
//! its own (strict, allocation-light) JSON implementation instead of
//! `serde`. Object member order is preserved, which keeps reports diffable
//! and makes round-trip testing exact.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number. Integers up to 2^53 round-trip exactly; the reporter
    /// never emits anything larger.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object values.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as an integer, if this is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl fmt::Display for Json {
    /// Serializes compactly (no insignificant whitespace).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        write!(f, "{}", *n as i64)
                    } else {
                        write!(f, "{n}")
                    }
                } else {
                    // JSON has no Infinity/NaN; null is the least-bad spelling.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A parse failure: a message plus the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (surrounding whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            // Surrogate pairs are not needed for metric
                            // names; reject rather than mis-decode.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.error("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape character")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are trustworthy).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>().map(Json::Num).map_err(|_| self.error(&format!("bad number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&v.to_string()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".into());
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn nested_structures_round_trip_preserving_order() {
        let v = Json::obj(vec![
            ("z", Json::Arr(vec![Json::Num(1.0), Json::Null, Json::Bool(true)])),
            ("a", Json::obj(vec![("k", Json::Str("v".into()))])),
        ]);
        let text = v.to_string();
        assert!(text.starts_with("{\"z\""), "order preserved: {text}");
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_documents() {
        for text in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated", "{a:1}"] {
            assert!(parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn accessors() {
        let v = parse("{\"n\":42,\"s\":\"x\",\"a\":[1]}").unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(42));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }
}
