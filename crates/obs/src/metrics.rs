//! The global metrics registry: relaxed-atomic counters and fixed-bucket
//! histograms.
//!
//! The pipeline's counters and histograms are `static`s defined here, so
//! hot paths pay exactly one relaxed `fetch_add` per update and the
//! reporter can enumerate everything without locks. [`Counter`] and
//! [`Histogram`] are also usable stand-alone (tests, future subsystems);
//! only the statics in this module appear in reports.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotone event counter. Updates are relaxed atomics: cheap on every
/// architecture and exact under concurrency (ordering of increments is
/// irrelevant for a sum).
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// A counter named `name` (dotted `subsystem.event` convention).
    pub const fn new(name: &'static str) -> Counter {
        Counter { name, value: AtomicU64::new(0) }
    }

    /// The counter's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one event.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zeroes the counter (test isolation).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Maximum number of histogram slots (15 finite buckets + overflow).
pub const HISTOGRAM_SLOTS: usize = 16;

/// A fixed-bucket histogram: `bounds[i]` is the inclusive upper edge of
/// bucket `i`; one extra overflow bucket catches everything larger.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    bounds: &'static [u64],
    counts: [AtomicU64; HISTOGRAM_SLOTS],
    sum: AtomicU64,
}

impl Histogram {
    /// A histogram with the given inclusive upper bucket edges, which
    /// must be strictly increasing.
    ///
    /// # Panics
    ///
    /// Panics (at compile time for statics) if more than
    /// `HISTOGRAM_SLOTS - 1` bounds are given.
    pub const fn new(name: &'static str, bounds: &'static [u64]) -> Histogram {
        assert!(bounds.len() < HISTOGRAM_SLOTS, "too many histogram bounds");
        Histogram {
            name,
            bounds,
            counts: [const { AtomicU64::new(0) }; HISTOGRAM_SLOTS],
            sum: AtomicU64::new(0),
        }
    }

    /// The histogram's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The inclusive upper bucket edges.
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// Records one observation of `value`.
    #[inline]
    pub fn record(&self, value: u64) {
        let slot = self.bounds.partition_point(|&b| b < value);
        self.counts[slot].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Per-bucket counts: one per bound, plus the trailing overflow
    /// bucket.
    pub fn counts(&self) -> Vec<u64> {
        self.counts[..=self.bounds.len()].iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.counts().iter().sum()
    }

    /// Sum of every recorded value (wraps at `u64::MAX`, which at
    /// microsecond resolution is ~585k years of recorded latency).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Zeroes every bucket (test isolation).
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
    }

    /// Interpolated quantile estimate (`q` in `[0, 1]`); see
    /// [`quantile_from`]. `None` when nothing was recorded.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        quantile_from(self.bounds, &self.counts(), q)
    }

    /// The `(p50, p90, p99)` quantile estimates, or `None` when nothing
    /// was recorded.
    pub fn quantiles(&self) -> Option<(f64, f64, f64)> {
        Some((self.quantile(0.5)?, self.quantile(0.9)?, self.quantile(0.99)?))
    }
}

/// Interpolated quantile estimation over fixed-bucket histogram data.
///
/// `bounds[i]` is the inclusive upper edge of bucket `i`; `counts` has
/// one entry per bound plus a trailing overflow bucket. The estimate
/// assumes observations are uniformly spread inside their bucket and
/// interpolates linearly between the bucket's edges (bucket 0's lower
/// edge is 0). The overflow bucket has no upper edge, so quantiles that
/// land in it saturate at the last finite bound — a deliberate
/// under-estimate that keeps the result meaningful.
///
/// Returns `None` when `counts` sums to zero, and clamps `q` into
/// `[0, 1]`.
pub fn quantile_from(bounds: &[u64], counts: &[u64], q: f64) -> Option<f64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let target = q.clamp(0.0, 1.0) * total as f64;
    let last_bound = bounds.last().copied().unwrap_or(0) as f64;
    let mut cum = 0u64;
    for (i, &count) in counts.iter().enumerate() {
        if count > 0 && (cum + count) as f64 >= target {
            let Some(&hi) = bounds.get(i) else {
                return Some(last_bound); // overflow bucket: saturate
            };
            let lo = if i == 0 { 0.0 } else { bounds[i - 1] as f64 };
            let fraction = ((target - cum as f64) / count as f64).clamp(0.0, 1.0);
            return Some(lo + fraction * (hi as f64 - lo));
        }
        cum += count;
    }
    // Float round-off pushed the target past the cumulative total.
    Some(last_bound)
}

/// Interpolated quantile of an **ascending-sorted** sample (`q` in
/// `[0, 1]`, clamped).
///
/// Uses the same linear-interpolation convention as [`quantile_from`]
/// applied to exact samples: the rank `q * (n - 1)` is interpolated
/// between its neighbouring order statistics (the "R-7" estimator), so a
/// CLI percentile over raw delays and a `/metrics` histogram percentile
/// agree up to bucket resolution instead of disagreeing by a whole rank
/// the way a truncating index does.
///
/// Returns `None` on an empty sample. Unsorted input yields a
/// meaningless (but memory-safe) result.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    let last = sorted.len().checked_sub(1)?;
    let rank = q.clamp(0.0, 1.0) * last as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let fraction = rank - lo as f64;
    Some(sorted[lo] + fraction * (sorted[hi.min(last)] - sorted[lo]))
}

// ---------------------------------------------------------------------
// The pipeline's registry.
// ---------------------------------------------------------------------

/// Input vectors played through the gate-level simulator.
pub static SIM_CYCLES: Counter = Counter::new("sim.cycles_simulated");
/// Scheduled events popped from the simulator's queue.
pub static SIM_EVENTS: Counter = Counter::new("sim.events_processed");
/// Gate re-evaluations triggered by fan-in changes.
pub static SIM_GATE_EVALS: Counter = Counter::new("sim.gate_evaluations");
/// Primary-output toggles recorded into cycle results.
pub static SIM_OUTPUT_TOGGLES: Counter = Counter::new("sim.output_toggles");
/// 64-vector blocks processed by the levelized engine's bit-parallel pass.
pub static SIM_LEV_BLOCKS: Counter = Counter::new("sim.levelized_blocks");
/// Whole-word (64 cycles at once) gate evaluations in the levelized
/// engine's value-propagation pass.
pub static SIM_LEV_WORD_EVALS: Counter = Counter::new("sim.levelized_word_evals");
/// Fan-in toggles consumed by the levelized engine's arrival-time
/// replay — the merge work it actually did, excluding cycles the
/// non-sensitized skip proved inert (comparable to
/// `sim.gate_evaluations`).
pub static SIM_LEV_REPLAY_EVALS: Counter = Counter::new("sim.levelized_replay_evals");
/// Cycles whose dynamic timing was reconstructed from a VCD dump.
pub static VCD_CYCLES_RECONSTRUCTED: Counter = Counter::new("vcd.cycles_reconstructed");
/// Value-change records parsed from VCD text.
pub static VCD_CHANGES_PARSED: Counter = Counter::new("vcd.changes_parsed");
/// Dataset rows featurized (Eq. 3 feature vectors built).
pub static CORE_ROWS_FEATURIZED: Counter = Counter::new("core.rows_featurized");
/// Model-based per-transition delay/error predictions served.
pub static CORE_PREDICTIONS: Counter = Counter::new("core.predictions");
/// Training iterations: trees fitted, boosting rounds, SVM epochs.
pub static ML_TRAIN_ITERATIONS: Counter = Counter::new("ml.train_iterations");
/// Internal nodes split while growing trees.
pub static ML_NODE_SPLITS: Counter = Counter::new("ml.node_splits");
/// Tasks executed by `tevot-par` parallel regions (any worker count).
pub static PAR_TASKS: Counter = Counter::new("par.tasks");
/// Faults fired by `tevot-resil` failpoints (chaos testing only).
pub static RESIL_FAULTS_INJECTED: Counter = Counter::new("resil.failpoints_fired");
/// I/O operations retried after a transient failure.
pub static RESIL_RETRIES: Counter = Counter::new("resil.retries");
/// Checkpoint shards atomically committed to disk.
pub static RESIL_CKPT_SHARDS_WRITTEN: Counter = Counter::new("resil.ckpt_shards_written");
/// Sweep conditions skipped on resume because a valid shard existed.
pub static RESIL_CKPT_SHARDS_RESUMED: Counter = Counter::new("resil.ckpt_shards_resumed");
/// HTTP requests accepted by `tevot-serve` (all endpoints).
pub static SERVE_REQUESTS: Counter = Counter::new("serve.requests");
/// Requests shed by admission control (queue full → HTTP 503).
pub static SERVE_SHED: Counter = Counter::new("serve.shed");
/// Model registry hot-swaps completed (`POST /models/<name>`).
pub static SERVE_MODEL_SWAPS: Counter = Counter::new("serve.model_swaps");
/// Requests answered with an HTTP error status (4xx/5xx).
pub static SERVE_HTTP_ERRORS: Counter = Counter::new("serve.http_errors");
/// Clock recommendations issued by `tevot-dfs` controllers.
pub static DFS_DECISIONS: Counter = Counter::new("dfs.decisions");
/// Timing errors fed back into `tevot-dfs` controllers (oracle replays
/// and any other closed-loop observation source).
pub static DFS_ERRORS_OBSERVED: Counter = Counter::new("dfs.errors_observed");
/// SLO/drift alerts raised by `tevot-watch` monitors.
pub static WATCH_ALERTS: Counter = Counter::new("watch.alerts");
/// Sampler passes taken over the registry by the watch store.
pub static WATCH_SAMPLES: Counter = Counter::new("watch.samples");
/// Served requests replayed through the simulator oracle for shadow
/// scoring.
pub static WATCH_SHADOW_REPLAYS: Counter = Counter::new("watch.shadow_replays");
/// Worker processes (or threads) spawned by a fleet sweep coordinator,
/// including replacements for dead workers.
pub static FLEET_WORKERS_SPAWNED: Counter = Counter::new("fleet.workers_spawned");
/// Work-unit leases granted to fleet sweep workers.
pub static FLEET_LEASES_GRANTED: Counter = Counter::new("fleet.leases_granted");
/// Work units put back on the queue after a worker died or its lease
/// expired — the fleet's core recovery signal.
pub static FLEET_REASSIGNED: Counter = Counter::new("fleet.reassigned");
/// Heartbeats received by a fleet sweep coordinator.
pub static FLEET_HEARTBEATS: Counter = Counter::new("fleet.heartbeats");
/// Work units completed and journaled by fleet workers.
pub static FLEET_UNITS_COMPLETED: Counter = Counter::new("fleet.units_completed");
/// Requests forwarded by the replica router.
pub static FLEET_ROUTED: Counter = Counter::new("fleet.routed");
/// Forwards retried on the next ring node after a replica failed
/// mid-exchange.
pub static FLEET_FAILOVERS: Counter = Counter::new("fleet.failovers");
/// Replicas ejected from the ring (failed health checks or transport
/// errors).
pub static FLEET_EJECTED: Counter = Counter::new("fleet.ejected");
/// Replicas re-admitted to the ring after passing a health check.
pub static FLEET_READMITTED: Counter = Counter::new("fleet.readmitted");
/// Rolling hot-swap deploys completed across every replica.
pub static FLEET_DEPLOYS: Counter = Counter::new("fleet.rolling_deploys");
/// Stack snapshots taken by the `tevot-prof` sampler thread.
pub static PROF_SAMPLES: Counter = Counter::new("prof.samples");
/// Heap allocations observed by `TevotAlloc` while allocation profiling
/// is enabled (zero while the runtime toggle is off).
pub static ALLOC_ALLOCATIONS: Counter = Counter::new("alloc.allocations");
/// Bytes requested by those observed allocations.
pub static ALLOC_BYTES: Counter = Counter::new("alloc.bytes");

/// Dynamic delay of each simulated cycle, in picoseconds.
pub static SIM_CYCLE_DELAY_PS: Histogram = Histogram::new(
    "sim.cycle_delay_ps",
    &[250, 500, 750, 1000, 1500, 2000, 3000, 4000, 6000, 8000, 12000, 16000, 24000, 32000],
);
/// Output toggles per simulated cycle.
pub static SIM_TOGGLES_PER_CYCLE: Histogram =
    Histogram::new("sim.toggles_per_cycle", &[0, 1, 2, 4, 8, 16, 32, 64, 128, 256]);
/// `POST /predict` wall-clock latency, in microseconds.
pub static SERVE_PREDICT_LATENCY_US: Histogram = Histogram::new(
    "serve.predict_latency_us",
    &[50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000, 1000000],
);
/// `POST /ter` wall-clock latency, in microseconds.
pub static SERVE_TER_LATENCY_US: Histogram = Histogram::new(
    "serve.ter_latency_us",
    &[50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000, 1000000],
);
/// `POST /dfs` wall-clock latency, in microseconds.
pub static SERVE_DFS_LATENCY_US: Histogram = Histogram::new(
    "serve.dfs_latency_us",
    &[50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000, 1000000],
);
/// Jobs merged into each executed microbatch.
pub static SERVE_BATCH_JOBS: Histogram =
    Histogram::new("serve.batch_jobs", &[1, 2, 4, 8, 16, 32, 64, 128, 256]);
/// Prediction queue depth observed at each admission.
pub static SERVE_QUEUE_DEPTH: Histogram =
    Histogram::new("serve.queue_depth", &[0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]);

static COUNTERS: [&Counter; 40] = [
    &SIM_CYCLES,
    &SIM_EVENTS,
    &SIM_GATE_EVALS,
    &SIM_OUTPUT_TOGGLES,
    &SIM_LEV_BLOCKS,
    &SIM_LEV_WORD_EVALS,
    &SIM_LEV_REPLAY_EVALS,
    &VCD_CYCLES_RECONSTRUCTED,
    &VCD_CHANGES_PARSED,
    &CORE_ROWS_FEATURIZED,
    &CORE_PREDICTIONS,
    &ML_TRAIN_ITERATIONS,
    &ML_NODE_SPLITS,
    &PAR_TASKS,
    &RESIL_FAULTS_INJECTED,
    &RESIL_RETRIES,
    &RESIL_CKPT_SHARDS_WRITTEN,
    &RESIL_CKPT_SHARDS_RESUMED,
    &SERVE_REQUESTS,
    &SERVE_SHED,
    &SERVE_MODEL_SWAPS,
    &SERVE_HTTP_ERRORS,
    &DFS_DECISIONS,
    &DFS_ERRORS_OBSERVED,
    &WATCH_ALERTS,
    &WATCH_SAMPLES,
    &WATCH_SHADOW_REPLAYS,
    &FLEET_WORKERS_SPAWNED,
    &FLEET_LEASES_GRANTED,
    &FLEET_REASSIGNED,
    &FLEET_HEARTBEATS,
    &FLEET_UNITS_COMPLETED,
    &FLEET_ROUTED,
    &FLEET_FAILOVERS,
    &FLEET_EJECTED,
    &FLEET_READMITTED,
    &FLEET_DEPLOYS,
    &PROF_SAMPLES,
    &ALLOC_ALLOCATIONS,
    &ALLOC_BYTES,
];

static HISTOGRAMS: [&Histogram; 7] = [
    &SIM_CYCLE_DELAY_PS,
    &SIM_TOGGLES_PER_CYCLE,
    &SERVE_PREDICT_LATENCY_US,
    &SERVE_TER_LATENCY_US,
    &SERVE_DFS_LATENCY_US,
    &SERVE_BATCH_JOBS,
    &SERVE_QUEUE_DEPTH,
];

/// Every registered counter, in report order.
pub fn counters() -> &'static [&'static Counter] {
    &COUNTERS
}

/// Every registered histogram, in report order.
pub fn histograms() -> &'static [&'static Histogram] {
    &HISTOGRAMS
}

/// Zeroes every registered counter and histogram (test isolation).
pub fn reset_all() {
    for c in counters() {
        c.reset();
    }
    for h in histograms() {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        static C: Counter = Counter::new("test.local");
        C.add(3);
        C.incr();
        assert_eq!(C.get(), 4);
        C.reset();
        assert_eq!(C.get(), 0);
    }

    #[test]
    fn histogram_bucketing_is_inclusive_on_upper_edges() {
        static H: Histogram = Histogram::new("test.hist", &[10, 20, 30]);
        H.record(0); // bucket 0 (<= 10)
        H.record(10); // bucket 0: edges are inclusive
        H.record(11); // bucket 1
        H.record(30); // bucket 2
        H.record(31); // overflow
        H.record(u64::MAX); // overflow
        assert_eq!(H.counts(), vec![2, 1, 1, 2]);
        assert_eq!(H.total(), 6);
    }

    #[test]
    fn histogram_sum_tracks_recorded_values() {
        static H: Histogram = Histogram::new("test.sum", &[10, 20]);
        H.record(3);
        H.record(15);
        H.record(100);
        assert_eq!(H.sum(), 118);
        H.reset();
        assert_eq!(H.sum(), 0);
    }

    #[test]
    fn quantiles_of_empty_histogram_are_none() {
        static H: Histogram = Histogram::new("test.q_empty", &[10, 20]);
        assert_eq!(H.quantile(0.5), None);
        assert_eq!(H.quantiles(), None);
        assert_eq!(quantile_from(&[10, 20], &[0, 0, 0], 0.99), None);
    }

    #[test]
    fn quantiles_interpolate_within_a_single_bucket() {
        // 100 observations, all in the [0, 100] bucket: the estimate
        // spreads them uniformly, so p50 ~ 50, p90 ~ 90.
        let bounds = &[100u64];
        let counts = &[100u64, 0];
        assert_eq!(quantile_from(bounds, counts, 0.5), Some(50.0));
        assert_eq!(quantile_from(bounds, counts, 0.9), Some(90.0));
        assert_eq!(quantile_from(bounds, counts, 0.0), Some(0.0));
        assert_eq!(quantile_from(bounds, counts, 1.0), Some(100.0));
        // Out-of-range q clamps instead of extrapolating.
        assert_eq!(quantile_from(bounds, counts, 7.0), Some(100.0));
    }

    #[test]
    fn quantiles_cross_buckets_and_skip_empty_ones() {
        // Bucket edges 10 / 20 / 40; 10 obs in (20, 40], 10 in overflow.
        let bounds = &[10u64, 20, 40];
        let counts = &[0u64, 0, 10, 10];
        // p25 lands mid-way through the (20, 40] bucket.
        assert_eq!(quantile_from(bounds, counts, 0.25), Some(30.0));
        // p75 lands in the overflow bucket and saturates at the last
        // finite bound.
        assert_eq!(quantile_from(bounds, counts, 0.75), Some(40.0));
    }

    #[test]
    fn quantiles_all_overflow_saturate() {
        static H: Histogram = Histogram::new("test.q_overflow", &[5]);
        H.record(1_000);
        H.record(2_000);
        assert_eq!(H.quantile(0.5), Some(5.0));
        assert_eq!(H.quantiles(), Some((5.0, 5.0, 5.0)));
    }

    #[test]
    fn quantile_sorted_interpolates_between_order_statistics() {
        let sorted = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile_sorted(&sorted, 0.0), Some(10.0));
        assert_eq!(quantile_sorted(&sorted, 1.0), Some(40.0));
        // Rank 1.5: halfway between the 2nd and 3rd order statistics —
        // a truncating index would floor this to 20.0.
        assert_eq!(quantile_sorted(&sorted, 0.5), Some(25.0));
        // 0.99 * 3 is not exactly representable; compare with tolerance.
        let p99 = quantile_sorted(&sorted, 0.99).unwrap();
        assert!((p99 - 39.7).abs() < 1e-9, "p99 {p99}");
        assert_eq!(quantile_sorted(&[], 0.5), None);
        assert_eq!(quantile_sorted(&[7.0], 0.5), Some(7.0));
        // Out-of-range q clamps.
        assert_eq!(quantile_sorted(&sorted, 7.0), Some(40.0));
        assert_eq!(quantile_sorted(&sorted, -1.0), Some(10.0));
    }

    #[test]
    fn registry_names_are_unique() {
        let mut names: Vec<&str> = counters().iter().map(|c| c.name()).collect();
        names.extend(histograms().iter().map(|h| h.name()));
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate metric names");
    }
}
