//! Hierarchical wall-time spans.
//!
//! A [`SpanGuard`] measures the wall time between its creation and drop.
//! Guards nest per thread: a guard opened while another is live records
//! under the parent's path, so the aggregate is a tree of stage timings
//! ("study/characterize/trace"). Aggregation is global across threads —
//! two threads timing the same path accumulate into one node.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use crate::stacks::NO_PREV;

/// Separator between nested span names in an aggregation path.
pub const PATH_SEPARATOR: char = '/';

/// Accumulated statistics of one span path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStat {
    /// Total wall time spent inside the span, in nanoseconds.
    pub total_ns: u128,
    /// Number of times the span closed.
    pub count: u64,
    /// Shortest single closure, in nanoseconds (0 until the first close).
    pub min_ns: u128,
    /// Longest single closure, in nanoseconds.
    pub max_ns: u128,
}

impl SpanStat {
    /// Folds one closed span of `elapsed` nanoseconds into the stat.
    fn record(&mut self, elapsed: u128) {
        self.total_ns += elapsed;
        self.count += 1;
        self.max_ns = self.max_ns.max(elapsed);
        self.min_ns = if self.count == 1 { elapsed } else { self.min_ns.min(elapsed) };
    }
}

static SPANS: Mutex<BTreeMap<String, SpanStat>> = Mutex::new(BTreeMap::new());

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII timer for one pipeline stage; create via [`span!`](crate::span!)
/// or [`debug_span!`](crate::debug_span!).
///
/// Besides aggregating into the wall-time tree, a live guard feeds the
/// timeline recorder (see [`trace`](crate::trace)): begin on `enter`, end
/// on drop — so once tracing is enabled, every span becomes a slice in
/// the exported Chrome trace.
#[derive(Debug)]
pub struct SpanGuard {
    /// Full path of this span, or `None` for a disabled guard.
    path: Option<String>,
    /// Leaf name (the trace-slice label).
    name: &'static str,
    /// Slot path id to restore on drop when stack-slot publishing was
    /// live at enter ([`stacks::NO_PREV`](crate::stacks) otherwise).
    prev_slot: usize,
    start: Instant,
}

impl SpanGuard {
    /// Opens a span named `name`, nested under the thread's innermost
    /// live span.
    pub fn enter(name: &'static str) -> SpanGuard {
        let path = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.push(name);
            let mut path = String::with_capacity(stack.iter().map(|s| s.len() + 1).sum());
            for (i, part) in stack.iter().enumerate() {
                if i > 0 {
                    path.push(PATH_SEPARATOR);
                }
                path.push_str(part);
            }
            path
        });
        crate::trace::begin(name);
        let prev_slot =
            if crate::stacks::enabled() { crate::stacks::publish(&path) } else { NO_PREV };
        SpanGuard { path: Some(path), name, prev_slot, start: Instant::now() }
    }

    /// A no-op guard (what `debug_span!` expands to when the
    /// `debug-spans` feature is off).
    pub fn disabled() -> SpanGuard {
        SpanGuard { path: None, name: "", prev_slot: NO_PREV, start: Instant::now() }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(path) = self.path.take() else { return };
        crate::trace::end(self.name);
        crate::stacks::restore(self.prev_slot);
        let elapsed = self.start.elapsed().as_nanos();
        STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        let mut spans = SPANS.lock().unwrap_or_else(|e| e.into_inner());
        spans.entry(path).or_default().record(elapsed);
    }
}

/// A consistent snapshot of every span path recorded so far, sorted by
/// path (so parents precede children).
pub fn snapshot() -> Vec<(String, SpanStat)> {
    let spans = SPANS.lock().unwrap_or_else(|e| e.into_inner());
    spans.iter().map(|(k, v)| (k.clone(), *v)).collect()
}

/// Clears all recorded spans (test isolation).
pub fn reset() {
    SPANS.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_guard_records_nothing() {
        {
            let _g = SpanGuard::disabled();
        }
        // Other tests share the global registry; only assert on our key.
        assert!(snapshot().iter().all(|(p, _)| !p.contains("disabled")));
    }

    #[test]
    fn min_max_track_single_closure_extremes() {
        let mut stat = SpanStat::default();
        for elapsed in [30, 10, 20] {
            stat.record(elapsed);
        }
        assert_eq!(stat.total_ns, 60);
        assert_eq!(stat.count, 3);
        assert_eq!(stat.min_ns, 10);
        assert_eq!(stat.max_ns, 30);
    }

    #[test]
    fn guard_survives_being_moved() {
        reset();
        let g = SpanGuard::enter("moved");
        let boxed = Box::new(g);
        drop(boxed);
        let snap = snapshot();
        assert_eq!(snap.iter().filter(|(p, _)| p == "moved").count(), 1);
    }
}
