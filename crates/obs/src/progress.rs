//! Rate-limited progress lines with an ETA for long sweeps.
//!
//! A ten-minute characterization sweep that prints nothing is
//! indistinguishable from a hung one; a sweep that prints every cycle
//! drowns the terminal. [`Progress`] sits between: `tick()` is cheap
//! (one relaxed atomic add), and a line is emitted at most once per
//! configured interval, via the [`info!`](crate::info!) channel:
//!
//! ```text
//! [info tevot_bench] characterize int-add 12/36 (33%) elapsed 8.1s eta 16.2s
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Default minimum gap between two emitted lines.
pub const DEFAULT_INTERVAL: Duration = Duration::from_millis(500);

/// A rate-limited progress reporter over a known amount of work.
#[derive(Debug)]
pub struct Progress {
    label: String,
    total: u64,
    done: AtomicU64,
    start: Instant,
    interval: Duration,
    last_emit: Mutex<Option<Instant>>,
}

impl Progress {
    /// A reporter for `total` units of work, emitting at most one line
    /// per [`DEFAULT_INTERVAL`]. `total == 0` is allowed (the ETA is
    /// simply omitted).
    pub fn new(label: impl Into<String>, total: u64) -> Progress {
        Progress::with_interval(label, total, DEFAULT_INTERVAL)
    }

    /// A reporter with an explicit rate-limit interval.
    pub fn with_interval(label: impl Into<String>, total: u64, interval: Duration) -> Progress {
        Progress {
            label: label.into(),
            total,
            done: AtomicU64::new(0),
            start: Instant::now(),
            interval,
            last_emit: Mutex::new(None),
        }
    }

    /// Units completed so far.
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Records one completed unit; may emit a line.
    pub fn tick(&self) {
        self.add(1);
    }

    /// Records `n` completed units; may emit a line (rate-limited).
    pub fn add(&self, n: u64) {
        let done = self.done.fetch_add(n, Ordering::Relaxed) + n;
        if !crate::enabled(crate::Level::Info) {
            return;
        }
        // try_lock: if another thread is mid-emit, this tick just skips
        // its chance — the next one will report a fresher count anyway.
        if let Ok(mut last) = self.last_emit.try_lock() {
            let now = Instant::now();
            let due = match *last {
                Some(t) => now.duration_since(t) >= self.interval,
                None => true,
            };
            if due {
                *last = Some(now);
                crate::info!(
                    "{}",
                    render_line(&self.label, done, self.total, self.start.elapsed())
                );
            }
        }
    }

    /// Emits the final line unconditionally (bypassing the rate limit).
    pub fn finish(&self) {
        crate::info!("{}", render_line(&self.label, self.done(), self.total, self.start.elapsed()));
    }
}

/// Formats one progress line: `label done/total (pct%) elapsed Xs eta Ys`.
/// The ETA extrapolates the observed rate and is omitted when `total` is
/// zero/unknown or nothing is done yet.
pub fn render_line(label: &str, done: u64, total: u64, elapsed: Duration) -> String {
    let secs = elapsed.as_secs_f64();
    if total == 0 {
        return format!("{label} {done} done, elapsed {secs:.1}s");
    }
    let pct = done as f64 / total as f64 * 100.0;
    let eta = if done == 0 || done >= total {
        String::new()
    } else {
        let remaining = secs / done as f64 * (total - done) as f64;
        format!(" eta {remaining:.1}s")
    };
    format!("{label} {done}/{total} ({pct:.0}%) elapsed {secs:.1}s{eta}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_math_and_formatting() {
        let line = render_line("characterize", 2, 10, Duration::from_secs(10));
        // 2 done in 10 s -> 5 s/unit -> 8 remaining units = 40 s.
        assert_eq!(line, "characterize 2/10 (20%) elapsed 10.0s eta 40.0s");
        // Complete: no ETA.
        let line = render_line("characterize", 10, 10, Duration::from_secs(50));
        assert_eq!(line, "characterize 10/10 (100%) elapsed 50.0s");
        // Nothing done yet: no ETA (no rate to extrapolate).
        assert!(!render_line("x", 0, 10, Duration::from_secs(1)).contains("eta"));
        // Unknown total.
        assert_eq!(render_line("x", 3, 0, Duration::from_secs(2)), "x 3 done, elapsed 2.0s");
    }

    #[test]
    fn ticks_accumulate_and_rate_limit_suppresses_spam() {
        let p = Progress::with_interval("test", 100, Duration::from_secs(3600));
        for _ in 0..50 {
            p.tick();
        }
        p.add(25);
        assert_eq!(p.done(), 75);
        p.finish(); // must not panic; bypasses the rate limit
    }

    #[test]
    fn zero_total_is_tolerated() {
        let p = Progress::new("open-ended", 0);
        p.tick();
        assert_eq!(p.done(), 1);
        p.finish();
    }
}
