//! Prometheus text exposition (format 0.0.4) for the metrics registry.
//!
//! Renders every registered [`Counter`](crate::metrics::Counter) and
//! [`Histogram`](crate::metrics::Histogram) in the plain-text format any
//! Prometheus-compatible scraper understands, and provides the inverse
//! — a strict line parser — so CI can assert a scrape round-trips
//! without external tooling.
//!
//! Conventions:
//!
//! * Registry names are dotted (`serve.requests`); exposition names are
//!   mangled through [`metric_name`] into `tevot_serve_requests` (every
//!   character outside `[a-zA-Z0-9_:]` becomes `_`, plus the `tevot_`
//!   namespace prefix).
//! * Counters render as `<name>_total <value>`.
//! * Histograms render as cumulative `<name>_bucket{le="..."}` series
//!   (one per finite upper edge plus `le="+Inf"`), then `<name>_sum` and
//!   `<name>_count` — the shape `histogram_quantile()` expects.
//! * Label values escape `\`, `"`, and newlines per the format spec
//!   ([`escape_label_value`]).

use crate::metrics::{Counter, Histogram};

/// Mangles a dotted registry name into a Prometheus metric name:
/// `tevot_` prefix, every character outside `[a-zA-Z0-9_:]` replaced by
/// `_`, and a leading `_` inserted when the name would start with a
/// digit.
pub fn metric_name(registry_name: &str) -> String {
    let mut out = String::with_capacity(registry_name.len() + 6);
    out.push_str("tevot_");
    for (i, c) in registry_name.chars().enumerate() {
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label value per the exposition format: `\` → `\\`,
/// `"` → `\"`, newline → `\n`.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders one counter (TYPE line + sample).
pub fn render_counter(out: &mut String, name: &str, value: u64) {
    let prom = metric_name(name);
    out.push_str(&format!("# TYPE {prom}_total counter\n{prom}_total {value}\n"));
}

/// Renders one histogram (TYPE line + cumulative buckets + sum + count).
///
/// `counts` holds one entry per finite bound plus the trailing overflow
/// bucket, the layout [`Histogram::counts`](crate::metrics::Histogram::counts)
/// returns.
pub fn render_histogram(out: &mut String, name: &str, bounds: &[u64], counts: &[u64], sum: u64) {
    let prom = metric_name(name);
    out.push_str(&format!("# TYPE {prom} histogram\n"));
    let mut cumulative = 0u64;
    for (i, &bound) in bounds.iter().enumerate() {
        cumulative += counts.get(i).copied().unwrap_or(0);
        let le = escape_label_value(&bound.to_string());
        out.push_str(&format!("{prom}_bucket{{le=\"{le}\"}} {cumulative}\n"));
    }
    let total: u64 = counts.iter().sum();
    out.push_str(&format!("{prom}_bucket{{le=\"+Inf\"}} {total}\n"));
    out.push_str(&format!("{prom}_sum {sum}\n"));
    out.push_str(&format!("{prom}_count {total}\n"));
}

/// Renders explicit counter/histogram slices — the testable core of
/// [`render`].
pub fn render_parts(counters: &[&Counter], histograms: &[&Histogram]) -> String {
    let mut out = String::new();
    for c in counters {
        render_counter(&mut out, c.name(), c.get());
    }
    for h in histograms {
        render_histogram(&mut out, h.name(), h.bounds(), &h.counts(), h.sum());
    }
    out
}

/// Renders the entire global registry (the `GET /metrics?format=prom`
/// body).
pub fn render() -> String {
    render_parts(crate::metrics::counters(), crate::metrics::histograms())
}

/// One parsed exposition sample.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Mangled metric name (e.g. `tevot_serve_requests_total`).
    pub name: String,
    /// Label pairs in source order (unescaped values).
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// Parses exposition text line-by-line into samples, skipping comments
/// (`# HELP`, `# TYPE`) and blank lines.
///
/// # Errors
///
/// Returns `Err` naming the first malformed line (1-based) — an
/// unterminated label set, a bad name character, or a non-numeric value.
pub fn parse(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (index, line) in text.lines().enumerate() {
        let line_no = index + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(parse_sample(line).map_err(|e| format!("line {line_no}: {e} in {line:?}"))?);
    }
    Ok(samples)
}

fn parse_sample(line: &str) -> Result<PromSample, String> {
    let name_end = line
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == ':'))
        .unwrap_or(line.len());
    if name_end == 0 {
        return Err("missing metric name".into());
    }
    let name = line[..name_end].to_string();
    let rest = &line[name_end..];
    let (labels, rest) = if let Some(after_brace) = rest.strip_prefix('{') {
        let close = find_unescaped_close(after_brace)
            .ok_or_else(|| "unterminated label set".to_string())?;
        (parse_labels(&after_brace[..close])?, &after_brace[close + 1..])
    } else {
        (Vec::new(), rest)
    };
    let value_text = rest.trim();
    // Exposition values may carry an optional timestamp; take the first
    // token as the value.
    let value_token = value_text.split_whitespace().next().unwrap_or("");
    let value = match value_token {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        t => t.parse::<f64>().map_err(|_| format!("bad value {t:?}"))?,
    };
    Ok(PromSample { name, labels, value })
}

/// Index of the first `}` outside a quoted label value.
fn find_unescaped_close(text: &str) -> Option<usize> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in text.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '}' if !in_quotes => return Some(i),
            _ => {}
        }
    }
    None
}

fn parse_labels(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = text.trim();
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or_else(|| "label without '='".to_string())?;
        let key = rest[..eq].trim().to_string();
        if key.is_empty() {
            return Err("empty label name".into());
        }
        let after = rest[eq + 1..]
            .trim_start()
            .strip_prefix('"')
            .ok_or_else(|| "label value must be quoted".to_string())?;
        let (value, tail) = take_quoted(after)?;
        labels.push((key, value));
        rest = tail.trim_start().strip_prefix(',').unwrap_or(tail).trim_start();
    }
    Ok(labels)
}

/// Consumes an escaped label value up to its closing quote, returning
/// the unescaped value and the remaining text.
fn take_quoted(text: &str) -> Result<(String, &str), String> {
    let mut value = String::new();
    let mut chars = text.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((value, &text[i + 1..])),
            '\\' => match chars.next() {
                Some((_, 'n')) => value.push('\n'),
                Some((_, '\\')) => value.push('\\'),
                Some((_, '"')) => value.push('"'),
                Some((_, other)) => return Err(format!("bad escape \\{other}")),
                None => return Err("dangling backslash".into()),
            },
            _ => value.push(c),
        }
    }
    Err("unterminated label value".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_mangled_and_prefixed() {
        assert_eq!(metric_name("serve.requests"), "tevot_serve_requests");
        assert_eq!(metric_name("sim.cycle_delay_ps"), "tevot_sim_cycle_delay_ps");
        assert_eq!(metric_name("weird name:ok"), "tevot_weird_name:ok");
        assert_eq!(metric_name("9lives"), "tevot__9lives");
    }

    #[test]
    fn label_values_escape_and_unescape() {
        let raw = "a\\b\"c\nd";
        let escaped = escape_label_value(raw);
        assert_eq!(escaped, "a\\\\b\\\"c\\nd");
        let line = format!("m{{l=\"{escaped}\"}} 1");
        let samples = parse(&line).unwrap();
        assert_eq!(samples[0].labels, vec![("l".to_string(), raw.to_string())]);
    }

    #[test]
    fn counter_renders_as_total_sample() {
        let mut out = String::new();
        render_counter(&mut out, "serve.requests", 42);
        assert_eq!(
            out,
            "# TYPE tevot_serve_requests_total counter\ntevot_serve_requests_total 42\n"
        );
    }

    #[test]
    fn histogram_renders_cumulative_buckets_sum_count() {
        let mut out = String::new();
        // counts: 2 in (<=10], 1 in (10, 20], 3 in overflow; sum 99.
        render_histogram(&mut out, "h", &[10, 20], &[2, 1, 3], 99);
        let expected = "# TYPE tevot_h histogram\n\
                        tevot_h_bucket{le=\"10\"} 2\n\
                        tevot_h_bucket{le=\"20\"} 3\n\
                        tevot_h_bucket{le=\"+Inf\"} 6\n\
                        tevot_h_sum 99\n\
                        tevot_h_count 6\n";
        assert_eq!(out, expected);
        let samples = parse(&out).unwrap();
        assert_eq!(samples.len(), 5);
        assert_eq!(samples[2].labels, vec![("le".to_string(), "+Inf".to_string())]);
        assert_eq!(samples[2].value, 6.0);
    }

    #[test]
    fn registry_render_parses_back() {
        crate::metrics::SERVE_REQUESTS.add(3);
        crate::metrics::SERVE_PREDICT_LATENCY_US.record(120);
        let text = render();
        let samples = parse(&text).unwrap();
        // Every counter yields one sample; every histogram yields
        // bounds + 3 (the +Inf bucket, _sum, _count).
        let expected: usize = crate::metrics::counters().len()
            + crate::metrics::histograms().iter().map(|h| h.bounds().len() + 3).sum::<usize>();
        assert_eq!(samples.len(), expected);
        assert!(samples.iter().any(|s| s.name == "tevot_serve_requests_total" && s.value >= 3.0));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse("ok 1\nbad{l=\"x} 2").is_err());
        assert!(parse("{} 1").is_err());
        assert!(parse("name{l=x} 1").is_err());
        assert!(parse("name nope").is_err());
        assert!(parse("# comment only\n\n").unwrap().is_empty());
        assert_eq!(parse("m +Inf").unwrap()[0].value, f64::INFINITY);
    }
}
