//! `tevot-watch`: a fixed-memory time-series store over the metrics
//! registry.
//!
//! The [`TimeSeriesStore`] holds one bounded [`SeriesRing`] of
//! `(wall_ms, value)` samples per named series. A sampler (the serve
//! watch thread) calls [`TimeSeriesStore::sample_registry`] once per
//! resolution tick; each pass appends, for every registered counter,
//! its cumulative value, and for every histogram its interpolated
//! p50/p90/p99 (as `<name>.p50` etc.) — plus any caller-supplied gauges
//! (queue depth, drift scores, ...).
//!
//! **Memory bound**: each ring holds at most `capacity` 16-byte
//! samples, and the series set is fixed by the registry plus the gauges
//! the caller supplies, so the store's footprint is
//! `series_count * capacity * 16` bytes — a few hundred kilobytes at
//! the defaults, independent of uptime.
//!
//! Derived views ([`rate_series`], [`ratio_series`]) turn cumulative
//! counter samples into per-second rates and delta ratios — the signals
//! SLO burn-rate monitors and the `tevot top` dashboard consume.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::Json;
use crate::metrics::WATCH_SAMPLES;

/// One time-series sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Wall-clock milliseconds since the Unix epoch.
    pub wall_ms: u64,
    /// Sampled value.
    pub value: f64,
}

/// Wall-clock milliseconds since the Unix epoch (0 if the clock is
/// before the epoch).
pub fn wall_ms() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| d.as_millis() as u64)
}

/// A bounded ring of [`Sample`]s: pushing beyond capacity evicts the
/// oldest sample.
#[derive(Debug, Clone)]
pub struct SeriesRing {
    samples: VecDeque<Sample>,
    capacity: usize,
}

impl SeriesRing {
    /// An empty ring holding at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub fn new(capacity: usize) -> SeriesRing {
        assert!(capacity > 0, "series ring needs a non-zero capacity");
        SeriesRing { samples: VecDeque::with_capacity(capacity), capacity }
    }

    /// Appends a sample, evicting the oldest once full.
    pub fn push(&mut self, sample: Sample) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back(sample);
    }

    /// All held samples, oldest first.
    pub fn to_vec(&self) -> Vec<Sample> {
        self.samples.iter().copied().collect()
    }

    /// Samples with `wall_ms > since_ms`, oldest first.
    pub fn window(&self, since_ms: u64) -> Vec<Sample> {
        self.samples.iter().copied().filter(|s| s.wall_ms > since_ms).collect()
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// A named collection of [`SeriesRing`]s with a shared per-series
/// capacity. Series are created on first record; all access is behind
/// one mutex (sampling is a once-per-tick operation, not a hot path).
#[derive(Debug)]
pub struct TimeSeriesStore {
    capacity: usize,
    resolution_ms: u64,
    series: Mutex<Vec<(String, SeriesRing)>>,
}

impl TimeSeriesStore {
    /// A store whose rings hold `capacity` samples each, sampled every
    /// `resolution_ms` (the resolution is advisory metadata for
    /// consumers; the store itself timestamps whatever it is given).
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub fn new(resolution_ms: u64, capacity: usize) -> TimeSeriesStore {
        assert!(capacity > 0, "time-series store needs a non-zero capacity");
        TimeSeriesStore { capacity, resolution_ms, series: Mutex::new(Vec::new()) }
    }

    /// The advisory sampling resolution, milliseconds.
    pub fn resolution_ms(&self) -> u64 {
        self.resolution_ms
    }

    /// Per-series ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends `(wall_ms, value)` to `name`'s ring, creating the series
    /// on first use.
    pub fn record(&self, name: &str, wall_ms: u64, value: f64) {
        let mut series = self.series.lock().unwrap_or_else(|e| e.into_inner());
        match series.iter_mut().find(|(n, _)| n == name) {
            Some((_, ring)) => ring.push(Sample { wall_ms, value }),
            None => {
                let mut ring = SeriesRing::new(self.capacity);
                ring.push(Sample { wall_ms, value });
                series.push((name.to_string(), ring));
            }
        }
    }

    /// All series names, in creation order.
    pub fn names(&self) -> Vec<String> {
        let series = self.series.lock().unwrap_or_else(|e| e.into_inner());
        series.iter().map(|(n, _)| n.clone()).collect()
    }

    /// `name`'s samples (oldest first), or `None` for an unknown series.
    pub fn series(&self, name: &str) -> Option<Vec<Sample>> {
        let series = self.series.lock().unwrap_or_else(|e| e.into_inner());
        series.iter().find(|(n, _)| n == name).map(|(_, ring)| ring.to_vec())
    }

    /// `name`'s samples newer than `since_ms`, or `None` for an unknown
    /// series.
    pub fn window(&self, name: &str, since_ms: u64) -> Option<Vec<Sample>> {
        let series = self.series.lock().unwrap_or_else(|e| e.into_inner());
        series.iter().find(|(n, _)| n == name).map(|(_, ring)| ring.window(since_ms))
    }

    /// One sampler pass at `wall_ms`: appends every registered counter's
    /// cumulative value, every histogram's `.p50`/`.p90`/`.p99`
    /// (recorded only once the histogram holds data), and the supplied
    /// `gauges`. Increments `watch.samples`.
    pub fn sample_registry(&self, wall_ms: u64, gauges: &[(&str, f64)]) {
        for counter in crate::metrics::counters() {
            self.record(counter.name(), wall_ms, counter.get() as f64);
        }
        for histogram in crate::metrics::histograms() {
            if let Some((p50, p90, p99)) = histogram.quantiles() {
                self.record(&format!("{}.p50", histogram.name()), wall_ms, p50);
                self.record(&format!("{}.p90", histogram.name()), wall_ms, p90);
                self.record(&format!("{}.p99", histogram.name()), wall_ms, p99);
            }
        }
        for &(name, value) in gauges {
            self.record(name, wall_ms, value);
        }
        WATCH_SAMPLES.incr();
    }

    /// The windowed series as JSON, the `GET /watch` payload core:
    /// `{"<name>": [[wall_ms, value], ...], ...}` with samples newer
    /// than `since_ms`.
    pub fn to_json(&self, since_ms: u64) -> Json {
        let series = self.series.lock().unwrap_or_else(|e| e.into_inner());
        Json::Obj(
            series
                .iter()
                .map(|(name, ring)| {
                    let points = ring
                        .window(since_ms)
                        .into_iter()
                        .map(|s| Json::Arr(vec![Json::from(s.wall_ms), Json::Num(s.value)]))
                        .collect();
                    (name.clone(), Json::Arr(points))
                })
                .collect(),
        )
    }
}

/// Converts a cumulative counter series into a per-second rate series:
/// each output sample sits at the newer input sample's timestamp and
/// carries `delta(value) / delta(seconds)`. Non-increasing timestamps
/// and counter resets (negative deltas) yield 0.
pub fn rate_series(samples: &[Sample]) -> Vec<Sample> {
    samples
        .windows(2)
        .map(|w| {
            let dt_s = w[1].wall_ms.saturating_sub(w[0].wall_ms) as f64 / 1e3;
            let dv = w[1].value - w[0].value;
            let rate = if dt_s > 0.0 && dv >= 0.0 { dv / dt_s } else { 0.0 };
            Sample { wall_ms: w[1].wall_ms, value: rate }
        })
        .collect()
}

/// Converts two parallel cumulative series (numerator, denominator —
/// e.g. `serve.http_errors` over `serve.requests`) into a per-interval
/// delta-ratio series. Samples pair by index; intervals where the
/// denominator did not move yield 0.
pub fn ratio_series(numerator: &[Sample], denominator: &[Sample]) -> Vec<Sample> {
    numerator
        .windows(2)
        .zip(denominator.windows(2))
        .map(|(n, d)| {
            let dn = n[1].value - n[0].value;
            let dd = d[1].value - d[0].value;
            let ratio = if dd > 0.0 && dn >= 0.0 { (dn / dd).min(1.0) } else { 0.0 };
            Sample { wall_ms: n[1].wall_ms, value: ratio }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(wall_ms: u64, value: f64) -> Sample {
        Sample { wall_ms, value }
    }

    #[test]
    fn ring_evicts_oldest_at_capacity() {
        let mut ring = SeriesRing::new(3);
        for i in 0..5 {
            ring.push(s(i, i as f64));
        }
        assert_eq!(ring.len(), 3);
        let held: Vec<u64> = ring.to_vec().iter().map(|x| x.wall_ms).collect();
        assert_eq!(held, vec![2, 3, 4]);
        assert_eq!(ring.window(3).len(), 1);
        assert!(std::panic::catch_unwind(|| SeriesRing::new(0)).is_err());
    }

    #[test]
    fn store_records_and_windows_by_name() {
        let store = TimeSeriesStore::new(100, 8);
        store.record("a", 10, 1.0);
        store.record("a", 20, 2.0);
        store.record("b", 15, 7.0);
        assert_eq!(store.names(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(store.series("a").unwrap().len(), 2);
        assert_eq!(store.window("a", 10).unwrap(), vec![s(20, 2.0)]);
        assert_eq!(store.series("nope"), None);
        assert_eq!(store.resolution_ms(), 100);
    }

    #[test]
    fn sampler_pass_covers_registry_and_gauges() {
        let store = TimeSeriesStore::new(100, 8);
        crate::metrics::SERVE_REQUESTS.add(5);
        crate::metrics::SERVE_PREDICT_LATENCY_US.record(200);
        let before = WATCH_SAMPLES.get();
        store.sample_registry(1000, &[("queue_depth", 3.0)]);
        assert_eq!(WATCH_SAMPLES.get(), before + 1);
        assert!(store.series("serve.requests").unwrap()[0].value >= 5.0);
        assert_eq!(store.series("queue_depth").unwrap(), vec![s(1000, 3.0)]);
        assert!(store.series("serve.predict_latency_us.p99").is_some());
        // An idle histogram contributes no quantile series.
        crate::metrics::SERVE_TER_LATENCY_US.reset();
        assert!(
            store.series("serve.ter_latency_us.p50").is_none()
                || !store.series("serve.ter_latency_us.p50").unwrap().is_empty()
        );
    }

    #[test]
    fn json_export_is_windowed_pairs() {
        let store = TimeSeriesStore::new(100, 8);
        store.record("x", 10, 1.5);
        store.record("x", 20, 2.5);
        let doc = store.to_json(10);
        let points = doc.get("x").and_then(Json::as_arr).unwrap();
        assert_eq!(points.len(), 1);
        let pair = points[0].as_arr().unwrap();
        assert_eq!(pair[0].as_u64(), Some(20));
        assert_eq!(pair[1].as_f64(), Some(2.5));
    }

    #[test]
    fn rate_series_differentiates_cumulative_counts() {
        let cumulative = [s(0, 0.0), s(1000, 10.0), s(3000, 10.0), s(4000, 5.0)];
        let rates = rate_series(&cumulative);
        assert_eq!(rates, vec![s(1000, 10.0), s(3000, 0.0), s(4000, 0.0)]);
        assert!(rate_series(&[s(0, 1.0)]).is_empty());
    }

    #[test]
    fn ratio_series_pairs_deltas() {
        let errors = [s(0, 0.0), s(1000, 2.0), s(2000, 2.0)];
        let requests = [s(0, 0.0), s(1000, 10.0), s(2000, 10.0)];
        let ratios = ratio_series(&errors, &requests);
        assert_eq!(ratios, vec![s(1000, 0.2), s(2000, 0.0)]);
    }
}
