//! Online model-drift math: fixed-bin reference histograms and the
//! Population Stability Index.
//!
//! TEVoT models are trained on a characterization sweep over a fixed
//! (V, T) grid; once deployed, nothing guarantees the traffic a server
//! sees still resembles that sweep. This module holds the pure math for
//! detecting the shift: a [`HistSpec`] describes a fixed uniform
//! binning, a [`ReferenceHist`] is a binned snapshot of the training
//! distribution, and [`psi`] compares bin-fraction vectors with the
//! standard Population Stability Index
//!
//! ```text
//! PSI = sum_i (a_i - e_i) * ln(a_i / e_i)
//! ```
//!
//! where `e` is the expected (reference) fraction per bin and `a` the
//! actual (live) one. Fractions are floored at [`PSI_EPSILON`] so empty
//! bins stay finite; the formula is symmetric in `a`/`e`, zero iff the
//! fractions agree, and grows without bound as mass moves into bins the
//! reference never populated. The conventional reading: `< 0.1` stable,
//! `0.1..0.25` drifting, `>= 0.25` shifted (the default alert level).
//!
//! The serving side keeps live observations in a bounded
//! [`DriftWindow`] and re-bins them against the model's persisted
//! reference each sampler tick.

/// Floor applied to bin fractions before the PSI log-ratio, keeping
/// empty bins finite.
pub const PSI_EPSILON: f64 = 1e-6;

/// The conventional "distribution has shifted" PSI alert level.
pub const PSI_ALERT_DEFAULT: f64 = 0.25;

/// A fixed uniform binning of `[lo, hi]` into `bins` equal-width bins.
/// Values outside the range clamp into the edge bins, so out-of-support
/// mass is visible as edge-bin concentration rather than lost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistSpec {
    /// Inclusive lower edge of the binned range.
    pub lo: f64,
    /// Inclusive upper edge of the binned range.
    pub hi: f64,
    /// Number of equal-width bins (at least 1).
    pub bins: usize,
}

impl HistSpec {
    /// A spec over `[lo, hi]` with `bins` bins.
    ///
    /// # Panics
    ///
    /// Panics when `bins == 0`, the edges are not finite, or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> HistSpec {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite() && hi > lo, "bad histogram range [{lo}, {hi}]");
        HistSpec { lo, hi, bins }
    }

    /// The bin index for `x` (clamped into `0..bins`; NaN lands in bin 0).
    pub fn bin(&self, x: f64) -> usize {
        if x.is_nan() || x <= self.lo {
            return 0;
        }
        let width = (self.hi - self.lo) / self.bins as f64;
        (((x - self.lo) / width) as usize).min(self.bins - 1)
    }
}

/// A binned snapshot of a distribution: a [`HistSpec`] plus one count
/// per bin. This is what gets persisted inside a model file at train
/// time and compared against live traffic at serve time.
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceHist {
    /// The binning.
    pub spec: HistSpec,
    /// Observation count per bin (`spec.bins` entries).
    pub counts: Vec<u64>,
}

impl ReferenceHist {
    /// Bins `values` under `spec`.
    pub fn collect(spec: HistSpec, values: impl IntoIterator<Item = f64>) -> ReferenceHist {
        let mut counts = vec![0u64; spec.bins];
        for v in values {
            counts[spec.bin(v)] += 1;
        }
        ReferenceHist { spec, counts }
    }

    /// Total observations binned.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Per-bin fractions (all zero when nothing was binned).
    pub fn fractions(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c as f64 / total as f64).collect()
    }

    /// PSI of `values` (binned under this reference's spec) against this
    /// reference. `None` when either side is empty.
    pub fn psi_of(&self, values: &[f64]) -> Option<f64> {
        if self.total() == 0 || values.is_empty() {
            return None;
        }
        let live = ReferenceHist::collect(self.spec, values.iter().copied());
        Some(psi(&self.fractions(), &live.fractions()))
    }
}

/// The Population Stability Index between two bin-fraction vectors (see
/// the module docs for the formula and reading). Slices must have equal
/// length; fractions are floored at [`PSI_EPSILON`].
///
/// # Panics
///
/// Panics when the slices differ in length.
pub fn psi(expected: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(expected.len(), actual.len(), "PSI needs equal-length fraction vectors");
    expected
        .iter()
        .zip(actual)
        .map(|(&e, &a)| {
            let e = e.max(PSI_EPSILON);
            let a = a.max(PSI_EPSILON);
            (a - e) * (a / e).ln()
        })
        .sum()
}

/// A bounded sliding window of live observations (oldest evicted
/// first), the serve-side half of a drift comparison.
#[derive(Debug, Clone)]
pub struct DriftWindow {
    values: std::collections::VecDeque<f64>,
    capacity: usize,
}

impl DriftWindow {
    /// An empty window holding at most `capacity` observations.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub fn new(capacity: usize) -> DriftWindow {
        assert!(capacity > 0, "drift window needs a non-zero capacity");
        DriftWindow { values: std::collections::VecDeque::with_capacity(capacity), capacity }
    }

    /// Appends an observation, evicting the oldest once full.
    pub fn push(&mut self, value: f64) {
        if self.values.len() == self.capacity {
            self.values.pop_front();
        }
        self.values.push_back(value);
    }

    /// Observations currently held (oldest first).
    pub fn values(&self) -> Vec<f64> {
        self.values.iter().copied().collect()
    }

    /// Number of observations currently held.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// PSI of the windowed observations against `reference` (`None`
    /// while either side is empty).
    pub fn psi_against(&self, reference: &ReferenceHist) -> Option<f64> {
        let values = self.values();
        reference.psi_of(&values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_ref() -> ReferenceHist {
        let spec = HistSpec::new(0.0, 10.0, 10);
        ReferenceHist::collect(spec, (0..100).map(|i| f64::from(i) / 10.0))
    }

    #[test]
    fn bins_clamp_out_of_range_values() {
        let spec = HistSpec::new(0.0, 10.0, 10);
        assert_eq!(spec.bin(-5.0), 0);
        assert_eq!(spec.bin(0.0), 0);
        assert_eq!(spec.bin(9.99), 9);
        assert_eq!(spec.bin(10.0), 9);
        assert_eq!(spec.bin(1e9), 9);
        assert_eq!(spec.bin(f64::NAN), 0);
    }

    #[test]
    fn psi_of_identical_distributions_is_zero() {
        let reference = uniform_ref();
        let f = reference.fractions();
        assert_eq!(psi(&f, &f), 0.0);
        // Same data replayed through psi_of: numerically ~0.
        let values: Vec<f64> = (0..100).map(|i| f64::from(i) / 10.0).collect();
        let p = reference.psi_of(&values).unwrap();
        assert!(p.abs() < 1e-12, "self-PSI {p}");
    }

    #[test]
    fn psi_is_symmetric_and_large_on_a_shift() {
        let spec = HistSpec::new(0.0, 10.0, 10);
        let low = ReferenceHist::collect(spec, (0..100).map(|i| f64::from(i % 30) / 10.0));
        let high = ReferenceHist::collect(spec, (0..100).map(|i| 7.0 + f64::from(i % 30) / 10.0));
        let forward = psi(&low.fractions(), &high.fractions());
        let backward = psi(&high.fractions(), &low.fractions());
        assert!((forward - backward).abs() < 1e-12, "PSI asymmetric: {forward} vs {backward}");
        assert!(forward > PSI_ALERT_DEFAULT, "disjoint distributions must alert: PSI {forward}");
        // Bounded: epsilon floors keep even disjoint mass finite.
        assert!(forward.is_finite() && forward < 2.0 * (1.0 / PSI_EPSILON).ln());
    }

    #[test]
    fn empty_sides_yield_none() {
        let reference = uniform_ref();
        assert_eq!(reference.psi_of(&[]), None);
        let empty = ReferenceHist { spec: reference.spec, counts: vec![0; 10] };
        assert_eq!(empty.psi_of(&[1.0]), None);
        assert_eq!(empty.fractions(), vec![0.0; 10]);
    }

    #[test]
    fn drift_window_evicts_oldest() {
        let mut w = DriftWindow::new(3);
        assert!(w.is_empty());
        for v in [1.0, 2.0, 3.0, 4.0] {
            w.push(v);
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.values(), vec![2.0, 3.0, 4.0]);
        // A window saturated off-reference alerts against a low reference.
        let spec = HistSpec::new(0.0, 10.0, 10);
        let reference = ReferenceHist::collect(spec, vec![0.5; 50]);
        assert!(w.psi_against(&reference).unwrap() > PSI_ALERT_DEFAULT);
    }
}
