//! Timeline trace events in Chrome/Perfetto trace format.
//!
//! While [`span`](crate::span) answers "how much total time did stage X
//! take", this module answers "*when* inside the run did the time go": a
//! thread-aware recorder of begin/end/instant events that exports the
//! standard Chrome trace-format JSON (`{"traceEvents": [...]}`), loadable
//! in `ui.perfetto.dev` or `chrome://tracing`.
//!
//! Design constraints, in order:
//!
//! 1. **Free when off.** Recording is gated on a single relaxed atomic
//!    load ([`enabled`]); with tracing disabled the entire path is one
//!    branch and zero allocations (proved by `tests/overhead.rs`).
//! 2. **Bounded when on.** Events go into a fixed-capacity ring buffer;
//!    a characterization sweep that outgrows it overwrites the oldest
//!    events and counts the overwritten ones instead of growing without
//!    limit. Event payloads are `Copy` (`&'static str` names), so the
//!    steady-state recording cost is a mutex + a few stores.
//! 3. **Zero dependencies.** Export rides the crate's own
//!    [`Json`](crate::json::Json) writer.
//!
//! The span RAII guards ([`span!`](crate::span!)) feed begin/end pairs
//! automatically once tracing is enabled; [`instant!`](crate::instant!)
//! marks point events (one simulated cycle, one tree fitted, ...).

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;

/// What an event marks: the start of a slice, its end, or a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Slice begin (`"ph": "B"`).
    Begin,
    /// Slice end (`"ph": "E"`).
    End,
    /// Thread-scoped instant (`"ph": "i"`).
    Instant,
}

impl Phase {
    /// The Chrome trace-format phase letter.
    pub fn letter(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "i",
        }
    }
}

/// One recorded event. `Copy`, so the ring buffer never allocates per
/// event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Event kind.
    pub phase: Phase,
    /// Event name (span or instant site).
    pub name: &'static str,
    /// Nanoseconds since the recorder's time base.
    pub ts_ns: u64,
    /// Small dense thread id (1 = first thread that recorded).
    pub tid: u32,
    /// Correlation id (serve request id, sweep index...); `0` means
    /// "none" and is omitted from the export.
    pub id: u64,
}

/// A bounded ring of events. The global recorder wraps one of these; the
/// struct itself is exposed for capacity-focused unit tests.
#[derive(Debug)]
pub struct RingBuffer {
    events: Vec<Event>,
    head: usize,
    dropped: u64,
    capacity: usize,
}

impl RingBuffer {
    /// An empty ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub fn new(capacity: usize) -> RingBuffer {
        assert!(capacity > 0, "trace ring needs a non-zero capacity");
        RingBuffer { events: Vec::with_capacity(capacity), head: 0, dropped: 0, capacity }
    }

    /// Appends an event, overwriting the oldest once full.
    pub fn push(&mut self, event: Event) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.events[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Events in recording order (oldest first).
    pub fn to_vec(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.head..]);
        out.extend_from_slice(&self.events[..self.head]);
        out
    }

    /// How many events were overwritten by newer ones.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are held.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Default ring capacity: enough for a multi-minute sweep at one event
/// per simulated cycle, ~6 MB resident.
pub const DEFAULT_CAPACITY: usize = 1 << 18;

static ENABLED: AtomicBool = AtomicBool::new(false);
static RING: Mutex<Option<RingBuffer>> = Mutex::new(None);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static TID: u32 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// Whether event recording is on. One relaxed load — this is the entire
/// cost of a [`instant!`](crate::instant!) site (or a span's trace hook)
/// while tracing is disabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on with the default ring capacity (honoring
/// `TEVOT_TRACE_CAPACITY` when set to a positive integer).
pub fn enable() {
    let capacity = std::env::var("TEVOT_TRACE_CAPACITY")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&c| c > 0)
        .unwrap_or(DEFAULT_CAPACITY);
    enable_with_capacity(capacity);
}

/// Turns recording on with an explicit ring capacity. The ring is
/// preallocated here so the recording path itself never allocates.
pub fn enable_with_capacity(capacity: usize) {
    let _ = EPOCH.set(Instant::now());
    let mut ring = RING.lock().unwrap_or_else(|e| e.into_inner());
    if ring.is_none() {
        *ring = Some(RingBuffer::new(capacity));
    }
    ENABLED.store(true, Ordering::Relaxed);
}

/// Stops recording (events already captured are kept for export).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Discards all captured events and disables recording (test isolation).
pub fn reset() {
    ENABLED.store(false, Ordering::Relaxed);
    *RING.lock().unwrap_or_else(|e| e.into_inner()) = None;
}

fn now_ns() -> u64 {
    // Recording before enable() is impossible (enabled() gates every
    // record site), so the epoch is always set here; the fallback only
    // defends against future misuse.
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

#[inline(never)]
fn record(phase: Phase, name: &'static str, id: u64) {
    let event = Event { phase, name, ts_ns: now_ns(), tid: TID.with(|t| *t), id };
    let mut ring = RING.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(ring) = ring.as_mut() {
        ring.push(event);
    }
}

/// Records a slice-begin event (called by the span guards).
#[inline]
pub fn begin(name: &'static str) {
    if enabled() {
        record(Phase::Begin, name, 0);
    }
}

/// Records a slice-end event (called by the span guards).
#[inline]
pub fn end(name: &'static str) {
    if enabled() {
        record(Phase::End, name, 0);
    }
}

/// Records a point-in-time event; prefer the
/// [`instant!`](crate::instant!) macro.
#[inline]
pub fn instant(name: &'static str) {
    if enabled() {
        record(Phase::Instant, name, 0);
    }
}

/// Records a point-in-time event tagged with a correlation id, so a
/// single request can be followed across the accept, batch, and reply
/// threads in the exported trace.
#[inline]
pub fn instant_id(name: &'static str, id: u64) {
    if enabled() {
        record(Phase::Instant, name, id);
    }
}

/// A copy of the captured events (oldest first) plus the overwritten
/// count.
pub fn snapshot() -> (Vec<Event>, u64) {
    let ring = RING.lock().unwrap_or_else(|e| e.into_inner());
    match ring.as_ref() {
        Some(ring) => (ring.to_vec(), ring.dropped()),
        None => (Vec::new(), 0),
    }
}

/// Serializes events as a Chrome trace-format JSON document:
/// `{"traceEvents": [{"name", "ph", "ts", "pid", "tid"}, ...]}` with
/// microsecond timestamps, plus an `otherData` note carrying the
/// overwritten-event count. Loadable in Perfetto / `chrome://tracing`.
pub fn to_chrome_json(events: &[Event], dropped: u64) -> Json {
    let trace_events = events
        .iter()
        .map(|e| {
            let mut members = vec![
                ("name", Json::from(e.name)),
                ("ph", Json::from(e.phase.letter())),
                ("ts", Json::Num(e.ts_ns as f64 / 1e3)),
                ("pid", Json::from(1u64)),
                ("tid", Json::from(e.tid as u64)),
            ];
            if e.phase == Phase::Instant {
                // Thread-scoped instants render as small arrows.
                members.push(("s", Json::from("t")));
            }
            if e.id != 0 {
                members.push(("args", Json::obj(vec![("id", Json::from(e.id))])));
            }
            Json::obj(members)
        })
        .collect();
    Json::obj(vec![
        ("traceEvents", Json::Arr(trace_events)),
        ("displayTimeUnit", Json::from("ms")),
        (
            "otherData",
            Json::obj(vec![
                ("producer", Json::from("tevot-obs")),
                ("dropped_events", Json::from(dropped)),
            ]),
        ),
    ])
}

/// Writes the currently captured events as Chrome trace-format JSON.
///
/// # Errors
///
/// Returns the I/O error with the offending path in the message.
pub fn write_chrome_trace(path: &Path) -> std::io::Result<()> {
    use std::io::Write as _;
    let (events, dropped) = snapshot();
    let doc = to_chrome_json(&events, dropped);
    let mut file = std::fs::File::create(path).map_err(|e| {
        std::io::Error::new(e.kind(), format!("cannot write trace to {}: {e}", path.display()))
    })?;
    writeln!(file, "{doc}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_newest_and_counts_dropped() {
        let mut ring = RingBuffer::new(3);
        for i in 0..5u64 {
            ring.push(Event { phase: Phase::Instant, name: "x", ts_ns: i, tid: 1, id: 0 });
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let ts: Vec<u64> = ring.to_vec().iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![2, 3, 4], "oldest events overwritten, order preserved");
    }

    #[test]
    fn ring_under_capacity_drops_nothing() {
        let mut ring = RingBuffer::new(8);
        assert!(ring.is_empty());
        ring.push(Event { phase: Phase::Begin, name: "a", ts_ns: 1, tid: 1, id: 0 });
        ring.push(Event { phase: Phase::End, name: "a", ts_ns: 2, tid: 1, id: 0 });
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.to_vec()[0].name, "a");
    }

    #[test]
    fn chrome_json_has_valid_schema() {
        let events = [
            Event { phase: Phase::Begin, name: "characterize", ts_ns: 1_500, tid: 1, id: 0 },
            Event { phase: Phase::Instant, name: "sim.cycle", ts_ns: 2_000, tid: 2, id: 77 },
            Event { phase: Phase::End, name: "characterize", ts_ns: 9_000, tid: 1, id: 0 },
        ];
        let doc = to_chrome_json(&events, 7);
        // Round-trips through the strict parser: syntactically valid JSON.
        let parsed = crate::json::parse(&doc.to_string()).unwrap();
        assert_eq!(parsed, doc);

        let items = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(items.len(), 3);
        for item in items {
            // Every event carries the fields the Chrome trace format
            // requires for duration/instant events.
            assert!(item.get("name").and_then(Json::as_str).is_some());
            assert!(matches!(item.get("ph").and_then(Json::as_str), Some("B" | "E" | "i")));
            assert!(item.get("ts").and_then(Json::as_f64).is_some());
            assert_eq!(item.get("pid").and_then(Json::as_u64), Some(1));
            assert!(item.get("tid").and_then(Json::as_u64).is_some());
        }
        // Timestamps are microseconds.
        assert_eq!(items[0].get("ts").and_then(Json::as_f64), Some(1.5));
        // Instants carry thread scope; slices don't.
        assert_eq!(items[1].get("s").and_then(Json::as_str), Some("t"));
        assert_eq!(items[0].get("s"), None);
        // Correlation ids render as args; id 0 is omitted entirely.
        assert_eq!(items[1].get("args").and_then(|a| a.get("id")).and_then(Json::as_u64), Some(77));
        assert_eq!(items[0].get("args"), None);
        // B/E balance per (tid, name).
        let balance: i64 = items
            .iter()
            .map(|i| match i.get("ph").and_then(Json::as_str) {
                Some("B") => 1,
                Some("E") => -1,
                _ => 0,
            })
            .sum();
        assert_eq!(balance, 0);
        assert_eq!(
            doc.get("otherData").and_then(|o| o.get("dropped_events")).and_then(Json::as_u64),
            Some(7)
        );
    }

    #[test]
    fn disabled_by_default_and_capacity_must_be_positive() {
        // No unit test in this binary enables the global recorder, so the
        // default-off contract is observable here.
        assert!(!enabled());
        assert!(std::panic::catch_unwind(|| RingBuffer::new(0)).is_err());
    }
}
