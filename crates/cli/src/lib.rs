//! `tevot` — command-line interface to the TEVoT pipeline.
//!
//! The binary in `main.rs` is a thin wrapper over [`run`]; the command
//! implementations live here so integration tests can drive them
//! in-process.
//!
//! ```text
//! tevot stats        --fu <unit>
//! tevot characterize --fu <unit> --voltage <V> --temperature <C>
//!                    [--vectors N] [--seed S] [--sdf out.sdf] [--vcd out.vcd]
//! tevot train        --fu <unit> --out model.tevot
//!                    [--grid fig3|paper | --voltages V,V --temps C,C]
//!                    [--vectors N] [--trees N] [--seed S] [--no-history]
//!                    [--resume <dir>] [--deadline-ms N]
//! tevot predict      --model model.tevot --voltage <V> --temperature <C>
//!                    --clock-ps <N> --a <u32> --b <u32>
//!                    [--prev-a <u32>] [--prev-b <u32>]
//! tevot sweep        --model model.tevot [--grid fig3|paper] [--fu <unit>]
//!                    [--vectors N] [--seed S] [--clock-ps N]
//! tevot serve        --model model.tevot [--addr host:port]
//!                    [--max-queue N] [--batch N] [--batch-wait-ms N]
//!                    [--slo spec,spec] [--no-watch] [--shadow-every N]
//! tevot top          [--addr host:port] [--interval-ms N] [--once]
//! tevot prom-check   [--addr host:port]
//! tevot obs-diff     <a.json> <b.json>
//! ```
//!
//! Units: `int-add`, `int-mul`, `fp-add`, `fp-mul`. Operands accept
//! decimal or `0x` hex. Every command also takes `--jobs <N>` (worker
//! threads for the `tevot-par` pool; results are bit-identical at every
//! value), `--metrics <path>` (tevot-obs/1 JSON report) and
//! `--trace <path>` (Chrome/Perfetto timeline trace); `obs-diff`
//! compares two of the former.

pub mod args;

/// `println!` that exits quietly when stdout is gone (e.g. piped to
/// `head`), instead of panicking on the broken pipe.
macro_rules! outln {
    ($($arg:tt)*) => {{
        use std::io::Write as _;
        if writeln!(std::io::stdout(), $($arg)*).is_err() {
            std::process::exit(0);
        }
    }};
}

use std::error::Error;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;

use args::{ArgError, Args};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tevot::dta::Characterizer;
use tevot::reference::ReferenceStats;
use tevot::workload::random_workload;
use tevot::{build_delay_dataset, FeatureEncoding, TevotModel, TevotParams};
use tevot_ml::ForestParams;
use tevot_netlist::fu::FunctionalUnit;
use tevot_resil::checkpoint::CheckpointDir;
use tevot_resil::{CancelToken, ErrorKind, TevotError, Watchdog};
use tevot_sim::trace::dump_vcd;
use tevot_timing::{sdf, ClockSpeedup, ConditionGrid, DelayModel, OperatingCondition};

const HELP: &str = "\
tevot — timing-error modeling of functional units (TEVoT, DAC 2020)

  tevot stats        --fu <unit>
  tevot characterize --fu <unit> --voltage <V> --temperature <C>
                     [--vectors N] [--seed S] [--sdf out.sdf] [--vcd out.vcd]
                     [--engine event|levelized]
  tevot train        --fu <unit> --out model.tevot
                     [--grid fig3|paper | --voltages 0.9,1.0 --temps 0,25]
                     [--vectors N] [--trees N] [--seed S] [--no-history]
                     [--resume <dir>] [--deadline-ms N]
                     [--engine event|levelized]
                     [--workers N] [--lease-ms N]
  tevot predict      --model model.tevot --voltage <V> --temperature <C>
                     --clock-ps <N> --a <u32> --b <u32>
                     [--prev-a <u32>] [--prev-b <u32>]
  tevot sweep        --model model.tevot [--grid fig3|paper] [--vectors N]
                     [--voltages V,V --temps C,C] [--seed S] [--clock-ps N]
                     [--fu <unit>]          (workload unit; default int-add)
  tevot ter          --model model.tevot --voltage <V> --temperature <C>
                     --clock-ps <N> [--workload trace.txt | --fu <unit>
                     --vectors N] [--validate] [--seed S]
  tevot dfs          --model model.tevot --voltage <V> --temperature <C>
                     [--guardband-ps <X>] (--a <u32> --b <u32>
                     [--prev-a] [--prev-b] | --workload trace.txt |
                     --fu <unit> [--vectors N] [--seed S]) [--validate]
  tevot serve        --model model.tevot [--addr <host:port>]
                     [--max-queue N] [--batch N] [--batch-wait-ms N]
                     [--slo spec,spec] [--no-watch] [--watch-resolution-ms N]
                     [--watch-capacity N] [--shadow-every N] [--psi-alert X]
                     [--replicas N] [--port-file <path>]
  tevot top          [--addr <host:port>] [--interval-ms N] [--once]
  tevot prom-check   [--addr <host:port>]
  tevot obs-diff     <a.json> <b.json>      (two --metrics or profile files)
  tevot flame        <profile.txt> [--out flame.svg] [--title <text>]

units: int-add | int-mul | fp-add | fp-mul; operands take decimal or 0x hex.
workload traces: one `aaaaaaaa bbbbbbbb` hex pair per line, `#` comments.
engines: levelized (default; bit-parallel, 64 cycles per pass) | event
         (event-driven oracle); both produce bit-identical results.

serve (online inference; see DESIGN.md for the batching architecture):
  --addr <host:port>   bind address (default 127.0.0.1:7450; :0 picks a port)
  --max-queue <N>      admission bound; beyond it requests shed with
                       HTTP 503 + Retry-After (default 256)
  --batch <N>          max jobs merged per microbatch (default 32)
  --batch-wait-ms <N>  how long a microbatch waits for company (default 1)
  endpoints: POST /predict | POST /ter | POST /dfs | POST /models/<name> |
             GET /models | GET /healthz | GET /metrics[?format=prom] |
             GET /watch | GET /profile  (folded stacks; sampling starts
             lazily on the first scrape)

serve telemetry (DESIGN.md §14; on by default, --no-watch disables):
  --watch-resolution-ms <N>  sampler tick period (default 1000)
  --watch-capacity <N>       samples retained per series (default 600)
  --slo <spec,...>           objectives, e.g. serve.p99_us<5000 or
                             serve.error_ratio<0.01; alert when both the
                             fast and slow burn-rate windows exceed them
  --shadow-every <N>         replay every Nth served transition through
                             the gate-level oracle for a live-accuracy
                             signal (default 0 = off); --fu picks the
                             simulated unit (default int-add)
  --psi-alert <X>            PSI level at which drift alerts (default 0.25)
  `tevot top` renders the /watch feed as a live dashboard; `tevot
  prom-check` validates the Prometheus exposition (for CI and scrapers)

train resilience:
  --resume <dir>       checkpoint each characterized condition to <dir>
                       (atomic shards) and skip completed ones on restart;
                       the resumed model is bit-identical
  --deadline-ms <N>    cancel the checkpointed sweep gracefully (exit 6)
                       once the wall-clock budget elapses

fleet (DESIGN.md §17; fault-tolerant scale-out over loopback HTTP):
  train --workers <N>  shard the condition grid across N worker
                       processes with lease-based work stealing; a killed
                       or crashed worker's units are reassigned and the
                       model is bit-identical to a single-process run
  train --lease-ms <N> heartbeat grace before a silent worker's units
                       are reassigned (default 10000)
  serve --replicas <N> run N serve replicas behind a consistent-hash
                       router: health-checked ejection + respawn +
                       re-admission, ring failover with bounded retry,
                       rolling model deploys via POST /models/<name>;
                       GET /fleet/status shows replica pids and health
  serve --port-file <path>  atomically publish the bound address (useful
                       with --addr host:0)

exit codes: 0 ok | 1 internal | 2 usage | 3 i/o | 4 corrupt data |
            5 parse | 6 cancelled

global flags (any position):
  -v | --verbose       raise the log level (repeatable; default info)
  -q | --quiet         lower the log level (repeatable)
  --jobs <N>           worker threads for parallel stages (default: the
                       TEVOT_JOBS env var, then all available cores);
                       results are bit-identical at every jobs level;
                       0 clamps to 1 worker with a warning
  --metrics <path>     write stage timings + counters as tevot-obs/1 JSON
  --trace <path>       record a timeline and write Chrome/Perfetto trace
                       JSON (open at https://ui.perfetto.dev)
  --profile-folded <path>  sample span stacks statistically for the whole
                       run and write a Brendan-Gregg collapsed-stack
                       profile (render with `tevot flame`)
  --profile-alloc      count heap allocations/bytes per span path
                       (alloc.* counters in the --metrics report)
(the TEVOT_LOG env var sets the base level: off|error|warn|info|debug)";

/// Executes one CLI invocation (`argv` without the program name).
///
/// # Errors
///
/// Returns a descriptive error for unknown subcommands, malformed
/// arguments, unreadable files or invalid model data.
pub fn run(argv: Vec<String>) -> Result<(), Box<dyn Error>> {
    let (argv, _obs, _prof) = global_flags(argv)?;
    let args = Args::parse(argv)?;
    match args.command() {
        "help" | "--help" | "-h" => {
            outln!("{HELP}");
            Ok(())
        }
        "stats" => cmd_stats(&args),
        "characterize" => cmd_characterize(&args),
        "train" => cmd_train(&args),
        "predict" => cmd_predict(&args),
        "sweep" => cmd_sweep(&args),
        "ter" => cmd_ter(&args),
        "dfs" => cmd_dfs(&args),
        "serve" => cmd_serve(&args),
        "fleet-worker" => cmd_fleet_worker(&args),
        "top" => cmd_top(&args),
        "prom-check" => cmd_prom_check(&args),
        "obs-diff" => cmd_obs_diff(&args),
        "flame" => cmd_flame(&args),
        other => Err(ArgError(format!("unknown subcommand {other:?}")).into()),
    }
}

/// Extracts the global flags (`-v`/`--verbose`, `-q`/`--quiet`,
/// `--jobs <N>`, `--metrics <path>`, `--trace <path>`,
/// `--profile-folded <path>`, `--profile-alloc`) from anywhere on the
/// command line, applies the verbosity and the worker-pool size, enables
/// timeline recording when a trace was requested, and returns the
/// remaining tokens plus the RAII reporters: the metrics/trace writer
/// and, when statistical profiling was requested, the guard that writes
/// the collapsed-stack profile when [`run`] finishes.
fn global_flags(
    argv: Vec<String>,
) -> Result<(Vec<String>, tevot_obs::report::FinishGuard, Option<tevot_prof::FoldedGuard>), ArgError>
{
    let mut rest = Vec::with_capacity(argv.len());
    let mut verbosity = 0i32;
    let mut metrics = None;
    let mut trace = None;
    let mut folded = None;
    let mut iter = argv.into_iter();
    while let Some(token) = iter.next() {
        match token.as_str() {
            "-v" | "--verbose" => verbosity += 1,
            "-q" | "--quiet" => verbosity -= 1,
            "--jobs" => match iter.next().as_deref().map(str::parse::<usize>) {
                Some(Ok(0)) => {
                    // A zero-worker pool could never drain its queue;
                    // clamp to serial instead of hanging or erroring.
                    tevot_obs::warn!("--jobs 0 would be a zero-worker pool; clamping to 1 worker");
                    tevot_par::set_jobs(1);
                }
                Some(Ok(jobs)) => tevot_par::set_jobs(jobs),
                _ => return Err(ArgError("--jobs needs a worker count".into())),
            },
            "--metrics" | "--trace" | "--profile-folded" => {
                let slot = match token.as_str() {
                    "--metrics" => &mut metrics,
                    "--trace" => &mut trace,
                    _ => &mut folded,
                };
                match iter.next() {
                    Some(path) if !path.starts_with("--") => {
                        *slot = Some(std::path::PathBuf::from(path));
                    }
                    _ => return Err(ArgError(format!("{token} needs a file path"))),
                }
            }
            "--profile-alloc" => {
                tevot_obs::stacks::enable();
                tevot_prof::alloc::enable();
            }
            _ => rest.push(token),
        }
    }
    if verbosity != 0 {
        tevot_obs::adjust_level(verbosity);
    }
    let prof = folded.map(tevot_prof::FoldedGuard::start);
    Ok((rest, tevot_obs::report::FinishGuard::new().metrics_path(metrics).trace_path(trace), prof))
}

/// Reads the `--engine {event,levelized}` flag (default: levelized, the
/// bit-parallel engine; both produce bit-identical characterizations).
fn engine_from_args(args: &Args) -> Result<tevot_sim::Engine, ArgError> {
    match args.get("engine") {
        None => Ok(tevot_sim::Engine::default()),
        Some(name) => tevot_sim::Engine::from_name(name).ok_or_else(|| {
            ArgError(format!("--engine: unknown engine {name:?} (expected event or levelized)"))
        }),
    }
}

/// Wraps a file-level I/O result with the offending path, producing a
/// classified [`TevotError`] so [`exit_code_for`] maps it to the stable
/// I/O exit code.
fn at_path<T>(result: std::io::Result<T>, action: &str, path: &str) -> Result<T, Box<dyn Error>> {
    result.map_err(|e| TevotError::from(e).context(format!("cannot {action} {path}")).into())
}

/// The stable process exit code for a CLI failure, per the workspace
/// error taxonomy (DESIGN.md §12): usage errors exit 2, I/O failures 3,
/// corrupt stored data 4, unparsable text 5, cooperative cancellation 6,
/// anything unclassified 1.
pub fn exit_code_for(e: &(dyn Error + 'static)) -> u8 {
    if e.is::<ArgError>() {
        ErrorKind::Usage.exit_code()
    } else if let Some(te) = e.downcast_ref::<TevotError>() {
        te.exit_code()
    } else if e.is::<std::io::Error>() {
        ErrorKind::Io.exit_code()
    } else {
        ErrorKind::Internal.exit_code()
    }
}

/// `tevot ter`: predicted timing error rate of a workload trace at one
/// condition and clock, optionally validated against gate-level
/// simulation.
fn cmd_ter(args: &Args) -> Result<(), Box<dyn Error>> {
    let model = load_model(args.require("model")?)?;
    let cond = condition(args)?;
    let clock: u64 = args.require_parsed("clock-ps")?;
    let workload_path = args.get("workload").map(str::to_owned);
    let fu = args.get("fu").map(parse_fu).transpose()?;
    let vectors: usize = args.get_or("vectors", 400)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let validate = args.flag("validate");
    let engine = engine_from_args(args)?;
    args.finish()?;

    let work = match workload_path {
        Some(path) => {
            let text = at_path(std::fs::read_to_string(&path), "read workload", &path)?;
            // A malformed trace is a parse failure (exit 5), not usage.
            tevot::Workload::from_text(&text).map_err(TevotError::parse)?
        }
        None => random_workload(fu.unwrap_or(FunctionalUnit::IntAdd), vectors, seed),
    };
    let ops = work.operands();
    let _span = tevot_obs::span!("evaluate");
    let errors =
        (1..ops.len()).filter(|&t| model.predict_error(cond, clock, ops[t], ops[t - 1])).count();
    let predicted = errors as f64 / (ops.len() - 1) as f64;
    outln!(
        "workload {:?} ({} transitions) at {cond}, clock {clock} ps:",
        work.name(),
        ops.len() - 1
    );
    outln!("  predicted TER: {:.2}%", predicted * 100.0);

    if validate {
        let fu = fu.ok_or_else(|| {
            ArgError("--validate needs --fu to pick the gate-level netlist".into())
        })?;
        tevot_obs::info!("validating against gate-level simulation...");
        let characterizer = Characterizer::new(fu).with_engine(engine);
        let truth = characterizer.characterize_with_periods(cond, &work, &[clock]);
        outln!("  simulated TER: {:.2}%", truth.timing_error_rate(0) * 100.0);
    }
    Ok(())
}

/// `tevot dfs`: closed-loop adaptive clocking — recommend `t_clk` =
/// predicted delay + guardband for one transition or a whole trace,
/// optionally validated against the gate-level simulator as the error
/// oracle. Served `/dfs` recommendations are bit-identical: both sides
/// call [`tevot_dfs::recommended_t_clk_ps`] on the same predicted
/// delays.
fn cmd_dfs(args: &Args) -> Result<(), Box<dyn Error>> {
    let model = load_model(args.require("model")?)?;
    let cond = condition(args)?;
    let guardband: f64 = args.get_or("guardband-ps", 0.0)?;
    if !guardband.is_finite() || guardband < 0.0 {
        return Err(ArgError(format!(
            "--guardband-ps must be a non-negative margin (got {guardband})"
        ))
        .into());
    }
    let single = args.get("a").is_some() || args.get("b").is_some();
    if single {
        let a = parse_u32(args.require("a")?)?;
        let b = parse_u32(args.require("b")?)?;
        let prev_a = args.get("prev-a").map(parse_u32).transpose()?.unwrap_or(0);
        let prev_b = args.get("prev-b").map(parse_u32).transpose()?.unwrap_or(0);
        args.finish()?;
        let delay = {
            let _span = tevot_obs::span!("dfs");
            model.predict_delay_ps(cond, (a, b), (prev_a, prev_b))
        };
        let t_clk = tevot_dfs::recommended_t_clk_ps(delay, guardband);
        outln!(
            "({prev_a:#x}, {prev_b:#x}) -> ({a:#x}, {b:#x}) at {cond}, guardband {guardband} ps:"
        );
        outln!("  predicted dynamic delay: {delay:.0} ps");
        outln!("  recommended t_clk: {t_clk} ps");
        return Ok(());
    }

    let workload_path = args.get("workload").map(str::to_owned);
    let fu = args.get("fu").map(parse_fu).transpose()?;
    let vectors: usize = args.get_or("vectors", 400)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let validate = args.flag("validate");
    let engine = engine_from_args(args)?;
    args.finish()?;

    let work = match workload_path {
        Some(path) => {
            let text = at_path(std::fs::read_to_string(&path), "read workload", &path)?;
            tevot::Workload::from_text(&text).map_err(TevotError::parse)?
        }
        None => random_workload(fu.unwrap_or(FunctionalUnit::IntAdd), vectors, seed),
    };
    let ops = work.operands();
    if ops.len() < 2 {
        return Err(
            ArgError("the workload needs at least 2 vectors (one transition)".into()).into()
        );
    }

    let _span = tevot_obs::span!("dfs");
    let mut controller =
        tevot_dfs::ClockController::new(tevot_dfs::GuardbandPolicy::fixed(guardband));
    let mut predicted_sum = 0.0f64;
    let mut total_t_clk = 0u64;
    for t in 1..ops.len() {
        let rec = controller.recommend(&model, cond, ops[t], ops[t - 1]);
        predicted_sum += rec.predicted_delay_ps;
        total_t_clk += rec.t_clk_ps;
    }
    let transitions = ops.len() - 1;
    outln!(
        "adaptive clock over workload {:?} ({transitions} transitions) at {cond}, \
         guardband {guardband} ps:",
        work.name()
    );
    outln!("  mean predicted delay: {:.0} ps", predicted_sum / transitions as f64);
    outln!("  mean t_clk: {:.0} ps", total_t_clk as f64 / transitions as f64);
    outln!("  throughput: {:.3} ops/us", transitions as f64 * 1e6 / total_t_clk as f64);

    if validate {
        let fu = fu.ok_or_else(|| {
            ArgError("--validate needs --fu to pick the gate-level netlist".into())
        })?;
        tevot_obs::info!("validating against gate-level simulation...");
        let trace = Characterizer::new(fu).with_engine(engine).trace(cond, &work);
        let actual: Vec<u64> = trace.cycles().iter().map(|c| c.dynamic_delay_ps()).collect();
        let mut oracle =
            tevot_dfs::ClockController::new(tevot_dfs::GuardbandPolicy::fixed(guardband));
        let outcome = tevot_dfs::replay(&mut oracle, &model, cond, ops, &actual);
        let safest = actual.iter().skip(1).copied().max().unwrap_or(1).max(1);
        let fixed = tevot_dfs::fixed_clock_outcome(safest, &actual);
        outln!(
            "  observed error rate: {:.2}% ({} of {} cycles)",
            outcome.error_rate() * 100.0,
            outcome.errors,
            outcome.cycles
        );
        outln!(
            "  safest fixed clock on this trace: {safest} ps ({:.3} ops/us, {:.2}% errors)",
            fixed.throughput_ops_per_us(),
            fixed.error_rate() * 100.0
        );
    }
    Ok(())
}

/// `tevot obs-diff`: renders the delta between two `tevot-obs/1` metrics
/// reports (as written by `--metrics`) — spans, counters and histogram
/// totals/quantiles side by side with absolute and relative changes.
fn cmd_obs_diff(args: &Args) -> Result<(), Box<dyn Error>> {
    let a_path = args.require_positional(0, "first report path")?.to_owned();
    let b_path = args.require_positional(1, "second report path")?.to_owned();
    args.finish()?;

    let load = |path: &str| -> Result<tevot_obs::diff::Report, Box<dyn Error>> {
        let text = at_path(std::fs::read_to_string(path), "read metrics report", path)?;
        tevot_obs::diff::Report::parse(&text).map_err(|e| format!("{path}: {e}").into())
    };
    let a = load(&a_path)?;
    let b = load(&b_path)?;
    outln!("a: {a_path}");
    outln!("b: {b_path}");
    outln!("{}", tevot_obs::diff::render_diff(&a, &b));
    Ok(())
}

/// `tevot flame`: renders a collapsed-stack profile (as written by
/// `--profile-folded` or served at `GET /profile`) as a self-contained
/// SVG flamegraph, to `--out` or stdout.
fn cmd_flame(args: &Args) -> Result<(), Box<dyn Error>> {
    let profile_path = args.require_positional(0, "folded profile path")?.to_owned();
    let out = args.get("out").map(str::to_owned);
    let title = args.get("title").map(str::to_owned);
    args.finish()?;

    let text = at_path(std::fs::read_to_string(&profile_path), "read profile", &profile_path)?;
    let profile = tevot_prof::Profile::parse(&text)
        .map_err(|e| TevotError::new(ErrorKind::Parse, format!("{profile_path}: {e}")))?;
    let title = title.unwrap_or_else(|| format!("tevot profile — {profile_path}"));
    let svg = tevot_prof::flame::render_svg(&profile, &title);
    match out {
        Some(path) => {
            at_path(std::fs::write(&path, &svg), "write flamegraph", &path)?;
            tevot_obs::info!(
                "flame: wrote {path} ({} stacks, {} ns)",
                profile.len(),
                profile.total()
            );
        }
        None => outln!("{svg}"),
    }
    Ok(())
}

fn parse_fu(name: &str) -> Result<FunctionalUnit, ArgError> {
    FunctionalUnit::from_name(name).ok_or_else(|| {
        ArgError(format!("unknown unit {name:?} (expected int-add | int-mul | fp-add | fp-mul)"))
    })
}

fn parse_grid(name: &str) -> Result<ConditionGrid, ArgError> {
    match name {
        "fig3" => Ok(ConditionGrid::fig3()),
        "paper" => Ok(ConditionGrid::paper()),
        other => Err(ArgError(format!("unknown grid {other:?} (expected fig3 | paper)"))),
    }
}

/// The condition grid for a command: an explicit `--voltages`/`--temps`
/// pair wins over the named `--grid`.
fn grid_from_args(args: &Args) -> Result<ConditionGrid, ArgError> {
    let voltages: Option<Vec<f64>> = args.get_list("voltages")?;
    let temps: Option<Vec<f64>> = args.get_list("temps")?;
    match (voltages, temps) {
        (None, None) => parse_grid(args.get("grid").unwrap_or("fig3")),
        (Some(v), Some(t)) => {
            if let Some(bad) = v.iter().find(|x| !x.is_finite() || **x <= 0.0) {
                return Err(ArgError(format!("--voltages: {bad} is not a positive voltage")));
            }
            if let Some(bad) = t.iter().find(|x| !x.is_finite()) {
                return Err(ArgError(format!("--temps: {bad} is not a finite temperature")));
            }
            Ok(ConditionGrid::new(v, t))
        }
        _ => Err(ArgError("--voltages and --temps must be given together".into())),
    }
}

fn parse_u32(s: &str) -> Result<u32, ArgError> {
    let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.map_err(|_| ArgError(format!("cannot parse operand {s:?} as u32")))
}

fn condition(args: &Args) -> Result<OperatingCondition, ArgError> {
    let v: f64 = args.require_parsed("voltage")?;
    let t: f64 = args.require_parsed("temperature")?;
    Ok(OperatingCondition::new(v, t))
}

fn cmd_stats(args: &Args) -> Result<(), Box<dyn Error>> {
    let fu = parse_fu(args.require("fu")?)?;
    args.finish()?;
    let nl = fu.build();
    outln!("{}", nl.stats().to_string().trim_end());
    let model = DelayModel::tsmc45_like();
    outln!("\ncritical-path delay across the Fig. 3 condition grid:");
    for cond in ConditionGrid::fig3().iter() {
        let ann = model.annotate(&nl, cond);
        let crit = tevot_timing::sta::run(&nl, &ann).critical_delay_ps();
        outln!("  {cond}: {crit} ps");
    }
    Ok(())
}

fn cmd_characterize(args: &Args) -> Result<(), Box<dyn Error>> {
    let fu = parse_fu(args.require("fu")?)?;
    let cond = condition(args)?;
    let vectors: usize = args.get_or("vectors", 500)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let sdf_path = args.get("sdf").map(str::to_owned);
    let vcd_path = args.get("vcd").map(str::to_owned);
    let engine = engine_from_args(args)?;
    args.finish()?;

    let characterizer = Characterizer::new(fu).with_engine(engine);
    let work = random_workload(fu, vectors, seed);
    tevot_obs::info!("characterizing {fu} at {cond} over {vectors} random vectors...");
    let truth = characterizer.characterize(cond, &work, &ClockSpeedup::PAPER);

    outln!("{fu} at {cond}:");
    outln!("  critical path (STA):        {} ps", truth.critical_delay_ps());
    outln!("  max dynamic delay:          {} ps", truth.max_dynamic_delay_ps());
    outln!("  mean dynamic delay:         {:.0} ps", truth.average_delay_ps());
    for (i, speedup) in ClockSpeedup::PAPER.iter().enumerate() {
        outln!(
            "  TER at {speedup} overclock:       {:.2}% (clock {} ps)",
            truth.timing_error_rate(i) * 100.0,
            truth.clock_periods_ps()[i],
        );
    }

    if let Some(path) = sdf_path {
        let ann = characterizer.delay_model().annotate(characterizer.netlist(), cond);
        let mut file = BufWriter::new(at_path(File::create(&path), "create SDF file", &path)?);
        at_path(file.write_all(sdf::write_sdf(&ann).as_bytes()), "write SDF file", &path)?;
        outln!("wrote SDF annotation to {path}");
    }
    if let Some(path) = vcd_path {
        let ann = characterizer.delay_model().annotate(characterizer.netlist(), cond);
        let period =
            tevot_timing::sta::run(characterizer.netlist(), &ann).characterization_period_ps();
        let inputs: Vec<Vec<bool>> =
            work.operands().iter().map(|&(a, b)| fu.encode_operands(a, b)).collect();
        let text = dump_vcd(characterizer.netlist(), &ann, &inputs, period);
        at_path(std::fs::write(&path, text), "write VCD dump", &path)?;
        outln!("wrote VCD dump to {path} (characterization clock {period} ps)");
    }
    Ok(())
}

fn cmd_train(args: &Args) -> Result<(), Box<dyn Error>> {
    let fu = parse_fu(args.require("fu")?)?;
    let out = args.require("out")?.to_owned();
    let grid = grid_from_args(args)?;
    let vectors: usize = args.get_or("vectors", 800)?;
    let trees: usize = args.get_or("trees", 10)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let history = !args.flag("no-history");
    let resume = args.get("resume").map(str::to_owned);
    let deadline_ms: Option<u64> = args.get_parsed("deadline-ms")?;
    let engine = engine_from_args(args)?;
    let workers: usize = args.get_or("workers", 1)?;
    let lease_ms: u64 = args.get_or("lease-ms", 10_000)?;
    args.finish()?;
    if lease_ms == 0 {
        return Err(ArgError("--lease-ms must be at least 1".into()).into());
    }

    let encoding =
        if history { FeatureEncoding::with_history() } else { FeatureEncoding::without_history() };
    let characterizer = Characterizer::new(fu).with_engine(engine);
    let work = random_workload(fu, vectors, seed);
    // One tevot-par task per grid point; output order matches the grid,
    // so training data (and the model) are identical at every --jobs.
    let conditions: Vec<OperatingCondition> = grid.iter().collect();
    let token = CancelToken::new();
    let _watchdog =
        deadline_ms.map(|ms| Watchdog::deadline(&token, std::time::Duration::from_millis(ms)));
    let chars = if workers > 1 {
        // Fleet sweep: shard the grid across worker processes over the
        // tevot-fleet lease protocol. The checkpoint directory is the
        // work journal; without --resume a private one is used and
        // cleaned up on success. Output is bit-identical to a serial
        // sweep at any worker count (DESIGN.md §17).
        let (ckpt_dir, ephemeral) = match &resume {
            Some(dir) => (std::path::PathBuf::from(dir), false),
            None => {
                (std::env::temp_dir().join(format!("tevot_fleet_{}", std::process::id())), true)
            }
        };
        let mut spec = tevot_fleet::FleetSweepSpec::new(fu, vectors, seed, &ckpt_dir);
        spec.engine = engine;
        spec.conditions = conditions.clone();
        spec.workers = workers;
        spec.lease = std::time::Duration::from_millis(lease_ms);
        spec.max_respawns = 2 * workers;
        spec.mode = tevot_fleet::WorkerMode::Process {
            program: worker_program()?,
            args: vec!["fleet-worker".into()],
        };
        let chars = tevot_fleet::run_sweep(&spec, &token)?;
        if ephemeral {
            let _ = std::fs::remove_dir_all(&ckpt_dir);
        }
        chars
    } else {
        match &resume {
            // Checkpointed sweep: each completed condition is journaled
            // to an atomic shard in <dir> and skipped on the next run.
            // The resumed output is bit-identical to an uninterrupted
            // sweep.
            Some(dir) => {
                let ckpt = CheckpointDir::open(dir.as_str()).map_err(Box::new)?;
                characterizer.characterize_sweep_ckpt(
                    &conditions,
                    &work,
                    &ClockSpeedup::PAPER,
                    &ckpt,
                    &token,
                )?
            }
            None => characterizer.characterize_sweep(&conditions, &work, &ClockSpeedup::PAPER),
        }
    };
    let runs: Vec<_> = chars.iter().map(|c| (&work, c)).collect();
    let data = build_delay_dataset(encoding, &runs);
    tevot_obs::info!("training on {} rows x {} features...", data.len(), data.num_features());
    let params = TevotParams {
        forest: ForestParams { num_trees: trees, ..ForestParams::default() },
        encoding,
    };
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut model = {
        let _span = tevot_obs::span!("train");
        TevotModel::train(&data, &params, &mut rng)
    };
    // Persist the training distribution alongside the forest: the serve
    // stack's drift monitors compare live traffic against these
    // reference histograms (DESIGN.md §14), and they hot-swap with the
    // model because they live in the same file. The delay reference uses
    // the model's own *predictions* over the training transitions — the
    // serve side observes predicted delays, and forest smoothing shifts
    // their distribution away from the raw characterized delays.
    let ops = work.operands();
    let mut ref_conditions = Vec::new();
    let mut ref_delays = Vec::new();
    for characterization in &chars {
        let cond = characterization.condition();
        for t in 1..ops.len() {
            ref_conditions.push(cond);
            ref_delays.push(model.predict_delay_ps(cond, ops[t], ops[t - 1]));
        }
    }
    model.set_reference(ReferenceStats::collect(&ref_conditions, &ref_delays));
    at_path(model.save_path(Path::new(&out)), "write model to", &out)?;
    outln!(
        "trained {} ({} trees, {} conditions, {} rows) -> {out}",
        if history { "TEVoT" } else { "TEVoT-NH" },
        trees,
        grid.len(),
        data.len(),
    );
    Ok(())
}

/// The executable fleet children are spawned from: the `TEVOT_BIN` env
/// override (tests point it at the freshly built binary) or this
/// process's own image.
fn worker_program() -> Result<std::path::PathBuf, Box<dyn Error>> {
    match std::env::var_os("TEVOT_BIN") {
        Some(path) => Ok(std::path::PathBuf::from(path)),
        None => std::env::current_exe()
            .map_err(|e| TevotError::from(e).context("locate the tevot executable").into()),
    }
}

/// The hidden `fleet-worker` subcommand: one sweep worker, spawned by
/// the coordinator, never by hand.
fn cmd_fleet_worker(args: &Args) -> Result<(), Box<dyn Error>> {
    let coordinator = args.require("coordinator")?.to_owned();
    let worker_id = args.require("worker-id")?.to_owned();
    args.finish()?;
    tevot_fleet::worker::run(&coordinator, &worker_id)?;
    Ok(())
}

fn load_model(path: &str) -> Result<TevotModel, Box<dyn Error>> {
    // `load_path` names the path and byte offset of any truncation or
    // corruption; the conversion classifies it (I/O vs corrupt) for the
    // exit code.
    TevotModel::load_path(Path::new(path)).map_err(|e| TevotError::from(e).into())
}

fn cmd_predict(args: &Args) -> Result<(), Box<dyn Error>> {
    let model = load_model(args.require("model")?)?;
    let cond = condition(args)?;
    let clock: u64 = args.require_parsed("clock-ps")?;
    let a = parse_u32(args.require("a")?)?;
    let b = parse_u32(args.require("b")?)?;
    let prev_a = args.get("prev-a").map(parse_u32).transpose()?.unwrap_or(0);
    let prev_b = args.get("prev-b").map(parse_u32).transpose()?.unwrap_or(0);
    args.finish()?;

    let delay = {
        let _span = tevot_obs::span!("predict");
        model.predict_delay_ps(cond, (a, b), (prev_a, prev_b))
    };
    let erroneous = delay > clock as f64;
    outln!("({prev_a:#x}, {prev_b:#x}) -> ({a:#x}, {b:#x}) at {cond}, clock {clock} ps:");
    outln!("  predicted dynamic delay: {delay:.0} ps");
    outln!("  verdict: timing {}", if erroneous { "ERRONEOUS" } else { "correct" });
    Ok(())
}

fn cmd_sweep(args: &Args) -> Result<(), Box<dyn Error>> {
    let model = load_model(args.require("model")?)?;
    let grid = grid_from_args(args)?;
    let fu = args.get("fu").map(parse_fu).transpose()?.unwrap_or(FunctionalUnit::IntAdd);
    let vectors: usize = args.get_or("vectors", 300)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let clock: Option<u64> = args.get("clock-ps").map(str::parse).transpose()?;
    args.finish()?;
    if vectors < 2 {
        return Err(ArgError(format!(
            "--vectors must be at least 2 (got {vectors}); a sweep needs at least one transition"
        ))
        .into());
    }

    // The model carries no FU identity; predicted delays are meaningful
    // for the unit it was trained on, so --fu should match the training
    // unit (default int-add). Random operand pairs probe the
    // distribution.
    let _span = tevot_obs::span!("evaluate");
    let work = random_workload(fu, vectors, seed);
    let ops = work.operands();
    outln!(
        "predicted dynamic-delay distribution over {} random {} transitions{}:",
        vectors - 1,
        fu.slug(),
        clock.map(|c| format!(" (TER at clock {c} ps)")).unwrap_or_default(),
    );
    outln!("{:>14} {:>8} {:>8} {:>8} {:>10}", "condition", "p50", "p99", "max", "TER");
    for cond in grid.iter() {
        let mut delays: Vec<f64> =
            (1..ops.len()).map(|t| model.predict_delay_ps(cond, ops[t], ops[t - 1])).collect();
        delays.sort_by(f64::total_cmp);
        // Interpolated quantiles — the same convention the tevot-obs
        // histograms (and thus the serve /metrics endpoint) report, so
        // CLI and served percentiles agree.
        let q = |p: f64| tevot_obs::metrics::quantile_sorted(&delays, p).unwrap_or(0.0);
        let ter = clock
            .map(|c| {
                let errors = delays.iter().filter(|&&d| d > c as f64).count();
                format!("{:.2}%", errors as f64 / delays.len() as f64 * 100.0)
            })
            .unwrap_or_else(|| "-".into());
        outln!(
            "{:>14} {:>8.0} {:>8.0} {:>8.0} {:>10}",
            cond.to_string(),
            q(0.5),
            q(0.99),
            delays.last().copied().unwrap_or(0.0),
            ter,
        );
    }
    Ok(())
}

/// `tevot serve`: the online inference server (tevot-serve). Loads
/// `--model` as the `default` registry entry, binds `--addr`, and serves
/// until the process is killed. Worker count comes from the global
/// `--jobs` flag / `TEVOT_JOBS`, like every other command.
fn cmd_serve(args: &Args) -> Result<(), Box<dyn Error>> {
    let model_path = args.require("model")?.to_owned();
    let addr = args.get("addr").unwrap_or("127.0.0.1:7450").to_owned();
    let max_queue: usize = args.get_or("max-queue", 256)?;
    let batch: usize = args.get_or("batch", 32)?;
    let batch_wait_ms: u64 = args.get_or("batch-wait-ms", 1)?;
    let no_watch = args.flag("no-watch");
    let watch_resolution_ms: u64 = args.get_or("watch-resolution-ms", 1000)?;
    let watch_capacity: usize = args.get_or("watch-capacity", 600)?;
    let shadow_every: u64 = args.get_or("shadow-every", 0)?;
    let psi_alert: f64 = args.get_or("psi-alert", tevot_obs::drift::PSI_ALERT_DEFAULT)?;
    let slos = match args.get("slo") {
        Some(spec) => tevot_obs::slo::Slo::parse_list(spec).map_err(ArgError)?,
        None => Vec::new(),
    };
    let shadow_fu = args.get("fu").map(parse_fu).transpose()?.unwrap_or(FunctionalUnit::IntAdd);
    let replicas: usize = args.get_or("replicas", 1)?;
    let port_file = args.get("port-file").map(str::to_owned);
    // Hidden, launcher-owned flag: arm the orphan watchdog against this
    // parent pid. A replica whose router is SIGKILLed never receives a
    // shutdown (the router's Drop can't run), so it watches for
    // reparenting instead of trusting the parent to clean up.
    let parent_pid: Option<u32> = args.get_parsed("parent-pid")?;
    args.finish()?;
    if max_queue == 0 {
        return Err(ArgError("--max-queue must be at least 1".into()).into());
    }
    if batch == 0 {
        return Err(ArgError("--batch must be at least 1".into()).into());
    }
    if watch_resolution_ms == 0 || watch_capacity == 0 {
        return Err(
            ArgError("--watch-resolution-ms and --watch-capacity must be >= 1".into()).into()
        );
    }

    // Load (and validate) the model before binding the port, so a bad
    // model path fails fast with the taxonomy exit code instead of
    // leaving a listener that 404s everything. The replicated parent
    // validates too — better one early exit than N replica corpses.
    let model = load_model(&model_path)?;

    if replicas > 1 {
        // Replicated serving: this process becomes the consistent-hash
        // router and each replica is a plain single-replica `tevot
        // serve` child on an ephemeral port (DESIGN.md §17).
        let mut base_args = vec!["--model".to_owned(), model_path.clone()];
        for (flag, value) in [
            ("--max-queue", max_queue.to_string()),
            ("--batch", batch.to_string()),
            ("--batch-wait-ms", batch_wait_ms.to_string()),
        ] {
            base_args.push(flag.to_owned());
            base_args.push(value);
        }
        if no_watch {
            base_args.push("--no-watch".to_owned());
        }
        let launcher = tevot_fleet::ProcessReplicaLauncher {
            program: worker_program()?,
            base_args,
            port_dir: std::env::temp_dir().join(format!("tevot_replicas_{}", std::process::id())),
        };
        let config = tevot_fleet::RouterConfig {
            addr: addr.clone(),
            replicas,
            ..tevot_fleet::RouterConfig::default()
        };
        let mut router = tevot_fleet::Router::start(config, std::sync::Arc::new(launcher))
            .map_err(|e| {
                TevotError::from(e).context(format!("start replicated serve on {addr}"))
            })?;
        if let Some(path) = &port_file {
            write_port_file(path, &router.local_addr().to_string())?;
        }
        outln!(
            "routing {model_path} across {replicas} replicas on http://{}  (ring-hash placement, \
             health-checked failover; GET /fleet/status for the fleet view)",
            router.local_addr(),
        );
        router.join();
        return Ok(());
    }
    let watch = if no_watch {
        None
    } else {
        Some(tevot_serve::WatchConfig {
            resolution_ms: watch_resolution_ms,
            capacity: watch_capacity,
            slos,
            shadow_every,
            psi_alert,
            fu: shadow_fu,
            ..tevot_serve::WatchConfig::default()
        })
    };
    let config = tevot_serve::ServeConfig {
        addr: addr.clone(),
        jobs: 0, // resolve the global --jobs / TEVOT_JOBS setting
        max_queue,
        batch,
        batch_wait: std::time::Duration::from_millis(batch_wait_ms),
        watch,
        ..tevot_serve::ServeConfig::default()
    };
    let server = tevot_serve::Server::start(config)
        .map_err(|e| TevotError::from(e).context(format!("cannot bind {addr}")))?;
    server.state().registry.insert(tevot_serve::DEFAULT_MODEL, model);
    if let Some(path) = &port_file {
        // Published only after the bind: whoever polls this file (the
        // replica launcher, a test harness) sees either nothing or a
        // connectable address.
        write_port_file(path, &server.local_addr().to_string())?;
    }
    outln!(
        "serving {model_path} as {:?} on http://{}  (queue {max_queue}, batch {batch}, \
         wait {batch_wait_ms} ms, watch {})",
        tevot_serve::DEFAULT_MODEL,
        server.local_addr(),
        if no_watch { "off".to_owned() } else { format!("every {watch_resolution_ms} ms") },
    );
    spawn_orphan_watchdog(parent_pid);
    server.join();
    Ok(())
}

/// Exits this process once it is no longer a child of `expected` — a
/// replica's guard against leaking when its router dies ungracefully
/// (SIGKILL skips every Drop; the orphan is reparented to init and
/// would otherwise serve forever on a port nobody remembers).
#[cfg(unix)]
fn spawn_orphan_watchdog(parent_pid: Option<u32>) {
    let Some(expected) = parent_pid else { return };
    std::thread::spawn(move || loop {
        if std::os::unix::process::parent_id() != expected {
            tevot_obs::warn!("serve: parent process {expected} is gone; exiting");
            std::process::exit(0);
        }
        std::thread::sleep(std::time::Duration::from_millis(500));
    });
}

#[cfg(not(unix))]
fn spawn_orphan_watchdog(_parent_pid: Option<u32>) {}

/// Atomically publishes a bound address to `path` (tmp + rename), so a
/// polling reader never observes a half-written file.
fn write_port_file(path: &str, addr: &str) -> Result<(), Box<dyn Error>> {
    let tmp = format!("{path}.tmp.{}", std::process::id());
    at_path(std::fs::write(&tmp, format!("{addr}\n")), "write port file", path)?;
    at_path(std::fs::rename(&tmp, path), "publish port file", path)?;
    Ok(())
}

/// Eight-level block characters for the `top` sparklines.
const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders `points` (`[wall_ms, value]` pairs from `/watch`) as a
/// fixed-width sparkline scaled to the window's own min..max.
fn sparkline(points: &[tevot_obs::json::Json], width: usize) -> String {
    let values: Vec<f64> = points.iter().filter_map(|p| p.as_arr()?.get(1)?.as_f64()).collect();
    let tail = &values[values.len().saturating_sub(width)..];
    if tail.is_empty() {
        return "(no data)".into();
    }
    let (lo, hi) =
        tail.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let span = (hi - lo).max(1e-12);
    tail.iter()
        .map(|&v| SPARK[(((v - lo) / span) * 7.0).round().clamp(0.0, 7.0) as usize])
        .collect()
}

/// One `top` frame rendered from a `/watch` document.
fn render_top(doc: &tevot_obs::json::Json, addr: &str) -> String {
    use tevot_obs::json::Json;
    let mut out = String::new();
    let f = |path: &[&str]| -> Option<f64> {
        let mut node = doc;
        for key in path {
            node = node.get(key)?;
        }
        node.as_f64()
    };
    let alerts_total = f(&["alerts_total"]).unwrap_or(0.0);
    let reference = doc.get("reference_loaded") == Some(&Json::Bool(true));
    out.push_str(&format!(
        "tevot top — {addr}   alerts {alerts_total:.0}   reference {}\n\n",
        if reference { "loaded" } else { "none" },
    ));

    if let Some(Json::Obj(series)) = doc.get("series") {
        out.push_str("series (sparklines over the retained window):\n");
        for name in
            ["serve.qps", "serve.p50_us", "serve.p99_us", "serve.error_ratio", "serve.queue_depth"]
        {
            let Some((_, Json::Arr(points))) = series.iter().find(|(n, _)| n == name) else {
                continue;
            };
            let last = points
                .last()
                .and_then(|p| p.as_arr()?.get(1)?.as_f64())
                .map(|v| format!("{v:>12.2}"))
                .unwrap_or_else(|| "           -".into());
            out.push_str(&format!("  {name:<20} {last}  {}\n", sparkline(points, 40)));
        }
    }

    out.push_str("\ndrift (PSI vs training reference):\n");
    for (label, key) in
        [("voltage", "voltage_psi"), ("temperature", "temperature_psi"), ("delay", "delay_psi")]
    {
        let level = f(&["drift", "psi_alert"]).unwrap_or(0.25);
        match f(&["drift", key]) {
            Some(psi) => {
                let mark = if psi >= level { " ALERT" } else { "" };
                out.push_str(&format!("  {label:<12} {psi:>8.4}{mark}\n"));
            }
            None => out.push_str(&format!("  {label:<12}        -\n")),
        }
    }
    if let Some(acc) = f(&["drift", "shadow_accuracy"]) {
        out.push_str(&format!("  shadow-acc   {acc:>8.4}\n"));
    }

    if let Some(Json::Arr(slos)) = doc.get("slo") {
        if !slos.is_empty() {
            out.push_str("\nSLOs (burn = window mean / threshold):\n");
            for slo in slos {
                let series = slo.get("series").and_then(Json::as_str).unwrap_or("?");
                let threshold = slo.get("threshold").and_then(Json::as_f64).unwrap_or(f64::NAN);
                let firing = slo.get("firing") == Some(&Json::Bool(true));
                let fast = slo.get("burn_fast").and_then(Json::as_f64).unwrap_or(0.0);
                let slow = slo.get("burn_slow").and_then(Json::as_f64).unwrap_or(0.0);
                out.push_str(&format!(
                    "  {series:<20} < {threshold:<10} burn {fast:>6.2}/{slow:<6.2} {}\n",
                    if firing { "FIRING" } else { "ok" },
                ));
            }
        }
    }

    if let Some(Json::Arr(alerts)) = doc.get("alerts") {
        if !alerts.is_empty() {
            out.push_str("\nrecent alerts:\n");
            for alert in alerts.iter().rev().take(8) {
                out.push_str(&format!(
                    "  [{}] {} at {} ms (threshold {})\n",
                    alert.get("kind").and_then(Json::as_str).unwrap_or("?"),
                    alert.get("series").and_then(Json::as_str).unwrap_or("?"),
                    alert.get("at_ms").and_then(Json::as_u64).unwrap_or(0),
                    alert.get("threshold").and_then(Json::as_f64).unwrap_or(f64::NAN),
                ));
            }
        }
    }

    if let Some(Json::Arr(exemplars)) = doc.get("exemplars") {
        if !exemplars.is_empty() {
            out.push_str("\nslowest requests (exemplars):\n");
            for ex in exemplars {
                let stages: String = ex
                    .get("stages")
                    .and_then(Json::as_arr)
                    .map(|stages| {
                        stages
                            .iter()
                            .map(|s| {
                                format!(
                                    "{} {:.1}ms",
                                    s.get("name").and_then(Json::as_str).unwrap_or("?"),
                                    s.get("ns").and_then(Json::as_f64).unwrap_or(0.0) / 1e6,
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(" | ")
                    })
                    .unwrap_or_default();
                out.push_str(&format!(
                    "  #{:<8} {:<10} {:>9.1} ms   {stages}\n",
                    ex.get("request_id").and_then(Json::as_u64).unwrap_or(0),
                    ex.get("endpoint").and_then(Json::as_str).unwrap_or("?"),
                    ex.get("total_us").and_then(Json::as_f64).unwrap_or(0.0) / 1e3,
                ));
            }
        }
    }
    out
}

/// `tevot top`: a live ANSI dashboard over a watching server's
/// `GET /watch` endpoint — sparklines for the key serve series, drift
/// PSI scores, SLO burn rates, and recent alerts.
fn cmd_top(args: &Args) -> Result<(), Box<dyn Error>> {
    let addr = args.get("addr").unwrap_or("127.0.0.1:7450").to_owned();
    let interval_ms: u64 = args.get_or("interval-ms", 1000)?;
    let once = args.flag("once");
    args.finish()?;

    loop {
        let (status, body) = tevot_serve::http::get(&addr, "/watch")
            .map_err(|e| TevotError::from(e).context(format!("cannot reach {addr}")))?;
        if status != 200 {
            return Err(TevotError::new(
                ErrorKind::Usage,
                format!("GET /watch on {addr} answered {status}: {body} (serve with watch on?)"),
            )
            .into());
        }
        let doc = tevot_obs::json::parse(&body)
            .map_err(|e| TevotError::new(ErrorKind::Parse, format!("bad /watch JSON: {e}")))?;
        if once {
            outln!("{}", render_top(&doc, &addr));
            return Ok(());
        }
        // ANSI: clear screen, cursor home — a full redraw per frame.
        outln!("\x1b[2J\x1b[H{}", render_top(&doc, &addr));
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

/// `tevot prom-check`: fetches `GET /metrics?format=prom` and re-parses
/// the exposition, failing loudly when the server's output is not valid
/// Prometheus 0.0.4 text — the CI guard for the scrape endpoint.
fn cmd_prom_check(args: &Args) -> Result<(), Box<dyn Error>> {
    let addr = args.get("addr").unwrap_or("127.0.0.1:7450").to_owned();
    args.finish()?;
    let (status, body) = tevot_serve::http::get(&addr, "/metrics?format=prom")
        .map_err(|e| TevotError::from(e).context(format!("cannot reach {addr}")))?;
    if status != 200 {
        return Err(TevotError::new(
            ErrorKind::Usage,
            format!("GET /metrics?format=prom on {addr} answered {status}"),
        )
        .into());
    }
    let samples = tevot_obs::prom::parse(&body)
        .map_err(|e| TevotError::new(ErrorKind::Parse, format!("invalid exposition: {e}")))?;
    if samples.is_empty() {
        return Err(TevotError::new(ErrorKind::Corrupt, "exposition contains no samples").into());
    }
    let families: std::collections::BTreeSet<&str> =
        samples.iter().map(|s| s.name.as_str()).collect();
    outln!(
        "prom-check ok: {} samples across {} metric names from {addr}",
        samples.len(),
        families.len(),
    );
    Ok(())
}
