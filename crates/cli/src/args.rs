//! Minimal command-line argument parsing (flag/value pairs plus ordered
//! positionals), with typed accessors and helpful errors. Deliberately
//! dependency-free.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;

/// A parsed command line: the subcommand, `--flag value` / `--flag`
/// pairs, and any remaining positional operands in order (e.g. the two
/// report paths of `obs-diff a.json b.json`).
#[derive(Debug, Clone, Default)]
pub struct Args {
    command: String,
    values: BTreeMap<String, String>,
    flags: Vec<String>,
    positionals: Vec<String>,
    consumed: std::cell::RefCell<Vec<String>>,
    positionals_taken: Cell<usize>,
}

/// An error produced while parsing or querying arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses `argv` (without the program name). The first token is the
    /// subcommand; every `--name value` pair becomes a value, every bare
    /// `--name` a flag, and any other token a positional operand.
    /// Commands that take no positionals reject strays in [`finish`].
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] on a missing subcommand.
    ///
    /// [`finish`]: Args::finish
    pub fn parse(argv: impl IntoIterator<Item = String>) -> Result<Args, ArgError> {
        let mut iter = argv.into_iter().peekable();
        let command =
            iter.next().ok_or_else(|| ArgError("missing subcommand (try `tevot help`)".into()))?;
        let mut values = BTreeMap::new();
        let mut flags = Vec::new();
        let mut positionals = Vec::new();
        while let Some(token) = iter.next() {
            let Some(name) = token.strip_prefix("--") else {
                positionals.push(token);
                continue;
            };
            match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    values.insert(name.to_string(), iter.next().expect("peeked"));
                }
                _ => flags.push(name.to_string()),
            }
        }
        Ok(Args {
            command,
            values,
            flags,
            positionals,
            consumed: Default::default(),
            positionals_taken: Cell::new(0),
        })
    }

    /// The subcommand.
    pub fn command(&self) -> &str {
        &self.command
    }

    /// A string value, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.consumed.borrow_mut().push(name.to_string());
        self.values.get(name).map(String::as_str)
    }

    /// A required string value.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when absent.
    pub fn require(&self, name: &str) -> Result<&str, ArgError> {
        self.get(name).ok_or_else(|| ArgError(format!("missing required --{name} <value>")))
    }

    /// A parsed value with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when present but unparsable.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(s) => s.parse().map_err(|_| ArgError(format!("--{name}: cannot parse {s:?}"))),
        }
    }

    /// A required parsed value.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when absent or unparsable.
    pub fn require_parsed<T: std::str::FromStr>(&self, name: &str) -> Result<T, ArgError> {
        let s = self.require(name)?;
        s.parse().map_err(|_| ArgError(format!("--{name}: cannot parse {s:?}")))
    }

    /// An optional parsed value (absent stays `None`).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when present but unparsable.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, ArgError> {
        match self.get(name) {
            None => Ok(None),
            Some(s) => {
                s.parse().map(Some).map_err(|_| ArgError(format!("--{name}: cannot parse {s:?}")))
            }
        }
    }

    /// An optional comma-separated list (`--temps 0,25,100`), each item
    /// parsed as `T`. Absent stays `None`; an empty or partially
    /// unparsable list is an error, never a silent truncation.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] naming the first item that fails to parse.
    pub fn get_list<T: std::str::FromStr>(&self, name: &str) -> Result<Option<Vec<T>>, ArgError> {
        let Some(raw) = self.get(name) else { return Ok(None) };
        let mut items = Vec::new();
        for part in raw.split(',') {
            let part = part.trim();
            if part.is_empty() {
                return Err(ArgError(format!(
                    "--{name}: empty item in list {raw:?} (expected e.g. 0.9,1.0)"
                )));
            }
            items.push(
                part.parse()
                    .map_err(|_| ArgError(format!("--{name}: cannot parse list item {part:?}")))?,
            );
        }
        Ok(Some(items))
    }

    /// Whether a bare `--name` flag was passed.
    pub fn flag(&self, name: &str) -> bool {
        self.consumed.borrow_mut().push(name.to_string());
        self.flags.iter().any(|f| f == name)
    }

    /// The positional operand at `index`, if present.
    pub fn positional(&self, index: usize) -> Option<&str> {
        self.positionals_taken.set(self.positionals_taken.get().max(index + 1));
        self.positionals.get(index).map(String::as_str)
    }

    /// A required positional operand, described as `what` in the error.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when absent.
    pub fn require_positional(&self, index: usize, what: &str) -> Result<&str, ArgError> {
        self.positional(index)
            .ok_or_else(|| ArgError(format!("missing {what} (positional argument {})", index + 1)))
    }

    /// Rejects any argument that no accessor asked about — catches typos
    /// like `--voltag` and stray positional operands.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] naming the first unknown argument.
    pub fn finish(&self) -> Result<(), ArgError> {
        let consumed = self.consumed.borrow();
        for name in self.values.keys().chain(self.flags.iter()) {
            if !consumed.iter().any(|c| c == name) {
                return Err(ArgError(format!("unknown argument --{name}")));
            }
        }
        if let Some(stray) = self.positionals.get(self.positionals_taken.get()..) {
            if let Some(first) = stray.first() {
                return Err(ArgError(format!("unexpected positional argument {first:?}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn parses_values_and_flags() {
        let a = parse(&["train", "--fu", "int-add", "--full", "--seed", "7"]);
        assert_eq!(a.command(), "train");
        assert_eq!(a.get("fu"), Some("int-add"));
        assert_eq!(a.get_or("seed", 0u64).unwrap(), 7);
        assert!(a.flag("full"));
        assert!(!a.flag("tiny"));
        a.finish().unwrap();
    }

    #[test]
    fn rejects_unknown_arguments() {
        let a = parse(&["train", "--mystery", "1"]);
        assert!(a.finish().is_err());
        let _ = a.get("mystery");
        a.finish().unwrap();
    }

    #[test]
    fn requires_missing_value() {
        let a = parse(&["predict"]);
        assert!(a.require("model").is_err());
        assert!(a.require_parsed::<f64>("voltage").is_err());
    }

    #[test]
    fn rejects_unconsumed_positional() {
        let a = parse(&["x", "stray"]);
        let err = a.finish().unwrap_err();
        assert!(err.to_string().contains("positional"));
    }

    #[test]
    fn positionals_are_ordered_and_consumable() {
        let a = parse(&["obs-diff", "a.json", "b.json", "--verbose-ish"]);
        assert_eq!(a.positional(0), Some("a.json"));
        assert_eq!(a.require_positional(1, "candidate").unwrap(), "b.json");
        assert!(a
            .require_positional(2, "nothing")
            .unwrap_err()
            .to_string()
            .contains("positional argument 3"));
        let _ = a.flag("verbose-ish");
        a.finish().unwrap();
    }

    #[test]
    fn flag_value_pairs_still_win_over_positionals() {
        // "--fu int-add" stays a value pair; only the bare token is
        // positional.
        let a = parse(&["cmd", "--fu", "int-add", "loose"]);
        assert_eq!(a.get("fu"), Some("int-add"));
        assert_eq!(a.positional(0), Some("loose"));
        assert_eq!(a.positional(1), None);
        a.finish().unwrap();
    }

    #[test]
    fn missing_subcommand() {
        assert!(Args::parse(std::iter::empty()).is_err());
    }

    #[test]
    fn optional_parsed_values() {
        let a = parse(&["train", "--deadline-ms", "250"]);
        assert_eq!(a.get_parsed::<u64>("deadline-ms").unwrap(), Some(250));
        assert_eq!(a.get_parsed::<u64>("absent").unwrap(), None);
        let a = parse(&["train", "--deadline-ms", "soon"]);
        let err = a.get_parsed::<u64>("deadline-ms").unwrap_err();
        assert!(err.to_string().contains("soon"), "{err}");
    }

    #[test]
    fn comma_lists_parse_or_name_the_bad_item() {
        let a = parse(&["train", "--temps", "0, 25,100"]);
        assert_eq!(a.get_list::<f64>("temps").unwrap(), Some(vec![0.0, 25.0, 100.0]));
        assert_eq!(a.get_list::<f64>("voltages").unwrap(), None);

        let a = parse(&["train", "--temps", "0,warm,100"]);
        let err = a.get_list::<f64>("temps").unwrap_err();
        assert!(err.to_string().contains("\"warm\""), "{err}");

        let a = parse(&["train", "--temps", "0,,100"]);
        assert!(a.get_list::<f64>("temps").unwrap_err().to_string().contains("empty item"));
    }
}
