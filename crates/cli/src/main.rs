//! Thin binary wrapper; see the crate library for the implementation.

use std::process::ExitCode;

/// Heap accounting for `--profile-alloc`: a pass-through to the system
/// allocator until the toggle flips, so an unprofiled run pays one
/// relaxed load per allocation.
#[global_allocator]
static ALLOC: tevot_prof::TevotAlloc = tevot_prof::TevotAlloc;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match tevot_cli::run(argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            let code = tevot_cli::exit_code_for(e.as_ref());
            eprintln!("error: {e}");
            if code == 2 {
                eprintln!("run `tevot help` for usage");
            }
            ExitCode::from(code)
        }
    }
}
