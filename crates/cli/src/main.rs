//! Thin binary wrapper; see the crate library for the implementation.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match tevot_cli::run(argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `tevot help` for usage");
            ExitCode::FAILURE
        }
    }
}
