//! Thin binary wrapper; see the crate library for the implementation.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match tevot_cli::run(argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            let code = tevot_cli::exit_code_for(e.as_ref());
            eprintln!("error: {e}");
            if code == 2 {
                eprintln!("run `tevot help` for usage");
            }
            ExitCode::from(code)
        }
    }
}
