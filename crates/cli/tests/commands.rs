//! End-to-end tests of the `tevot` CLI commands, driven in-process.

use std::path::PathBuf;

fn run(args: &[&str]) -> Result<(), String> {
    tevot_cli::run(args.iter().map(|s| s.to_string()).collect()).map_err(|e| e.to_string())
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("tevot_cli_test_{}_{name}", std::process::id()));
    p
}

#[test]
fn help_and_error_paths() {
    run(&["help"]).unwrap();
    assert!(run(&["frobnicate"]).unwrap_err().contains("unknown subcommand"));
    assert!(run(&["stats"]).unwrap_err().contains("--fu"));
    assert!(run(&["stats", "--fu", "int-nope"]).unwrap_err().contains("unknown unit"));
    assert!(run(&["stats", "--fu", "int-add", "--bogus", "1"])
        .unwrap_err()
        .contains("unknown argument"));
}

#[test]
fn stats_runs_for_every_unit() {
    for fu in ["int-add", "int-mul", "fp-add", "fp-mul"] {
        run(&["stats", "--fu", fu]).unwrap();
    }
}

#[test]
fn characterize_writes_sdf() {
    let sdf = temp_path("char.sdf");
    run(&[
        "characterize",
        "--fu",
        "int-add",
        "--voltage",
        "0.9",
        "--temperature",
        "25",
        "--vectors",
        "60",
        "--sdf",
        sdf.to_str().unwrap(),
    ])
    .unwrap();
    let text = std::fs::read_to_string(&sdf).unwrap();
    assert!(text.starts_with("(DELAYFILE"));
    assert!(text.contains("int_add32"));
    std::fs::remove_file(sdf).ok();
}

#[test]
fn train_predict_ter_roundtrip() {
    let model = temp_path("model.tevot");
    let trace = temp_path("trace.txt");
    run(&[
        "train",
        "--fu",
        "int-add",
        "--out",
        model.to_str().unwrap(),
        "--vectors",
        "150",
        "--trees",
        "3",
    ])
    .unwrap();
    assert!(model.exists());

    run(&[
        "predict",
        "--model",
        model.to_str().unwrap(),
        "--voltage",
        "0.9",
        "--temperature",
        "25",
        "--clock-ps",
        "250",
        "--a",
        "0xFFFFFFFF",
        "--b",
        "1",
    ])
    .unwrap();

    std::fs::write(&trace, "# t\ndeadbeef 00000001\n00000002 00000003\n").unwrap();
    run(&[
        "ter",
        "--model",
        model.to_str().unwrap(),
        "--voltage",
        "0.9",
        "--temperature",
        "25",
        "--clock-ps",
        "250",
        "--workload",
        trace.to_str().unwrap(),
    ])
    .unwrap();

    run(&["sweep", "--model", model.to_str().unwrap(), "--vectors", "50", "--clock-ps", "250"])
        .unwrap();

    // Corrupted model data is rejected cleanly.
    std::fs::write(&model, b"garbage").unwrap();
    assert!(run(&[
        "predict",
        "--model",
        model.to_str().unwrap(),
        "--voltage",
        "0.9",
        "--temperature",
        "25",
        "--clock-ps",
        "250",
        "--a",
        "1",
        "--b",
        "2",
    ])
    .is_err());

    std::fs::remove_file(model).ok();
    std::fs::remove_file(trace).ok();
}
