//! End-to-end tests of the `tevot` CLI commands, driven in-process.

use std::path::PathBuf;

fn run(args: &[&str]) -> Result<(), String> {
    tevot_cli::run(args.iter().map(|s| s.to_string()).collect()).map_err(|e| e.to_string())
}

/// Runs and reduces the outcome to the process exit code the binary
/// would return.
fn run_code(args: &[&str]) -> u8 {
    match tevot_cli::run(args.iter().map(|s| s.to_string()).collect()) {
        Ok(()) => 0,
        Err(e) => tevot_cli::exit_code_for(e.as_ref()),
    }
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("tevot_cli_test_{}_{name}", std::process::id()));
    p
}

#[test]
fn help_and_error_paths() {
    run(&["help"]).unwrap();
    assert!(run(&["frobnicate"]).unwrap_err().contains("unknown subcommand"));
    assert!(run(&["stats"]).unwrap_err().contains("--fu"));
    assert!(run(&["stats", "--fu", "int-nope"]).unwrap_err().contains("unknown unit"));
    assert!(run(&["stats", "--fu", "int-add", "--bogus", "1"])
        .unwrap_err()
        .contains("unknown argument"));
    assert!(run(&["stats", "--fu", "int-add", "stray"]).unwrap_err().contains("positional"));
    assert!(run(&["--trace"]).unwrap_err().contains("needs a file path"));
}

#[test]
fn obs_diff_compares_two_reports() {
    let a = temp_path("obs_a.json");
    let b = temp_path("obs_b.json");
    std::fs::write(
        &a,
        r#"{"schema":"tevot-obs/1",
            "spans":[{"path":"train","total_ns":2000000,"count":1}],
            "counters":[{"name":"sim.cycles_simulated","value":10}],
            "histograms":[]}"#,
    )
    .unwrap();
    std::fs::write(
        &b,
        r#"{"schema":"tevot-obs/1",
            "spans":[{"path":"train","total_ns":3000000,"count":1}],
            "counters":[{"name":"sim.cycles_simulated","value":20}],
            "histograms":[]}"#,
    )
    .unwrap();
    run(&["obs-diff", a.to_str().unwrap(), b.to_str().unwrap()]).unwrap();

    // Error paths: missing operands, unreadable file, wrong schema.
    assert!(run(&["obs-diff"]).unwrap_err().contains("positional argument 1"));
    assert!(run(&["obs-diff", a.to_str().unwrap()]).unwrap_err().contains("positional"));
    assert!(run(&["obs-diff", a.to_str().unwrap(), "/nonexistent/x.json"])
        .unwrap_err()
        .contains("read metrics report"));
    std::fs::write(&b, r#"{"schema":"bogus/7"}"#).unwrap();
    assert!(run(&["obs-diff", a.to_str().unwrap(), b.to_str().unwrap()])
        .unwrap_err()
        .contains("unsupported schema"));

    std::fs::remove_file(a).ok();
    std::fs::remove_file(b).ok();
}

#[test]
fn trace_flag_writes_valid_chrome_trace_json() {
    let trace = temp_path("timeline.json");
    run(&[
        "characterize",
        "--fu",
        "int-add",
        "--voltage",
        "0.9",
        "--temperature",
        "25",
        "--vectors",
        "40",
        "--trace",
        trace.to_str().unwrap(),
    ])
    .unwrap();

    let text = std::fs::read_to_string(&trace).unwrap();
    let doc = tevot_obs::json::parse(&text).expect("trace file is valid JSON");
    let events = doc.get("traceEvents").and_then(tevot_obs::json::Json::as_arr).unwrap();
    assert!(!events.is_empty(), "span guards must have produced events");
    for event in events {
        use tevot_obs::json::Json;
        assert!(event.get("name").and_then(Json::as_str).is_some());
        assert!(matches!(event.get("ph").and_then(Json::as_str), Some("B" | "E" | "i")));
        assert!(event.get("ts").and_then(Json::as_f64).is_some());
        assert!(event.get("tid").and_then(Json::as_u64).is_some());
    }

    std::fs::remove_file(trace).ok();
}

#[test]
fn stats_runs_for_every_unit() {
    for fu in ["int-add", "int-mul", "fp-add", "fp-mul"] {
        run(&["stats", "--fu", fu]).unwrap();
    }
}

#[test]
fn characterize_writes_sdf() {
    let sdf = temp_path("char.sdf");
    run(&[
        "characterize",
        "--fu",
        "int-add",
        "--voltage",
        "0.9",
        "--temperature",
        "25",
        "--vectors",
        "60",
        "--sdf",
        sdf.to_str().unwrap(),
    ])
    .unwrap();
    let text = std::fs::read_to_string(&sdf).unwrap();
    assert!(text.starts_with("(DELAYFILE"));
    assert!(text.contains("int_add32"));
    std::fs::remove_file(sdf).ok();
}

#[test]
fn serve_validates_arguments_before_binding() {
    // Missing --model and nonsense sizing are usage errors (exit 2),
    // reported before anything touches the network.
    assert_eq!(run_code(&["serve"]), 2);
    assert_eq!(run_code(&["serve", "--model", "x.tevot", "--batch", "0"]), 2);
    assert_eq!(run_code(&["serve", "--model", "x.tevot", "--max-queue", "0"]), 2);
    // A missing model file fails fast with the I/O exit code instead of
    // leaving a listener bound with an empty registry.
    assert_eq!(run_code(&["serve", "--model", "/nonexistent/m.tevot"]), 3);
}

#[test]
fn exit_codes_follow_the_taxonomy() {
    // Usage: unknown flags, malformed list values, lonely --voltages.
    assert_eq!(run_code(&["stats", "--fu", "int-add", "--bogus", "1"]), 2);
    assert_eq!(
        run_code(&[
            "train",
            "--fu",
            "int-add",
            "--out",
            "x",
            "--voltages",
            "0.9,hot",
            "--temps",
            "25"
        ]),
        2
    );
    let err = run(&["train", "--fu", "int-add", "--out", "x", "--voltages", "0.9"]).unwrap_err();
    assert!(err.contains("given together"), "{err}");

    // I/O: the model file does not exist.
    let missing = &[
        "predict",
        "--model",
        "/nonexistent/m.tevot",
        "--voltage",
        "0.9",
        "--temperature",
        "25",
        "--clock-ps",
        "250",
        "--a",
        "1",
        "--b",
        "2",
    ];
    assert_eq!(run_code(missing), 3);

    // Corrupt: the model file exists but is garbage; the error names the
    // path and the byte offset where decoding stopped.
    let model = temp_path("garbage.tevot");
    std::fs::write(&model, b"this is not a model").unwrap();
    let argv = &[
        "predict",
        "--model",
        model.to_str().unwrap(),
        "--voltage",
        "0.9",
        "--temperature",
        "25",
        "--clock-ps",
        "250",
        "--a",
        "1",
        "--b",
        "2",
    ];
    assert_eq!(run_code(argv), 4);
    let err = run(argv).unwrap_err();
    assert!(err.contains(model.to_str().unwrap()), "{err}");
    assert!(err.contains("byte"), "{err}");
    std::fs::remove_file(model).ok();
}

#[test]
fn train_resume_is_bit_identical_and_deadline_cancels() {
    let ckpt = temp_path("train_ckpt");
    let plain = temp_path("plain.tevot");
    let resumed = temp_path("resumed.tevot");
    let base = |out: &PathBuf, extra: &[&str]| {
        let mut argv = vec![
            "train",
            "--fu",
            "int-add",
            "--out",
            out.to_str().unwrap(),
            "--vectors",
            "120",
            "--trees",
            "2",
            "--voltages",
            "0.9,1.0",
            "--temps",
            "25",
        ];
        argv.extend_from_slice(extra);
        argv.iter().map(|s| s.to_string()).collect::<Vec<_>>()
    };

    // A zero deadline cancels the checkpointed sweep cooperatively
    // (exit 6) before it finishes both conditions...
    let ckpt_flag = ckpt.to_str().unwrap().to_owned();
    let e = tevot_cli::run(base(&resumed, &["--resume", &ckpt_flag, "--deadline-ms", "0"]))
        .unwrap_err();
    assert_eq!(tevot_cli::exit_code_for(e.as_ref()), 6, "{e}");

    // ...and rerunning without the deadline resumes from the shards and
    // produces a model bit-identical to an uninterrupted run.
    tevot_cli::run(base(&resumed, &["--resume", &ckpt_flag])).unwrap();
    tevot_cli::run(base(&plain, &[])).unwrap();
    let a = std::fs::read(&plain).unwrap();
    let b = std::fs::read(&resumed).unwrap();
    assert!(!a.is_empty() && a == b, "resumed model must match the plain run byte for byte");

    // A checkpoint directory from a different run configuration is
    // refused rather than silently mixed in.
    let e = tevot_cli::run(base(&resumed, &["--resume", &ckpt_flag, "--vectors", "121"]))
        .map(|_| String::new())
        .unwrap_err();
    assert!(e.to_string().contains("configuration"), "{e}");

    std::fs::remove_file(plain).ok();
    std::fs::remove_file(resumed).ok();
    std::fs::remove_dir_all(ckpt).ok();
}

#[test]
fn jobs_zero_clamps_to_serial_with_identical_output() {
    let serial = temp_path("jobs1.tevot");
    let clamped = temp_path("jobs0.tevot");
    let base = |out: &PathBuf, jobs: &str| {
        let argv = [
            "train",
            "--fu",
            "int-add",
            "--out",
            out.to_str().unwrap(),
            "--vectors",
            "100",
            "--trees",
            "2",
            "--voltages",
            "0.9,1.0",
            "--temps",
            "25",
            "--jobs",
            jobs,
        ];
        argv.iter().map(|s| s.to_string()).collect::<Vec<_>>()
    };
    // --jobs 0 must clamp to one worker (with a warning), not dead-lock a
    // zero-worker pool or error out...
    tevot_cli::run(base(&clamped, "0")).unwrap();
    // ...and its output must be byte-identical to an explicit --jobs 1.
    tevot_cli::run(base(&serial, "1")).unwrap();
    let a = std::fs::read(&serial).unwrap();
    let b = std::fs::read(&clamped).unwrap();
    assert!(!a.is_empty() && a == b, "--jobs 0 output must match --jobs 1 byte for byte");
    tevot_par::set_jobs(0); // restore default resolution for other tests
    std::fs::remove_file(serial).ok();
    std::fs::remove_file(clamped).ok();
}

#[test]
fn engine_flag_selects_a_simulator_bit_identically() {
    let metrics = temp_path("engine_lev.json");
    let base = |engine: &str, metrics: Option<&str>| {
        let mut argv = vec![
            "characterize",
            "--fu",
            "int-add",
            "--voltage",
            "0.9",
            "--temperature",
            "25",
            "--vectors",
            "50",
            "--engine",
            engine,
        ];
        if let Some(m) = metrics {
            argv.extend_from_slice(&["--metrics", m]);
        }
        argv.iter().map(|s| s.to_string()).collect::<Vec<_>>()
    };
    tevot_cli::run(base("event", None)).unwrap();
    tevot_cli::run(base("levelized", Some(metrics.to_str().unwrap()))).unwrap();
    // The levelized engine advances its block counter in the metrics.
    let text = std::fs::read_to_string(&metrics).unwrap();
    let doc = tevot_obs::json::parse(&text).unwrap();
    let blocks = doc
        .get("counters")
        .and_then(tevot_obs::json::Json::as_arr)
        .unwrap()
        .iter()
        .find(|c| {
            c.get("name").and_then(tevot_obs::json::Json::as_str) == Some("sim.levelized_blocks")
        })
        .and_then(|c| c.get("value").and_then(tevot_obs::json::Json::as_u64))
        .unwrap();
    assert!(blocks >= 1, "levelized run must record at least one block, got {blocks}");
    // Unknown engines are usage errors.
    assert_eq!(run_code(&base("warp", None).iter().map(String::as_str).collect::<Vec<_>>()), 2);
    std::fs::remove_file(metrics).ok();
}

#[test]
fn train_predict_ter_roundtrip() {
    let model = temp_path("model.tevot");
    let trace = temp_path("trace.txt");
    run(&[
        "train",
        "--fu",
        "int-add",
        "--out",
        model.to_str().unwrap(),
        "--vectors",
        "150",
        "--trees",
        "3",
    ])
    .unwrap();
    assert!(model.exists());

    run(&[
        "predict",
        "--model",
        model.to_str().unwrap(),
        "--voltage",
        "0.9",
        "--temperature",
        "25",
        "--clock-ps",
        "250",
        "--a",
        "0xFFFFFFFF",
        "--b",
        "1",
    ])
    .unwrap();

    std::fs::write(&trace, "# t\ndeadbeef 00000001\n00000002 00000003\n").unwrap();
    run(&[
        "ter",
        "--model",
        model.to_str().unwrap(),
        "--voltage",
        "0.9",
        "--temperature",
        "25",
        "--clock-ps",
        "250",
        "--workload",
        trace.to_str().unwrap(),
    ])
    .unwrap();

    run(&["sweep", "--model", model.to_str().unwrap(), "--vectors", "50", "--clock-ps", "250"])
        .unwrap();

    // --fu selects the workload unit; unknown units are usage errors.
    run(&["sweep", "--model", model.to_str().unwrap(), "--vectors", "20", "--fu", "int-mul"])
        .unwrap();
    assert_eq!(
        run_code(&["sweep", "--model", model.to_str().unwrap(), "--fu", "int-div"]),
        2,
        "unknown --fu must be a usage error"
    );

    // A sweep needs at least one transition: --vectors below 2 must be a
    // usage error (exit 2), not an arithmetic underflow panic.
    for vectors in ["0", "1"] {
        assert_eq!(
            run_code(&["sweep", "--model", model.to_str().unwrap(), "--vectors", vectors]),
            2,
            "--vectors {vectors} must exit 2"
        );
        let err =
            run(&["sweep", "--model", model.to_str().unwrap(), "--vectors", vectors]).unwrap_err();
        assert!(err.contains("at least 2"), "{err}");
    }

    // Corrupted model data is rejected cleanly.
    std::fs::write(&model, b"garbage").unwrap();
    assert!(run(&[
        "predict",
        "--model",
        model.to_str().unwrap(),
        "--voltage",
        "0.9",
        "--temperature",
        "25",
        "--clock-ps",
        "250",
        "--a",
        "1",
        "--b",
        "2",
    ])
    .is_err());

    std::fs::remove_file(model).ok();
    std::fs::remove_file(trace).ok();
}

#[test]
fn dfs_recommends_clocks_and_validates_against_the_oracle() {
    let model = temp_path("dfs_model.tevot");
    let trace = temp_path("dfs_trace.txt");
    run(&[
        "train",
        "--fu",
        "int-add",
        "--out",
        model.to_str().unwrap(),
        "--vectors",
        "150",
        "--trees",
        "3",
    ])
    .unwrap();
    let model_arg = model.to_str().unwrap();

    // Single transition: predicted delay + guardband -> t_clk.
    run(&[
        "dfs",
        "--model",
        model_arg,
        "--voltage",
        "0.9",
        "--temperature",
        "25",
        "--guardband-ps",
        "50",
        "--a",
        "0xFFFFFFFF",
        "--b",
        "1",
    ])
    .unwrap();

    // Trace mode over a workload file.
    std::fs::write(&trace, "# t\ndeadbeef 00000001\n00000002 00000003\nffffffff 00000000\n")
        .unwrap();
    run(&[
        "dfs",
        "--model",
        model_arg,
        "--voltage",
        "0.9",
        "--temperature",
        "25",
        "--workload",
        trace.to_str().unwrap(),
    ])
    .unwrap();

    // Random-workload mode with the simulator as error oracle.
    run(&[
        "dfs",
        "--model",
        model_arg,
        "--voltage",
        "0.9",
        "--temperature",
        "25",
        "--guardband-ps",
        "100",
        "--fu",
        "int-add",
        "--vectors",
        "40",
        "--validate",
    ])
    .unwrap();

    // Usage errors: a negative guardband, --validate without --fu on a
    // workload file, and a missing operand all exit 2.
    assert_eq!(
        run_code(&[
            "dfs",
            "--model",
            model_arg,
            "--voltage",
            "0.9",
            "--temperature",
            "25",
            "--guardband-ps",
            "-5",
            "--a",
            "1",
            "--b",
            "2",
        ]),
        2
    );
    assert_eq!(
        run_code(&[
            "dfs",
            "--model",
            model_arg,
            "--voltage",
            "0.9",
            "--temperature",
            "25",
            "--workload",
            trace.to_str().unwrap(),
            "--validate",
        ]),
        2
    );
    assert_eq!(
        run_code(&[
            "dfs",
            "--model",
            model_arg,
            "--voltage",
            "0.9",
            "--temperature",
            "25",
            "--a",
            "1"
        ]),
        2
    );

    std::fs::remove_file(model).ok();
    std::fs::remove_file(trace).ok();
}
