//! End-to-end tests of the `tevot` CLI commands, driven in-process.

use std::path::PathBuf;

fn run(args: &[&str]) -> Result<(), String> {
    tevot_cli::run(args.iter().map(|s| s.to_string()).collect()).map_err(|e| e.to_string())
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("tevot_cli_test_{}_{name}", std::process::id()));
    p
}

#[test]
fn help_and_error_paths() {
    run(&["help"]).unwrap();
    assert!(run(&["frobnicate"]).unwrap_err().contains("unknown subcommand"));
    assert!(run(&["stats"]).unwrap_err().contains("--fu"));
    assert!(run(&["stats", "--fu", "int-nope"]).unwrap_err().contains("unknown unit"));
    assert!(run(&["stats", "--fu", "int-add", "--bogus", "1"])
        .unwrap_err()
        .contains("unknown argument"));
    assert!(run(&["stats", "--fu", "int-add", "stray"]).unwrap_err().contains("positional"));
    assert!(run(&["--trace"]).unwrap_err().contains("needs a file path"));
}

#[test]
fn obs_diff_compares_two_reports() {
    let a = temp_path("obs_a.json");
    let b = temp_path("obs_b.json");
    std::fs::write(
        &a,
        r#"{"schema":"tevot-obs/1",
            "spans":[{"path":"train","total_ns":2000000,"count":1}],
            "counters":[{"name":"sim.cycles_simulated","value":10}],
            "histograms":[]}"#,
    )
    .unwrap();
    std::fs::write(
        &b,
        r#"{"schema":"tevot-obs/1",
            "spans":[{"path":"train","total_ns":3000000,"count":1}],
            "counters":[{"name":"sim.cycles_simulated","value":20}],
            "histograms":[]}"#,
    )
    .unwrap();
    run(&["obs-diff", a.to_str().unwrap(), b.to_str().unwrap()]).unwrap();

    // Error paths: missing operands, unreadable file, wrong schema.
    assert!(run(&["obs-diff"]).unwrap_err().contains("positional argument 1"));
    assert!(run(&["obs-diff", a.to_str().unwrap()]).unwrap_err().contains("positional"));
    assert!(run(&["obs-diff", a.to_str().unwrap(), "/nonexistent/x.json"])
        .unwrap_err()
        .contains("read metrics report"));
    std::fs::write(&b, r#"{"schema":"bogus/7"}"#).unwrap();
    assert!(run(&["obs-diff", a.to_str().unwrap(), b.to_str().unwrap()])
        .unwrap_err()
        .contains("unsupported schema"));

    std::fs::remove_file(a).ok();
    std::fs::remove_file(b).ok();
}

#[test]
fn trace_flag_writes_valid_chrome_trace_json() {
    let trace = temp_path("timeline.json");
    run(&[
        "characterize",
        "--fu",
        "int-add",
        "--voltage",
        "0.9",
        "--temperature",
        "25",
        "--vectors",
        "40",
        "--trace",
        trace.to_str().unwrap(),
    ])
    .unwrap();

    let text = std::fs::read_to_string(&trace).unwrap();
    let doc = tevot_obs::json::parse(&text).expect("trace file is valid JSON");
    let events = doc.get("traceEvents").and_then(tevot_obs::json::Json::as_arr).unwrap();
    assert!(!events.is_empty(), "span guards must have produced events");
    for event in events {
        use tevot_obs::json::Json;
        assert!(event.get("name").and_then(Json::as_str).is_some());
        assert!(matches!(event.get("ph").and_then(Json::as_str), Some("B" | "E" | "i")));
        assert!(event.get("ts").and_then(Json::as_f64).is_some());
        assert!(event.get("tid").and_then(Json::as_u64).is_some());
    }

    std::fs::remove_file(trace).ok();
}

#[test]
fn stats_runs_for_every_unit() {
    for fu in ["int-add", "int-mul", "fp-add", "fp-mul"] {
        run(&["stats", "--fu", fu]).unwrap();
    }
}

#[test]
fn characterize_writes_sdf() {
    let sdf = temp_path("char.sdf");
    run(&[
        "characterize",
        "--fu",
        "int-add",
        "--voltage",
        "0.9",
        "--temperature",
        "25",
        "--vectors",
        "60",
        "--sdf",
        sdf.to_str().unwrap(),
    ])
    .unwrap();
    let text = std::fs::read_to_string(&sdf).unwrap();
    assert!(text.starts_with("(DELAYFILE"));
    assert!(text.contains("int_add32"));
    std::fs::remove_file(sdf).ok();
}

#[test]
fn train_predict_ter_roundtrip() {
    let model = temp_path("model.tevot");
    let trace = temp_path("trace.txt");
    run(&[
        "train",
        "--fu",
        "int-add",
        "--out",
        model.to_str().unwrap(),
        "--vectors",
        "150",
        "--trees",
        "3",
    ])
    .unwrap();
    assert!(model.exists());

    run(&[
        "predict",
        "--model",
        model.to_str().unwrap(),
        "--voltage",
        "0.9",
        "--temperature",
        "25",
        "--clock-ps",
        "250",
        "--a",
        "0xFFFFFFFF",
        "--b",
        "1",
    ])
    .unwrap();

    std::fs::write(&trace, "# t\ndeadbeef 00000001\n00000002 00000003\n").unwrap();
    run(&[
        "ter",
        "--model",
        model.to_str().unwrap(),
        "--voltage",
        "0.9",
        "--temperature",
        "25",
        "--clock-ps",
        "250",
        "--workload",
        trace.to_str().unwrap(),
    ])
    .unwrap();

    run(&["sweep", "--model", model.to_str().unwrap(), "--vectors", "50", "--clock-ps", "250"])
        .unwrap();

    // Corrupted model data is rejected cleanly.
    std::fs::write(&model, b"garbage").unwrap();
    assert!(run(&[
        "predict",
        "--model",
        model.to_str().unwrap(),
        "--voltage",
        "0.9",
        "--temperature",
        "25",
        "--clock-ps",
        "250",
        "--a",
        "1",
        "--b",
        "2",
    ])
    .is_err());

    std::fs::remove_file(model).ok();
    std::fs::remove_file(trace).ok();
}
