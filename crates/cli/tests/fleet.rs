//! End-to-end fleet tests against the real `tevot` binary: sharded
//! sweeps with chaos-killed workers, resume over damaged journals, and
//! replicated serving surviving a SIGKILL.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const TEVOT: &str = env!("CARGO_BIN_EXE_tevot");

fn scratch(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("tevot_fleet_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

/// Common training flags: int-add over a 3x2 (V, T) grid. Six work
/// units matter: the kill failpoint fires on a worker's *second* unit,
/// so the grid must outnumber the largest fleet (4 workers) for every
/// run to contain real deaths.
fn train_args(out: &str, seed: &str) -> Vec<String> {
    [
        "train",
        "--fu",
        "int-add",
        "--out",
        out,
        "--voltages",
        "0.85,0.90,0.95",
        "--temps",
        "0,50",
        "--vectors",
        "60",
        "--trees",
        "3",
        "--seed",
        seed,
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

fn run_ok(args: &[String], envs: &[(&str, &str)]) {
    let output = Command::new(TEVOT)
        .args(args)
        .envs(envs.iter().map(|&(k, v)| (k, v)))
        .output()
        .expect("spawn tevot");
    assert!(
        output.status.success(),
        "tevot {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}

/// A child killed on drop, so a failing assertion never leaks a server.
struct Reaper(Child);

impl Drop for Reaper {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn fleet_train_with_killed_workers_is_bit_identical() {
    let dir = scratch("chaos");
    let serial = dir.join("serial.tevot");
    run_ok(&train_args(serial.to_str().unwrap(), "7"), &[]);
    let serial_bytes = std::fs::read(&serial).unwrap();

    for workers in ["2", "4"] {
        let out = dir.join(format!("fleet{workers}.tevot"));
        let metrics = dir.join(format!("fleet{workers}.metrics.json"));
        let mut args = train_args(out.to_str().unwrap(), "7");
        args.extend(
            ["--workers", workers, "--metrics", metrics.to_str().unwrap()]
                .iter()
                .map(|s| s.to_string()),
        );
        // Every first-generation worker aborts at its second work unit;
        // replacements are spawned with the failpoint scrubbed, so the
        // run converges after real kill -9-grade deaths.
        run_ok(&args, &[("TEVOT_FAIL", "fleet.task=kill#1"), ("TEVOT_FAIL_SEED", "1")]);

        let fleet_bytes = std::fs::read(&out).unwrap();
        assert_eq!(
            serial_bytes, fleet_bytes,
            "--workers {workers} model must be bit-identical to the single-process model"
        );

        // The recovery path must actually have run: the coordinator
        // counts every unit it took back from a corpse.
        let report = std::fs::read_to_string(&metrics).unwrap();
        let reassigned = report
            .split("\"name\":\"fleet.reassigned\",\"value\":")
            .nth(1)
            .and_then(|rest| rest.split(&['}', ','][..]).next())
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or_else(|| panic!("no fleet.reassigned counter in {report}"));
        assert!(reassigned > 0, "workers were killed, so units must have been reassigned");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fleet_resume_redoes_truncated_shard_and_refuses_foreign_journal() {
    let dir = scratch("resume");
    let journal = dir.join("journal");
    let out = dir.join("a.tevot");
    let mut args = train_args(out.to_str().unwrap(), "11");
    args.extend(["--workers", "2", "--resume", journal.to_str().unwrap()].map(String::from));
    run_ok(&args, &[]);
    let first = std::fs::read(&out).unwrap();

    // Damage the journal as a mid-write crash would: one shard loses its
    // tail. The resumed run must detect it, recompute that unit, and
    // still produce the identical model.
    let victim = journal.join("cond-1.ckpt");
    let bytes = std::fs::read(&victim).expect("journal must contain cond-1.ckpt");
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();
    run_ok(&args, &[]);
    assert_eq!(first, std::fs::read(&out).unwrap(), "resume over damage must be bit-identical");

    // A different run configuration pointed at the same journal is a
    // corrupt-data refusal (exit 4), not silent cross-contamination.
    let mut foreign = train_args(dir.join("b.tevot").to_str().unwrap(), "999");
    foreign.extend(["--workers", "2", "--resume", journal.to_str().unwrap()].map(String::from));
    let status =
        Command::new(TEVOT).args(&foreign).stderr(Stdio::null()).status().expect("spawn tevot");
    assert_eq!(
        status.code(),
        Some(4),
        "foreign journal must be refused with the corrupt exit code"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn http_get(addr: &str, path: &str) -> Option<(u16, String)> {
    tevot_serve::http::get(addr, path).ok()
}

#[test]
fn replicated_serve_survives_a_sigkilled_replica() {
    let dir = scratch("serve");
    let model = dir.join("model.tevot");
    run_ok(
        &[
            "train",
            "--fu",
            "int-add",
            "--out",
            model.to_str().unwrap(),
            "--voltages",
            "0.9",
            "--temps",
            "25",
            "--vectors",
            "60",
            "--trees",
            "2",
            "--seed",
            "3",
        ]
        .map(String::from),
        &[],
    );

    let port_file = dir.join("router.addr");
    let child = Command::new(TEVOT)
        .args([
            "serve",
            "--model",
            model.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--replicas",
            "2",
            "--port-file",
            port_file.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn replicated serve");
    let _reaper = Reaper(child);

    // The router publishes its address only after both replicas passed
    // their first health probe.
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(addr) = std::fs::read_to_string(&port_file) {
            let addr = addr.trim().to_string();
            if !addr.is_empty() {
                break addr;
            }
        }
        assert!(Instant::now() < deadline, "router never published its port");
        std::thread::sleep(Duration::from_millis(50));
    };

    let predict = r#"{"voltage":0.9,"temperature":25,"clock_ps":1200,"a":3,"b":4}"#;
    let (status, body) =
        tevot_serve::http::post(&addr, "/predict", predict).expect("first predict");
    assert_eq!(status, 200, "{body}");

    // SIGKILL one replica — the strongest failure the router must
    // absorb. Requests keep succeeding via ring failover while the
    // health loop respawns the corpse.
    let (_, status_body) = http_get(&addr, "/fleet/status").expect("fleet status");
    let pid = status_body
        .split("\"pid\":")
        .nth(1)
        .and_then(|rest| rest.split(&[',', '}'][..]).next())
        .and_then(|v| v.trim().parse::<u32>().ok())
        .expect("replica pid in /fleet/status");
    assert!(Command::new("kill")
        .args(["-9", &pid.to_string()])
        .status()
        .expect("spawn kill")
        .success());

    for i in 0..10 {
        let (status, body) =
            tevot_serve::http::post(&addr, "/predict", predict).expect("predict under failure");
        assert_eq!(status, 200, "request {i} after the kill must fail over cleanly: {body}");
    }

    // Ejection is observable, and the replacement is re-admitted.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some((200, body)) = http_get(&addr, "/router/healthz") {
            if body.contains("\"healthy\":2") {
                break;
            }
        }
        assert!(Instant::now() < deadline, "killed replica was never respawned + re-admitted");
        std::thread::sleep(Duration::from_millis(100));
    }
    let _ = std::fs::remove_dir_all(&dir);
}
