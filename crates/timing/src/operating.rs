//! Operating conditions and the paper's Table I parameter grid.

use std::fmt;

/// A supply-voltage / temperature operating point.
///
/// Voltage is in volts, temperature in degrees Celsius — the units used
/// throughout the paper ("(0.81, 0)" etc. in Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingCondition {
    voltage: f64,
    temperature: f64,
}

impl OperatingCondition {
    /// Creates an operating condition.
    ///
    /// # Panics
    ///
    /// Panics if the voltage is not positive or either value is not finite;
    /// a malformed condition would silently corrupt every downstream delay.
    pub fn new(voltage: f64, temperature: f64) -> Self {
        assert!(
            voltage.is_finite() && voltage > 0.0 && temperature.is_finite(),
            "invalid operating condition ({voltage} V, {temperature} C)"
        );
        OperatingCondition { voltage, temperature }
    }

    /// Supply voltage in volts.
    pub fn voltage(self) -> f64 {
        self.voltage
    }

    /// Temperature in degrees Celsius.
    pub fn temperature(self) -> f64 {
        self.temperature
    }

    /// Temperature in kelvins.
    pub fn kelvin(self) -> f64 {
        self.temperature + 273.15
    }

    /// The nominal corner used as the reference point of the delay model:
    /// 1.00 V, 25 °C.
    pub fn nominal() -> Self {
        OperatingCondition::new(1.0, 25.0)
    }
}

impl fmt::Display for OperatingCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}V, {:.0}C)", self.voltage, self.temperature)
    }
}

/// A rectangular grid of operating conditions.
///
/// # Examples
///
/// ```
/// use tevot_timing::ConditionGrid;
///
/// // The paper's Table I grid: 20 voltages x 5 temperatures.
/// assert_eq!(ConditionGrid::paper().len(), 100);
/// // The reduced grid plotted in Fig. 3.
/// assert_eq!(ConditionGrid::fig3().len(), 9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ConditionGrid {
    voltages: Vec<f64>,
    temperatures: Vec<f64>,
}

impl ConditionGrid {
    /// Builds a grid from explicit voltage and temperature points.
    ///
    /// # Panics
    ///
    /// Panics if either axis is empty.
    pub fn new(voltages: Vec<f64>, temperatures: Vec<f64>) -> Self {
        assert!(
            !voltages.is_empty() && !temperatures.is_empty(),
            "condition grid axes must be non-empty"
        );
        ConditionGrid { voltages, temperatures }
    }

    /// The paper's Table I grid: voltage 0.81 V to 1.00 V in 0.01 V steps
    /// (20 points), temperature 0 °C to 100 °C in 25 °C steps (5 points) —
    /// 100 conditions in total.
    pub fn paper() -> Self {
        let voltages = (0..20).map(|i| 0.81 + 0.01 * i as f64).collect();
        let temperatures = (0..5).map(|i| 25.0 * i as f64).collect();
        ConditionGrid::new(voltages, temperatures)
    }

    /// The 9-point subset plotted in the paper's Fig. 3:
    /// `{0.81, 0.90, 1.00} x {0, 50, 100}`.
    pub fn fig3() -> Self {
        ConditionGrid::new(vec![0.81, 0.90, 1.00], vec![0.0, 50.0, 100.0])
    }

    /// Voltage axis points.
    pub fn voltages(&self) -> &[f64] {
        &self.voltages
    }

    /// Temperature axis points.
    pub fn temperatures(&self) -> &[f64] {
        &self.temperatures
    }

    /// Total number of (V, T) pairs.
    pub fn len(&self) -> usize {
        self.voltages.len() * self.temperatures.len()
    }

    /// True when the grid has no points (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over all conditions, voltage-major (matching Fig. 3's x
    /// axis ordering).
    pub fn iter(&self) -> impl Iterator<Item = OperatingCondition> + '_ {
        self.voltages.iter().flat_map(move |&v| {
            self.temperatures.iter().map(move |&t| OperatingCondition::new(v, t))
        })
    }
}

impl IntoIterator for &ConditionGrid {
    type Item = OperatingCondition;
    type IntoIter = std::vec::IntoIter<OperatingCondition>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter().collect::<Vec<_>>().into_iter()
    }
}

/// A clock speedup relative to an FU's fastest error-free frequency.
///
/// The paper overclocks each FU by 5 %, 10 % and 15 % beyond the frequency
/// set by its critical-path delay at the given condition, "so that the
/// output has timing errors" (Sec. V-A).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct ClockSpeedup(f64);

impl ClockSpeedup {
    /// The paper's three speedups (Table I).
    pub const PAPER: [ClockSpeedup; 3] =
        [ClockSpeedup(0.05), ClockSpeedup(0.10), ClockSpeedup(0.15)];

    /// Creates a speedup from a fraction (e.g. `0.10` for 10 %).
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= fraction < 1`.
    pub fn new(fraction: f64) -> Self {
        assert!((0.0..1.0).contains(&fraction), "speedup fraction {fraction} out of range");
        ClockSpeedup(fraction)
    }

    /// The speedup fraction.
    pub fn fraction(self) -> f64 {
        self.0
    }

    /// The clock period, in picoseconds, obtained by speeding up a baseline
    /// period: `t = base / (1 + s)`.
    pub fn apply_to_period(self, base_ps: u64) -> u64 {
        (base_ps as f64 / (1.0 + self.0)).round() as u64
    }
}

impl fmt::Display for ClockSpeedup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0}%", self.0 * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_matches_table1() {
        let grid = ConditionGrid::paper();
        assert_eq!(grid.voltages().len(), 20);
        assert_eq!(grid.temperatures().len(), 5);
        assert_eq!(grid.len(), 100);
        assert!((grid.voltages()[0] - 0.81).abs() < 1e-9);
        assert!((grid.voltages()[19] - 1.00).abs() < 1e-9);
        assert_eq!(grid.temperatures(), &[0.0, 25.0, 50.0, 75.0, 100.0]);
    }

    #[test]
    fn fig3_grid_is_nine_points() {
        let grid = ConditionGrid::fig3();
        assert_eq!(grid.len(), 9);
        let first = grid.iter().next().unwrap();
        assert_eq!(first, OperatingCondition::new(0.81, 0.0));
    }

    #[test]
    fn iteration_is_voltage_major() {
        let grid = ConditionGrid::new(vec![0.8, 0.9], vec![0.0, 50.0]);
        let pts: Vec<_> = grid.iter().collect();
        assert_eq!(pts[0], OperatingCondition::new(0.8, 0.0));
        assert_eq!(pts[1], OperatingCondition::new(0.8, 50.0));
        assert_eq!(pts[2], OperatingCondition::new(0.9, 0.0));
    }

    #[test]
    fn speedup_shrinks_period() {
        let s = ClockSpeedup::new(0.10);
        assert_eq!(s.apply_to_period(1100), 1000);
        assert_eq!(ClockSpeedup::PAPER.len(), 3);
        assert_eq!(ClockSpeedup::PAPER[2].fraction(), 0.15);
    }

    #[test]
    fn condition_display() {
        let c = OperatingCondition::new(0.81, 50.0);
        assert_eq!(c.to_string(), "(0.81V, 50C)");
        assert!((c.kelvin() - 323.15).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid operating condition")]
    fn rejects_nonpositive_voltage() {
        let _ = OperatingCondition::new(0.0, 25.0);
    }
}
