//! Operating conditions, cell delay modeling, SDF annotation and static
//! timing analysis for the TEVoT (DAC 2020) reproduction.
//!
//! This crate replaces the proprietary pieces of the paper's timing flow:
//! the TSMC 45 nm libraries, PrimeTime's voltage/temperature scaling and
//! the per-corner SDF hand-off:
//!
//! * [`OperatingCondition`] / [`ConditionGrid`] — the paper's Table I
//!   voltage/temperature grid (20 x 5 = 100 conditions) plus the Fig. 3
//!   subset; [`ClockSpeedup`] models the 5/10/15 % overclocking.
//! * [`DelayModel`] — an alpha-power-law cell delay model that reproduces
//!   the inverse temperature dependence the paper observes at 0.81 V.
//! * [`sdf`] — writes and parses per-corner SDF files.
//! * [`sta`] — static timing analysis: critical path and the
//!   "fastest error-free clock period" the speedups are relative to.
//!
//! # Examples
//!
//! ```
//! use tevot_netlist::fu::FunctionalUnit;
//! use tevot_timing::{sta, ClockSpeedup, ConditionGrid, DelayModel};
//!
//! let nl = FunctionalUnit::IntAdd.build();
//! let model = DelayModel::tsmc45_like();
//! for cond in ConditionGrid::fig3().iter() {
//!     let annotation = model.annotate(&nl, cond);
//!     let report = sta::run(&nl, &annotation);
//!     let overclocked = ClockSpeedup::PAPER[0]
//!         .apply_to_period(report.fastest_error_free_period_ps());
//!     assert!(overclocked < report.critical_delay_ps());
//! }
//! ```

#![warn(missing_docs)]

mod delay;
mod operating;
pub mod sdf;
mod silicon;
pub mod sta;

pub use delay::{DelayAnnotation, DelayModel};
pub use operating::{ClockSpeedup, ConditionGrid, OperatingCondition};
pub use silicon::{ProcessCorner, SiliconProfile};
