//! Process corners and aging: the variation sources beyond (V, T).
//!
//! The paper focuses on dynamic variations but notes that "the same
//! principle can be used to incorporate process and aging variations"
//! (Sec. III) and names them as future work in its conclusion. This module
//! adds both to the delay model as threshold-voltage shifts, which is how
//! they manifest physically:
//!
//! * a **process corner** shifts every device's Vth globally (slow silicon
//!   has a higher threshold), plus a per-die random component;
//! * **BTI aging** raises Vth over the device's lifetime following the
//!   classic power law `dVth = A * t^n` with `n ~ 0.2`: fast initial
//!   degradation that flattens out over the years.
//!
//! Because both enter through Vth, they *interact* with voltage exactly
//! like temperature does: aged or slow silicon loses disproportionally
//! more speed at 0.81 V than at 1.00 V.

use tevot_netlist::Netlist;

use crate::delay::{DelayAnnotation, DelayModel};
use crate::operating::OperatingCondition;

/// A global process corner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProcessCorner {
    /// Fast silicon: threshold voltage ~25 mV below typical.
    FastFast,
    /// Typical silicon.
    #[default]
    Typical,
    /// Slow silicon: threshold voltage ~25 mV above typical.
    SlowSlow,
}

impl ProcessCorner {
    /// All corners, fast to slow.
    pub const ALL: [ProcessCorner; 3] =
        [ProcessCorner::FastFast, ProcessCorner::Typical, ProcessCorner::SlowSlow];

    /// The corner's global threshold-voltage shift in volts.
    pub fn vth_shift(self) -> f64 {
        match self {
            ProcessCorner::FastFast => -0.025,
            ProcessCorner::Typical => 0.0,
            ProcessCorner::SlowSlow => 0.025,
        }
    }

    /// Display name (`FF` / `TT` / `SS`).
    pub fn name(self) -> &'static str {
        match self {
            ProcessCorner::FastFast => "FF",
            ProcessCorner::Typical => "TT",
            ProcessCorner::SlowSlow => "SS",
        }
    }
}

impl std::fmt::Display for ProcessCorner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The silicon state of one physical die: its process corner, a per-die
/// random variation seed, and its age.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiliconProfile {
    /// Global process corner.
    pub corner: ProcessCorner,
    /// Identifies the die: decorrelates the per-gate random process
    /// component between dies.
    pub die_seed: u64,
    /// Standard deviation of the per-die random Vth component, in volts.
    pub die_sigma: f64,
    /// Operating age in years (BTI stress time).
    pub aging_years: f64,
    /// BTI power-law amplitude: `dVth = bti_a * years^bti_n` volts.
    pub bti_a: f64,
    /// BTI power-law exponent.
    pub bti_n: f64,
}

impl SiliconProfile {
    /// A fresh, typical die — behaves identically to the plain
    /// [`DelayModel::annotate`] path.
    pub fn fresh() -> Self {
        SiliconProfile {
            corner: ProcessCorner::Typical,
            die_seed: 0,
            die_sigma: 0.0,
            aging_years: 0.0,
            bti_a: 0.010,
            bti_n: 0.2,
        }
    }

    /// A fresh die at an explicit corner with a light (4 mV sigma)
    /// per-die random component.
    pub fn at_corner(corner: ProcessCorner, die_seed: u64) -> Self {
        SiliconProfile { corner, die_seed, die_sigma: 0.004, ..Self::fresh() }
    }

    /// The same die aged by `years`.
    pub fn aged(self, years: f64) -> Self {
        SiliconProfile { aging_years: years, ..self }
    }

    /// The BTI threshold shift at this profile's age, in volts.
    pub fn aging_vth_shift(&self) -> f64 {
        if self.aging_years <= 0.0 {
            return 0.0;
        }
        self.bti_a * self.aging_years.powf(self.bti_n)
    }

    /// The total Vth shift (volts) this profile applies to the gate
    /// driving `net`.
    pub fn vth_shift(&self, net: usize) -> f64 {
        let random = if self.die_sigma > 0.0 {
            // Two independent uniform hashes -> approximately normal via
            // the sum of uniforms (Irwin-Hall with k = 2, rescaled).
            let u1 = unit_hash(net, self.die_seed.wrapping_mul(2).wrapping_add(11));
            let u2 = unit_hash(net, self.die_seed.wrapping_mul(2).wrapping_add(12));
            (u1 + u2 - 1.0) * self.die_sigma * 2.449 // var(U1+U2)=1/6
        } else {
            0.0
        };
        self.corner.vth_shift() + self.aging_vth_shift() + random
    }
}

fn unit_hash(net: usize, stream: u64) -> f64 {
    let mut z = (net as u64)
        .wrapping_add(stream.wrapping_mul(0xA076_1D64_78BD_642F))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

impl DelayModel {
    /// Like [`DelayModel::scale_factor_with_vth`] with an additional
    /// absolute Vth shift (process/aging), in volts.
    ///
    /// # Panics
    ///
    /// Panics if the shifted threshold reaches the supply voltage.
    pub fn scale_factor_with_profile(
        &self,
        cond: OperatingCondition,
        vth_ratio: f64,
        vth_shift: f64,
    ) -> f64 {
        let shifted_ratio = vth_ratio + vth_shift / self.vth0;
        self.scale_factor_with_vth(cond, shifted_ratio)
    }

    /// Annotates `netlist` for a specific die ([`SiliconProfile`]) at
    /// `cond` — the process/aging-aware analogue of
    /// [`DelayModel::annotate`].
    pub fn annotate_for_die(
        &self,
        netlist: &Netlist,
        cond: OperatingCondition,
        profile: &SiliconProfile,
    ) -> DelayAnnotation {
        let fanout = netlist.fanout_counts();
        let delays = netlist
            .gates()
            .iter()
            .enumerate()
            .map(|(i, g)| {
                let base = self.base_delay_ps(g.kind());
                if base == 0.0 {
                    return 0;
                }
                let load = 1.0 + self.load_factor * fanout[i].saturating_sub(1) as f64;
                let s = self.scale_factor_with_profile(
                    cond,
                    self.gate_vth_ratio(i),
                    profile.vth_shift(i),
                );
                (base * load * self.gate_variation(i) * s).round().max(0.0) as u32
            })
            .collect();
        DelayAnnotation::new(netlist.name(), cond, delays)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tevot_netlist::fu::FunctionalUnit;

    fn total(ann: &DelayAnnotation) -> u64 {
        ann.delays().iter().map(|&d| d as u64).sum()
    }

    #[test]
    fn fresh_typical_die_matches_plain_annotation() {
        let nl = FunctionalUnit::IntAdd.build();
        let m = DelayModel::tsmc45_like();
        let cond = OperatingCondition::new(0.9, 50.0);
        let plain = m.annotate(&nl, cond);
        let die = m.annotate_for_die(&nl, cond, &SiliconProfile::fresh());
        assert_eq!(plain, die);
    }

    #[test]
    fn corners_order_fast_to_slow() {
        let nl = FunctionalUnit::IntAdd.build();
        let m = DelayModel::tsmc45_like();
        let cond = OperatingCondition::new(0.85, 25.0);
        let mut prev = 0;
        for corner in ProcessCorner::ALL {
            let profile = SiliconProfile { die_sigma: 0.0, ..SiliconProfile::at_corner(corner, 1) };
            let t = total(&m.annotate_for_die(&nl, cond, &profile));
            assert!(t > prev, "{corner} not slower than the previous corner");
            prev = t;
        }
    }

    #[test]
    fn aging_slows_the_die_sublinearly() {
        let nl = FunctionalUnit::IntAdd.build();
        let m = DelayModel::tsmc45_like();
        let cond = OperatingCondition::new(0.85, 25.0);
        let die = SiliconProfile::at_corner(ProcessCorner::Typical, 7);
        let fresh = total(&m.annotate_for_die(&nl, cond, &die));
        let y1 = total(&m.annotate_for_die(&nl, cond, &die.aged(1.0)));
        let y4 = total(&m.annotate_for_die(&nl, cond, &die.aged(4.0)));
        let y9 = total(&m.annotate_for_die(&nl, cond, &die.aged(9.0)));
        assert!(fresh < y1 && y1 < y4 && y4 < y9, "aging must slow the die");
        // Power law with n < 1: the first year costs more than each later
        // year on average.
        assert!((y1 - fresh) as f64 > (y9 - y4) as f64 / 5.0);
    }

    #[test]
    fn aging_hurts_more_at_low_voltage() {
        let m = DelayModel::tsmc45_like();
        let shift = SiliconProfile::fresh().aged(5.0).aging_vth_shift();
        let low_fresh = m.scale_factor_with_profile(OperatingCondition::new(0.81, 25.0), 1.0, 0.0);
        let low_aged = m.scale_factor_with_profile(OperatingCondition::new(0.81, 25.0), 1.0, shift);
        let high_fresh = m.scale_factor_with_profile(OperatingCondition::new(1.0, 25.0), 1.0, 0.0);
        let high_aged = m.scale_factor_with_profile(OperatingCondition::new(1.0, 25.0), 1.0, shift);
        let low_penalty = low_aged / low_fresh;
        let high_penalty = high_aged / high_fresh;
        assert!(
            low_penalty > high_penalty,
            "aging penalty at 0.81 V ({low_penalty:.3}) must exceed 1.00 V ({high_penalty:.3})"
        );
    }

    #[test]
    fn dies_differ_but_deterministically() {
        let nl = FunctionalUnit::IntMul.build();
        let m = DelayModel::tsmc45_like();
        // Low voltage maximizes Vth sensitivity, so per-die mismatch is
        // visible past the 1 ps annotation quantization.
        let cond = OperatingCondition::new(0.81, 0.0);
        let die_a = SiliconProfile::at_corner(ProcessCorner::Typical, 1);
        let die_b = SiliconProfile::at_corner(ProcessCorner::Typical, 2);
        let a1 = m.annotate_for_die(&nl, cond, &die_a);
        let a2 = m.annotate_for_die(&nl, cond, &die_a);
        let b = m.annotate_for_die(&nl, cond, &die_b);
        assert_eq!(a1, a2, "same die, same delays");
        assert_ne!(a1, b, "different dies must differ");
    }
}
