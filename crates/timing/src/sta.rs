//! Static timing analysis.
//!
//! A single topological pass computes the worst-case arrival time at every
//! net, the circuit's critical-path delay, and the critical path itself.
//! The paper uses STA (PrimeTime) to derive per-condition SDF files and the
//! "fastest error-free clock frequency" that the 5/10/15 % speedups are
//! applied to; this module serves both purposes.

use tevot_netlist::{NetId, Netlist};

use crate::delay::DelayAnnotation;

/// Result of a static timing analysis run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaReport {
    arrival: Vec<u64>,
    critical_delay: u64,
    critical_path: Vec<NetId>,
}

impl StaReport {
    /// Worst-case arrival time (ps) of each net.
    pub fn arrival_times(&self) -> &[u64] {
        &self.arrival
    }

    /// Worst-case arrival time (ps) of one net.
    pub fn arrival(&self, net: NetId) -> u64 {
        self.arrival[net.index()]
    }

    /// The critical-path delay in picoseconds: the static delay of the
    /// circuit, i.e. the maximum arrival time over all primary outputs.
    pub fn critical_delay_ps(&self) -> u64 {
        self.critical_delay
    }

    /// Nets on the critical path, from a primary input to the limiting
    /// primary output.
    pub fn critical_path(&self) -> &[NetId] {
        &self.critical_path
    }

    /// The fastest clock period guaranteed to be free of timing errors
    /// (equal to the critical-path delay).
    pub fn fastest_error_free_period_ps(&self) -> u64 {
        self.critical_delay
    }

    /// The relaxed clock period used for characterization dumps: 25 %
    /// slower than the critical path, so that the gate-level simulation
    /// itself never produces timing errors (paper Sec. IV-A).
    pub fn characterization_period_ps(&self) -> u64 {
        self.critical_delay + self.critical_delay / 4
    }
}

/// Runs static timing analysis over a delay-annotated netlist.
///
/// # Panics
///
/// Panics if the annotation does not cover every net of the netlist.
///
/// # Examples
///
/// ```
/// use tevot_netlist::fu::FunctionalUnit;
/// use tevot_timing::{sta, DelayModel, OperatingCondition};
///
/// let nl = FunctionalUnit::IntAdd.build();
/// let ann = DelayModel::tsmc45_like().annotate(&nl, OperatingCondition::nominal());
/// let report = sta::run(&nl, &ann);
/// assert!(report.critical_delay_ps() > 0);
/// ```
pub fn run(netlist: &Netlist, annotation: &DelayAnnotation) -> StaReport {
    assert_eq!(
        annotation.delays().len(),
        netlist.num_nets(),
        "annotation does not match netlist {}",
        netlist.name()
    );
    let n = netlist.num_nets();
    let mut arrival = vec![0u64; n];
    // Predecessor on the worst path, for backtracing.
    let mut pred: Vec<u32> = vec![u32::MAX; n];
    for (i, gate) in netlist.gates().iter().enumerate() {
        let ins = gate.inputs();
        if ins.is_empty() {
            continue;
        }
        let mut worst = 0u64;
        let mut worst_net = ins[0];
        for &input in ins {
            let t = arrival[input.index()];
            if t > worst {
                worst = t;
                worst_net = input;
            }
        }
        arrival[i] = worst + annotation.delay_ps(i) as u64;
        pred[i] = worst_net.index() as u32;
    }

    let (&end, critical_delay) = netlist
        .outputs()
        .iter()
        .map(|n| (n, arrival[n.index()]))
        .max_by_key(|&(_, t)| t)
        .expect("netlist has outputs");

    let mut critical_path = vec![end];
    let mut cur = end;
    while pred[cur.index()] != u32::MAX {
        cur = NetId::from_index(pred[cur.index()] as usize);
        critical_path.push(cur);
    }
    critical_path.reverse();

    StaReport { arrival, critical_delay, critical_path }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::DelayModel;
    use crate::operating::OperatingCondition;
    use tevot_netlist::fu::FunctionalUnit;
    use tevot_netlist::NetlistBuilder;

    #[test]
    fn chain_arrival_is_sum_of_delays() {
        let mut b = NetlistBuilder::new("chain");
        let a = b.input("a");
        let n1 = b.not(a);
        let n2 = b.not(n1);
        b.output("y", n2);
        let nl = b.finish();
        let delays = vec![0, 8, 9];
        let ann = DelayAnnotation::new("chain", OperatingCondition::nominal(), delays);
        let report = run(&nl, &ann);
        assert_eq!(report.critical_delay_ps(), 17);
        assert_eq!(report.arrival(n1), 8);
        assert_eq!(report.critical_path(), &[a, n1, n2]);
        assert_eq!(report.characterization_period_ps(), 17 + 4);
    }

    #[test]
    fn critical_path_is_input_to_output() {
        let nl = FunctionalUnit::IntAdd.build();
        let ann = DelayModel::tsmc45_like().annotate(&nl, OperatingCondition::new(0.85, 25.0));
        let report = run(&nl, &ann);
        let path = report.critical_path();
        assert!(path.len() > 8, "critical path should span the prefix carry network");
        let source = nl.gate(path[0]);
        assert!(
            source.inputs().is_empty(),
            "path must start at a source net (input or tie), got {:?}",
            source.kind()
        );
        assert!(nl.outputs().contains(path.last().unwrap()), "path must end at an output");
        // Arrival times must be non-decreasing along the path.
        for w in path.windows(2) {
            assert!(report.arrival(w[0]) <= report.arrival(w[1]));
        }
    }

    #[test]
    fn critical_delay_tracks_conditions() {
        let nl = FunctionalUnit::IntAdd.build();
        let model = DelayModel::tsmc45_like();
        let slow = run(&nl, &model.annotate(&nl, OperatingCondition::new(0.81, 0.0)));
        let fast = run(&nl, &model.annotate(&nl, OperatingCondition::new(1.00, 25.0)));
        assert!(slow.critical_delay_ps() > fast.critical_delay_ps());
    }

    #[test]
    fn static_delay_bounds_every_arrival() {
        let nl = FunctionalUnit::FpAdd.build();
        let ann = DelayModel::tsmc45_like().annotate(&nl, OperatingCondition::nominal());
        let report = run(&nl, &ann);
        let crit = report.critical_delay_ps();
        for &out in nl.outputs() {
            assert!(report.arrival(out) <= crit);
        }
    }
}
