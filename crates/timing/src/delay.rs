//! The voltage/temperature cell delay model.
//!
//! This module stands in for the paper's TSMC 45 nm libraries plus
//! PrimeTime's voltage-temperature scaling (composite current source). Each
//! cell's propagation delay is
//!
//! ```text
//! d(g, V, T) = d0(kind) * (1 + k_load * (fanout - 1)) * jitter(g) * s(V, T)
//!
//! s(V, T) = [ V / (V - Vth(T))^alpha ] / [ V0 / (V0 - Vth(T0))^alpha ]
//!           * (T_K / T0_K)^mu
//! Vth(T)  = Vth0 - k_t * (T - T0)
//! ```
//!
//! The alpha-power-law term models gate overdrive: as `V` approaches the
//! threshold voltage the delay explodes. Because `Vth` *falls* with
//! temperature while carrier mobility (the `mu` term) also falls, the two
//! effects compete: at low voltage the threshold term wins and circuits
//! get *faster* when hot — the **inverse temperature dependence** the paper
//! observes at 0.81 V — while at nominal voltage the mobility term wins and
//! circuits get slower, matching Fig. 3.

use tevot_netlist::{GateKind, Netlist};

use crate::operating::OperatingCondition;

/// Per-condition delay annotation for one netlist: a delay in picoseconds
/// for every net (zero for primary inputs and tie cells).
///
/// This is the in-memory equivalent of one of the paper's per-(V,T) SDF
/// files; [`crate::sdf`] provides the file format.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayAnnotation {
    design: String,
    condition: OperatingCondition,
    delays: Vec<u32>,
}

impl DelayAnnotation {
    /// Creates an annotation from raw per-net delays.
    ///
    /// # Panics
    ///
    /// Panics if `delays` is empty.
    pub fn new(design: impl Into<String>, condition: OperatingCondition, delays: Vec<u32>) -> Self {
        assert!(!delays.is_empty(), "empty delay annotation");
        DelayAnnotation { design: design.into(), condition, delays }
    }

    /// Name of the design this annotation belongs to.
    pub fn design(&self) -> &str {
        &self.design
    }

    /// The operating condition the delays were computed for.
    pub fn condition(&self) -> OperatingCondition {
        self.condition
    }

    /// Delay of the gate driving net `i`, in picoseconds.
    #[inline]
    pub fn delay_ps(&self, net: usize) -> u32 {
        self.delays[net]
    }

    /// All per-net delays in picoseconds.
    pub fn delays(&self) -> &[u32] {
        &self.delays
    }
}

/// The parametric cell delay model.
///
/// # Examples
///
/// ```
/// use tevot_netlist::fu::FunctionalUnit;
/// use tevot_timing::{DelayModel, OperatingCondition};
///
/// let nl = FunctionalUnit::IntAdd.build();
/// let model = DelayModel::tsmc45_like();
/// let slow = model.annotate(&nl, OperatingCondition::new(0.81, 0.0));
/// let fast = model.annotate(&nl, OperatingCondition::new(1.00, 25.0));
/// let sum = |a: &tevot_timing::DelayAnnotation| -> u64 {
///     a.delays().iter().map(|&d| d as u64).sum()
/// };
/// assert!(sum(&slow) > sum(&fast), "low voltage must slow the circuit");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DelayModel {
    /// Threshold voltage at the reference temperature, in volts.
    pub vth0: f64,
    /// Threshold-voltage temperature coefficient, in volts per °C.
    pub k_t: f64,
    /// Alpha-power-law velocity-saturation exponent.
    pub alpha: f64,
    /// Mobility-degradation exponent on absolute temperature.
    pub mu: f64,
    /// Reference (nominal) condition at which `base_delay_ps` is quoted.
    pub reference: OperatingCondition,
    /// Extra delay per additional fanout load, as a fraction of the base
    /// delay.
    pub load_factor: f64,
    /// Half-width of the deterministic per-gate variation band (e.g. 0.05
    /// for ±5 %).
    pub variation: f64,
    /// Half-width of the per-gate *threshold-voltage* variation band.
    ///
    /// This is what makes the voltage/temperature response differ from
    /// gate to gate (as it does across dies): path rankings genuinely
    /// change across corners instead of all delays scaling by one global
    /// factor, so a delay model trained at one corner cannot trivially
    /// extrapolate to another.
    pub vth_variation: f64,
}

impl DelayModel {
    /// A 45 nm-flavoured parameterization (see DESIGN.md §3): `Vth0 =
    /// 0.45 V`, `k_t = 0.8 mV/°C`, `alpha = 1.6`, `mu = 1.0`, reference
    /// 1.00 V / 25 °C, 6 % load factor, ±5 % per-gate variation.
    pub fn tsmc45_like() -> Self {
        DelayModel {
            vth0: 0.45,
            k_t: 0.0008,
            alpha: 1.6,
            mu: 1.0,
            reference: OperatingCondition::nominal(),
            load_factor: 0.06,
            variation: 0.12,
            vth_variation: 0.04,
        }
    }

    /// Threshold voltage at temperature `t` (°C).
    pub fn vth(&self, t: f64) -> f64 {
        self.vth0 - self.k_t * (t - self.reference.temperature())
    }

    /// The dimensionless delay scale factor `s(V, T)` for a gate whose
    /// threshold voltage deviates by the factor `vth_ratio` (1.0 for the
    /// nominal device).
    ///
    /// # Panics
    ///
    /// Panics if the supply voltage does not exceed the gate's threshold
    /// voltage at this temperature: the model (like the silicon) has no
    /// super-threshold delay there.
    pub fn scale_factor_with_vth(&self, cond: OperatingCondition, vth_ratio: f64) -> f64 {
        let vth = self.vth(cond.temperature()) * vth_ratio;
        let v = cond.voltage();
        assert!(v > vth, "supply {v} V is below threshold {vth:.3} V at {} C", cond.temperature());
        let v0 = self.reference.voltage();
        let vth_ref = self.vth(self.reference.temperature()) * vth_ratio;
        let overdrive = (v / (v - vth).powf(self.alpha)) / (v0 / (v0 - vth_ref).powf(self.alpha));
        let mobility = (cond.kelvin() / self.reference.kelvin()).powf(self.mu);
        overdrive * mobility
    }

    /// The nominal-device delay scale factor `s(V, T)` relative to the
    /// reference condition.
    ///
    /// # Panics
    ///
    /// See [`Self::scale_factor_with_vth`].
    pub fn scale_factor(&self, cond: OperatingCondition) -> f64 {
        self.scale_factor_with_vth(cond, 1.0)
    }

    /// Intrinsic (unloaded) delay of a cell kind at the reference
    /// condition, in picoseconds. Primary inputs and tie cells have zero
    /// delay.
    pub fn base_delay_ps(&self, kind: GateKind) -> f64 {
        use GateKind::*;
        match kind {
            Input | Const0 | Const1 => 0.0,
            Not => 8.0,
            Buf => 10.0,
            Nand2 => 12.0,
            Nor2 => 14.0,
            And2 => 16.0,
            Or2 => 16.0,
            Mux2 => 22.0,
            Xor2 => 24.0,
            Xnor2 => 24.0,
            Maj3 => 26.0,
            Xor3 => 32.0,
            And4 => 20.0,
            Or4 => 20.0,
        }
    }

    /// Deterministic unit hash of a net index in `[0, 1)` (SplitMix64
    /// finalizer); `stream` decorrelates the independent variation sources.
    fn unit_hash(net: usize, stream: u64) -> f64 {
        let mut z = (net as u64)
            .wrapping_add(stream.wrapping_mul(0xA076_1D64_78BD_642F))
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Deterministic per-gate base-delay variation factor in
    /// `[1 - variation, 1 + variation]`, derived from a hash of the net
    /// index so that runs are reproducible and SDF files look realistic.
    pub fn gate_variation(&self, net: usize) -> f64 {
        1.0 + self.variation * (2.0 * Self::unit_hash(net, 1) - 1.0)
    }

    /// Deterministic per-gate threshold-voltage ratio in
    /// `[1 - vth_variation, 1 + vth_variation]`.
    pub fn gate_vth_ratio(&self, net: usize) -> f64 {
        1.0 + self.vth_variation * (2.0 * Self::unit_hash(net, 2) - 1.0)
    }

    /// Delay, in picoseconds, of one gate at `cond` given its fanout.
    pub fn gate_delay_ps(
        &self,
        kind: GateKind,
        fanout: u32,
        net: usize,
        cond: OperatingCondition,
    ) -> f64 {
        let base = self.base_delay_ps(kind);
        if base == 0.0 {
            return 0.0;
        }
        let load = 1.0 + self.load_factor * fanout.saturating_sub(1) as f64;
        base * load
            * self.gate_variation(net)
            * self.scale_factor_with_vth(cond, self.gate_vth_ratio(net))
    }

    /// Annotates every net of `netlist` with its delay at `cond` — the
    /// in-memory analogue of running STA and emitting an SDF file for one
    /// (V, T) corner.
    pub fn annotate(&self, netlist: &Netlist, cond: OperatingCondition) -> DelayAnnotation {
        let fanout = netlist.fanout_counts();
        let delays = netlist
            .gates()
            .iter()
            .enumerate()
            .map(|(i, g)| self.gate_delay_ps(g.kind(), fanout[i], i, cond).round().max(0.0) as u32)
            .collect();
        DelayAnnotation::new(netlist.name(), cond, delays)
    }
}

impl Default for DelayModel {
    fn default() -> Self {
        DelayModel::tsmc45_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DelayModel {
        DelayModel::tsmc45_like()
    }

    #[test]
    fn reference_scale_is_unity() {
        let m = model();
        let s = m.scale_factor(OperatingCondition::nominal());
        assert!((s - 1.0).abs() < 1e-12, "scale at reference must be 1, got {s}");
    }

    #[test]
    fn lower_voltage_is_slower() {
        let m = model();
        let mut prev = 0.0;
        for i in 0..20 {
            let v = 1.00 - 0.01 * i as f64;
            let s = m.scale_factor(OperatingCondition::new(v, 25.0));
            assert!(s > prev, "delay must increase monotonically as V drops");
            prev = s;
        }
        // The total swing should be substantial (tens of percent).
        let low = m.scale_factor(OperatingCondition::new(0.81, 25.0));
        assert!(low > 1.3 && low < 2.5, "0.81 V scale {low} outside plausible band");
    }

    #[test]
    fn inverse_temperature_dependence_at_low_voltage() {
        let m = model();
        let cold = m.scale_factor(OperatingCondition::new(0.81, 0.0));
        let hot = m.scale_factor(OperatingCondition::new(0.81, 100.0));
        assert!(hot < cold, "at 0.81 V heat must speed the circuit up (ITD)");
    }

    #[test]
    fn normal_temperature_dependence_at_high_voltage() {
        let m = model();
        for v in [0.90, 0.95, 1.00] {
            let cold = m.scale_factor(OperatingCondition::new(v, 0.0));
            let hot = m.scale_factor(OperatingCondition::new(v, 100.0));
            assert!(hot > cold, "at {v} V heat must slow the circuit down");
        }
    }

    #[test]
    fn gate_variation_is_bounded_and_deterministic() {
        let m = model();
        for net in 0..1000 {
            let j = m.gate_variation(net);
            assert!((0.88..=1.12).contains(&j), "jitter {j} out of band");
            assert_eq!(j, m.gate_variation(net), "jitter must be deterministic");
        }
        // And it must actually vary.
        assert_ne!(m.gate_variation(1), m.gate_variation(2));
    }

    #[test]
    fn fanout_increases_delay() {
        let m = model();
        let cond = OperatingCondition::nominal();
        let d1 = m.gate_delay_ps(GateKind::Nand2, 1, 0, cond);
        let d4 = m.gate_delay_ps(GateKind::Nand2, 4, 0, cond);
        assert!(d4 > d1);
        assert_eq!(m.gate_delay_ps(GateKind::Input, 5, 0, cond), 0.0);
    }

    #[test]
    fn annotate_covers_every_net() {
        use tevot_netlist::fu::FunctionalUnit;
        let nl = FunctionalUnit::IntAdd.build();
        let ann = model().annotate(&nl, OperatingCondition::new(0.9, 50.0));
        assert_eq!(ann.delays().len(), nl.num_nets());
        assert_eq!(ann.design(), nl.name());
        // Logic nets get non-zero delays; input nets get zero.
        let first_input = nl.inputs()[0];
        assert_eq!(ann.delay_ps(first_input.index()), 0);
        assert!(ann.delays().iter().any(|&d| d > 0));
    }

    #[test]
    #[should_panic(expected = "below threshold")]
    fn sub_threshold_voltage_panics() {
        let m = model();
        let _ = m.scale_factor(OperatingCondition::new(0.3, 25.0));
    }

    #[test]
    fn condition_scaling_is_not_separable_across_gates() {
        // If every gate scaled by the same factor between two conditions,
        // the (V, T) dimension of the learning problem would be trivial.
        // Per-gate Vth variation must break that.
        use tevot_netlist::fu::FunctionalUnit;
        let nl = FunctionalUnit::IntAdd.build();
        let m = model();
        let a = m.annotate(&nl, OperatingCondition::new(0.81, 0.0));
        let b = m.annotate(&nl, OperatingCondition::new(1.00, 100.0));
        let ratios: Vec<f64> = a
            .delays()
            .iter()
            .zip(b.delays())
            .filter(|&(&x, &y)| x > 0 && y > 0)
            .map(|(&x, &y)| x as f64 / y as f64)
            .collect();
        let min = ratios.iter().copied().fold(f64::INFINITY, f64::min);
        let max = ratios.iter().copied().fold(0.0f64, f64::max);
        assert!(
            max / min > 1.05,
            "per-gate V/T response should differ by >5% across gates ({min:.3}..{max:.3})"
        );
    }

    #[test]
    fn vth_ratio_is_bounded() {
        let m = model();
        for net in 0..1000 {
            let r = m.gate_vth_ratio(net);
            assert!((0.96..=1.04).contains(&r));
        }
    }
}
