//! A minimal Standard Delay Format (SDF) subset.
//!
//! The paper's flow emits one SDF file per (V, T) corner from PrimeTime and
//! back-annotates gate-level simulation with it. This module writes and
//! parses the small subset needed for that hand-off: a header carrying the
//! design name and operating condition, plus one `IOPATH` delay per cell.
//!
//! The format is real SDF 3.0 syntax (a tool that reads SDF would accept
//! these files); only the subset relevant to the flow is produced.

use std::fmt::Write as _;

use crate::delay::DelayAnnotation;
use crate::operating::OperatingCondition;

/// Serializes a [`DelayAnnotation`] as an SDF 3.0 document.
///
/// Nets with zero delay (primary inputs, ties) are omitted, mirroring how
/// real SDF files only annotate cells.
pub fn write_sdf(annotation: &DelayAnnotation) -> String {
    let cond = annotation.condition();
    let mut out = String::new();
    let _ = writeln!(out, "(DELAYFILE");
    let _ = writeln!(out, "  (SDFVERSION \"3.0\")");
    let _ = writeln!(out, "  (DESIGN \"{}\")", annotation.design());
    // Shortest round-trip formatting: the parsed condition must compare
    // equal to the one the annotation was computed for.
    let _ = writeln!(out, "  (VOLTAGE {})", cond.voltage());
    let _ = writeln!(out, "  (TEMPERATURE {})", cond.temperature());
    let _ = writeln!(out, "  (TIMESCALE 1ps)");
    for (net, &d) in annotation.delays().iter().enumerate() {
        if d == 0 {
            continue;
        }
        let _ =
            writeln!(out, "  (CELL (INSTANCE g{net}) (DELAY (ABSOLUTE (IOPATH * y ({d}) ({d})))))");
    }
    out.push_str(")\n");
    out
}

/// An error produced while parsing an SDF document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSdfError {
    message: String,
}

impl ParseSdfError {
    fn new(message: impl Into<String>) -> Self {
        ParseSdfError { message: message.into() }
    }
}

impl std::fmt::Display for ParseSdfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid SDF: {}", self.message)
    }
}

impl std::error::Error for ParseSdfError {}

/// Parses an SDF document produced by [`write_sdf`] back into a
/// [`DelayAnnotation`].
///
/// `num_nets` is the net count of the target netlist; instance indices
/// beyond it are rejected.
///
/// # Errors
///
/// Returns [`ParseSdfError`] when a required header field is missing or a
/// cell entry is malformed.
pub fn parse_sdf(text: &str, num_nets: usize) -> Result<DelayAnnotation, ParseSdfError> {
    let mut design = None;
    let mut voltage = None;
    let mut temperature = None;
    let mut delays = vec![0u32; num_nets];

    fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let start = line.find(key)? + key.len();
        let rest = line[start..].trim_start();
        let end = rest.find(')')?;
        Some(rest[..end].trim().trim_matches('"'))
    }

    for line in text.lines() {
        let line = line.trim();
        if let Some(v) = field(line, "(DESIGN") {
            design = Some(v.to_string());
        } else if let Some(v) = field(line, "(VOLTAGE") {
            voltage = Some(v.parse::<f64>().map_err(|_| ParseSdfError::new("bad VOLTAGE"))?);
        } else if let Some(v) = field(line, "(TEMPERATURE") {
            temperature =
                Some(v.parse::<f64>().map_err(|_| ParseSdfError::new("bad TEMPERATURE"))?);
        } else if line.starts_with("(CELL") || line.starts_with("  (CELL") {
            let inst = field(line, "(INSTANCE")
                .ok_or_else(|| ParseSdfError::new("CELL without INSTANCE"))?;
            let net: usize = inst
                .strip_prefix('g')
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| ParseSdfError::new(format!("bad instance name {inst}")))?;
            if net >= num_nets {
                return Err(ParseSdfError::new(format!(
                    "instance g{net} out of range for {num_nets} nets"
                )));
            }
            let iopath =
                line.find("(IOPATH").ok_or_else(|| ParseSdfError::new("CELL without IOPATH"))?;
            let rest = &line[iopath..];
            let open = rest
                .find("(")
                .and_then(|_| rest.find(" ("))
                .ok_or_else(|| ParseSdfError::new("IOPATH without delay"))?;
            // First parenthesized number after "IOPATH * y".
            let num_start = rest[open..]
                .find('(')
                .map(|i| open + i + 1)
                .ok_or_else(|| ParseSdfError::new("IOPATH without delay"))?;
            let num_end = rest[num_start..]
                .find(')')
                .map(|i| num_start + i)
                .ok_or_else(|| ParseSdfError::new("unterminated delay"))?;
            let d: u32 = rest[num_start..num_end]
                .trim()
                .parse()
                .map_err(|_| ParseSdfError::new("bad delay value"))?;
            delays[net] = d;
        }
    }

    let design = design.ok_or_else(|| ParseSdfError::new("missing DESIGN"))?;
    let voltage = voltage.ok_or_else(|| ParseSdfError::new("missing VOLTAGE"))?;
    let temperature = temperature.ok_or_else(|| ParseSdfError::new("missing TEMPERATURE"))?;
    Ok(DelayAnnotation::new(design, OperatingCondition::new(voltage, temperature), delays))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::DelayModel;
    use tevot_netlist::fu::FunctionalUnit;

    #[test]
    fn roundtrip_preserves_annotation() {
        let nl = FunctionalUnit::IntAdd.build();
        let cond = OperatingCondition::new(0.87, 75.0);
        let ann = DelayModel::tsmc45_like().annotate(&nl, cond);
        let text = write_sdf(&ann);
        let parsed = parse_sdf(&text, nl.num_nets()).unwrap();
        assert_eq!(parsed, ann);
    }

    #[test]
    fn header_fields_survive() {
        let ann = DelayAnnotation::new("toy", OperatingCondition::new(0.95, 0.0), vec![0, 12, 34]);
        let text = write_sdf(&ann);
        assert!(text.contains("(DESIGN \"toy\")"));
        assert!(text.contains("(VOLTAGE 0.95)"));
        assert!(text.contains("(TIMESCALE 1ps)"));
        let parsed = parse_sdf(&text, 3).unwrap();
        assert_eq!(parsed.design(), "toy");
        assert_eq!(parsed.delays(), &[0, 12, 34]);
    }

    #[test]
    fn rejects_missing_header() {
        let err = parse_sdf("(DELAYFILE)", 1).unwrap_err();
        assert!(err.to_string().contains("DESIGN"));
    }

    #[test]
    fn rejects_out_of_range_instance() {
        let text = "(DELAYFILE\n  (DESIGN \"x\")\n  (VOLTAGE 1.0)\n  (TEMPERATURE 25.0)\n  (CELL (INSTANCE g9) (DELAY (ABSOLUTE (IOPATH * y (5) (5)))))\n)";
        let err = parse_sdf(text, 3).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn zero_delay_cells_are_omitted() {
        let ann = DelayAnnotation::new("toy", OperatingCondition::nominal(), vec![0, 0, 7]);
        let text = write_sdf(&ann);
        assert!(!text.contains("(INSTANCE g0)"));
        assert!(text.contains("(INSTANCE g2)"));
    }
}
