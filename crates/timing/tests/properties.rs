//! Property tests for the timing substrate: physical monotonicities of the
//! delay model, STA invariants, and SDF round-trips on arbitrary
//! annotations.

use proptest::collection::vec;
use proptest::prelude::*;
use tevot_netlist::fu::FunctionalUnit;
use tevot_netlist::NetlistBuilder;
use tevot_timing::{sdf, sta, DelayAnnotation, DelayModel, OperatingCondition};

fn condition() -> impl Strategy<Value = OperatingCondition> {
    (0.81f64..=1.0, 0.0f64..=100.0).prop_map(|(v, t)| OperatingCondition::new(v, t))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Delay strictly increases as voltage drops, at any temperature.
    #[test]
    fn voltage_monotonicity(t in 0.0f64..=100.0, v in 0.82f64..=1.0) {
        let m = DelayModel::tsmc45_like();
        let fast = m.scale_factor(OperatingCondition::new(v, t));
        let slow = m.scale_factor(OperatingCondition::new(v - 0.01, t));
        prop_assert!(slow > fast, "{slow} !> {fast} at ({v}, {t})");
    }

    /// The scale factor stays within a plausible physical band across the
    /// whole Table I grid, for every per-gate Vth ratio the model uses.
    #[test]
    fn scale_factor_is_bounded(cond in condition(), net in 0usize..10_000) {
        let m = DelayModel::tsmc45_like();
        let s = m.scale_factor_with_vth(cond, m.gate_vth_ratio(net));
        prop_assert!(s > 0.5 && s < 4.0, "scale {s} at {cond}");
    }

    /// STA arrival times are monotone along every gate's input cone.
    #[test]
    fn sta_arrivals_are_monotone(cond in condition()) {
        let nl = FunctionalUnit::IntAdd.build();
        let ann = DelayModel::tsmc45_like().annotate(&nl, cond);
        let report = sta::run(&nl, &ann);
        for (i, gate) in nl.gates().iter().enumerate() {
            let t = report.arrival_times()[i];
            for input in gate.inputs() {
                prop_assert!(report.arrival_times()[input.index()] <= t);
            }
        }
    }

    /// SDF text round-trips arbitrary annotations losslessly.
    #[test]
    fn sdf_roundtrip(delays in vec(0u32..100_000, 1..300), cond in condition()) {
        let ann = DelayAnnotation::new("prop", cond, delays);
        let text = sdf::write_sdf(&ann);
        let parsed = sdf::parse_sdf(&text, ann.delays().len()).unwrap();
        prop_assert_eq!(parsed, ann);
    }

    /// Annotating the same netlist twice is deterministic, and critical
    /// delay scales monotonically with voltage like the cell delays do.
    #[test]
    fn critical_delay_tracks_voltage(t in 0.0f64..=100.0) {
        let mut b = NetlistBuilder::new("chain");
        let a = b.input("a");
        let mut x = a;
        for _ in 0..6 {
            x = b.xor(x, a);
        }
        b.output("y", x);
        let nl = b.finish();
        let m = DelayModel::tsmc45_like();
        let lo = sta::run(&nl, &m.annotate(&nl, OperatingCondition::new(0.81, t)));
        let hi = sta::run(&nl, &m.annotate(&nl, OperatingCondition::new(1.0, t)));
        prop_assert!(lo.critical_delay_ps() > hi.critical_delay_ps());
    }
}
