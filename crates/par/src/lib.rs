//! `tevot-par` — a zero-dependency scoped thread-pool for the TEVoT
//! pipeline.
//!
//! The pipeline's hot loops are embarrassingly parallel: the
//! characterization stage simulates the same netlist independently per
//! (V, T) operating condition, per-clock error derivation and per-run
//! featurization are independent, and each tree of a random forest fits
//! on its own bootstrap sample. This crate parallelizes them with `std`
//! alone (the workspace's no-external-deps rule): [`map`] spins up a
//! scoped pool of workers (`std::thread::scope`), workers claim tasks
//! through a shared atomic cursor, and results travel back over an
//! `mpsc` channel into an **ordered reduction** — `map(items, f)` always
//! returns `f(item)` results in `items` order, so parallel output is
//! indistinguishable from serial output.
//!
//! # Determinism contract
//!
//! Every entry point guarantees that the result is **bit-identical**
//! regardless of the worker count, including `jobs = 1` (which runs
//! inline on the calling thread without spawning). Callers that need
//! randomness must derive one independent RNG per task *before* fanning
//! out (see `tevot_ml`'s per-tree splitmix seeds) — sharing one RNG
//! across tasks would reintroduce schedule dependence.
//!
//! # Job-count resolution
//!
//! The worker count comes from, in priority order:
//!
//! 1. an explicit [`set_jobs`] call (the CLI's `--jobs N` flag),
//! 2. the `TEVOT_JOBS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! # Observability
//!
//! Each worker thread opens a `par.worker` span, so with `--trace` every
//! worker gets its own lane in the exported Perfetto timeline; every
//! completed task increments the `par.tasks` counter.
//!
//! # Examples
//!
//! ```
//! let squares = tevot_par::map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! let same = tevot_par::map_with(1, &[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, same);
//! ```

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use tevot_resil::{CancelToken, TevotError};

/// The per-task failpoint (`par.task`): a `panic` action simulates a
/// worker crashing mid-task, an `io` action is promoted to a panic too —
/// task closures are infallible, so any injected fault is a crash.
#[inline]
fn task_failpoint() {
    if let Err(e) = tevot_resil::fail::eval("par.task") {
        panic!("par.task: {e}");
    }
}

/// Explicit worker-count override; 0 means "not set, resolve lazily".
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the global worker count (the CLI's `--jobs N`). `0` clears the
/// override, restoring `TEVOT_JOBS` / hardware resolution.
pub fn set_jobs(jobs: usize) {
    JOBS.store(jobs, Ordering::Relaxed);
}

/// Parses a `TEVOT_JOBS` value: a positive integer passes through, `0`
/// clamps to one worker (a zero-worker pool could never make progress),
/// and anything unparseable is ignored. Returns `(jobs, clamped)`.
fn parse_env_jobs(raw: &str) -> Option<(usize, bool)> {
    match raw.trim().parse::<usize>().ok()? {
        0 => Some((1, true)),
        n => Some((n, false)),
    }
}

/// The worker count parallel regions use: an explicit [`set_jobs`] value
/// if one was set, else `TEVOT_JOBS` (with `0` clamped to 1 — see
/// [`parse_env_jobs`]), else the hardware parallelism (1 when even that
/// is unknown).
pub fn jobs() -> usize {
    let explicit = JOBS.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    if let Some((n, clamped)) = std::env::var("TEVOT_JOBS").ok().as_deref().and_then(parse_env_jobs)
    {
        if clamped {
            static WARN_ONCE: std::sync::Once = std::sync::Once::new();
            WARN_ONCE.call_once(|| {
                tevot_obs::warn!("TEVOT_JOBS=0 would be a zero-worker pool; clamping to 1 worker");
            });
        }
        return n;
    }
    std::thread::available_parallelism().map(usize::from).unwrap_or(1)
}

/// Runs `body` with the global worker count temporarily forced to
/// `jobs`, restoring the previous override afterwards (also on panic).
/// Meant for tests and benchmarks that compare serial against parallel
/// execution in one process.
pub fn with_jobs<R>(jobs: usize, body: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            JOBS.store(self.0, Ordering::Relaxed);
        }
    }
    let _restore = Restore(JOBS.swap(jobs, Ordering::Relaxed));
    body()
}

/// Parallel ordered map with the global worker count (see [`jobs`]).
///
/// Equivalent to `items.iter().map(f).collect()` — same results, same
/// order — but spread over a scoped worker pool. See [`map_with`].
pub fn map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_with(jobs(), items, f)
}

/// Parallel ordered map with an explicit worker count.
///
/// Spawns `min(jobs, items.len())` scoped workers; each claims the next
/// unprocessed index from a shared atomic cursor, computes `f(&item)`,
/// and sends `(index, result)` back over a channel. The caller slots
/// results by index, so the output order always matches `items` — the
/// ordered reduction that makes parallel runs bit-identical to serial
/// ones. With one worker (or one item) everything runs inline on the
/// calling thread: no threads, no channel, no overhead.
///
/// # Panics
///
/// A panic inside `f` propagates to the caller once all workers have
/// drained (the scope joins before unwinding continues).
pub fn map_with<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = jobs.max(1).min(n);
    if workers <= 1 {
        return items
            .iter()
            .map(|item| {
                task_failpoint();
                tevot_obs::metrics::PAR_TASKS.incr();
                f(item)
            })
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || {
                // One span per worker: its own lane in the trace timeline
                // (worker threads are fresh, so each gets a fresh tid).
                let _lane = tevot_obs::span!("par.worker");
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    task_failpoint();
                    let result = f(&items[i]);
                    tevot_obs::metrics::PAR_TASKS.incr();
                    // The receiver outlives the scope body; a send can
                    // only fail while unwinding from a caller panic.
                    if tx.send((i, result)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);

        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let mut delivered = 0usize;
        for (i, result) in rx {
            slots[i] = Some(result);
            delivered += 1;
        }
        // A worker that panicked mid-task never delivers its claimed
        // index; surface the panic via the scope join instead of an
        // opaque unwrap below.
        if delivered < n {
            return None;
        }
        Some(slots.into_iter().map(|r| r.expect("every index delivered")).collect())
    })
    .expect("a parallel task panicked")
}

/// Cancellable parallel ordered map with the global worker count.
///
/// See [`map_cancellable_with`].
///
/// # Errors
///
/// [`tevot_resil::ErrorKind::Cancelled`] when `token` is cancelled
/// before every task has completed.
pub fn map_cancellable<T, R, F>(
    token: &CancelToken,
    items: &[T],
    f: F,
) -> Result<Vec<R>, TevotError>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_cancellable_with(jobs(), token, items, f)
}

/// Cancellable parallel ordered map with an explicit worker count.
///
/// Identical to [`map_with`] — same ordered reduction, same determinism
/// contract, same panic propagation — except that workers check `token`
/// before claiming each task and stop claiming once it is cancelled.
/// In-flight tasks run to completion (cancellation is cooperative, not
/// preemptive), so a caller checkpointing per-task results keeps
/// everything finished before the abort.
///
/// # Errors
///
/// [`tevot_resil::ErrorKind::Cancelled`] when the token was cancelled
/// before every task completed; already-computed results are dropped
/// (the caller resumes from its checkpoints).
///
/// # Panics
///
/// A panic inside `f` propagates to the caller, as with [`map_with`].
pub fn map_cancellable_with<T, R, F>(
    jobs: usize,
    token: &CancelToken,
    items: &[T],
    f: F,
) -> Result<Vec<R>, TevotError>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = jobs.max(1).min(n);
    if workers <= 1 {
        return items
            .iter()
            .map(|item| {
                token.check("parallel map")?;
                task_failpoint();
                tevot_obs::metrics::PAR_TASKS.incr();
                Ok(f(item))
            })
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || {
                let _lane = tevot_obs::span!("par.worker");
                loop {
                    if token.is_cancelled() {
                        break;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    task_failpoint();
                    let result = f(&items[i]);
                    tevot_obs::metrics::PAR_TASKS.incr();
                    if tx.send((i, result)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);

        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let mut delivered = 0usize;
        for (i, result) in rx {
            slots[i] = Some(result);
            delivered += 1;
        }
        if delivered < n {
            if token.is_cancelled() {
                return Some(Err(TevotError::cancelled(format!(
                    "parallel map cancelled after {delivered}/{n} tasks"
                ))));
            }
            // A worker panicked: let the scope join re-raise it.
            return None;
        }
        Some(Ok(slots.into_iter().map(|r| r.expect("every index delivered")).collect()))
    })
    .expect("a parallel task panicked")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_results_match_serial() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for jobs in [1, 2, 4, 16] {
            assert_eq!(map_with(jobs, &items, |&x| x * 3 + 1), serial, "jobs {jobs}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_with(8, &empty, |&x| x).is_empty());
        assert_eq!(map_with(8, &[41u32], |&x| x + 1), vec![42]);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        assert_eq!(map_with(64, &[1u8, 2, 3], |&x| x as u32), vec![1, 2, 3]);
    }

    #[test]
    fn with_jobs_overrides_and_restores() {
        let before = JOBS.load(Ordering::Relaxed);
        let inside = with_jobs(3, jobs);
        assert_eq!(inside, 3);
        assert_eq!(JOBS.load(Ordering::Relaxed), before);
    }

    #[test]
    fn with_jobs_restores_on_panic() {
        let before = JOBS.load(Ordering::Relaxed);
        let caught = std::panic::catch_unwind(|| with_jobs(5, || panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(JOBS.load(Ordering::Relaxed), before);
    }

    #[test]
    fn jobs_is_at_least_one() {
        assert!(jobs() >= 1);
    }

    #[test]
    fn env_jobs_zero_clamps_to_one_worker() {
        assert_eq!(parse_env_jobs("0"), Some((1, true)), "0 must clamp, not disable the pool");
        assert_eq!(parse_env_jobs(" 0 "), Some((1, true)));
        assert_eq!(parse_env_jobs("1"), Some((1, false)));
        assert_eq!(parse_env_jobs("8"), Some((8, false)));
        assert_eq!(parse_env_jobs("many"), None);
        assert_eq!(parse_env_jobs(""), None);
        assert_eq!(parse_env_jobs("-2"), None);
    }

    #[test]
    fn task_counter_advances() {
        let before = tevot_obs::metrics::PAR_TASKS.get();
        let _ = map_with(4, &[1u8, 2, 3, 4, 5], |&x| x);
        assert!(tevot_obs::metrics::PAR_TASKS.get() >= before + 5);
    }

    #[test]
    fn cancellable_map_matches_serial_when_not_cancelled() {
        let items: Vec<u64> = (0..101).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * 7).collect();
        let token = CancelToken::new();
        for jobs in [1, 2, 4] {
            let out = map_cancellable_with(jobs, &token, &items, |&x| x * 7).unwrap();
            assert_eq!(out, serial, "jobs {jobs}");
        }
    }

    #[test]
    fn pre_cancelled_token_short_circuits() {
        let token = CancelToken::new();
        token.cancel();
        for jobs in [1, 4] {
            let e = map_cancellable_with(jobs, &token, &[1u32, 2, 3], |&x| x).unwrap_err();
            assert_eq!(e.kind(), tevot_resil::ErrorKind::Cancelled);
        }
    }

    #[test]
    fn mid_run_cancellation_stops_claiming() {
        let items: Vec<u32> = (0..10_000).collect();
        let token = CancelToken::new();
        let observed = AtomicUsize::new(0);
        let out = map_cancellable_with(4, &token, &items, |&x| {
            observed.fetch_add(1, Ordering::Relaxed);
            if x == 50 {
                token.cancel();
            }
            x
        });
        let e = out.unwrap_err();
        assert_eq!(e.kind(), tevot_resil::ErrorKind::Cancelled);
        assert!(
            observed.load(Ordering::Relaxed) < items.len(),
            "cancellation must stop workers before the whole input is processed"
        );
    }

    #[test]
    fn injected_task_fault_panics_like_a_crash() {
        let _scope = tevot_resil::fail::scoped("par.task=io#3");
        let items: Vec<u32> = (0..16).collect();
        let caught = std::panic::catch_unwind(|| map_with(2, &items, |&x| x));
        assert!(caught.is_err(), "injected par.task fault must crash the region");
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..16).collect();
        let caught = std::panic::catch_unwind(|| {
            map_with(4, &items, |&x| {
                if x == 7 {
                    panic!("task failure");
                }
                x
            })
        });
        assert!(caught.is_err(), "panic in a task must reach the caller");
    }
}
