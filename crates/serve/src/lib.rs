//! tevot-serve — a zero-dependency online inference server for trained
//! TEVoT models.
//!
//! TEVoT's central claim is that one trained delay model answers
//! timing-error queries for *every* clock period and (V, T) operating
//! condition. That is the shape of an online service, and this crate is
//! that service, built entirely on `std::net::TcpListener` plus the
//! workspace's own crates:
//!
//! * [`http`] — a minimal HTTP/1.1 subset (request-line + headers +
//!   `Content-Length` bodies, keep-alive by default).
//! * [`registry`] — a hot-swappable model registry: `POST
//!   /models/<name>` reloads from disk behind an `Arc` swap; in-flight
//!   requests finish on the model they started with.
//! * [`batch`] — cross-connection microbatching: every request funnels
//!   into one bounded queue that drains onto a `tevot-par` worker pool.
//!   Predictions are pure, and the pool's reduction is ordered, so the
//!   served numbers are **bit-identical** to offline `tevot predict` at
//!   any batch size and worker count.
//! * [`api`] — endpoints (`/predict`, `/ter`, `/models`, `/healthz`,
//!   `/metrics`) and the [`ErrorKind`](tevot_resil::ErrorKind) →
//!   HTTP-status mapping; admission control answers 503 +
//!   `Retry-After` when the queue is full, per-request deadlines answer
//!   504 through `tevot-resil`'s `CancelToken`/`Watchdog`.
//! * [`server`] — the accept loop and per-connection threads.
//! * [`watch`] — production telemetry: a fixed-memory time-series store
//!   fed by a sampler thread, SLO burn-rate monitors, PSI model-drift
//!   detection against the reference histograms stored in the model
//!   file, and a shadow-replay thread scoring live accuracy against the
//!   gate-level simulator. Exposed as `GET /watch` (JSON) and
//!   `GET /metrics?format=prom` (Prometheus text exposition).
//! * [`loadgen`] — a deterministic load generator for benches and CI
//!   smoke tests.
//!
//! The CLI front-end is `tevot serve --model <path> --addr <host:port>`.

pub mod api;
pub mod batch;
pub mod http;
pub mod loadgen;
pub mod registry;
pub mod server;
pub mod watch;

pub use api::{status_for, ServeState, DEFAULT_MODEL};
pub use batch::{Batcher, Shed};
pub use registry::ModelRegistry;
pub use server::{ServeConfig, Server};
pub use watch::{Watch, WatchConfig};
