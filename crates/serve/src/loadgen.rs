//! A self-contained HTTP load generator for the serve endpoints.
//!
//! Used by the `serve_load` bench binary and the bench suite's serving
//! stage: opens `connections` keep-alive client connections, drives
//! `requests` total `POST /predict` requests through them, and reports
//! throughput and latency percentiles (interpolated with
//! [`tevot_obs::metrics::quantile_sorted`], the same convention the
//! server's `/metrics` histograms use).
//!
//! The generator is deterministic: request bodies derive from the
//! request index, so two runs against the same server are comparable.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

use tevot_obs::metrics::quantile_sorted;

/// Load-run shape.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, e.g. `127.0.0.1:7450`.
    pub addr: String,
    /// Total requests across all connections.
    pub requests: usize,
    /// Concurrent keep-alive client connections.
    pub connections: usize,
    /// Operand transitions per request body.
    pub transitions: usize,
    /// Model name to query.
    pub model: String,
    /// Drive `POST /dfs` (clock recommendations with a fixed guardband)
    /// instead of `POST /predict`.
    pub dfs: bool,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            addr: String::new(),
            requests: 1000,
            connections: 4,
            transitions: 4,
            model: "default".into(),
            dfs: false,
        }
    }
}

/// Aggregated outcome of a load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests attempted.
    pub requests: usize,
    /// `200 OK` responses.
    pub ok: usize,
    /// `503` shed responses.
    pub shed: usize,
    /// Any other non-200 response or transport failure.
    pub errors: usize,
    /// Connections re-established after a transport failure (a reset or
    /// short read mid-exchange, e.g. a replica dying under load).
    pub reconnects: usize,
    /// Successful requests per second of wall-clock time.
    pub qps: f64,
    /// Median request latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: f64,
}

/// The deterministic `POST /predict` body for request `index`.
fn body_for(config: &LoadConfig, index: usize) -> String {
    let mut transitions = String::new();
    for t in 0..config.transitions {
        // Knuth-style multiplicative scrambles: cheap, deterministic,
        // well-spread operand patterns.
        let x = (index * config.transitions + t) as u32;
        let a = x.wrapping_mul(2_654_435_761);
        let b = x.wrapping_mul(40_503).wrapping_add(17);
        if t > 0 {
            transitions.push(',');
        }
        transitions.push_str(&format!(
            "{{\"a\":{a},\"b\":{b},\"prev_a\":{},\"prev_b\":{}}}",
            b.rotate_left(7),
            a.rotate_left(3),
        ));
    }
    if config.dfs {
        format!(
            "{{\"model\":\"{}\",\"voltage\":0.9,\"temperature\":25,\"guardband_ps\":50,\
             \"transitions\":[{transitions}]}}",
            config.model
        )
    } else {
        format!(
            "{{\"model\":\"{}\",\"voltage\":0.9,\"temperature\":25,\"clock_ps\":1000,\
             \"transitions\":[{transitions}]}}",
            config.model
        )
    }
}

/// Reads one HTTP response (status line + headers + `Content-Length`
/// body) and returns the status code.
fn read_status(reader: &mut impl BufRead) -> std::io::Result<u16> {
    let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(std::io::ErrorKind::UnexpectedEof.into());
    }
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(&format!("bad status line {line:?}")))?;
    let mut content_length = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::ErrorKind::UnexpectedEof.into());
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| bad("bad Content-Length"))?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(status)
}

/// Initial-connect and reconnect retry budget: a replica that started
/// moments ago may not be listening yet, and a router mid-failover may
/// refuse briefly.
const CONNECT_ATTEMPTS: usize = 20;
/// Base reconnect backoff; doubles per attempt up to 16× the base.
const CONNECT_BACKOFF_MS: u64 = 25;
/// Give up after this many transport failures in a row — the server is
/// down for good, not flaky — and charge the remaining share as errors.
const MAX_CONSECUTIVE_FAILURES: usize = 20;

/// One client connection's tally of the run.
#[derive(Debug, Default)]
struct Tally {
    ok: usize,
    shed: usize,
    errors: usize,
    reconnects: usize,
    latencies: Vec<f64>,
}

/// Connects with bounded exponential backoff; `None` means the server
/// never answered within the whole retry budget.
fn connect_with_retry(addr: &str) -> Option<(TcpStream, BufReader<TcpStream>)> {
    for attempt in 0..CONNECT_ATTEMPTS {
        if attempt > 0 {
            let backoff = CONNECT_BACKOFF_MS << (attempt as u32 - 1).min(4);
            std::thread::sleep(std::time::Duration::from_millis(backoff));
        }
        if let Ok(stream) = TcpStream::connect(addr) {
            stream.set_nodelay(true).ok();
            stream.set_read_timeout(Some(std::time::Duration::from_secs(10))).ok();
            if let Ok(writer) = stream.try_clone() {
                return Some((writer, BufReader::new(stream)));
            }
        }
    }
    None
}

/// One request-response exchange; the latency is in microseconds.
fn exchange(
    config: &LoadConfig,
    index: usize,
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
) -> std::io::Result<(u16, f64)> {
    let body = body_for(config, index);
    let path = if config.dfs { "/dfs" } else { "/predict" };
    let request = format!(
        "POST {path} HTTP/1.1\r\nHost: tevot\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let start = Instant::now();
    writer.write_all(request.as_bytes())?;
    let status = read_status(reader)?;
    Ok((status, start.elapsed().as_secs_f64() * 1e6))
}

/// One client connection's share of the run.
///
/// Transport failures (resets, short reads) are recorded as errors and
/// answered with a reconnect, so a replica dying mid-run costs exactly
/// the requests that were in flight — not the rest of this connection's
/// range.
fn client(config: &LoadConfig, indices: std::ops::Range<usize>) -> Tally {
    let mut tally = Tally::default();
    let total = indices.len();
    let mut conn: Option<(TcpStream, BufReader<TcpStream>)> = None;
    let mut ever_connected = false;
    let mut consecutive_failures = 0usize;
    for (done, index) in indices.enumerate() {
        if conn.is_none() {
            match connect_with_retry(&config.addr) {
                Some(c) => {
                    if ever_connected {
                        tally.reconnects += 1;
                    }
                    ever_connected = true;
                    conn = Some(c);
                }
                None => {
                    tally.errors += total - done;
                    return tally;
                }
            }
        }
        let (writer, reader) = conn.as_mut().expect("connection was just established");
        match exchange(config, index, writer, reader) {
            Ok((200, latency)) => {
                consecutive_failures = 0;
                tally.ok += 1;
                tally.latencies.push(latency);
            }
            Ok((503, _)) => {
                consecutive_failures = 0;
                tally.shed += 1;
            }
            Ok(_) => {
                consecutive_failures = 0;
                tally.errors += 1;
            }
            Err(_) => {
                tally.errors += 1;
                consecutive_failures += 1;
                conn = None;
                if consecutive_failures >= MAX_CONSECUTIVE_FAILURES {
                    tally.errors += total - done - 1;
                    return tally;
                }
            }
        }
    }
    tally
}

/// Runs the configured load and aggregates the outcome.
///
/// Connection failures count as errors rather than aborting the run, so
/// the caller always gets a report to assert on.
pub fn run(config: &LoadConfig) -> LoadReport {
    let _span = tevot_obs::span!("serve.loadgen");
    let connections = config.connections.max(1);
    let per = config.requests.div_ceil(connections);
    let start = Instant::now();
    let results: Vec<Tally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let lo = (c * per).min(config.requests);
                let hi = ((c + 1) * per).min(config.requests);
                scope.spawn(move || client(config, lo..hi))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("loadgen client panicked")).collect()
    });
    let elapsed = start.elapsed().as_secs_f64();
    let mut latencies = Vec::new();
    let (mut ok, mut shed, mut errors, mut reconnects) = (0, 0, 0, 0);
    for mut tally in results {
        ok += tally.ok;
        shed += tally.shed;
        errors += tally.errors;
        reconnects += tally.reconnects;
        latencies.append(&mut tally.latencies);
    }
    latencies.sort_by(f64::total_cmp);
    LoadReport {
        requests: config.requests,
        ok,
        shed,
        errors,
        reconnects,
        qps: if elapsed > 0.0 { ok as f64 / elapsed } else { 0.0 },
        p50_us: quantile_sorted(&latencies, 0.5).unwrap_or(0.0),
        p99_us: quantile_sorted(&latencies, 0.99).unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bodies_are_deterministic_and_distinct() {
        let config = LoadConfig { transitions: 2, ..LoadConfig::default() };
        assert_eq!(body_for(&config, 3), body_for(&config, 3));
        assert_ne!(body_for(&config, 3), body_for(&config, 4));
        let parsed = tevot_obs::json::parse(&body_for(&config, 0)).expect("valid JSON");
        assert_eq!(
            parsed.get("transitions").and_then(tevot_obs::json::Json::as_arr).map(<[_]>::len),
            Some(2)
        );
    }

    #[test]
    fn dfs_mode_swaps_clock_for_guardband() {
        let config = LoadConfig { transitions: 2, dfs: true, ..LoadConfig::default() };
        let parsed = tevot_obs::json::parse(&body_for(&config, 0)).expect("valid JSON");
        assert!(parsed.get("guardband_ps").is_some());
        assert!(parsed.get("clock_ps").is_none());
        let predict = LoadConfig { transitions: 2, ..LoadConfig::default() };
        let parsed = tevot_obs::json::parse(&body_for(&predict, 0)).expect("valid JSON");
        assert!(parsed.get("clock_ps").is_some());
        assert!(parsed.get("guardband_ps").is_none());
    }

    #[test]
    fn read_status_parses_framed_responses() {
        let text = "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\n\
                    Content-Length: 5\r\n\r\nhello";
        let mut reader = BufReader::new(text.as_bytes());
        assert_eq!(read_status(&mut reader).unwrap(), 503);
        assert!(
            matches!(read_status(&mut reader), Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof)
        );
    }
}
