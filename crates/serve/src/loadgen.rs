//! A self-contained HTTP load generator for the serve endpoints.
//!
//! Used by the `serve_load` bench binary and the bench suite's serving
//! stage: opens `connections` keep-alive client connections, drives
//! `requests` total `POST /predict` requests through them, and reports
//! throughput and latency percentiles (interpolated with
//! [`tevot_obs::metrics::quantile_sorted`], the same convention the
//! server's `/metrics` histograms use).
//!
//! The generator is deterministic: request bodies derive from the
//! request index, so two runs against the same server are comparable.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

use tevot_obs::metrics::quantile_sorted;

/// Load-run shape.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, e.g. `127.0.0.1:7450`.
    pub addr: String,
    /// Total requests across all connections.
    pub requests: usize,
    /// Concurrent keep-alive client connections.
    pub connections: usize,
    /// Operand transitions per request body.
    pub transitions: usize,
    /// Model name to query.
    pub model: String,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            addr: String::new(),
            requests: 1000,
            connections: 4,
            transitions: 4,
            model: "default".into(),
        }
    }
}

/// Aggregated outcome of a load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests attempted.
    pub requests: usize,
    /// `200 OK` responses.
    pub ok: usize,
    /// `503` shed responses.
    pub shed: usize,
    /// Any other non-200 response or transport failure.
    pub errors: usize,
    /// Successful requests per second of wall-clock time.
    pub qps: f64,
    /// Median request latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: f64,
}

/// The deterministic `POST /predict` body for request `index`.
fn body_for(config: &LoadConfig, index: usize) -> String {
    let mut transitions = String::new();
    for t in 0..config.transitions {
        // Knuth-style multiplicative scrambles: cheap, deterministic,
        // well-spread operand patterns.
        let x = (index * config.transitions + t) as u32;
        let a = x.wrapping_mul(2_654_435_761);
        let b = x.wrapping_mul(40_503).wrapping_add(17);
        if t > 0 {
            transitions.push(',');
        }
        transitions.push_str(&format!(
            "{{\"a\":{a},\"b\":{b},\"prev_a\":{},\"prev_b\":{}}}",
            b.rotate_left(7),
            a.rotate_left(3),
        ));
    }
    format!(
        "{{\"model\":\"{}\",\"voltage\":0.9,\"temperature\":25,\"clock_ps\":1000,\
         \"transitions\":[{transitions}]}}",
        config.model
    )
}

/// Reads one HTTP response (status line + headers + `Content-Length`
/// body) and returns the status code.
fn read_status(reader: &mut impl BufRead) -> std::io::Result<u16> {
    let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(std::io::ErrorKind::UnexpectedEof.into());
    }
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(&format!("bad status line {line:?}")))?;
    let mut content_length = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::ErrorKind::UnexpectedEof.into());
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| bad("bad Content-Length"))?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(status)
}

/// One client connection's share of the run.
fn client(config: &LoadConfig, indices: std::ops::Range<usize>) -> (usize, usize, usize, Vec<f64>) {
    let (mut ok, mut shed, mut errors) = (0usize, 0usize, 0usize);
    let mut latencies = Vec::with_capacity(indices.len());
    let Ok(stream) = TcpStream::connect(&config.addr) else {
        return (0, 0, indices.len(), latencies);
    };
    stream.set_nodelay(true).ok();
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return (0, 0, indices.len(), latencies),
    };
    let mut reader = BufReader::new(stream);
    for index in indices {
        let body = body_for(config, index);
        let request = format!(
            "POST /predict HTTP/1.1\r\nHost: tevot\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let start = Instant::now();
        if writer.write_all(request.as_bytes()).is_err() {
            errors += 1;
            break;
        }
        match read_status(&mut reader) {
            Ok(200) => {
                ok += 1;
                latencies.push(start.elapsed().as_secs_f64() * 1e6);
            }
            Ok(503) => shed += 1,
            Ok(_) => errors += 1,
            Err(_) => {
                errors += 1;
                break;
            }
        }
    }
    (ok, shed, errors, latencies)
}

/// Runs the configured load and aggregates the outcome.
///
/// Connection failures count as errors rather than aborting the run, so
/// the caller always gets a report to assert on.
pub fn run(config: &LoadConfig) -> LoadReport {
    let _span = tevot_obs::span!("serve.loadgen");
    let connections = config.connections.max(1);
    let per = config.requests.div_ceil(connections);
    let start = Instant::now();
    let results: Vec<(usize, usize, usize, Vec<f64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let lo = (c * per).min(config.requests);
                let hi = ((c + 1) * per).min(config.requests);
                scope.spawn(move || client(config, lo..hi))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("loadgen client panicked")).collect()
    });
    let elapsed = start.elapsed().as_secs_f64();
    let mut latencies = Vec::new();
    let (mut ok, mut shed, mut errors) = (0, 0, 0);
    for (o, s, e, mut l) in results {
        ok += o;
        shed += s;
        errors += e;
        latencies.append(&mut l);
    }
    latencies.sort_by(f64::total_cmp);
    LoadReport {
        requests: config.requests,
        ok,
        shed,
        errors,
        qps: if elapsed > 0.0 { ok as f64 / elapsed } else { 0.0 },
        p50_us: quantile_sorted(&latencies, 0.5).unwrap_or(0.0),
        p99_us: quantile_sorted(&latencies, 0.99).unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bodies_are_deterministic_and_distinct() {
        let config = LoadConfig { transitions: 2, ..LoadConfig::default() };
        assert_eq!(body_for(&config, 3), body_for(&config, 3));
        assert_ne!(body_for(&config, 3), body_for(&config, 4));
        let parsed = tevot_obs::json::parse(&body_for(&config, 0)).expect("valid JSON");
        assert_eq!(
            parsed.get("transitions").and_then(tevot_obs::json::Json::as_arr).map(<[_]>::len),
            Some(2)
        );
    }

    #[test]
    fn read_status_parses_framed_responses() {
        let text = "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\n\
                    Content-Length: 5\r\n\r\nhello";
        let mut reader = BufReader::new(text.as_bytes());
        assert_eq!(read_status(&mut reader).unwrap(), 503);
        assert!(
            matches!(read_status(&mut reader), Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof)
        );
    }
}
