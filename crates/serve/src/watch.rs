//! The serve-side watch loop: time-series sampling, SLO burn-rate
//! monitors, and online model-drift detection.
//!
//! A [`Watch`] glues the pure pieces from `tevot-obs` into the running
//! server:
//!
//! * a [`TimeSeriesStore`] fed once per resolution tick by
//!   [`Watch::tick`] (driven from a sampler thread the server spawns):
//!   every registry counter and histogram quantile, plus derived gauges
//!   — `serve.qps`, `serve.error_ratio`, `serve.shed_ratio`,
//!   `serve.p50_us`/`serve.p99_us`, `serve.queue_depth`;
//! * one [`SloMonitor`] per configured objective, evaluated against the
//!   freshly sampled series each tick with two-window burn-rate
//!   semantics;
//! * per-feature [`DriftWindow`]s (voltage, temperature, predicted
//!   delay) compared each tick — as `drift.<feature>.psi` series —
//!   against the reference histograms persisted in the served model at
//!   train time, alerting past the PSI threshold;
//! * an optional **shadow sampler**: every `shadow_every`-th served
//!   transition is replayed through the gate-level simulator oracle on
//!   a dedicated thread, yielding a sliding-window live-accuracy signal
//!   (`shadow.accuracy`) that needs no labeled traffic.
//!
//! Alerts are edge-triggered, bounded in memory (last
//! [`MAX_HELD_ALERTS`]), counted by `watch.alerts`, logged, and marked
//! on the trace timeline. `GET /watch` serializes the whole picture via
//! [`Watch::to_json`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};

use tevot::reference::ReferenceStats;
use tevot_netlist::fu::FunctionalUnit;
use tevot_obs::drift::{DriftWindow, PSI_ALERT_DEFAULT};
use tevot_obs::json::Json;
use tevot_obs::metrics::{
    SERVE_HTTP_ERRORS, SERVE_PREDICT_LATENCY_US, SERVE_REQUESTS, SERVE_SHED, WATCH_ALERTS,
    WATCH_SHADOW_REPLAYS,
};
use tevot_obs::slo::{Alert, BurnRateConfig, Slo, SloMonitor};
use tevot_obs::watch::TimeSeriesStore;
use tevot_timing::{DelayModel, OperatingCondition};

use crate::batch::Transition;

/// Alerts retained for `GET /watch` (older ones age out; the
/// `watch.alerts` counter keeps the lifetime total).
pub const MAX_HELD_ALERTS: usize = 64;

/// Live observations per drift window.
const DRIFT_WINDOW: usize = 512;

/// Delay observations taken per request, so one huge batch cannot
/// flush the whole delay window.
const DELAYS_PER_REQUEST: usize = 64;

/// Queue bound between request threads and the shadow replay thread;
/// replays beyond it are dropped, never blocking a request.
const SHADOW_QUEUE: usize = 64;

/// Per-condition delay-annotation cache entries held by the shadow
/// thread (annotation is the expensive part of a replay).
const SHADOW_ANNOTATION_CACHE: usize = 8;

/// Watch tuning knobs; the defaults match the CLI's documented
/// defaults.
#[derive(Debug, Clone)]
pub struct WatchConfig {
    /// Sampler tick period, milliseconds.
    pub resolution_ms: u64,
    /// Samples retained per series (memory bound: see
    /// [`tevot_obs::watch`]).
    pub capacity: usize,
    /// SLO objectives (`--slo serve.p99_us<5000,...`).
    pub slos: Vec<Slo>,
    /// Burn-rate windows and firing factor shared by all objectives.
    pub burn: BurnRateConfig,
    /// Replay every Nth served transition through the simulator oracle
    /// (`0` disables shadow sampling).
    pub shadow_every: u64,
    /// PSI level at which a drift monitor alerts.
    pub psi_alert: f64,
    /// The functional unit the shadow oracle simulates (must match the
    /// unit the served model was trained on for the accuracy signal to
    /// mean anything).
    pub fu: FunctionalUnit,
}

impl Default for WatchConfig {
    fn default() -> WatchConfig {
        WatchConfig {
            resolution_ms: 1000,
            capacity: 600,
            slos: Vec::new(),
            burn: BurnRateConfig::default(),
            shadow_every: 0,
            psi_alert: PSI_ALERT_DEFAULT,
            fu: FunctionalUnit::IntAdd,
        }
    }
}

/// One transition queued for oracle replay, with the delay the model
/// served for it.
struct ShadowJob {
    cond: OperatingCondition,
    transition: Transition,
    predicted_ps: f64,
}

/// Number of slow-request exemplars retained (the k slowest requests
/// seen so far, by total latency).
pub const MAX_EXEMPLARS: usize = 8;

/// The per-stage span breakdown of one served request, retained when it
/// ranks among the slowest — the "what was this request doing" answer
/// `/watch` and `tevot top` surface next to the latency quantiles.
#[derive(Debug, Clone)]
pub struct Exemplar {
    /// Process-unique request id (matches `X-Request-Id`).
    pub request_id: u64,
    /// Endpoint that served the request (`/predict`, `/ter`).
    pub endpoint: &'static str,
    /// End-to-end handler latency, in microseconds.
    pub total_us: u64,
    /// `(stage, nanoseconds)` pairs in execution order.
    pub stages: Vec<(&'static str, u64)>,
    /// Wall-clock capture time, in ms since the epoch.
    pub at_ms: u64,
}

/// Live drift windows plus the per-feature edge-trigger latches.
struct DriftState {
    voltage: DriftWindow,
    temperature: DriftWindow,
    delay_ps: DriftWindow,
    firing: [bool; 3],
}

/// Previous tick's cumulative counters, for the derived rate/ratio
/// gauges.
#[derive(Default)]
struct TickState {
    wall_ms: u64,
    requests: u64,
    errors: u64,
    shed: u64,
}

/// The per-server watch state. Constructed by `Server::start` when
/// watching is configured and shared via `ServeState`.
pub struct Watch {
    config: WatchConfig,
    store: TimeSeriesStore,
    monitors: Mutex<Vec<SloMonitor>>,
    drift: Mutex<DriftState>,
    alerts: Mutex<VecDeque<Alert>>,
    last_tick: Mutex<TickState>,
    /// Live-accuracy samples, shared with the shadow thread (1.0 = the
    /// model's delay matched the oracle exactly).
    accuracy: Arc<Mutex<DriftWindow>>,
    shadow_tx: Option<SyncSender<ShadowJob>>,
    shadow_handle: Option<std::thread::JoinHandle<()>>,
    transition_seq: AtomicU64,
    exemplars: Mutex<Vec<Exemplar>>,
}

impl std::fmt::Debug for Watch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Watch").field("config", &self.config).finish_non_exhaustive()
    }
}

impl Watch {
    /// Builds the watch: the store, one monitor per objective, and —
    /// when `shadow_every > 0` — the shadow replay thread.
    pub fn new(config: WatchConfig) -> Watch {
        let store = TimeSeriesStore::new(config.resolution_ms, config.capacity);
        let monitors =
            config.slos.iter().map(|s| SloMonitor::new(s.clone(), config.burn)).collect();
        let accuracy = Arc::new(Mutex::new(DriftWindow::new(DRIFT_WINDOW)));
        let (shadow_tx, shadow_handle) = if config.shadow_every > 0 {
            let (tx, rx) = mpsc::sync_channel::<ShadowJob>(SHADOW_QUEUE);
            let fu = config.fu;
            let sink = Arc::clone(&accuracy);
            let handle = std::thread::Builder::new()
                .name("tevot-serve-shadow".into())
                .spawn(move || shadow_loop(&rx, fu, &sink))
                .expect("spawn shadow thread");
            (Some(tx), Some(handle))
        } else {
            (None, None)
        };
        Watch {
            config,
            store,
            monitors: Mutex::new(monitors),
            drift: Mutex::new(DriftState {
                voltage: DriftWindow::new(DRIFT_WINDOW),
                temperature: DriftWindow::new(DRIFT_WINDOW),
                delay_ps: DriftWindow::new(DRIFT_WINDOW),
                firing: [false; 3],
            }),
            alerts: Mutex::new(VecDeque::new()),
            last_tick: Mutex::new(TickState::default()),
            accuracy,
            shadow_tx,
            shadow_handle,
            transition_seq: AtomicU64::new(0),
            exemplars: Mutex::new(Vec::new()),
        }
    }

    /// The watch configuration.
    pub fn config(&self) -> &WatchConfig {
        &self.config
    }

    /// The underlying time-series store.
    pub fn store(&self) -> &TimeSeriesStore {
        &self.store
    }

    /// Records one served `/predict` outcome into the drift windows:
    /// the request's operating condition and (a bounded prefix of) the
    /// delays the model answered.
    pub fn observe_predict(&self, cond: OperatingCondition, delays_ps: &[f64]) {
        let mut drift = self.drift.lock().unwrap_or_else(|e| e.into_inner());
        drift.voltage.push(cond.voltage());
        drift.temperature.push(cond.temperature());
        for &d in delays_ps.iter().take(DELAYS_PER_REQUEST) {
            drift.delay_ps.push(d);
        }
    }

    /// Picks the indices of `transitions` due for shadow replay (every
    /// `shadow_every`-th across all requests). Cheap when shadowing is
    /// off: one branch, no atomics.
    pub fn sample_for_shadow(&self, transitions: &[Transition]) -> Vec<(usize, Transition)> {
        let every = self.config.shadow_every;
        if every == 0 || self.shadow_tx.is_none() {
            return Vec::new();
        }
        let start = self.transition_seq.fetch_add(transitions.len() as u64, Ordering::Relaxed);
        transitions
            .iter()
            .enumerate()
            .filter(|(i, _)| (start + *i as u64).is_multiple_of(every))
            .map(|(i, &t)| (i, t))
            .collect()
    }

    /// Queues one sampled transition for oracle replay; drops silently
    /// when the shadow queue is full (a monitoring sample is never
    /// worth blocking a request for).
    pub fn shadow_submit(
        &self,
        cond: OperatingCondition,
        transition: Transition,
        predicted_ps: f64,
    ) {
        if let Some(tx) = &self.shadow_tx {
            match tx.try_send(ShadowJob { cond, transition, predicted_ps }) {
                Ok(()) | Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {}
            }
        }
    }

    /// One sampler tick at `now_ms`: samples the registry and derived
    /// gauges into the store, re-scores drift against `reference`, and
    /// evaluates every SLO monitor. Returns the alerts that fired this
    /// tick (already recorded, counted, and logged).
    pub fn tick(
        &self,
        now_ms: u64,
        queue_depth: usize,
        reference: Option<&ReferenceStats>,
    ) -> Vec<Alert> {
        let mut gauges: Vec<(&str, f64)> = vec![("serve.queue_depth", queue_depth as f64)];
        if let Some((p50, _p90, p99)) = SERVE_PREDICT_LATENCY_US.quantiles() {
            gauges.push(("serve.p50_us", p50));
            gauges.push(("serve.p99_us", p99));
        }

        // Derived rate/ratio gauges from the cumulative counters.
        let requests = SERVE_REQUESTS.get();
        let errors = SERVE_HTTP_ERRORS.get();
        let shed = SERVE_SHED.get();
        {
            let mut last = self.last_tick.lock().unwrap_or_else(|e| e.into_inner());
            if last.wall_ms > 0 && now_ms > last.wall_ms {
                let dt_s = (now_ms - last.wall_ms) as f64 / 1e3;
                let dr = requests.saturating_sub(last.requests) as f64;
                let de = errors.saturating_sub(last.errors) as f64;
                let ds = shed.saturating_sub(last.shed) as f64;
                gauges.push(("serve.qps", dr / dt_s));
                gauges.push(("serve.error_ratio", if dr > 0.0 { (de / dr).min(1.0) } else { 0.0 }));
                gauges.push(("serve.shed_ratio", if dr > 0.0 { (ds / dr).min(1.0) } else { 0.0 }));
            }
            *last = TickState { wall_ms: now_ms, requests, errors, shed };
        }
        if let Some(mean) = self.mean_accuracy() {
            gauges.push(("shadow.accuracy", mean));
        }

        // Drift scores, recorded as series, with edge-triggered alerts.
        let mut fired = Vec::new();
        let drift_scores = self.drift_scores(reference);
        {
            let mut drift = self.drift.lock().unwrap_or_else(|e| e.into_inner());
            let names = ["drift.voltage", "drift.temperature", "drift.delay_ps"];
            for (slot, (name, psi)) in names.iter().zip(&drift_scores).enumerate() {
                let Some(psi) = *psi else { continue };
                self.store.record(&format!("{name}.psi"), now_ms, psi);
                let over = psi >= self.config.psi_alert;
                if over && !drift.firing[slot] {
                    drift.firing[slot] = true;
                    fired.push(Alert {
                        kind: "drift",
                        series: (*name).to_string(),
                        threshold: self.config.psi_alert,
                        burn_fast: psi,
                        burn_slow: psi,
                        at_ms: now_ms,
                    });
                } else if !over {
                    drift.firing[slot] = false;
                }
            }
        }

        self.store.sample_registry(now_ms, &gauges);

        // SLO monitors read the series just sampled, current tick
        // included.
        {
            let mut monitors = self.monitors.lock().unwrap_or_else(|e| e.into_inner());
            for monitor in monitors.iter_mut() {
                let samples = self.store.series(&monitor.slo.series).unwrap_or_default();
                if let Some(alert) = monitor.evaluate(&samples, now_ms) {
                    fired.push(alert);
                }
            }
        }

        for alert in &fired {
            self.record_alert(alert);
        }
        fired
    }

    /// The current `(voltage, temperature, delay)` PSI scores against
    /// `reference` (`None` per feature while either side lacks data).
    pub fn drift_scores(&self, reference: Option<&ReferenceStats>) -> [Option<f64>; 3] {
        let Some(reference) = reference else { return [None; 3] };
        let drift = self.drift.lock().unwrap_or_else(|e| e.into_inner());
        [
            drift.voltage.psi_against(&reference.voltage),
            drift.temperature.psi_against(&reference.temperature),
            drift.delay_ps.psi_against(&reference.delay_ps),
        ]
    }

    /// Mean of the shadow live-accuracy window (`None` before the first
    /// replay lands).
    pub fn mean_accuracy(&self) -> Option<f64> {
        let window = self.accuracy.lock().unwrap_or_else(|e| e.into_inner());
        let values = window.values();
        (!values.is_empty()).then(|| values.iter().sum::<f64>() / values.len() as f64)
    }

    /// Offers one request's breakdown to the slow-exemplar buffer: kept
    /// while there is room, otherwise it must beat the fastest retained
    /// exemplar. O(k) with k = [`MAX_EXEMPLARS`], no allocation on the
    /// reject path.
    pub fn observe_exemplar(&self, exemplar: Exemplar) {
        let mut buffer = self.exemplars.lock().unwrap_or_else(|e| e.into_inner());
        if buffer.len() < MAX_EXEMPLARS {
            buffer.push(exemplar);
            return;
        }
        if let Some(slot) = buffer.iter_mut().min_by_key(|e| e.total_us) {
            if exemplar.total_us > slot.total_us {
                *slot = exemplar;
            }
        }
    }

    /// The retained slow-request exemplars, slowest first.
    pub fn exemplars(&self) -> Vec<Exemplar> {
        let buffer = self.exemplars.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<Exemplar> = buffer.clone();
        out.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.request_id.cmp(&b.request_id)));
        out
    }

    /// Alerts currently retained (newest last).
    pub fn alerts(&self) -> Vec<Alert> {
        self.alerts.lock().unwrap_or_else(|e| e.into_inner()).iter().cloned().collect()
    }

    fn record_alert(&self, alert: &Alert) {
        WATCH_ALERTS.incr();
        tevot_obs::warn!(
            "watch: {} alert on {} (threshold {}, burn fast {:.2} slow {:.2})",
            alert.kind,
            alert.series,
            alert.threshold,
            alert.burn_fast,
            alert.burn_slow
        );
        tevot_obs::trace::instant_id("watch.alert", WATCH_ALERTS.get());
        let mut alerts = self.alerts.lock().unwrap_or_else(|e| e.into_inner());
        if alerts.len() == MAX_HELD_ALERTS {
            alerts.pop_front();
        }
        alerts.push_back(alert.clone());
    }

    /// The `GET /watch` payload: schema, drift scores, SLO status,
    /// retained alerts, and the windowed series.
    pub fn to_json(&self, since_ms: u64, reference: Option<&ReferenceStats>) -> Json {
        let now = tevot_obs::watch::wall_ms();
        let slo_status: Vec<Json> = {
            let monitors = self.monitors.lock().unwrap_or_else(|e| e.into_inner());
            monitors
                .iter()
                .map(|m| {
                    let samples = self.store.series(&m.slo.series).unwrap_or_default();
                    let (fast, slow) = m.burn_rates(&samples, now);
                    Json::obj(vec![
                        ("series", Json::from(m.slo.series.as_str())),
                        ("threshold", Json::Num(m.slo.threshold)),
                        ("firing", Json::Bool(m.firing())),
                        ("burn_fast", fast.map_or(Json::Null, Json::Num)),
                        ("burn_slow", slow.map_or(Json::Null, Json::Num)),
                    ])
                })
                .collect()
        };
        let [v, t, d] = self.drift_scores(reference);
        let opt = |x: Option<f64>| x.map_or(Json::Null, Json::Num);
        let alerts: Vec<Json> = self
            .alerts()
            .iter()
            .map(|a| {
                Json::obj(vec![
                    ("kind", Json::from(a.kind)),
                    ("series", Json::from(a.series.as_str())),
                    ("threshold", Json::Num(a.threshold)),
                    ("burn_fast", Json::Num(a.burn_fast)),
                    ("burn_slow", Json::Num(a.burn_slow)),
                    ("at_ms", Json::from(a.at_ms)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("schema", Json::from("tevot-watch/1")),
            ("resolution_ms", Json::from(self.store.resolution_ms())),
            ("capacity", Json::from(self.store.capacity() as u64)),
            ("alerts_total", Json::from(WATCH_ALERTS.get())),
            ("reference_loaded", Json::Bool(reference.is_some())),
            (
                "drift",
                Json::obj(vec![
                    ("voltage_psi", opt(v)),
                    ("temperature_psi", opt(t)),
                    ("delay_psi", opt(d)),
                    ("psi_alert", Json::Num(self.config.psi_alert)),
                    ("shadow_accuracy", opt(self.mean_accuracy())),
                ]),
            ),
            ("slo", Json::Arr(slo_status)),
            ("alerts", Json::Arr(alerts)),
            // Additive member (same precedent as the tevot-obs/1
            // quantiles): the slow-request exemplars, slowest first.
            (
                "exemplars",
                Json::Arr(
                    self.exemplars()
                        .iter()
                        .map(|e| {
                            Json::obj(vec![
                                ("request_id", Json::from(e.request_id)),
                                ("endpoint", Json::from(e.endpoint)),
                                ("total_us", Json::from(e.total_us)),
                                ("at_ms", Json::from(e.at_ms)),
                                (
                                    "stages",
                                    Json::Arr(
                                        e.stages
                                            .iter()
                                            .map(|&(name, ns)| {
                                                Json::obj(vec![
                                                    ("name", Json::from(name)),
                                                    ("ns", Json::from(ns)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("series", self.store.to_json(since_ms)),
        ])
    }
}

impl Drop for Watch {
    fn drop(&mut self) {
        // Dropping the sender ends the shadow loop; join so no replay
        // outlives the server that sampled it.
        self.shadow_tx = None;
        if let Some(handle) = self.shadow_handle.take() {
            let _ = handle.join();
        }
    }
}

/// The shadow replay loop: re-simulates sampled transitions with the
/// gate-level oracle and scores the served delay against ground truth.
/// Accuracy is `1 - |predicted - truth| / truth`, clamped to `[0, 1]`.
fn shadow_loop(rx: &mpsc::Receiver<ShadowJob>, fu: FunctionalUnit, sink: &Mutex<DriftWindow>) {
    let netlist = fu.build();
    let model = DelayModel::tsmc45_like();
    let mut cache: Vec<(u64, tevot_timing::DelayAnnotation)> = Vec::new();
    while let Ok(job) = rx.recv() {
        let key = job.cond.voltage().to_bits() ^ job.cond.temperature().to_bits().rotate_left(17);
        let index = match cache.iter().position(|(k, _)| *k == key) {
            Some(i) => i,
            None => {
                if cache.len() == SHADOW_ANNOTATION_CACHE {
                    cache.remove(0);
                }
                cache.push((key, model.annotate(&netlist, job.cond)));
                cache.len() - 1
            }
        };
        let ((a, b), (pa, pb)) = job.transition;
        let previous = fu.encode_operands(pa, pb);
        let current = fu.encode_operands(a, b);
        let truth =
            tevot_sim::replay_transition(&netlist, &cache[index].1, &previous, &current) as f64;
        let accuracy = if truth > 0.0 {
            (1.0 - (job.predicted_ps - truth).abs() / truth).clamp(0.0, 1.0)
        } else {
            // A zero-delay cycle (no output toggles): score the
            // prediction's absolute error against a 1 ps scale.
            (1.0 - job.predicted_ps.abs()).clamp(0.0, 1.0)
        };
        WATCH_SHADOW_REPLAYS.incr();
        sink.lock().unwrap_or_else(|e| e.into_inner()).push(accuracy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_records_derived_series_and_quiet_without_slos() {
        let watch =
            Watch::new(WatchConfig { resolution_ms: 10, capacity: 16, ..Default::default() });
        SERVE_REQUESTS.add(10);
        assert!(watch.tick(1_000, 2, None).is_empty());
        SERVE_REQUESTS.add(10);
        assert!(watch.tick(2_000, 3, None).is_empty());
        let qps = watch.store().series("serve.qps").expect("qps series");
        assert_eq!(qps.len(), 1, "first tick has no previous sample");
        assert!(qps[0].value >= 10.0, "10 requests over 1s: qps {}", qps[0].value);
        assert_eq!(watch.store().series("serve.queue_depth").unwrap().len(), 2);
        assert!(watch.alerts().is_empty());
    }

    #[test]
    fn exemplar_buffer_keeps_the_k_slowest_and_serializes() {
        let watch =
            Watch::new(WatchConfig { resolution_ms: 10, capacity: 16, ..Default::default() });
        for i in 0..(MAX_EXEMPLARS as u64 + 4) {
            watch.observe_exemplar(Exemplar {
                request_id: i + 1,
                endpoint: "/predict",
                total_us: 100 + i * 10,
                stages: vec![("parse", 1_000), ("batch", (100 + i * 10) * 1_000)],
                at_ms: 5_000 + i,
            });
        }
        let kept = watch.exemplars();
        assert_eq!(kept.len(), MAX_EXEMPLARS);
        // Slowest first, and the fastest requests were evicted.
        assert_eq!(kept[0].total_us, 100 + (MAX_EXEMPLARS as u64 + 3) * 10);
        assert!(kept.iter().all(|e| e.total_us >= 140), "{kept:?}");
        assert!(kept.windows(2).all(|w| w[0].total_us >= w[1].total_us));
        let doc = watch.to_json(0, None);
        let exemplars = doc.get("exemplars").and_then(Json::as_arr).expect("exemplars member");
        assert_eq!(exemplars.len(), MAX_EXEMPLARS);
        assert_eq!(exemplars[0].get("endpoint").and_then(Json::as_str), Some("/predict"));
        let stages = exemplars[0].get("stages").and_then(Json::as_arr).unwrap();
        assert_eq!(stages[0].get("name").and_then(Json::as_str), Some("parse"));
    }

    #[test]
    fn slo_alert_fires_through_tick() {
        let slos = Slo::parse_list("serve.queue_depth<1").unwrap();
        let burn = BurnRateConfig { fast_ms: 1_000, slow_ms: 2_000, factor: 1.0 };
        let watch = Watch::new(WatchConfig {
            resolution_ms: 10,
            capacity: 16,
            slos,
            burn,
            ..Default::default()
        });
        let before = WATCH_ALERTS.get();
        // Queue depth 5 against an objective of < 1: burns immediately.
        let fired = watch.tick(10_000, 5, None);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, "slo");
        assert_eq!(fired[0].series, "serve.queue_depth");
        // >= rather than ==: the counter is global and other tests may
        // alert concurrently.
        assert!(WATCH_ALERTS.get() >= before + 1);
        // Latched: a second hot tick does not re-alert.
        assert!(watch.tick(10_100, 5, None).is_empty());
        assert_eq!(watch.alerts().len(), 1);
    }

    #[test]
    fn drift_alert_fires_off_reference_and_stays_quiet_on() {
        let conditions = vec![tevot_timing::OperatingCondition::new(0.9, 25.0)];
        let delays: Vec<f64> = (500..600).map(f64::from).collect();
        let reference = ReferenceStats::collect(&conditions, &delays);
        let watch =
            Watch::new(WatchConfig { resolution_ms: 10, capacity: 16, ..Default::default() });

        // In-distribution traffic: same condition, delays spanning the
        // training-label range.
        for i in 0..100 {
            watch.observe_predict(OperatingCondition::new(0.9, 25.0), &[500.0 + f64::from(i)]);
        }
        assert!(watch.tick(1_000, 0, Some(&reference)).is_empty(), "clean traffic must not alert");

        // Off-reference condition: voltage and temperature far from the
        // training point.
        for _ in 0..200 {
            watch.observe_predict(OperatingCondition::new(0.7, 90.0), &[900.0]);
        }
        let fired = watch.tick(2_000, 0, Some(&reference));
        assert!(
            fired.iter().any(|a| a.kind == "drift" && a.series == "drift.voltage"),
            "off-reference voltage must alert: {fired:?}"
        );
        // Latched while still drifted.
        assert!(watch.tick(3_000, 0, Some(&reference)).is_empty());
        let doc = watch.to_json(0, Some(&reference));
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some("tevot-watch/1"));
        let drift = doc.get("drift").unwrap();
        assert!(drift.get("voltage_psi").and_then(Json::as_f64).unwrap() > PSI_ALERT_DEFAULT);
    }

    #[test]
    fn shadow_replay_scores_live_accuracy() {
        let watch = Watch::new(WatchConfig {
            resolution_ms: 10,
            capacity: 16,
            shadow_every: 1,
            ..Default::default()
        });
        let cond = OperatingCondition::new(0.9, 25.0);
        let transitions: Vec<Transition> = vec![((3, 4), (0, 0)), ((7, 9), (3, 4))];
        let sampled = watch.sample_for_shadow(&transitions);
        assert_eq!(sampled.len(), 2, "shadow_every=1 samples everything");
        // A deliberately wrong prediction (0 ps) scores ~0 accuracy; the
        // oracle truth for these transitions is far from zero.
        for (_, t) in sampled {
            watch.shadow_submit(cond, t, 0.0);
        }
        // Poll until the shadow thread drains the queue.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let mean = loop {
            if let Some(mean) = watch.mean_accuracy() {
                break mean;
            }
            assert!(std::time::Instant::now() < deadline, "shadow thread never reported");
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        assert!(mean < 0.5, "a 0 ps prediction cannot score high accuracy: {mean}");
        assert!(WATCH_SHADOW_REPLAYS.get() >= 1);
    }

    #[test]
    fn sampling_every_nth_transition_is_global_across_requests() {
        let watch = Watch::new(WatchConfig {
            resolution_ms: 10,
            capacity: 16,
            shadow_every: 3,
            ..Default::default()
        });
        let batch: Vec<Transition> = (0..4u32).map(|i| ((i, i), (0, 0))).collect();
        let first = watch.sample_for_shadow(&batch);
        let second = watch.sample_for_shadow(&batch);
        // Transitions 0..8 with every=3 → global indices 0, 3, 6.
        assert_eq!(first.iter().map(|(i, _)| *i).collect::<Vec<_>>(), vec![0, 3]);
        assert_eq!(second.iter().map(|(i, _)| *i).collect::<Vec<_>>(), vec![2]);
    }
}
