//! Cross-connection request batching with admission control.
//!
//! Every prediction request — whatever connection it arrived on —
//! becomes a [`Job`] on one bounded MPSC queue. A single batcher thread
//! drains the queue into **microbatches**: it waits at most
//! `batch_wait` after the first job arrives (or until `batch` jobs are
//! queued, whichever is first), flattens all the batch's transitions
//! into one task list, and executes them on the `tevot-par` worker pool.
//! Per-request overhead (queue hops, pool wakeups) amortizes across the
//! batch, so throughput scales with cores while the `batch_wait` bound
//! keeps single-request latency predictable.
//!
//! **Determinism:** a prediction is a pure function of (model, condition,
//! transition), and `tevot_par::map_with` is an ordered reduction, so the
//! delays a job gets back are bit-identical regardless of batch
//! composition, batch size, or worker count — the property the serving
//! acceptance test pins against offline `tevot predict`.
//!
//! **Admission control:** the queue is a `sync_channel` with a hard
//! bound. When it is full, [`Batcher::submit`] fails fast with
//! [`Shed`] instead of blocking the connection thread — the HTTP layer
//! turns that into `503` + `Retry-After`. Each job may also carry a
//! deadline ([`tevot_resil::CancelToken`] + wall-clock instant): jobs
//! whose deadline passed while queued are answered with a `Cancelled`
//! error instead of being executed, so a backlog cannot make every
//! waiting client miss its budget for work it no longer wants.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tevot::TevotModel;
use tevot_obs::metrics::{SERVE_BATCH_JOBS, SERVE_QUEUE_DEPTH, SERVE_SHED};
use tevot_resil::{CancelToken, TevotError};
use tevot_timing::OperatingCondition;

/// A `(current, previous)` operand pair — the unit of prediction work.
pub type Transition = ((u32, u32), (u32, u32));

/// One queued prediction request: a model snapshot, a condition, and the
/// operand transitions to price.
struct Job {
    model: Arc<TevotModel>,
    cond: OperatingCondition,
    transitions: Vec<Transition>,
    token: CancelToken,
    deadline: Option<Instant>,
    /// Originating HTTP request id (0 when not from a request), carried
    /// through so batch-side trace events correlate with access logs.
    request_id: u64,
    reply: mpsc::Sender<Result<Vec<f64>, TevotError>>,
}

/// The queue is full (or the server is stopping): the request was shed
/// without being enqueued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shed;

impl std::fmt::Display for Shed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "request shed: prediction queue is full")
    }
}

impl std::error::Error for Shed {}

/// Handle to the batching executor; dropping it (or calling
/// [`Batcher::shutdown`]) stops the batcher thread after the queue
/// drains.
#[derive(Debug)]
pub struct Batcher {
    tx: mpsc::SyncSender<Job>,
    depth: Arc<AtomicUsize>,
    stop: CancelToken,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Batcher {
    /// Starts the batcher thread.
    ///
    /// * `jobs` — worker count for the per-batch `tevot-par` pool
    ///   (`0` resolves the global `--jobs`/`TEVOT_JOBS` setting).
    /// * `max_queue` — admission bound: jobs queued beyond this shed.
    /// * `batch` — maximum jobs merged into one microbatch.
    /// * `batch_wait` — how long to hold a microbatch open after its
    ///   first job, waiting for company.
    pub fn start(jobs: usize, max_queue: usize, batch: usize, batch_wait: Duration) -> Batcher {
        let (tx, rx) = mpsc::sync_channel::<Job>(max_queue.max(1));
        let depth = Arc::new(AtomicUsize::new(0));
        let stop = CancelToken::new();
        let thread_depth = Arc::clone(&depth);
        let thread_stop = stop.clone();
        let batch = batch.max(1);
        let handle = std::thread::Builder::new()
            .name("tevot-serve-batcher".into())
            .spawn(move || run_batcher(&rx, &thread_depth, &thread_stop, jobs, batch, batch_wait))
            .expect("spawn batcher thread");
        Batcher { tx, depth, stop, handle: Some(handle) }
    }

    /// Enqueues one prediction job; returns the channel its result will
    /// arrive on. The model `Arc` is snapshotted here, so a registry
    /// hot-swap after submission cannot affect this job.
    ///
    /// # Errors
    ///
    /// [`Shed`] when the bounded queue is full or the batcher is
    /// stopping — the caller should answer `503` with `Retry-After`.
    #[allow(clippy::type_complexity)]
    pub fn submit(
        &self,
        model: Arc<TevotModel>,
        cond: OperatingCondition,
        transitions: Vec<Transition>,
        token: CancelToken,
        deadline: Option<Instant>,
        request_id: u64,
    ) -> Result<mpsc::Receiver<Result<Vec<f64>, TevotError>>, Shed> {
        if self.stop.is_cancelled() {
            SERVE_SHED.incr();
            return Err(Shed);
        }
        let (reply, result) = mpsc::channel();
        let job = Job { model, cond, transitions, token, deadline, request_id, reply };
        // Count the job in *before* it becomes visible to the batcher,
        // which decrements on dequeue — the other order can transiently
        // underflow the depth.
        let depth = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        match self.tx.try_send(job) {
            Ok(()) => {
                SERVE_QUEUE_DEPTH.record(depth as u64);
                Ok(result)
            }
            Err(mpsc::TrySendError::Full(_) | mpsc::TrySendError::Disconnected(_)) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                SERVE_SHED.incr();
                Err(Shed)
            }
        }
    }

    /// Jobs currently queued (submitted, not yet claimed by the batcher).
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Stops accepting work, drains the queue (queued jobs are answered
    /// with `Cancelled`), and joins the batcher thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.cancel();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn run_batcher(
    rx: &mpsc::Receiver<Job>,
    depth: &AtomicUsize,
    stop: &CancelToken,
    jobs: usize,
    batch: usize,
    batch_wait: Duration,
) {
    let _lane = tevot_obs::span!("serve.batcher");
    loop {
        // Claim the batch's first job, polling for shutdown while idle.
        let first = match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(job) => job,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if stop.is_cancelled() {
                    break;
                }
                continue;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        };
        depth.fetch_sub(1, Ordering::Relaxed);
        let mut jobs_in_batch = vec![first];
        let close_at = Instant::now() + batch_wait;
        while jobs_in_batch.len() < batch {
            let now = Instant::now();
            let Some(remaining) = close_at.checked_duration_since(now).filter(|d| !d.is_zero())
            else {
                break;
            };
            match rx.recv_timeout(remaining) {
                Ok(job) => {
                    depth.fetch_sub(1, Ordering::Relaxed);
                    jobs_in_batch.push(job);
                }
                Err(_) => break,
            }
        }
        execute_batch(jobs_in_batch, jobs);
    }
    // Shutdown: answer whatever is still queued instead of dropping it
    // silently (a dropped reply sender reads as an internal error).
    while let Ok(job) = rx.try_recv() {
        depth.fetch_sub(1, Ordering::Relaxed);
        let _ = job.reply.send(Err(TevotError::cancelled("server is shutting down")));
    }
}

/// Runs one microbatch: filters out jobs that are cancelled or past
/// their deadline, flattens the survivors' transitions into a single
/// ordered task list for `tevot-par`, and scatters results back per job.
fn execute_batch(batch: Vec<Job>, jobs: usize) {
    SERVE_BATCH_JOBS.record(batch.len() as u64);
    let now = Instant::now();
    let mut runnable = Vec::with_capacity(batch.len());
    for job in batch {
        let expired = job.deadline.is_some_and(|d| now >= d);
        if job.token.is_cancelled() || expired {
            let what = if expired { "deadline exceeded while queued" } else { "request cancelled" };
            let _ = job.reply.send(Err(TevotError::cancelled(what)));
        } else {
            runnable.push(job);
        }
    }
    if runnable.is_empty() {
        return;
    }
    // One task per transition, tagged with its job; `map_with` returns
    // results in task order, so per-job scatter is a linear walk.
    let flat: Vec<(usize, usize)> = runnable
        .iter()
        .enumerate()
        .flat_map(|(j, job)| (0..job.transitions.len()).map(move |t| (j, t)))
        .collect();
    for job in &runnable {
        // One timeline mark per executed job, correlated by request id.
        tevot_obs::trace::instant_id("serve.batch.job", job.request_id);
    }
    let workers = if jobs > 0 { jobs } else { tevot_par::jobs() };
    let delays = {
        let _span = tevot_obs::span!("serve.batch", "{} tasks", flat.len());
        tevot_par::map_with(workers, &flat, |&(j, t)| {
            let job = &runnable[j];
            let (current, previous) = job.transitions[t];
            job.model.predict_delay_ps(job.cond, current, previous)
        })
    };
    let mut cursor = 0usize;
    for job in &runnable {
        let n = job.transitions.len();
        let _ = job.reply.send(Ok(delays[cursor..cursor + n].to_vec()));
        cursor += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tevot::dta::Characterizer;
    use tevot::workload::random_workload;
    use tevot::{build_delay_dataset, FeatureEncoding, TevotParams};
    use tevot_netlist::fu::FunctionalUnit;
    use tevot_timing::ClockSpeedup;

    fn tiny_model() -> Arc<TevotModel> {
        let fu = FunctionalUnit::IntAdd;
        let w = random_workload(fu, 120, 7);
        let c = Characterizer::new(fu).characterize(
            OperatingCondition::new(0.9, 25.0),
            &w,
            &ClockSpeedup::PAPER,
        );
        let data = build_delay_dataset(FeatureEncoding::with_history(), &[(&w, &c)]);
        let mut params = TevotParams::default();
        params.forest.num_trees = 2;
        let mut rng = SmallRng::seed_from_u64(7);
        Arc::new(TevotModel::train(&data, &params, &mut rng))
    }

    fn transitions(n: usize) -> Vec<Transition> {
        (0..n as u32).map(|i| ((i * 3 + 1, i * 5 + 2), (i * 3, i * 5))).collect()
    }

    #[test]
    fn batched_results_match_direct_prediction_at_any_shape() {
        let model = tiny_model();
        let cond = OperatingCondition::new(0.85, 50.0);
        let work = transitions(64);
        let direct: Vec<u64> = work
            .iter()
            .map(|&(cur, prev)| model.predict_delay_ps(cond, cur, prev).to_bits())
            .collect();
        for (batch, workers) in [(1, 1), (8, 4), (64, 4), (3, 2)] {
            let batcher = Batcher::start(workers, 128, batch, Duration::from_millis(2));
            let receivers: Vec<_> = work
                .chunks(5)
                .map(|chunk| {
                    batcher
                        .submit(
                            Arc::clone(&model),
                            cond,
                            chunk.to_vec(),
                            CancelToken::new(),
                            None,
                            0,
                        )
                        .expect("queue has room")
                })
                .collect();
            let got: Vec<u64> = receivers
                .into_iter()
                .flat_map(|rx| rx.recv().expect("reply").expect("ok"))
                .map(f64::to_bits)
                .collect();
            assert_eq!(got, direct, "batch {batch} workers {workers}");
            batcher.shutdown();
        }
    }

    #[test]
    fn full_queue_sheds_instead_of_blocking() {
        let model = tiny_model();
        let cond = OperatingCondition::new(0.9, 25.0);
        let batcher = Batcher::start(1, 2, 1, Duration::from_millis(50));
        // Park the single worker on a job heavy enough to outlast the
        // flood below; without it the outcome races on whether the
        // drain loop keeps pace with the submit loop.
        let mut shed = 0;
        let mut receivers = Vec::new();
        receivers.push(
            batcher
                .submit(Arc::clone(&model), cond, transitions(50_000), CancelToken::new(), None, 0)
                .expect("first job fits an empty queue"),
        );
        for _ in 0..64 {
            match batcher.submit(
                Arc::clone(&model),
                cond,
                transitions(1),
                CancelToken::new(),
                None,
                0,
            ) {
                Ok(rx) => receivers.push(rx),
                Err(Shed) => shed += 1,
            }
        }
        assert!(shed > 0, "flooding a 2-deep queue must shed");
        // Accepted jobs still complete.
        for rx in receivers {
            assert!(rx.recv().expect("reply").is_ok());
        }
        batcher.shutdown();
    }

    #[test]
    fn expired_deadline_jobs_are_cancelled_not_executed() {
        let model = tiny_model();
        let cond = OperatingCondition::new(0.9, 25.0);
        let batcher = Batcher::start(1, 8, 4, Duration::from_millis(1));
        let rx = batcher
            .submit(
                Arc::clone(&model),
                cond,
                transitions(4),
                CancelToken::new(),
                Some(Instant::now() - Duration::from_millis(1)),
                0,
            )
            .unwrap();
        let err = rx.recv().expect("reply").unwrap_err();
        assert_eq!(err.kind(), tevot_resil::ErrorKind::Cancelled);
        batcher.shutdown();
    }

    #[test]
    fn cancelled_token_jobs_are_answered() {
        let model = tiny_model();
        let cond = OperatingCondition::new(0.9, 25.0);
        let batcher = Batcher::start(1, 8, 4, Duration::from_millis(1));
        let token = CancelToken::new();
        token.cancel();
        let rx = batcher.submit(Arc::clone(&model), cond, transitions(2), token, None, 0).unwrap();
        let err = rx.recv().expect("reply").unwrap_err();
        assert_eq!(err.kind(), tevot_resil::ErrorKind::Cancelled);
        batcher.shutdown();
    }

    #[test]
    fn shutdown_answers_queued_jobs_and_rejects_new_ones() {
        let model = tiny_model();
        let cond = OperatingCondition::new(0.9, 25.0);
        let batcher = Batcher::start(1, 8, 1, Duration::from_millis(1));
        batcher.stop.cancel();
        // After the stop token fires, submissions shed.
        let err = batcher
            .submit(Arc::clone(&model), cond, transitions(1), CancelToken::new(), None, 0)
            .unwrap_err();
        assert_eq!(err, Shed);
        batcher.shutdown();
    }

    #[test]
    fn depth_returns_to_zero_after_drain() {
        let model = tiny_model();
        let cond = OperatingCondition::new(0.9, 25.0);
        let batcher = Batcher::start(2, 32, 8, Duration::from_millis(1));
        let receivers: Vec<_> = (0..16)
            .map(|_| {
                batcher
                    .submit(Arc::clone(&model), cond, transitions(2), CancelToken::new(), None, 0)
                    .unwrap()
            })
            .collect();
        for rx in receivers {
            rx.recv().unwrap().unwrap();
        }
        assert_eq!(batcher.depth(), 0);
        batcher.shutdown();
    }
}
