//! Endpoint handlers and the error-taxonomy → HTTP status mapping.
//!
//! | endpoint               | method | purpose                                   |
//! |------------------------|--------|-------------------------------------------|
//! | `/predict`             | POST   | delays (+ verdicts) for operand transitions |
//! | `/ter`                 | POST   | TER over a random workload at one condition |
//! | `/dfs`                 | POST   | adaptive-clock recommendations per transition |
//! | `/models`              | GET    | list registered model names               |
//! | `/models/<name>`       | POST   | hot-swap: (re)load a model from disk      |
//! | `/healthz`             | GET    | liveness + registered model count         |
//! | `/metrics`             | GET    | tevot-obs/1 snapshot + live queue depth   |
//! | `/metrics?format=prom` | GET    | Prometheus 0.0.4 text exposition          |
//! | `/watch`               | GET    | tevot-watch/1: series, SLOs, drift, alerts |
//!
//! Every request is assigned a process-unique **request id** at entry:
//! it is returned in an `X-Request-Id` header on every response,
//! embedded as `request_id` in every error body (including shed 503s
//! and deadline 504s), logged on the access line, and carried through
//! the batcher onto the trace timeline — one key correlates a client
//! complaint with logs, traces, and metrics.
//!
//! Request and response bodies are JSON via `tevot_obs::json`. Its f64
//! writer prints the shortest round-tripping decimal, so a delay served
//! over the wire parses back to the *bit-identical* f64 the model
//! produced — the parity guarantee the integration tests pin.
//!
//! Failures map the workspace [`ErrorKind`] taxonomy onto HTTP statuses
//! (see [`status_for`]): usage and parse errors are the client's fault
//! (400), an unreadable model path is 404, a corrupt model file is 422,
//! a deadline/cancellation is 504, and anything internal is 500. Load
//! shedding is not an error kind — the admission layer answers 503 with
//! `Retry-After` directly.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use tevot::workload::random_workload;
use tevot::TevotModel;
use tevot_netlist::fu::FunctionalUnit;
use tevot_obs::json::{self, Json};
use tevot_obs::metrics::{
    DFS_DECISIONS, SERVE_DFS_LATENCY_US, SERVE_HTTP_ERRORS, SERVE_PREDICT_LATENCY_US,
    SERVE_REQUESTS, SERVE_TER_LATENCY_US,
};
use tevot_obs::report::Snapshot;
use tevot_resil::{CancelToken, ErrorKind, TevotError, Watchdog};
use tevot_timing::OperatingCondition;

use crate::batch::{Batcher, Transition};
use crate::http::{Request, Response};
use crate::registry::{valid_name, ModelRegistry};
use crate::watch::Watch;

/// The model name used when a request does not specify one.
pub const DEFAULT_MODEL: &str = "default";

/// Upper bound on transitions evaluated per request (either endpoint) —
/// admission control against a single request monopolizing the batcher.
pub const MAX_TRANSITIONS_PER_REQUEST: usize = 65_536;

/// The HTTP status for a classified [`TevotError`].
///
/// `Usage`/`Parse` are malformed client input (400); `Io` means a named
/// resource could not be read (404); `Corrupt` means the resource exists
/// but fails validation (422); `Cancelled` is a missed deadline (504);
/// `Internal` is ours (500).
pub fn status_for(kind: ErrorKind) -> u16 {
    match kind {
        ErrorKind::Usage | ErrorKind::Parse => 400,
        ErrorKind::Io => 404,
        ErrorKind::Corrupt => 422,
        ErrorKind::Cancelled => 504,
        ErrorKind::Internal => 500,
    }
}

/// Shared per-server state: the model registry and the batching executor.
#[derive(Debug)]
pub struct ServeState {
    /// The hot-swappable model registry.
    pub registry: ModelRegistry,
    batcher: Batcher,
    watch: OnceLock<Arc<Watch>>,
}

impl ServeState {
    /// State with an empty registry and a batcher of the given shape
    /// (see [`Batcher::start`]).
    pub fn new(jobs: usize, max_queue: usize, batch: usize, batch_wait: Duration) -> ServeState {
        ServeState {
            registry: ModelRegistry::new(),
            batcher: Batcher::start(jobs, max_queue, batch, batch_wait),
            watch: OnceLock::new(),
        }
    }

    /// Jobs currently queued for batching.
    pub fn queue_depth(&self) -> usize {
        self.batcher.depth()
    }

    /// Installs the watch (once; later calls are ignored). Done by
    /// `Server::start` when watching is configured.
    pub fn install_watch(&self, watch: Arc<Watch>) {
        let _ = self.watch.set(watch);
    }

    /// The installed watch, if any.
    pub fn watch(&self) -> Option<&Arc<Watch>> {
        self.watch.get()
    }

    /// The drift reference of the default model, when both the model
    /// and its train-time reference block are present.
    pub fn default_reference(&self) -> Option<Arc<TevotModel>> {
        self.registry.get(DEFAULT_MODEL).filter(|m| m.reference().is_some())
    }
}

/// Process-wide request-id source; ids start at 1, so 0 reads as "not
/// from an HTTP request" in trace events.
static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The id of the request the current thread is serving; 0 outside a
    /// request. Lets deeply nested error paths stamp bodies without
    /// threading the id through every helper.
    static CURRENT_REQUEST_ID: Cell<u64> = const { Cell::new(0) };
}

/// Draws a fresh process-unique request id (also used by the connection
/// loop for protocol-level 400/413 responses that never reach
/// [`handle`]).
pub fn next_request_id() -> u64 {
    NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed)
}

/// The id of the request currently being served on this thread (0
/// outside a request).
pub fn current_request_id() -> u64 {
    CURRENT_REQUEST_ID.with(Cell::get)
}

/// Dispatches one request to its handler and accounts the request and
/// error counters. This is the single entry point the connection loop
/// calls; it never panics on client input.
pub fn handle(state: &ServeState, req: &Request) -> Response {
    let id = next_request_id();
    CURRENT_REQUEST_ID.with(|cell| cell.set(id));
    SERVE_REQUESTS.incr();
    tevot_obs::trace::instant_id("serve.request", id);
    let response = route(state, req);
    if response.status >= 400 {
        SERVE_HTTP_ERRORS.incr();
    }
    tevot_obs::debug!("serve: {} {} -> {} id={id}", req.method, req.path, response.status);
    CURRENT_REQUEST_ID.with(|cell| cell.set(0));
    response.with_header("X-Request-Id", id.to_string())
}

fn route(state: &ServeState, req: &Request) -> Response {
    // Split an optional query string off the target; handlers that use
    // queries receive them, the rest match on the bare path.
    let (path, query) = req.path.split_once('?').unwrap_or((req.path.as_str(), ""));
    match (req.method.as_str(), path) {
        ("POST", "/predict") => timed(&SERVE_PREDICT_LATENCY_US, || predict(state, req)),
        ("POST", "/ter") => timed(&SERVE_TER_LATENCY_US, || ter(state, req)),
        ("POST", "/dfs") => timed(&SERVE_DFS_LATENCY_US, || dfs(state, req)),
        ("GET", "/healthz") => healthz(state),
        ("GET", "/metrics") => metrics(state, query),
        ("GET", "/watch") => watch_endpoint(state, query),
        ("GET", "/profile") => profile(),
        ("GET", "/models") => list_models(state),
        ("POST", path) if path.strip_prefix("/models/").is_some_and(|n| !n.is_empty()) => {
            swap_model(state, req)
        }
        (
            _,
            "/predict" | "/ter" | "/dfs" | "/healthz" | "/metrics" | "/watch" | "/profile"
            | "/models",
        ) => error_response(405, "usage", &format!("method {} not allowed on {path}", req.method)),
        _ => error_response(404, "usage", &format!("no such endpoint {path:?}")),
    }
}

/// The value of `key` in a `k=v&k=v` query string.
fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query.split('&').find_map(|kv| {
        let (k, v) = kv.split_once('=')?;
        (k == key).then_some(v)
    })
}

fn timed(latency: &tevot_obs::metrics::Histogram, f: impl FnOnce() -> Response) -> Response {
    let start = Instant::now();
    let response = f();
    latency.record(start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
    response
}

/// An error body: `{"error": <message>, "kind": <taxonomy label>,
/// "request_id": <id>}` — the id is the correlation key for logs and
/// traces, present on every error path including shed and deadline.
fn error_response(status: u16, kind: &str, message: &str) -> Response {
    let body = Json::obj(vec![
        ("error", Json::from(message)),
        ("kind", Json::from(kind)),
        ("request_id", Json::from(current_request_id())),
    ])
    .to_string();
    Response::json(status, body)
}

fn error_from(e: &TevotError) -> Response {
    error_response(status_for(e.kind()), e.kind().label(), &e.to_string())
}

fn ok(members: Vec<(&str, Json)>) -> Response {
    Response::json(200, Json::obj(members).to_string())
}

// ---------------------------------------------------------------------
// Request-body field extraction (usage errors name the field).
// ---------------------------------------------------------------------

fn parse_body(req: &Request) -> Result<Json, TevotError> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| TevotError::parse("request body is not UTF-8"))?;
    if text.trim().is_empty() {
        return Err(TevotError::usage("request body must be a JSON object"));
    }
    let doc = json::parse(text).map_err(|e| TevotError::parse(e.to_string()))?;
    match doc {
        Json::Obj(_) => Ok(doc),
        _ => Err(TevotError::usage("request body must be a JSON object")),
    }
}

fn req_f64(doc: &Json, key: &str) -> Result<f64, TevotError> {
    doc.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| TevotError::usage(format!("missing or non-numeric field {key:?}")))
}

fn opt_u64(doc: &Json, key: &str) -> Result<Option<u64>, TevotError> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            TevotError::usage(format!("field {key:?} must be a non-negative integer"))
        }),
    }
}

fn opt_u32(doc: &Json, key: &str) -> Result<Option<u32>, TevotError> {
    match opt_u64(doc, key)? {
        None => Ok(None),
        Some(v) => u32::try_from(v)
            .map(Some)
            .map_err(|_| TevotError::usage(format!("field {key:?} exceeds u32 range"))),
    }
}

fn req_u32(doc: &Json, key: &str) -> Result<u32, TevotError> {
    opt_u32(doc, key)?.ok_or_else(|| TevotError::usage(format!("missing operand field {key:?}")))
}

/// The `(voltage, temperature)` pair, validated before
/// [`OperatingCondition::new`] (which panics on nonsense by contract).
fn condition(doc: &Json) -> Result<OperatingCondition, TevotError> {
    let voltage = req_f64(doc, "voltage")?;
    let temperature = req_f64(doc, "temperature")?;
    if !voltage.is_finite() || voltage <= 0.0 {
        return Err(TevotError::usage(format!("voltage {voltage} is not a positive voltage")));
    }
    if !temperature.is_finite() {
        return Err(TevotError::usage(format!("temperature {temperature} is not finite")));
    }
    Ok(OperatingCondition::new(voltage, temperature))
}

/// Resolves the request's model (default [`DEFAULT_MODEL`]).
fn model_for(state: &ServeState, doc: &Json) -> Result<(String, Arc<TevotModel>), TevotError> {
    let name = match doc.get("model") {
        None | Some(Json::Null) => DEFAULT_MODEL,
        Some(Json::Str(s)) => s.as_str(),
        Some(_) => return Err(TevotError::usage("field \"model\" must be a string")),
    };
    let model = state.registry.get(name).ok_or_else(|| {
        TevotError::new(
            ErrorKind::Io,
            format!("unknown model {name:?} (registered: {:?})", state.registry.names()),
        )
    })?;
    Ok((name.to_string(), model))
}

/// The transitions of a `/predict` body: either a top-level single
/// `a`/`b` (+ optional `prev_a`/`prev_b`) or a `"transitions"` array of
/// such objects.
fn transitions_of(doc: &Json) -> Result<Vec<Transition>, TevotError> {
    let one = |obj: &Json| -> Result<Transition, TevotError> {
        let a = req_u32(obj, "a")?;
        let b = req_u32(obj, "b")?;
        let prev_a = opt_u32(obj, "prev_a")?.unwrap_or(0);
        let prev_b = opt_u32(obj, "prev_b")?.unwrap_or(0);
        Ok(((a, b), (prev_a, prev_b)))
    };
    let transitions = match doc.get("transitions") {
        Some(Json::Arr(items)) => items.iter().map(one).collect::<Result<Vec<_>, TevotError>>()?,
        Some(_) => return Err(TevotError::usage("field \"transitions\" must be an array")),
        None => vec![one(doc)?],
    };
    if transitions.is_empty() {
        return Err(TevotError::usage("\"transitions\" must not be empty"));
    }
    if transitions.len() > MAX_TRANSITIONS_PER_REQUEST {
        return Err(TevotError::usage(format!(
            "{} transitions exceed the per-request limit of {MAX_TRANSITIONS_PER_REQUEST}",
            transitions.len()
        )));
    }
    Ok(transitions)
}

/// Submits work to the batcher and waits for its reply, translating
/// shedding into 503 + `Retry-After`. The optional deadline arms a
/// [`Watchdog`] on the request's own [`CancelToken`].
fn run_batched(
    state: &ServeState,
    model: Arc<TevotModel>,
    cond: OperatingCondition,
    transitions: Vec<Transition>,
    deadline_ms: Option<u64>,
) -> Result<Vec<f64>, Response> {
    let token = CancelToken::new();
    let deadline = deadline_ms.map(Duration::from_millis);
    let _watchdog = deadline.map(|d| Watchdog::deadline(&token, d));
    let rx = state
        .batcher
        .submit(
            model,
            cond,
            transitions,
            token,
            deadline.map(|d| Instant::now() + d),
            current_request_id(),
        )
        .map_err(|_| {
            error_response(503, "shed", "prediction queue is full, try again shortly")
                .with_header("Retry-After", "1")
        })?;
    match rx.recv() {
        Ok(Ok(delays)) => Ok(delays),
        Ok(Err(e)) => Err(error_from(&e)),
        Err(_) => Err(error_response(500, "internal", "batch executor dropped the request")),
    }
}

/// Records one request's stage breakdown into the watch's slow-request
/// exemplar buffer (no-op when watching is off).
fn observe_exemplar(
    state: &ServeState,
    endpoint: &'static str,
    started: Instant,
    stages: Vec<(&'static str, u64)>,
) {
    if let Some(watch) = state.watch() {
        watch.observe_exemplar(crate::watch::Exemplar {
            request_id: current_request_id(),
            endpoint,
            total_us: started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
            stages,
            at_ms: tevot_obs::watch::wall_ms(),
        });
    }
}

fn stage_ns(start: Instant) -> u64 {
    start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

fn predict(state: &ServeState, req: &Request) -> Response {
    let started = Instant::now();
    let outcome = (|| {
        let doc = parse_body(req)?;
        let cond = condition(&doc)?;
        let clock = opt_u64(&doc, "clock_ps")?;
        let deadline_ms = opt_u64(&doc, "deadline_ms")?;
        let (name, model) = model_for(state, &doc)?;
        let transitions = transitions_of(&doc)?;
        Ok((name, model, cond, clock, deadline_ms, transitions))
    })();
    let parse_ns = stage_ns(started);
    let (name, model, cond, clock, deadline_ms, transitions) = match outcome {
        Ok(parts) => parts,
        Err(e) => return error_from(&e),
    };
    // Pick shadow-replay candidates before the batcher consumes the
    // transitions; usually empty, at most a handful of copies.
    let sampled = state.watch().map(|w| w.sample_for_shadow(&transitions)).unwrap_or_default();
    let batch_started = Instant::now();
    let delays = match run_batched(state, model, cond, transitions, deadline_ms) {
        Ok(delays) => delays,
        Err(response) => return response,
    };
    let batch_ns = stage_ns(batch_started);
    if let Some(watch) = state.watch() {
        watch.observe_predict(cond, &delays);
        for (i, transition) in sampled {
            // `get` rather than indexing: a model erroring mid-batch
            // could in principle answer short, and a sampling slip must
            // not panic the connection thread.
            if let Some(&delay) = delays.get(i) {
                watch.shadow_submit(cond, transition, delay);
            }
        }
    }
    let serialize_started = Instant::now();
    let mut members = vec![
        ("model", Json::from(name.as_str())),
        ("count", Json::from(delays.len() as u64)),
        ("delays_ps", Json::Arr(delays.iter().map(|&d| Json::Num(d)).collect())),
    ];
    if let Some(clock) = clock {
        let verdicts = delays.iter().map(|&d| Json::Bool(d > clock as f64)).collect();
        members.push(("clock_ps", Json::from(clock)));
        members.push(("erroneous", Json::Arr(verdicts)));
    }
    let response = ok(members);
    observe_exemplar(
        state,
        "/predict",
        started,
        vec![("parse", parse_ns), ("batch", batch_ns), ("serialize", stage_ns(serialize_started))],
    );
    response
}

fn ter(state: &ServeState, req: &Request) -> Response {
    let started = Instant::now();
    let outcome = (|| {
        let doc = parse_body(req)?;
        let cond = condition(&doc)?;
        let clock = opt_u64(&doc, "clock_ps")?
            .ok_or_else(|| TevotError::usage("missing or non-numeric field \"clock_ps\""))?;
        let deadline_ms = opt_u64(&doc, "deadline_ms")?;
        let (name, model) = model_for(state, &doc)?;
        let fu = match doc.get("fu") {
            None | Some(Json::Null) => FunctionalUnit::IntAdd,
            Some(Json::Str(s)) => FunctionalUnit::from_name(s).ok_or_else(|| {
                TevotError::usage(format!(
                    "unknown unit {s:?} (expected int-add | int-mul | fp-add | fp-mul)"
                ))
            })?,
            Some(_) => return Err(TevotError::usage("field \"fu\" must be a string")),
        };
        let vectors = opt_u64(&doc, "vectors")?.unwrap_or(400) as usize;
        if vectors < 2 {
            return Err(TevotError::usage("\"vectors\" must be at least 2 (one transition)"));
        }
        if vectors > MAX_TRANSITIONS_PER_REQUEST {
            return Err(TevotError::usage(format!(
                "{vectors} vectors exceed the per-request limit of {MAX_TRANSITIONS_PER_REQUEST}"
            )));
        }
        let seed = opt_u64(&doc, "seed")?.unwrap_or(0);
        Ok((name, model, cond, clock, deadline_ms, fu, vectors, seed))
    })();
    let parse_ns = stage_ns(started);
    let (name, model, cond, clock, deadline_ms, fu, vectors, seed) = match outcome {
        Ok(parts) => parts,
        Err(e) => return error_from(&e),
    };
    let work = random_workload(fu, vectors, seed);
    let ops = work.operands();
    let transitions: Vec<_> = (1..ops.len()).map(|t| (ops[t], ops[t - 1])).collect();
    let total = transitions.len();
    let workload_ns = stage_ns(started).saturating_sub(parse_ns);
    let batch_started = Instant::now();
    let delays = match run_batched(state, model, cond, transitions, deadline_ms) {
        Ok(delays) => delays,
        Err(response) => return response,
    };
    let batch_ns = stage_ns(batch_started);
    let errors = delays.iter().filter(|&&d| d > clock as f64).count();
    let response = ok(vec![
        ("model", Json::from(name.as_str())),
        ("fu", Json::from(fu.slug())),
        ("clock_ps", Json::from(clock)),
        ("transitions", Json::from(total as u64)),
        ("errors", Json::from(errors as u64)),
        ("ter", Json::Num(errors as f64 / total as f64)),
    ]);
    observe_exemplar(
        state,
        "/ter",
        started,
        vec![("parse", parse_ns), ("workload", workload_ns), ("batch", batch_ns)],
    );
    response
}

/// `POST /dfs`: predict-then-recommend-clock. The body is a `/predict`
/// body plus an optional `guardband_ps` margin (default 0); the answer
/// carries the predicted delays *and* the recommended periods
/// `t_clk_ps[i]` = [`tevot_dfs::recommended_t_clk_ps`]`(delays_ps[i],
/// guardband_ps)` — the same pure function the offline `tevot dfs`
/// command uses, so served recommendations are bit-identical to offline
/// ones. A model that carries a train-time reference block refuses
/// conditions outside its characterized (V, T) envelope with 422: a
/// clock recommendation extrapolated off-grid is unsafe to act on.
fn dfs(state: &ServeState, req: &Request) -> Response {
    let started = Instant::now();
    let outcome = (|| {
        let doc = parse_body(req)?;
        let cond = condition(&doc)?;
        let guardband_ps = match doc.get("guardband_ps") {
            None | Some(Json::Null) => 0.0,
            Some(v) => v
                .as_f64()
                .ok_or_else(|| TevotError::usage("field \"guardband_ps\" must be a number"))?,
        };
        if !guardband_ps.is_finite() || guardband_ps < 0.0 {
            return Err(TevotError::usage(format!(
                "guardband_ps {guardband_ps} is not a non-negative margin"
            )));
        }
        let deadline_ms = opt_u64(&doc, "deadline_ms")?;
        let (name, model) = model_for(state, &doc)?;
        if let Some(reference) = model.reference() {
            if !tevot_dfs::condition_in_envelope(reference, cond) {
                return Err(TevotError::new(
                    ErrorKind::Corrupt,
                    format!(
                        "condition {cond} is outside the model's characterized (V, T) \
                         envelope; refusing to extrapolate a clock recommendation"
                    ),
                ));
            }
        }
        let transitions = transitions_of(&doc)?;
        Ok((name, model, cond, guardband_ps, deadline_ms, transitions))
    })();
    let parse_ns = stage_ns(started);
    let (name, model, cond, guardband_ps, deadline_ms, transitions) = match outcome {
        Ok(parts) => parts,
        Err(e) => return error_from(&e),
    };
    let batch_started = Instant::now();
    let delays = match run_batched(state, model, cond, transitions, deadline_ms) {
        Ok(delays) => delays,
        Err(response) => return response,
    };
    let batch_ns = stage_ns(batch_started);
    DFS_DECISIONS.add(delays.len() as u64);
    if let Some(watch) = state.watch() {
        watch.observe_predict(cond, &delays);
    }
    let serialize_started = Instant::now();
    let t_clks: Vec<Json> = delays
        .iter()
        .map(|&d| Json::from(tevot_dfs::recommended_t_clk_ps(d, guardband_ps)))
        .collect();
    let response = ok(vec![
        ("model", Json::from(name.as_str())),
        ("count", Json::from(delays.len() as u64)),
        ("guardband_ps", Json::Num(guardband_ps)),
        ("delays_ps", Json::Arr(delays.iter().map(|&d| Json::Num(d)).collect())),
        ("t_clk_ps", Json::Arr(t_clks)),
    ]);
    observe_exemplar(
        state,
        "/dfs",
        started,
        vec![("parse", parse_ns), ("batch", batch_ns), ("serialize", stage_ns(serialize_started))],
    );
    response
}

fn swap_model(state: &ServeState, req: &Request) -> Response {
    let name = req.path.strip_prefix("/models/").unwrap_or_default();
    if !valid_name(name) {
        return error_response(
            400,
            "usage",
            &format!("invalid model name {name:?} (want [A-Za-z0-9._-], at most 64 bytes)"),
        );
    }
    let path = match parse_body(req).and_then(|doc| match doc.get("path") {
        Some(Json::Str(s)) if !s.is_empty() => Ok(s.clone()),
        _ => Err(TevotError::usage("body must be {\"path\": \"<model file>\"}")),
    }) {
        Ok(path) => path,
        Err(e) => return error_from(&e),
    };
    match state.registry.load_from(name, std::path::Path::new(&path)) {
        Ok(()) => {
            tevot_obs::info!("serve: model {name:?} swapped from {path}");
            ok(vec![
                ("ok", Json::Bool(true)),
                ("model", Json::from(name)),
                ("path", Json::from(path.as_str())),
            ])
        }
        Err(e) => error_from(&TevotError::from(e).context(format!("load model from {path}"))),
    }
}

fn list_models(state: &ServeState) -> Response {
    let names = state.registry.names();
    ok(vec![("models", Json::Arr(names.iter().map(|n| Json::from(n.as_str())).collect()))])
}

fn healthz(state: &ServeState) -> Response {
    ok(vec![
        ("ok", Json::Bool(true)),
        ("models", Json::from(state.registry.len() as u64)),
        ("queue_depth", Json::from(state.queue_depth() as u64)),
    ])
}

/// The tevot-obs/1 snapshot, with the live queue depth appended as an
/// additive member (consumers of the versioned schema ignore it).
/// `?format=prom` switches to the Prometheus 0.0.4 text exposition.
fn metrics(state: &ServeState, query: &str) -> Response {
    match query_param(query, "format") {
        Some("prom") => Response {
            status: 200,
            headers: vec![(
                "Content-Type".into(),
                "text/plain; version=0.0.4; charset=utf-8".into(),
            )],
            body: tevot_obs::prom::render().into_bytes(),
        },
        Some(other) => error_response(400, "usage", &format!("unknown metrics format {other:?}")),
        None => {
            let mut doc = Snapshot::capture().to_json();
            if let Json::Obj(members) = &mut doc {
                members.push(("queue_depth".into(), Json::from(state.queue_depth() as u64)));
            }
            Response::json(200, doc.to_string())
        }
    }
}

/// The tevot-watch/1 payload: windowed series (`?since_ms=` trims),
/// SLO status, drift scores, and retained alerts. 404 when the server
/// was started without watching.
fn watch_endpoint(state: &ServeState, query: &str) -> Response {
    let Some(watch) = state.watch() else {
        return error_response(404, "usage", "watch is not enabled on this server");
    };
    let since_ms = match query_param(query, "since_ms") {
        None => 0,
        Some(v) => match v.parse::<u64>() {
            Ok(n) => n,
            Err(_) => {
                return error_response(400, "usage", &format!("bad since_ms value {v:?}"));
            }
        },
    };
    let model = state.default_reference();
    let reference = model.as_deref().and_then(TevotModel::reference);
    Response::json(200, watch.to_json(since_ms, reference).to_string())
}

/// The current folded profile from the always-on statistical sampler as
/// `text/plain` collapsed stacks (feed it straight to `tevot flame`).
/// Sampling starts lazily on the first scrape, so a server nobody
/// profiles pays nothing beyond the span enter/exit publish.
fn profile() -> Response {
    tevot_prof::sampler::start_global();
    let body = tevot_prof::sampler::global_profile().map(|p| p.render()).unwrap_or_default();
    Response {
        status: 200,
        headers: vec![("Content-Type".into(), "text/plain; charset=utf-8".into())],
        body: body.into_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tevot::dta::Characterizer;
    use tevot::{build_delay_dataset, FeatureEncoding, TevotParams};
    use tevot_timing::ClockSpeedup;

    fn tiny_model() -> TevotModel {
        let fu = FunctionalUnit::IntAdd;
        let w = random_workload(fu, 120, 7);
        let c = Characterizer::new(fu).characterize(
            OperatingCondition::new(0.9, 25.0),
            &w,
            &ClockSpeedup::PAPER,
        );
        let data = build_delay_dataset(FeatureEncoding::with_history(), &[(&w, &c)]);
        let mut params = TevotParams::default();
        params.forest.num_trees = 2;
        let mut rng = SmallRng::seed_from_u64(7);
        TevotModel::train(&data, &params, &mut rng)
    }

    fn state_with_model() -> ServeState {
        let state = ServeState::new(1, 64, 8, Duration::from_millis(1));
        state.registry.insert(DEFAULT_MODEL, tiny_model());
        state
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            headers: vec![],
            body: body.as_bytes().to_vec(),
        }
    }

    fn get(path: &str) -> Request {
        Request { method: "GET".into(), path: path.into(), headers: vec![], body: vec![] }
    }

    fn body_json(response: &Response) -> Json {
        json::parse(std::str::from_utf8(&response.body).unwrap()).unwrap()
    }

    #[test]
    fn status_mapping_covers_the_taxonomy() {
        assert_eq!(status_for(ErrorKind::Usage), 400);
        assert_eq!(status_for(ErrorKind::Parse), 400);
        assert_eq!(status_for(ErrorKind::Io), 404);
        assert_eq!(status_for(ErrorKind::Corrupt), 422);
        assert_eq!(status_for(ErrorKind::Cancelled), 504);
        assert_eq!(status_for(ErrorKind::Internal), 500);
    }

    #[test]
    fn predict_single_transition_matches_direct_model_call() {
        let state = state_with_model();
        let req =
            post("/predict", r#"{"voltage":0.9,"temperature":25,"clock_ps":1000,"a":3,"b":4}"#);
        let response = handle(&state, &req);
        assert_eq!(response.status, 200, "{:?}", String::from_utf8_lossy(&response.body));
        let doc = body_json(&response);
        let served = doc.get("delays_ps").and_then(Json::as_arr).unwrap()[0].as_f64().unwrap();
        let direct = state.registry.get(DEFAULT_MODEL).unwrap().predict_delay_ps(
            OperatingCondition::new(0.9, 25.0),
            (3, 4),
            (0, 0),
        );
        assert_eq!(served.to_bits(), direct.to_bits());
        let erroneous = doc.get("erroneous").and_then(Json::as_arr).unwrap();
        assert_eq!(erroneous[0], Json::Bool(direct > 1000.0));
    }

    #[test]
    fn predict_batch_body_returns_one_delay_per_transition() {
        let state = state_with_model();
        let req = post(
            "/predict",
            r#"{"voltage":0.85,"temperature":50,
                "transitions":[{"a":1,"b":2},{"a":3,"b":4,"prev_a":1,"prev_b":2}]}"#,
        );
        let response = handle(&state, &req);
        assert_eq!(response.status, 200);
        let doc = body_json(&response);
        assert_eq!(doc.get("count").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("delays_ps").and_then(Json::as_arr).unwrap().len(), 2);
        // No clock_ps: no verdicts.
        assert!(doc.get("erroneous").is_none());
    }

    #[test]
    fn predict_usage_errors_are_400() {
        let state = state_with_model();
        for body in [
            "",
            "not json",
            "[1,2]",
            r#"{"voltage":0.9,"temperature":25}"#,
            r#"{"voltage":-1,"temperature":25,"a":1,"b":2}"#,
            r#"{"voltage":0.9,"temperature":25,"a":1}"#,
            r#"{"voltage":0.9,"temperature":25,"transitions":[]}"#,
            r#"{"voltage":0.9,"temperature":25,"a":99999999999,"b":2}"#,
        ] {
            let response = handle(&state, &post("/predict", body));
            assert_eq!(response.status, 400, "{body:?}");
        }
    }

    #[test]
    fn unknown_model_is_404() {
        let state = state_with_model();
        let req =
            post("/predict", r#"{"model":"nope","voltage":0.9,"temperature":25,"a":1,"b":2}"#);
        let response = handle(&state, &req);
        assert_eq!(response.status, 404);
        let doc = body_json(&response);
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("io"));
    }

    #[test]
    fn ter_reports_error_fraction() {
        let state = state_with_model();
        let req = post(
            "/ter",
            r#"{"voltage":0.9,"temperature":25,"clock_ps":1,"fu":"int-add","vectors":50}"#,
        );
        let response = handle(&state, &req);
        assert_eq!(response.status, 200);
        let doc = body_json(&response);
        assert_eq!(doc.get("transitions").and_then(Json::as_u64), Some(49));
        // A 1 ps clock is slower than every possible delay: TER = 100%.
        assert_eq!(doc.get("ter").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn ter_rejects_vectors_below_two_and_unknown_units() {
        let state = state_with_model();
        for body in [
            r#"{"voltage":0.9,"temperature":25,"clock_ps":1000,"vectors":1}"#,
            r#"{"voltage":0.9,"temperature":25,"clock_ps":1000,"fu":"int-div"}"#,
            r#"{"voltage":0.9,"temperature":25}"#,
        ] {
            let response = handle(&state, &post("/ter", body));
            assert_eq!(response.status, 400, "{body:?}");
        }
    }

    #[test]
    fn dfs_recommendations_match_offline_arithmetic() {
        let state = state_with_model();
        let req = post(
            "/dfs",
            r#"{"voltage":0.9,"temperature":25,"guardband_ps":50,
                "transitions":[{"a":3,"b":4},{"a":7,"b":9,"prev_a":3,"prev_b":4}]}"#,
        );
        let response = handle(&state, &req);
        assert_eq!(response.status, 200, "{:?}", String::from_utf8_lossy(&response.body));
        let doc = body_json(&response);
        assert_eq!(doc.get("count").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("guardband_ps").and_then(Json::as_f64), Some(50.0));
        let delays = doc.get("delays_ps").and_then(Json::as_arr).unwrap();
        let t_clks = doc.get("t_clk_ps").and_then(Json::as_arr).unwrap();
        let model = state.registry.get(DEFAULT_MODEL).unwrap();
        let cond = OperatingCondition::new(0.9, 25.0);
        for (i, (current, previous)) in [((3, 4), (0, 0)), ((7, 9), (3, 4))].iter().enumerate() {
            let direct = model.predict_delay_ps(cond, *current, *previous);
            assert_eq!(delays[i].as_f64().unwrap().to_bits(), direct.to_bits());
            assert_eq!(
                t_clks[i].as_u64().unwrap(),
                tevot_dfs::recommended_t_clk_ps(direct, 50.0),
                "served t_clk must be the shared pure function of the served delay"
            );
            assert!(t_clks[i].as_u64().unwrap() as f64 >= direct);
        }
    }

    #[test]
    fn dfs_usage_errors_are_400_with_request_ids() {
        let state = state_with_model();
        for body in [
            "",
            "not json",
            r#"{"voltage":0.9,"temperature":25}"#,
            r#"{"voltage":-1,"temperature":25,"a":1,"b":2}"#,
            r#"{"voltage":0.9,"temperature":25,"a":1,"b":2,"guardband_ps":-5}"#,
            r#"{"voltage":0.9,"temperature":25,"a":1,"b":2,"guardband_ps":"big"}"#,
            r#"{"voltage":0.9,"temperature":25,"transitions":[]}"#,
        ] {
            let response = handle(&state, &post("/dfs", body));
            assert_eq!(response.status, 400, "{body:?}");
            let doc = body_json(&response);
            assert!(
                doc.get("request_id").and_then(Json::as_u64).unwrap() > 0,
                "error body must carry the request id: {body:?}"
            );
        }
        // Unknown model: taxonomy Io → 404, same as /predict.
        let req = post("/dfs", r#"{"model":"nope","voltage":0.9,"temperature":25,"a":1,"b":2}"#);
        let response = handle(&state, &req);
        assert_eq!(response.status, 404);
        assert_eq!(body_json(&response).get("kind").and_then(Json::as_str), Some("io"));
        // And method misuse is 405, like the sibling endpoints.
        assert_eq!(handle(&state, &get("/dfs")).status, 405);
    }

    #[test]
    fn dfs_refuses_conditions_outside_the_model_envelope_with_422() {
        let state = ServeState::new(1, 64, 8, Duration::from_millis(1));
        let mut model = tiny_model();
        let grid = [
            OperatingCondition::new(0.81, 0.0),
            OperatingCondition::new(0.9, 50.0),
            OperatingCondition::new(1.0, 100.0),
        ];
        model.set_reference(tevot::reference::ReferenceStats::collect(
            &grid,
            &(1..=20).map(f64::from).collect::<Vec<_>>(),
        ));
        state.registry.insert(DEFAULT_MODEL, model);

        // In-envelope conditions (on and between grid points) serve.
        for body in [
            r#"{"voltage":0.9,"temperature":25,"a":1,"b":2}"#,
            r#"{"voltage":0.81,"temperature":0,"a":1,"b":2}"#,
        ] {
            assert_eq!(handle(&state, &post("/dfs", body)).status, 200, "{body:?}");
        }
        // Off-envelope conditions are refused as Corrupt → 422.
        let response =
            handle(&state, &post("/dfs", r#"{"voltage":0.6,"temperature":25,"a":1,"b":2}"#));
        assert_eq!(response.status, 422, "{:?}", String::from_utf8_lossy(&response.body));
        let doc = body_json(&response);
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("corrupt"));
        assert!(doc.get("request_id").and_then(Json::as_u64).unwrap() > 0);
        // A model without a reference block (the usual tiny test model)
        // cannot judge the envelope and keeps serving everywhere.
        let free = state_with_model();
        let response =
            handle(&free, &post("/dfs", r#"{"voltage":0.6,"temperature":25,"a":1,"b":2}"#));
        assert_eq!(response.status, 200);
    }

    #[test]
    fn swap_model_maps_load_errors_to_4xx() {
        let state = state_with_model();
        // Unreadable path: Io → 404.
        let response =
            handle(&state, &post("/models/default", r#"{"path":"/nonexistent/m.tevot"}"#));
        assert_eq!(response.status, 404);
        assert_eq!(body_json(&response).get("kind").and_then(Json::as_str), Some("io"));
        // Corrupt file: Corrupt → 422.
        let dir = std::env::temp_dir();
        let path = dir.join(format!("tevot-serve-corrupt-{}.tevot", std::process::id()));
        std::fs::write(&path, b"not a model").unwrap();
        let body = format!(r#"{{"path":{}}}"#, Json::from(path.to_str().unwrap()));
        let response = handle(&state, &post("/models/default", &body));
        std::fs::remove_file(&path).ok();
        assert_eq!(response.status, 422);
        assert_eq!(body_json(&response).get("kind").and_then(Json::as_str), Some("corrupt"));
        // The original model keeps serving after both failures.
        let req = post("/predict", r#"{"voltage":0.9,"temperature":25,"a":1,"b":2}"#);
        assert_eq!(handle(&state, &req).status, 200);
    }

    #[test]
    fn swap_model_validates_names_and_bodies() {
        let state = state_with_model();
        let response = handle(&state, &post("/models/bad%20name", r#"{"path":"x"}"#));
        assert_eq!(response.status, 400);
        let response = handle(&state, &post("/models/ok", r#"{"nope":1}"#));
        assert_eq!(response.status, 400);
    }

    #[test]
    fn health_models_and_metrics_endpoints() {
        let state = state_with_model();
        let health = handle(&state, &get("/healthz"));
        assert_eq!(health.status, 200);
        assert_eq!(body_json(&health).get("ok"), Some(&Json::Bool(true)));

        let models = handle(&state, &get("/models"));
        let doc = body_json(&models);
        let names = doc.get("models").and_then(Json::as_arr).unwrap();
        assert_eq!(names[0].as_str(), Some(DEFAULT_MODEL));

        let metrics = handle(&state, &get("/metrics"));
        assert_eq!(metrics.status, 200);
        let doc = body_json(&metrics);
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some("tevot-obs/1"));
        assert!(doc.get("queue_depth").is_some());
    }

    #[test]
    fn unknown_routes_and_methods() {
        let state = state_with_model();
        assert_eq!(handle(&state, &get("/nope")).status, 404);
        assert_eq!(handle(&state, &get("/predict")).status, 405);
        assert_eq!(handle(&state, &post("/healthz", "")).status, 405);
        assert_eq!(handle(&state, &post("/models/", "")).status, 404);
    }

    #[test]
    fn immediate_deadline_is_504() {
        let state = state_with_model();
        let req =
            post("/predict", r#"{"voltage":0.9,"temperature":25,"a":1,"b":2,"deadline_ms":0}"#);
        // deadline_ms 0 expires before the batcher can claim the job.
        let response = handle(&state, &req);
        assert_eq!(response.status, 504, "{:?}", String::from_utf8_lossy(&response.body));
        let doc = body_json(&response);
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("cancelled"));
        // Even the deadline path names the request that timed out.
        assert!(doc.get("request_id").and_then(Json::as_u64).unwrap() > 0);
    }

    #[test]
    fn responses_carry_matching_request_ids() {
        let state = state_with_model();
        let ok =
            handle(&state, &post("/predict", r#"{"voltage":0.9,"temperature":25,"a":1,"b":2}"#));
        let header = ok.headers.iter().find(|(n, _)| n == "X-Request-Id").expect("id on 200");
        let ok_id: u64 = header.1.parse().unwrap();
        assert!(ok_id > 0);

        let err = handle(&state, &post("/predict", "not json"));
        assert_eq!(err.status, 400);
        let body_id = body_json(&err).get("request_id").and_then(Json::as_u64).unwrap();
        let header_id: u64 = err
            .headers
            .iter()
            .find(|(n, _)| n == "X-Request-Id")
            .expect("id on 400")
            .1
            .parse()
            .unwrap();
        assert_eq!(body_id, header_id, "body and header must name the same request");
        // IDs are drawn from one monotonic process-wide counter.
        assert!(body_id > ok_id);
    }

    #[test]
    fn metrics_json_pins_field_order_and_histogram_quantiles() {
        let state = state_with_model();
        // At least one served prediction so the latency histogram has data.
        let warm =
            handle(&state, &post("/predict", r#"{"voltage":0.9,"temperature":25,"a":1,"b":2}"#));
        assert_eq!(warm.status, 200);
        let response = handle(&state, &get("/metrics"));
        assert_eq!(response.status, 200);
        let text = std::str::from_utf8(&response.body).unwrap();

        // Golden field order: the versioned document, then each histogram.
        let order = |hay: &str, keys: &[&str]| {
            let at: Vec<usize> = keys
                .iter()
                .map(|k| {
                    hay.find(&format!("\"{k}\"")).unwrap_or_else(|| panic!("missing field {k}"))
                })
                .collect();
            assert!(at.windows(2).all(|w| w[0] < w[1]), "field order changed: {keys:?}");
        };
        order(text, &["schema", "spans", "counters", "histograms", "queue_depth"]);
        let hist_section = &text[text.find("\"histograms\"").unwrap()..];
        order(hist_section, &["name", "bounds", "counts", "total", "p50", "p90", "p99"]);

        // The predict-latency histogram reports numeric, ordered quantiles.
        let doc = body_json(&response);
        let hists = doc.get("histograms").and_then(Json::as_arr).unwrap();
        let latency = hists
            .iter()
            .find(|h| h.get("name").and_then(Json::as_str) == Some("serve.predict_latency_us"))
            .expect("latency histogram is registered");
        let q = |name| latency.get(name).and_then(Json::as_f64).expect("numeric quantile");
        assert!(q("p50") <= q("p90") && q("p90") <= q("p99"));
    }

    #[test]
    fn metrics_prom_format_renders_parseable_exposition() {
        let state = state_with_model();
        let warm =
            handle(&state, &post("/predict", r#"{"voltage":0.9,"temperature":25,"a":1,"b":2}"#));
        assert_eq!(warm.status, 200);
        let response = handle(&state, &get("/metrics?format=prom"));
        assert_eq!(response.status, 200);
        let content_type = response.headers.iter().find(|(n, _)| n == "Content-Type").unwrap();
        assert_eq!(content_type.1, "text/plain; version=0.0.4; charset=utf-8");
        let text = std::str::from_utf8(&response.body).unwrap();
        let samples = tevot_obs::prom::parse(text).expect("server exposition must parse back");
        assert!(
            samples.iter().any(|s| s.name == "tevot_serve_requests_total" && s.value >= 1.0),
            "missing request counter in:\n{text}"
        );
        // Histograms arrive as cumulative buckets with the +Inf closer.
        assert!(samples.iter().any(|s| {
            s.name == "tevot_serve_predict_latency_us_bucket"
                && s.labels.iter().any(|(k, v)| k == "le" && v == "+Inf")
        }));
        // Unknown formats are a usage error, not a silent fallback.
        assert_eq!(handle(&state, &get("/metrics?format=nope")).status, 400);
    }

    #[test]
    fn watch_endpoint_is_404_until_installed_then_reports() {
        let state = state_with_model();
        assert_eq!(handle(&state, &get("/watch")).status, 404);

        state.install_watch(Arc::new(Watch::new(crate::watch::WatchConfig::default())));
        let response = handle(&state, &get("/watch"));
        assert_eq!(response.status, 200, "{:?}", String::from_utf8_lossy(&response.body));
        let doc = body_json(&response);
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some("tevot-watch/1"));
        // The tiny test model carries no reference block.
        assert_eq!(doc.get("reference_loaded"), Some(&Json::Bool(false)));
        assert!(doc.get("series").is_some());
        assert!(doc.get("slo").is_some());

        assert_eq!(handle(&state, &get("/watch?since_ms=nope")).status, 400);
        assert_eq!(handle(&state, &get("/watch?since_ms=0")).status, 200);
        assert_eq!(handle(&state, &post("/watch", "")).status, 405);
    }

    #[test]
    fn profile_endpoint_serves_folded_text_and_rejects_post() {
        let state = state_with_model();
        let response = handle(&state, &get("/profile"));
        assert_eq!(response.status, 200);
        let content_type = response.headers.iter().find(|(n, _)| n == "Content-Type").unwrap();
        assert_eq!(content_type.1, "text/plain; charset=utf-8");
        // The body (possibly empty right after the lazy start) must be
        // valid collapsed-stack text.
        let text = std::str::from_utf8(&response.body).unwrap();
        tevot_prof::Profile::parse(text).expect("profile endpoint must emit parseable stacks");
        assert!(tevot_prof::sampler::global_running(), "first scrape starts the sampler");
        assert_eq!(handle(&state, &post("/profile", "")).status, 405);
    }

    #[test]
    fn slow_request_exemplars_surface_in_watch_payload() {
        let state = state_with_model();
        state.install_watch(Arc::new(Watch::new(crate::watch::WatchConfig::default())));
        let ok =
            handle(&state, &post("/predict", r#"{"voltage":0.9,"temperature":25,"a":1,"b":2}"#));
        assert_eq!(ok.status, 200);
        let response = handle(&state, &get("/watch"));
        let doc = body_json(&response);
        let exemplars = doc.get("exemplars").and_then(Json::as_arr).expect("exemplars member");
        assert!(!exemplars.is_empty(), "a served predict must leave an exemplar");
        let first = &exemplars[0];
        assert_eq!(first.get("endpoint").and_then(Json::as_str), Some("/predict"));
        assert!(first.get("request_id").and_then(Json::as_u64).unwrap() > 0);
        let stages = first.get("stages").and_then(Json::as_arr).unwrap();
        let names: Vec<_> =
            stages.iter().map(|s| s.get("name").and_then(Json::as_str).unwrap()).collect();
        assert_eq!(names, ["parse", "batch", "serialize"]);
    }
}
