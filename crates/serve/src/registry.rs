//! The hot-swappable model registry.
//!
//! Models are held as `Arc<TevotModel>` behind an `RwLock`ed map. A
//! lookup clones the `Arc` (cheap) and drops the lock immediately, so a
//! request that is mid-prediction keeps its model alive even while a
//! `POST /models/<name>` replaces the registry entry — the swap is
//! atomic from the registry's point of view and invisible to in-flight
//! work, which simply finishes on the old model. The *new* model is
//! fully loaded and validated from disk **before** the write lock is
//! taken, so readers can never observe a torn or half-loaded model.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Arc, RwLock};

use tevot::TevotModel;
use tevot_ml::persist::LoadModelError;

/// Validates a client-supplied model name: nonempty, `[A-Za-z0-9._-]`,
/// at most 64 bytes — safe to echo into logs and URLs.
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

/// A named collection of served models supporting atomic hot-swap.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    models: RwLock<BTreeMap<String, Arc<TevotModel>>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> ModelRegistry {
        ModelRegistry::default()
    }

    /// Inserts (or replaces) a model under `name`. Replacement is the
    /// hot-swap: the old `Arc` stays alive until its last in-flight
    /// request drops it.
    pub fn insert(&self, name: impl Into<String>, model: TevotModel) {
        let mut models = self.models.write().expect("registry lock poisoned");
        models.insert(name.into(), Arc::new(model));
    }

    /// Loads a model from `path` and swaps it in under `name`. The load
    /// happens outside any lock; a failure leaves the registry unchanged
    /// (the previous model, if any, keeps serving).
    ///
    /// # Errors
    ///
    /// Returns [`LoadModelError`] naming the path and byte offset on an
    /// unreadable, truncated, or corrupt model file.
    pub fn load_from(&self, name: impl Into<String>, path: &Path) -> Result<(), LoadModelError> {
        let model = TevotModel::load_path(path)?;
        self.insert(name, model);
        tevot_obs::metrics::SERVE_MODEL_SWAPS.incr();
        Ok(())
    }

    /// The model registered under `name`, if any. The returned `Arc` is
    /// a stable snapshot: later swaps do not affect it.
    pub fn get(&self, name: &str) -> Option<Arc<TevotModel>> {
        let models = self.models.read().expect("registry lock poisoned");
        models.get(name).cloned()
    }

    /// Registered model names, sorted.
    pub fn names(&self) -> Vec<String> {
        let models = self.models.read().expect("registry lock poisoned");
        models.keys().cloned().collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.read().expect("registry lock poisoned").len()
    }

    /// Whether no model is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tevot::dta::Characterizer;
    use tevot::workload::random_workload;
    use tevot::{build_delay_dataset, FeatureEncoding, TevotParams};
    use tevot_netlist::fu::FunctionalUnit;
    use tevot_timing::{ClockSpeedup, OperatingCondition};

    fn tiny_model(seed: u64) -> TevotModel {
        let fu = FunctionalUnit::IntAdd;
        let w = random_workload(fu, 120, seed);
        let c = Characterizer::new(fu).characterize(
            OperatingCondition::new(0.9, 25.0),
            &w,
            &ClockSpeedup::PAPER,
        );
        let data = build_delay_dataset(FeatureEncoding::with_history(), &[(&w, &c)]);
        let mut params = TevotParams::default();
        params.forest.num_trees = 2;
        let mut rng = SmallRng::seed_from_u64(seed);
        TevotModel::train(&data, &params, &mut rng)
    }

    #[test]
    fn insert_get_and_names() {
        let reg = ModelRegistry::new();
        assert!(reg.is_empty());
        assert!(reg.get("default").is_none());
        reg.insert("default", tiny_model(1));
        reg.insert("alt", tiny_model(2));
        assert_eq!(reg.names(), vec!["alt".to_string(), "default".to_string()]);
        assert_eq!(reg.len(), 2);
        assert!(reg.get("default").is_some());
    }

    #[test]
    fn swap_leaves_old_arc_usable() {
        let reg = ModelRegistry::new();
        reg.insert("m", tiny_model(1));
        let old = reg.get("m").unwrap();
        let before = old.predict_delay_ps(OperatingCondition::new(0.9, 25.0), (3, 4), (0, 0));
        reg.insert("m", tiny_model(2));
        // The held Arc still answers identically after the swap.
        let after = old.predict_delay_ps(OperatingCondition::new(0.9, 25.0), (3, 4), (0, 0));
        assert_eq!(before.to_bits(), after.to_bits());
    }

    #[test]
    fn failed_load_leaves_registry_unchanged() {
        let reg = ModelRegistry::new();
        reg.insert("m", tiny_model(1));
        let held = reg.get("m").unwrap();
        let err = reg.load_from("m", Path::new("/nonexistent/model.tevot")).unwrap_err();
        assert!(err.to_string().contains("/nonexistent/model.tevot"));
        assert!(Arc::ptr_eq(&held, &reg.get("m").unwrap()), "entry must be untouched");
    }

    #[test]
    fn name_validation() {
        assert!(valid_name("default"));
        assert!(valid_name("int-add_v2.1"));
        assert!(!valid_name(""));
        assert!(!valid_name("has space"));
        assert!(!valid_name("sneaky/../path"));
        assert!(!valid_name(&"x".repeat(65)));
    }
}
