//! A minimal HTTP/1.1 subset over `std::io` streams.
//!
//! Just enough protocol for the tevot-serve endpoints: request-line +
//! headers + `Content-Length` bodies in, fixed-status responses with a
//! byte body out. Keep-alive is the default (HTTP/1.1 semantics); a
//! `Connection: close` header on either side ends the connection after
//! the in-flight exchange. Chunked transfer encoding, continuation
//! lines, and multi-value header folding are deliberately out of scope —
//! requests using them are rejected with a typed error rather than
//! misparsed.

use std::io::{self, BufRead, Write};

/// Upper bound on the request line + header section, in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Upper bound on the number of header fields per request.
pub const MAX_HEADERS: usize = 64;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The request method, uppercase as received (`GET`, `POST`...).
    pub method: String,
    /// The request target path, e.g. `/predict` (query strings are kept
    /// verbatim; no endpoint currently uses them).
    pub path: String,
    /// Header `(name, value)` pairs in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// A failure while reading one request off the wire.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection cleanly between requests.
    Eof,
    /// The read timed out with no bytes consumed (idle keep-alive
    /// connection); the caller may poll for shutdown and retry.
    IdleTimeout,
    /// The request is malformed; the message is safe to echo to the
    /// client in a 400 response.
    Malformed(String),
    /// The declared body exceeds the configured limit (HTTP 413).
    BodyTooLarge(usize),
    /// The request line + headers exceed [`MAX_HEAD_BYTES`]; detected
    /// *before* the excess is buffered, so a malicious or broken peer
    /// cannot make the server read an unbounded head (HTTP 431).
    HeadTooLarge(usize),
    /// The request carries more than [`MAX_HEADERS`] header fields
    /// (HTTP 431).
    TooManyHeaders(usize),
    /// Any other I/O failure (reset mid-request, timeout mid-body...).
    Io(io::Error),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Eof => write!(f, "connection closed"),
            ReadError::IdleTimeout => write!(f, "idle timeout"),
            ReadError::Malformed(m) => write!(f, "malformed request: {m}"),
            ReadError::BodyTooLarge(n) => write!(f, "request body of {n} bytes exceeds the limit"),
            ReadError::HeadTooLarge(n) => {
                write!(f, "request head exceeds the {n}-byte limit")
            }
            ReadError::TooManyHeaders(n) => {
                write!(f, "request carries more than {n} header fields")
            }
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ReadError {}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Reads one request from `stream`.
///
/// Returns [`ReadError::Eof`] on a clean close before the first byte and
/// [`ReadError::IdleTimeout`] when a read timeout configured on the
/// underlying socket fires before the first byte — both mean "no request
/// in flight". A timeout or EOF *mid-request* is an I/O error: the
/// exchange is unrecoverable.
///
/// # Errors
///
/// See [`ReadError`]; `Malformed` and `BodyTooLarge` should be answered
/// with 400/413 before closing.
pub fn read_request(stream: &mut impl BufRead, max_body: usize) -> Result<Request, ReadError> {
    let mut line = Vec::new();
    let mut budget = MAX_HEAD_BYTES;
    match read_line(stream, &mut line, &mut budget) {
        Ok(0) => return Err(ReadError::Eof),
        Ok(_) => {}
        Err(ReadError::Io(e)) if is_timeout(&e) && line.is_empty() => {
            return Err(ReadError::IdleTimeout)
        }
        Err(e) => return Err(e),
    }
    let request_line = String::from_utf8(line.clone())
        .map_err(|_| ReadError::Malformed("request line is not UTF-8".into()))?;
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_string(), p.to_string(), v),
        _ => return Err(ReadError::Malformed(format!("bad request line {request_line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!("unsupported protocol {version:?}")));
    }

    let mut headers = Vec::new();
    loop {
        line.clear();
        match read_line(stream, &mut line, &mut budget) {
            Ok(0) => return Err(ReadError::Io(io::ErrorKind::UnexpectedEof.into())),
            Ok(_) => {}
            Err(e) => return Err(e),
        }
        if line.is_empty() {
            break; // end of the header section
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ReadError::TooManyHeaders(MAX_HEADERS));
        }
        let text = String::from_utf8(line.clone())
            .map_err(|_| ReadError::Malformed("header is not UTF-8".into()))?;
        let Some((name, value)) = text.split_once(':') else {
            return Err(ReadError::Malformed(format!("header without ':': {text:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut request = Request { method, path, headers, body: Vec::new() };
    if let Some(len) = request.header("content-length") {
        let len: usize =
            len.parse().map_err(|_| ReadError::Malformed(format!("bad Content-Length {len:?}")))?;
        if len > max_body {
            return Err(ReadError::BodyTooLarge(len));
        }
        let mut body = vec![0u8; len];
        stream.read_exact(&mut body).map_err(ReadError::Io)?;
        request.body = body;
    }
    Ok(request)
}

/// Reads one CRLF- (or bare-LF-) terminated line, stripping the
/// terminator. `budget` is the remaining head allowance; the read stops
/// with [`ReadError::HeadTooLarge`] the moment a chunk would exceed it,
/// so at most [`MAX_HEAD_BYTES`] of head are ever buffered — a peer
/// streaming an endless header line cannot grow memory past the cap.
fn read_line(
    stream: &mut impl BufRead,
    line: &mut Vec<u8>,
    budget: &mut usize,
) -> Result<usize, ReadError> {
    let mut consumed = 0usize;
    loop {
        let buf = match stream.fill_buf() {
            Ok(buf) => buf,
            Err(e) => return Err(ReadError::Io(e)),
        };
        if buf.is_empty() {
            break; // EOF
        }
        let newline = buf.iter().position(|&b| b == b'\n');
        let take = newline.map_or(buf.len(), |pos| pos + 1);
        if take > *budget {
            return Err(ReadError::HeadTooLarge(MAX_HEAD_BYTES));
        }
        *budget -= take;
        consumed += take;
        line.extend_from_slice(&buf[..take]);
        stream.consume(take);
        if newline.is_some() {
            break;
        }
    }
    while matches!(line.last(), Some(b'\n' | b'\r')) {
        line.pop();
    }
    Ok(consumed)
}

/// One HTTP response, written with `Content-Length` framing.
#[derive(Debug, Clone)]
pub struct Response {
    /// Numeric status code.
    pub status: u16,
    /// Extra headers beyond the always-present `Content-Type` /
    /// `Content-Length` / `Connection`.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        let body: String = body.into();
        Response {
            status,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body: body.into_bytes(),
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// The standard reason phrase for the status code.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            431 => "Request Header Fields Too Large",
            502 => "Bad Gateway",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }
}

/// Serializes `response` to `stream`. `close` controls the `Connection`
/// header (the caller decides keep-alive vs close).
///
/// # Errors
///
/// Propagates I/O errors from the stream.
pub fn write_response(stream: &mut impl Write, response: &Response, close: bool) -> io::Result<()> {
    write!(stream, "HTTP/1.1 {} {}\r\n", response.status, response.reason())?;
    for (name, value) in &response.headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    write!(stream, "Content-Length: {}\r\n", response.body.len())?;
    write!(stream, "Connection: {}\r\n\r\n", if close { "close" } else { "keep-alive" })?;
    stream.write_all(&response.body)?;
    stream.flush()
}

/// A one-shot blocking `GET` against a tevot-serve endpoint: connects,
/// sends `Connection: close`, and returns `(status, body)`. Used by the
/// CLI's `top` and `prom-check` commands; not a general HTTP client
/// (no redirects, no chunked bodies, no TLS).
///
/// # Errors
///
/// Propagates connect/read failures and malformed responses as
/// [`io::Error`].
pub fn get(addr: &str, path: &str) -> io::Result<(u16, String)> {
    let mut stream = std::net::TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(10)))?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")?;
    read_oneshot_response(stream)
}

/// A one-shot blocking `POST` with a JSON body; same scope and error
/// contract as [`get`]. This is the client side of the fleet wire
/// protocol (lease, complete, heartbeat).
///
/// # Errors
///
/// Propagates connect/read failures and malformed responses as
/// [`io::Error`].
pub fn post(addr: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
    let mut stream = std::net::TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(10)))?;
    write!(
        stream,
        "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    read_oneshot_response(stream)
}

fn read_oneshot_response(mut stream: std::net::TcpStream) -> io::Result<(u16, String)> {
    use std::io::Read;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8(raw)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response is not UTF-8"))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "response without header end"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(text: &str) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(text.as_bytes()), 1024)
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse("POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
            .expect("valid request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/predict");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"abcd");
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_get_without_body_and_close_header() {
        let req = parse("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        assert!(req.wants_close());
    }

    #[test]
    fn bare_lf_lines_are_tolerated() {
        let req = parse("GET /metrics HTTP/1.1\nHost: y\n\n").unwrap();
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.header("host"), Some("y"));
    }

    #[test]
    fn clean_eof_is_distinguished() {
        assert!(matches!(parse(""), Err(ReadError::Eof)));
    }

    #[test]
    fn malformed_requests_are_typed() {
        assert!(matches!(parse("NONSENSE\r\n\r\n"), Err(ReadError::Malformed(_))));
        assert!(matches!(parse("GET / SPDY/3\r\n\r\n"), Err(ReadError::Malformed(_))));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_bodies_are_rejected_before_reading() {
        let e = parse("POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n").unwrap_err();
        assert!(matches!(e, ReadError::BodyTooLarge(9999)));
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        let e = parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err();
        assert!(matches!(e, ReadError::Io(_)));
    }

    #[test]
    fn oversized_head_is_typed_431() {
        let huge = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(MAX_HEAD_BYTES));
        assert!(matches!(parse(&huge), Err(ReadError::HeadTooLarge(MAX_HEAD_BYTES))));
    }

    #[test]
    fn endless_header_line_stops_at_the_cap() {
        // A single header line with no terminator at all: the reader must
        // give up at MAX_HEAD_BYTES instead of buffering the whole thing.
        let mut huge = String::from("GET / HTTP/1.1\r\nX-Pad: ");
        huge.push_str(&"b".repeat(4 * MAX_HEAD_BYTES));
        assert!(matches!(parse(&huge), Err(ReadError::HeadTooLarge(MAX_HEAD_BYTES))));
    }

    #[test]
    fn too_many_header_fields_are_rejected() {
        let mut req = String::from("GET / HTTP/1.1\r\n");
        for i in 0..=MAX_HEADERS {
            req.push_str(&format!("X-H{i}: v\r\n"));
        }
        req.push_str("\r\n");
        assert!(matches!(parse(&req), Err(ReadError::TooManyHeaders(MAX_HEADERS))));
    }

    #[test]
    fn exactly_max_headers_is_accepted() {
        let mut req = String::from("GET / HTTP/1.1\r\n");
        for i in 0..MAX_HEADERS {
            req.push_str(&format!("X-H{i}: v\r\n"));
        }
        req.push_str("\r\n");
        let parsed = parse(&req).expect("a request at the cap parses");
        assert_eq!(parsed.headers.len(), MAX_HEADERS);
    }

    #[test]
    fn response_round_trips_status_and_headers() {
        let mut out = Vec::new();
        let resp = Response::json(503, "{\"error\":\"shed\"}").with_header("Retry-After", "1");
        write_response(&mut out, &resp, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.contains("Content-Length: 16\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(text.ends_with("{\"error\":\"shed\"}"), "{text}");
    }

    #[test]
    fn reason_phrases_cover_the_status_table() {
        for (code, phrase) in [
            (200, "OK"),
            (400, "Bad Request"),
            (404, "Not Found"),
            (431, "Request Header Fields Too Large"),
            (502, "Bad Gateway"),
            (504, "Gateway Timeout"),
        ] {
            assert_eq!(Response::json(code, "").reason(), phrase);
        }
    }
}
