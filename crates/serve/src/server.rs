//! The TCP server: accept loop, per-connection threads, shutdown.
//!
//! Deliberately boring concurrency: one OS thread per connection (the
//! batcher provides the scalability — prediction work from every
//! connection funnels into one queue, so connection threads spend their
//! lives blocked on I/O, not computing). The accept loop and the
//! connection loops poll a shared [`CancelToken`] on short socket
//! timeouts, so [`Server::shutdown`] converges without killing anything
//! mid-response.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use tevot_resil::CancelToken;

use crate::api::{self, ServeState};
use crate::http::{read_request, write_response, ReadError, Response};
use crate::watch::{Watch, WatchConfig};

/// Server tuning knobs; the defaults match the CLI's documented
/// defaults.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7450` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads for batch execution (`0`: the global `--jobs` /
    /// `TEVOT_JOBS` setting).
    pub jobs: usize,
    /// Admission bound: queued jobs beyond this are shed with 503.
    pub max_queue: usize,
    /// Maximum jobs merged into one microbatch.
    pub batch: usize,
    /// How long a microbatch waits for company after its first job.
    pub batch_wait: Duration,
    /// Maximum accepted request-body size, in bytes.
    pub max_body: usize,
    /// Telemetry: `Some` starts the watch sampler thread (time-series
    /// store, SLO monitors, drift detection); `None` serves without it.
    pub watch: Option<WatchConfig>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            jobs: 0,
            max_queue: 256,
            batch: 32,
            batch_wait: Duration::from_millis(1),
            max_body: 1 << 20,
            watch: None,
        }
    }
}

/// How long an idle keep-alive connection sleeps between shutdown polls.
const READ_POLL: Duration = Duration::from_millis(50);

/// A running server. Dropping it (or calling [`Server::shutdown`])
/// stops the accept loop; connection threads notice within [`READ_POLL`].
#[derive(Debug)]
pub struct Server {
    state: Arc<ServeState>,
    addr: SocketAddr,
    stop: CancelToken,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    sampler_handle: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr` and starts accepting connections. The model
    /// registry starts empty; populate it through
    /// [`state`](Self::state) (the CLI loads `--model` as `default`)
    /// or over HTTP with `POST /models/<name>`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (address in use, permission...).
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServeState::new(
            config.jobs,
            config.max_queue,
            config.batch,
            config.batch_wait,
        ));
        let stop = CancelToken::new();
        let accept_state = Arc::clone(&state);
        let accept_stop = stop.clone();
        let max_body = config.max_body;
        let accept_handle = std::thread::Builder::new()
            .name("tevot-serve-accept".into())
            .spawn(move || accept_loop(&listener, &accept_state, &accept_stop, max_body))?;
        let sampler_handle = match config.watch {
            Some(watch_config) => {
                let watch = Arc::new(Watch::new(watch_config));
                state.install_watch(Arc::clone(&watch));
                let sampler_state = Arc::clone(&state);
                let sampler_stop = stop.clone();
                Some(
                    std::thread::Builder::new()
                        .name("tevot-serve-sampler".into())
                        .spawn(move || sampler_loop(&watch, &sampler_state, &sampler_stop))?,
                )
            }
            None => None,
        };
        tevot_obs::info!("serve: listening on {addr}");
        Ok(Server { state, addr, stop, accept_handle: Some(accept_handle), sampler_handle })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (registry + batcher), for pre-loading models.
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Stops the accept loop and waits for it to exit. In-flight
    /// requests finish; idle keep-alive connections close within
    /// [`READ_POLL`].
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Blocks until the accept loop exits (i.e. forever, unless another
    /// thread cancels). Used by the CLI foreground mode.
    pub fn join(mut self) {
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }

    fn stop_and_join(&mut self) {
        self.stop.cancel();
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.sampler_handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// The watch sampler: one tick per `resolution_ms`, polling the stop
/// token between short sleeps so shutdown converges quickly.
fn sampler_loop(watch: &Watch, state: &Arc<ServeState>, stop: &CancelToken) {
    let resolution = Duration::from_millis(watch.config().resolution_ms.max(1));
    let poll = resolution.min(Duration::from_millis(50));
    let mut next = std::time::Instant::now() + resolution;
    while !stop.is_cancelled() {
        std::thread::sleep(poll);
        if std::time::Instant::now() < next {
            continue;
        }
        next += resolution;
        let model = state.default_reference();
        let reference = model.as_deref().and_then(tevot::TevotModel::reference);
        let _ = watch.tick(tevot_obs::watch::wall_ms(), state.queue_depth(), reference);
    }
}

fn accept_loop(
    listener: &TcpListener,
    state: &Arc<ServeState>,
    stop: &CancelToken,
    max_body: usize,
) {
    loop {
        match listener.accept() {
            Ok((stream, peer)) => {
                tevot_obs::debug!("serve: connection from {peer}");
                // Responses are small and latency-bound: without this,
                // Nagle + delayed ACK can stall every keep-alive
                // round-trip by ~40 ms.
                stream.set_nodelay(true).ok();
                let state = Arc::clone(state);
                let stop = stop.clone();
                let spawned = std::thread::Builder::new()
                    .name("tevot-serve-conn".into())
                    .spawn(move || connection_loop(stream, &state, &stop, max_body));
                if let Err(e) = spawned {
                    tevot_obs::error!("serve: cannot spawn connection thread: {e}");
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if stop.is_cancelled() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => {
                tevot_obs::warn!("serve: accept failed: {e}");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Serves one keep-alive connection until the peer closes, a protocol
/// error forces a close, or shutdown is requested while idle.
fn connection_loop(stream: TcpStream, state: &ServeState, stop: &CancelToken, max_body: usize) {
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader, max_body) {
            Ok(req) => {
                let response = api::handle(state, &req);
                let close = req.wants_close() || stop.is_cancelled();
                if write_response(&mut writer, &response, close).is_err() || close {
                    return;
                }
            }
            Err(ReadError::Eof) => return,
            Err(ReadError::IdleTimeout) => {
                if stop.is_cancelled() {
                    return;
                }
            }
            Err(ReadError::Malformed(m)) => {
                let id = api::next_request_id();
                let body =
                    format!("{{\"error\":{},\"kind\":\"parse\",\"request_id\":{id}}}", quoted(&m));
                let response =
                    Response::json(400, body).with_header("X-Request-Id", id.to_string());
                let _ = write_response(&mut writer, &response, true);
                return;
            }
            Err(ReadError::BodyTooLarge(n)) => {
                let id = api::next_request_id();
                let body = format!(
                    "{{\"error\":\"request body of {n} bytes too large\",\
                     \"kind\":\"usage\",\"request_id\":{id}}}"
                );
                let response =
                    Response::json(413, body).with_header("X-Request-Id", id.to_string());
                let _ = write_response(&mut writer, &response, true);
                return;
            }
            Err(e @ (ReadError::HeadTooLarge(_) | ReadError::TooManyHeaders(_))) => {
                let id = api::next_request_id();
                let body = format!(
                    "{{\"error\":{},\"kind\":\"usage\",\"request_id\":{id}}}",
                    quoted(&e.to_string())
                );
                let response =
                    Response::json(431, body).with_header("X-Request-Id", id.to_string());
                let _ = write_response(&mut writer, &response, true);
                return;
            }
            Err(ReadError::Io(_)) => return,
        }
        let _ = writer.flush();
    }
}

fn quoted(text: &str) -> String {
    tevot_obs::json::Json::from(text).to_string()
}
