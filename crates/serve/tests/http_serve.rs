//! End-to-end tests of tevot-serve over real loopback TCP: framing,
//! keep-alive, admission control, and — the critical one — hot-swapping
//! a model under concurrent `/predict` traffic without a single torn or
//! dropped request.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tevot::dta::Characterizer;
use tevot::reference::ReferenceStats;
use tevot::workload::random_workload;
use tevot::{build_delay_dataset, FeatureEncoding, TevotModel, TevotParams};
use tevot_netlist::fu::FunctionalUnit;
use tevot_obs::json::{self, Json};
use tevot_serve::{ServeConfig, Server, WatchConfig, DEFAULT_MODEL};
use tevot_timing::{ClockSpeedup, OperatingCondition};

/// A small but real model; distinct seeds give distinct predictions, so
/// a response can be attributed to the model that produced it.
fn tiny_model(seed: u64) -> TevotModel {
    let fu = FunctionalUnit::IntAdd;
    let w = random_workload(fu, 120, seed);
    let c = Characterizer::new(fu).characterize(
        OperatingCondition::new(0.9, 25.0),
        &w,
        &ClockSpeedup::PAPER,
    );
    let data = build_delay_dataset(FeatureEncoding::with_history(), &[(&w, &c)]);
    let mut params = TevotParams::default();
    params.forest.num_trees = 2;
    TevotModel::train(&data, &params, &mut SmallRng::seed_from_u64(seed))
}

fn start_with_model(config: ServeConfig, seed: u64) -> Server {
    let server = Server::start(config).expect("bind loopback");
    server.state().registry.insert(DEFAULT_MODEL, tiny_model(seed));
    server
}

/// One parsed response: status, headers (lowercased names), body text.
struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    fn json(&self) -> Json {
        json::parse(&self.body).unwrap_or_else(|e| panic!("bad JSON body {:?}: {e}", self.body))
    }
}

fn send(writer: &mut impl Write, method: &str, path: &str, body: &str) -> std::io::Result<()> {
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

fn read_reply(reader: &mut impl BufRead) -> std::io::Result<Reply> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(std::io::ErrorKind::UnexpectedEof.into());
    }
    let status: u16 = line.split_whitespace().nth(1).and_then(|s| s.parse().ok()).unwrap();
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        line.clear();
        reader.read_line(&mut line)?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            if name == "content-length" {
                content_length = value.trim().parse().unwrap();
            }
            headers.push((name, value.trim().to_string()));
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Reply { status, headers, body: String::from_utf8(body).unwrap() })
}

/// A keep-alive client connection.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to loopback server");
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone().expect("clone stream");
        Client { writer, reader: BufReader::new(stream) }
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> Reply {
        send(&mut self.writer, method, path, body).expect("write request");
        read_reply(&mut self.reader).expect("read response")
    }
}

#[test]
fn healthz_predict_and_metrics_share_one_keep_alive_connection() {
    let server = start_with_model(ServeConfig::default(), 7);
    let mut client = Client::connect(server.local_addr());

    let health = client.request("GET", "/healthz", "");
    assert_eq!(health.status, 200);
    assert_eq!(health.header("content-type"), Some("application/json"));
    assert_eq!(health.json().get("ok"), Some(&Json::Bool(true)));

    // Same socket, next request: keep-alive worked.
    let body = r#"{"voltage":0.9,"temperature":25,"clock_ps":1000,"a":3,"b":4}"#;
    let predict = client.request("POST", "/predict", body);
    assert_eq!(predict.status, 200, "{}", predict.body);
    let served =
        predict.json().get("delays_ps").and_then(Json::as_arr).unwrap()[0].as_f64().unwrap();

    // The served delay round-trips to the bit-identical offline number.
    let direct = server.state().registry.get(DEFAULT_MODEL).unwrap().predict_delay_ps(
        OperatingCondition::new(0.9, 25.0),
        (3, 4),
        (0, 0),
    );
    assert_eq!(served.to_bits(), direct.to_bits());

    let metrics = client.request("GET", "/metrics", "");
    assert_eq!(metrics.status, 200);
    assert_eq!(metrics.json().get("schema").and_then(Json::as_str), Some("tevot-obs/1"));

    server.shutdown();
}

/// `/dfs` over real TCP, alongside the `/predict` coverage: a served
/// recommendation equals the offline arithmetic on the same model, and
/// the malformed-payload / off-envelope error paths answer with the
/// taxonomy-mapped 400/422 bodies carrying a `request_id`.
#[test]
fn dfs_endpoint_serves_recommendations_and_taxonomy_errors() {
    let mut model = tiny_model(7);
    let grid = [OperatingCondition::new(0.81, 0.0), OperatingCondition::new(1.0, 100.0)];
    model.set_reference(ReferenceStats::collect(
        &grid,
        &(1..=20).map(f64::from).collect::<Vec<_>>(),
    ));
    let server = Server::start(ServeConfig::default()).expect("bind loopback");
    server.state().registry.insert(DEFAULT_MODEL, model);
    let mut client = Client::connect(server.local_addr());

    // Happy path: t_clk is the shared pure function of the served delay.
    let body = r#"{"voltage":0.9,"temperature":25,"guardband_ps":75,"a":3,"b":4}"#;
    let reply = client.request("POST", "/dfs", body);
    assert_eq!(reply.status, 200, "{}", reply.body);
    let doc = reply.json();
    let served_delay = doc.get("delays_ps").and_then(Json::as_arr).unwrap()[0].as_f64().unwrap();
    let served_t_clk = doc.get("t_clk_ps").and_then(Json::as_arr).unwrap()[0].as_u64().unwrap();
    let direct = server.state().registry.get(DEFAULT_MODEL).unwrap().predict_delay_ps(
        OperatingCondition::new(0.9, 25.0),
        (3, 4),
        (0, 0),
    );
    assert_eq!(served_delay.to_bits(), direct.to_bits());
    assert_eq!(served_t_clk, tevot_dfs::recommended_t_clk_ps(direct, 75.0));

    // Malformed payload: 400 with a request_id that matches the header.
    let reply = client.request("POST", "/dfs", r#"{"voltage":0.9,"temperature":25}"#);
    assert_eq!(reply.status, 400);
    let doc = reply.json();
    let body_id = doc.get("request_id").and_then(Json::as_u64).unwrap();
    assert!(body_id > 0);
    assert_eq!(reply.header("x-request-id"), Some(body_id.to_string().as_str()));

    // Off the model's characterized envelope: Corrupt → 422.
    let reply = client.request("POST", "/dfs", r#"{"voltage":0.6,"temperature":25,"a":1,"b":2}"#);
    assert_eq!(reply.status, 422, "{}", reply.body);
    let doc = reply.json();
    assert_eq!(doc.get("kind").and_then(Json::as_str), Some("corrupt"));
    assert!(doc.get("request_id").and_then(Json::as_u64).unwrap() > 0);

    server.shutdown();
}

#[test]
fn connection_close_is_honored() {
    let server = start_with_model(ServeConfig::default(), 7);
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writer.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").unwrap();
    let reply = read_reply(&mut reader).unwrap();
    assert_eq!(reply.status, 200);
    assert_eq!(reply.header("connection"), Some("close"));
    // The server closes; the next read hits EOF.
    let mut rest = Vec::new();
    assert_eq!(reader.read_to_end(&mut rest).unwrap(), 0);
    server.shutdown();
}

#[test]
fn malformed_request_line_gets_400_and_a_closed_connection() {
    let server = start_with_model(ServeConfig::default(), 7);
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writer.write_all(b"definitely not http\r\n\r\n").unwrap();
    let reply = read_reply(&mut reader).unwrap();
    assert_eq!(reply.status, 400);
    let mut rest = Vec::new();
    assert_eq!(reader.read_to_end(&mut rest).unwrap(), 0);
    server.shutdown();
}

#[test]
fn oversized_body_gets_413() {
    let config = ServeConfig { max_body: 256, ..ServeConfig::default() };
    let server = start_with_model(config, 7);
    let mut client = Client::connect(server.local_addr());
    let reply = client.request("POST", "/predict", &"x".repeat(512));
    assert_eq!(reply.status, 413);
    server.shutdown();
}

/// Admission control over TCP: with a single worker, a one-slot queue
/// and one-job batches, a long-running request occupies the executor
/// while later arrivals first fill the queue slot and then shed with
/// 503 + `Retry-After`. Every request is *answered* — shedding is a
/// response, not a dropped connection.
#[test]
fn overload_sheds_with_retry_after_and_answers_every_request() {
    let config = ServeConfig {
        jobs: 1,
        max_queue: 1,
        batch: 1,
        batch_wait: Duration::from_millis(0),
        ..ServeConfig::default()
    };
    let server = start_with_model(config, 7);
    let addr = server.local_addr();

    // A big request to occupy the single worker...
    let mut big = String::from(r#"{"voltage":0.9,"temperature":25,"transitions":["#);
    for i in 0..40_000u32 {
        if i > 0 {
            big.push(',');
        }
        big.push_str(&format!(r#"{{"a":{i},"b":{}}}"#, i ^ 0xFFFF));
    }
    big.push_str("]}");

    let mut heavy = Client::connect(addr);
    send(&mut heavy.writer, "POST", "/predict", &big).unwrap();
    // ...give the batcher time to claim it and start executing...
    std::thread::sleep(Duration::from_millis(60));

    // ...then pile on more heavy requests than queue + executor can hold.
    let replies: Vec<Reply> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let big = &big;
                scope.spawn(move || Client::connect(addr).request("POST", "/predict", big))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let heavy_reply = read_reply(&mut heavy.reader).unwrap();
    assert_eq!(heavy_reply.status, 200, "{}", heavy_reply.body);

    let shed = replies.iter().filter(|r| r.status == 503).count();
    let ok = replies.iter().filter(|r| r.status == 200).count();
    assert_eq!(ok + shed, replies.len(), "only 200 or 503 under pure overload");
    assert!(shed >= 1, "queue of 1 cannot absorb 4 concurrent heavy requests");
    for reply in replies.iter().filter(|r| r.status == 503) {
        assert_eq!(reply.header("retry-after"), Some("1"));
        assert_eq!(reply.json().get("kind").and_then(Json::as_str), Some("shed"));
    }
    server.shutdown();
}

/// End-to-end drift detection: a server watching a model whose file
/// carries reference histograms stays quiet while traffic matches the
/// training distribution and raises a `drift` alert once the operating
/// condition moves off-reference. This is the acceptance scenario for
/// the watch subsystem — no mocks, real sampler thread, real HTTP.
#[test]
fn watch_drift_alert_fires_off_reference_and_stays_quiet_on() {
    let train_cond = OperatingCondition::new(0.9, 25.0);
    let mut model = tiny_model(7);

    // Reference distribution = exactly what in-distribution traffic will
    // look like: the model's own predictions at the training condition
    // over the operand stream the clean phase sends.
    let operands: Vec<(u32, u32)> = (0..64u32).map(|i| (i * 3 + 1, i ^ 0x2A)).collect();
    let delays: Vec<f64> =
        operands.iter().map(|&(a, b)| model.predict_delay_ps(train_cond, (a, b), (0, 0))).collect();
    let conditions = vec![train_cond; delays.len()];
    model.set_reference(ReferenceStats::collect(&conditions, &delays));

    let config = ServeConfig {
        watch: Some(WatchConfig { resolution_ms: 25, ..WatchConfig::default() }),
        ..ServeConfig::default()
    };
    let server = Server::start(config).expect("bind loopback");
    server.state().registry.insert(DEFAULT_MODEL, model);
    let addr = server.local_addr();
    let mut client = Client::connect(addr);

    let drift_alerts = |reply: &Reply| -> usize {
        reply
            .json()
            .get("alerts")
            .and_then(Json::as_arr)
            .map(|alerts| {
                alerts
                    .iter()
                    .filter(|a| a.get("kind").and_then(Json::as_str) == Some("drift"))
                    .count()
            })
            .unwrap_or(0)
    };

    // Phase 1: in-distribution traffic. Several sampler ticks pass; the
    // monitors must stay quiet.
    for &(a, b) in &operands {
        let body = format!(r#"{{"voltage":0.9,"temperature":25,"a":{a},"b":{b}}}"#);
        assert_eq!(client.request("POST", "/predict", &body).status, 200);
    }
    std::thread::sleep(Duration::from_millis(120));
    let quiet = client.request("GET", "/watch", "");
    assert_eq!(quiet.status, 200, "{}", quiet.body);
    assert_eq!(quiet.json().get("reference_loaded"), Some(&Json::Bool(true)));
    assert_eq!(drift_alerts(&quiet), 0, "clean traffic must not alert: {}", quiet.body);

    // Phase 2: the operating condition moves far off-reference. Enough
    // observations to dominate the drift windows, then poll for the alert.
    for round in 0..40 {
        for &(a, b) in &operands {
            let body = format!(r#"{{"voltage":0.7,"temperature":90,"a":{a},"b":{b}}}"#);
            assert_eq!(client.request("POST", "/predict", &body).status, 200);
        }
        std::thread::sleep(Duration::from_millis(60));
        let reply = client.request("GET", "/watch", "");
        assert_eq!(reply.status, 200);
        if drift_alerts(&reply) > 0 {
            let doc = reply.json();
            let psi = doc
                .get("drift")
                .and_then(|d| d.get("voltage_psi"))
                .and_then(Json::as_f64)
                .expect("voltage PSI reported");
            assert!(psi > 0.25, "alerting PSI should exceed the level: {psi}");
            server.shutdown();
            return;
        }
        assert!(round < 39, "no drift alert after sustained off-reference traffic");
    }
    unreachable!();
}

/// Satellite (d), and the heart of the hot-swap contract: concurrent
/// `/predict` traffic while the default model is repeatedly re-loaded
/// from disk never observes a torn model and never drops a request.
/// Every response must be 200 and bit-identical to what *one* of the two
/// models predicts offline — an interleaving or partially-swapped state
/// would produce a number matching neither.
#[test]
fn hot_swap_under_concurrent_traffic_is_never_torn_and_never_drops() {
    let model_a = tiny_model(1);
    let model_b = tiny_model(2);
    let cond = OperatingCondition::new(0.9, 25.0);
    let expect_a: Vec<u64> =
        (0..8u32).map(|i| model_a.predict_delay_ps(cond, (i, i + 1), (0, 0)).to_bits()).collect();
    let expect_b: Vec<u64> =
        (0..8u32).map(|i| model_b.predict_delay_ps(cond, (i, i + 1), (0, 0)).to_bits()).collect();
    assert_ne!(expect_a, expect_b, "seeds must give distinguishable models");

    let dir = std::env::temp_dir();
    let path_a = dir.join(format!("tevot_serve_swap_a_{}.tevot", std::process::id()));
    let path_b = dir.join(format!("tevot_serve_swap_b_{}.tevot", std::process::id()));
    model_a.save_path(&path_a).unwrap();
    model_b.save_path(&path_b).unwrap();

    let server = Server::start(ServeConfig::default()).expect("bind loopback");
    server.state().registry.insert(DEFAULT_MODEL, model_a);
    let addr = server.local_addr();
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        // Swapper: alternate the default model between the two files as
        // fast as the HTTP round-trip allows.
        let swapper = scope.spawn(|| {
            let mut client = Client::connect(addr);
            let mut swaps = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let path = if swaps % 2 == 0 { &path_b } else { &path_a };
                let body = format!(r#"{{"path":{}}}"#, Json::from(path.to_str().unwrap()));
                let reply = client.request("POST", "/models/default", &body);
                assert_eq!(reply.status, 200, "swap failed: {}", reply.body);
                swaps += 1;
            }
            swaps
        });

        // Clients: hammer /predict; every reply must match model A or
        // model B exactly, transition for transition.
        let clients: Vec<_> = (0..3)
            .map(|_| {
                scope.spawn(|| {
                    let mut client = Client::connect(addr);
                    let mut sent = 0usize;
                    let body = concat!(
                        r#"{"voltage":0.9,"temperature":25,"transitions":["#,
                        r#"{"a":0,"b":1},{"a":1,"b":2},{"a":2,"b":3},{"a":3,"b":4},"#,
                        r#"{"a":4,"b":5},{"a":5,"b":6},{"a":6,"b":7},{"a":7,"b":8}]}"#,
                    );
                    while !stop.load(Ordering::Relaxed) {
                        let reply = client.request("POST", "/predict", body);
                        assert_eq!(reply.status, 200, "dropped during swap: {}", reply.body);
                        let served: Vec<u64> = reply
                            .json()
                            .get("delays_ps")
                            .and_then(Json::as_arr)
                            .unwrap()
                            .iter()
                            .map(|d| d.as_f64().unwrap().to_bits())
                            .collect();
                        assert!(
                            served == expect_a || served == expect_b,
                            "torn response: matches neither model A nor B"
                        );
                        sent += 1;
                    }
                    sent
                })
            })
            .collect();

        std::thread::sleep(Duration::from_millis(400));
        stop.store(true, Ordering::Relaxed);
        let swaps = swapper.join().expect("swapper thread");
        let total: usize = clients.into_iter().map(|c| c.join().expect("client thread")).sum();
        assert!(swaps >= 2, "need at least two swaps to exercise both directions ({swaps})");
        assert!(total >= 10, "clients must have made real progress ({total} requests)");
    });

    server.shutdown();
    std::fs::remove_file(&path_a).ok();
    std::fs::remove_file(&path_b).ok();
}
