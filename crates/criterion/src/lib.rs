//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the subset the workspace's `benches/` use — benchmark
//! groups, `iter` / `iter_batched`, throughput annotation, and the
//! `criterion_group!` / `criterion_main!` macros — measuring simple
//! wall-clock statistics (min / mean / max over `sample_size` samples)
//! and printing one line per benchmark. No statistical analysis, HTML
//! reports, or saved baselines.

use std::time::{Duration, Instant};

/// Benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function(&mut self, name: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let name = name.into();
        let sample_size = self.sample_size;
        run_benchmark(&name, sample_size, None, &mut f);
    }
}

/// A named set of benchmarks sharing throughput/sizing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotates how much work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let name = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&name, self.sample_size, self.throughput, &mut f);
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let name = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&name, self.sample_size, self.throughput, &mut |b| f(b, input));
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion into the printable benchmark id.
pub trait IntoBenchmarkId {
    /// The printable id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

/// How much work one iteration represents, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup; sizing hints are ignored by this
/// stand-in (every batch is one iteration).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Times the benchmark body.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        std::hint::black_box(routine());
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        std::hint::black_box(routine(input));
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // One untimed warm-up sample, then `sample_size` timed ones.
    let mut bencher = Bencher { elapsed: Duration::ZERO };
    f(&mut bencher);

    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        samples.push(bencher.elapsed);
    }
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    let mean = samples.iter().sum::<Duration>() / sample_size as u32;

    let rate = throughput
        .map(|t| match t {
            Throughput::Elements(n) => format!("  {:>12}/s", per_second(n, mean)),
            Throughput::Bytes(n) => format!("  {:>10} B/s", per_second(n, mean)),
        })
        .unwrap_or_default();
    println!("{name:<48} [{} .. {} .. {}]{rate}", fmt_dur(min), fmt_dur(mean), fmt_dur(max));
}

fn per_second(per_iter: u64, mean: Duration) -> String {
    let secs = mean.as_secs_f64();
    if secs <= 0.0 {
        return "inf".into();
    }
    let rate = per_iter as f64 / secs;
    if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2}k", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Re-export so `use criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Declares a group of benchmark functions and its configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benchers_run_bodies() {
        let mut c = Criterion::default().sample_size(2);
        let mut runs = 0;
        {
            let mut group = c.benchmark_group("g");
            group.throughput(Throughput::Elements(4));
            group.bench_function("f", |b| b.iter(|| runs += 1));
            group.finish();
        }
        // 1 warm-up + 2 samples.
        assert_eq!(runs, 3);
    }

    #[test]
    fn iter_batched_threads_setup_values() {
        let mut c = Criterion::default().sample_size(1);
        let mut total = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |v| total += v * 2, BatchSize::SmallInput)
        });
        assert_eq!(total, 84); // warm-up + 1 sample
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_dur(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_dur(Duration::from_micros(1500)), "1.500 ms");
        assert!(fmt_dur(Duration::from_secs(2)).ends_with(" s"));
    }
}
