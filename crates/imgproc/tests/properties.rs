//! Property tests for the application substrate: PSNR metric axioms,
//! filter output sanity on arbitrary images, injection statistics and
//! profile-reordering invariants.

use proptest::collection::vec;
use proptest::prelude::*;
use tevot_imgproc::{
    psnr_db, Application, ExactArithmetic, FaultyArithmetic, FuArithmetic as _, FuErrorRates,
    GrayImage, ProfilingArithmetic,
};
use tevot_netlist::fu::FunctionalUnit;

fn image(width: usize, height: usize) -> impl Strategy<Value = GrayImage> {
    vec(any::<u8>(), width * height)
        .prop_map(move |pixels| GrayImage::from_pixels(width, height, pixels))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// PSNR is symmetric, and only identical images reach infinity.
    #[test]
    fn psnr_axioms(a in image(8, 6), b in image(8, 6)) {
        let ab = psnr_db(&a, &b);
        let ba = psnr_db(&b, &a);
        prop_assert_eq!(ab, ba);
        prop_assert_eq!(psnr_db(&a, &a), f64::INFINITY);
        if a != b {
            prop_assert!(ab.is_finite());
            prop_assert!(ab > 0.0);
        }
    }

    /// Both filters are total over arbitrary images and preserve
    /// dimensions; exact arithmetic makes them deterministic.
    #[test]
    fn filters_are_total_and_deterministic(img in image(9, 7)) {
        for app in Application::ALL {
            let once = app.run(&img, &mut ExactArithmetic);
            let twice = app.run(&img, &mut ExactArithmetic);
            prop_assert_eq!(&once, &twice, "{} must be deterministic", app);
            prop_assert_eq!(once.width(), img.width());
            prop_assert_eq!(once.height(), img.height());
        }
    }

    /// Gaussian smoothing never exceeds the input's dynamic range.
    #[test]
    fn gaussian_respects_range(img in image(10, 10)) {
        let out = Application::Gaussian.run(&img, &mut ExactArithmetic);
        let (lo, hi) = img.pixel_range();
        for &p in out.pixels() {
            // +1 tolerates the +0.5 FP rounding offset.
            prop_assert!(p >= lo.saturating_sub(1) && p <= hi.saturating_add(1));
        }
    }

    /// Zero injection rates are a strict no-op for any image.
    #[test]
    fn zero_rates_are_identity(img in image(8, 8), seed: u64) {
        for app in Application::ALL {
            let exact = app.run(&img, &mut ExactArithmetic);
            let mut faulty = FaultyArithmetic::new(FuErrorRates::default(), seed);
            prop_assert_eq!(app.run(&img, &mut faulty), exact);
            prop_assert_eq!(faulty.injected(), 0);
        }
    }

    /// Wavefront transposition is a permutation: it preserves each FU
    /// stream as a multiset.
    #[test]
    fn transpose_is_a_permutation(
        pairs in vec((any::<u32>(), any::<u32>()), 1..8),
        groups in 1usize..5,
        wavefront in 1usize..4,
    ) {
        let mut prof = ProfilingArithmetic::new();
        for g in 0..groups {
            for &(a, b) in &pairs {
                let _ = prof.int_add(a ^ g as u32, b);
            }
        }
        let t = prof.wavefront_transposed(groups, wavefront);
        let mut before: Vec<(u32, u32)> =
            prof.workload(FunctionalUnit::IntAdd, "x", None).operands().to_vec();
        let mut after: Vec<(u32, u32)> =
            t.workload(FunctionalUnit::IntAdd, "x", None).operands().to_vec();
        before.sort_unstable();
        after.sort_unstable();
        prop_assert_eq!(before, after);
    }
}
