//! Application workload profiling.
//!
//! The paper profiles its application datasets "by simulating the OpenCL
//! codes of these applications with customized Multi2Sim"; here the
//! kernels run over the synthetic corpus with [`ProfilingArithmetic`],
//! which records the operand stream each functional unit sees.

use tevot::Workload;
use tevot_netlist::fu::FunctionalUnit;

use crate::arith::ProfilingArithmetic;
use crate::filters::Application;
use crate::image::GrayImage;

/// Work-items per SIMD wavefront in the profiled execution order (a
/// quarter of an AMD wavefront — small enough that a profile slice spans
/// several instruction slots).
pub const WAVEFRONT: usize = 16;

/// Workgroup tile edge: work-items traverse the image in 8x8 tiles, the
/// standard OpenCL image-kernel dispatch shape. A 16-item wavefront
/// therefore spans two tile rows, so consecutive same-slot operands differ
/// in both x and y.
pub const TILE: usize = 8;

/// Pixel indices in 8x8-tile dispatch order.
fn tile_order(width: usize, height: usize) -> Vec<usize> {
    let mut order = Vec::with_capacity(width * height);
    for ty in (0..height).step_by(TILE) {
        for tx in (0..width).step_by(TILE) {
            for y in ty..(ty + TILE).min(height) {
                for x in tx..(tx + TILE).min(width) {
                    order.push(y * width + x);
                }
            }
        }
    }
    order
}

/// The operand streams recorded from one application over a corpus: one
/// [`Workload`] per functional unit.
#[derive(Debug, Clone)]
pub struct ApplicationProfile {
    app: Application,
    workloads: Vec<(FunctionalUnit, Workload)>,
}

impl ApplicationProfile {
    /// The profiled application.
    pub fn application(&self) -> Application {
        self.app
    }

    /// The recorded workload for one FU.
    ///
    /// # Panics
    ///
    /// Never: both applications exercise all four FUs.
    pub fn workload(&self, fu: FunctionalUnit) -> &Workload {
        &self.workloads.iter().find(|(f, _)| *f == fu).expect("all FUs are profiled").1
    }
}

/// Runs `app` over `corpus` and records each FU's operand stream, capped
/// at `max_ops_per_fu` pairs (application kernels issue millions of ops;
/// the cap keeps characterization tractable, like the paper's 5 % image
/// sampling).
///
/// The target is spread evenly across the corpus: each image contributes
/// whole wavefront blocks (every instruction slot of a group of
/// work-items) from its own operand stream, so any contiguous slice of the
/// profile sees the kernel's full op mix. A prefix of the profile covers
/// the leading images and a suffix the trailing ones, so a train/test
/// split of the stream is a split *by images* — matching the paper's "5 %
/// randomly-picked images as training data; the rest images as testing
/// data". The returned workloads may exceed `target_ops_per_fu` (blocks
/// are never cut).
///
/// The workload names follow the paper's dataset labels: `sobel_data` /
/// `gauss_data`.
///
/// # Panics
///
/// Panics on an empty corpus or a zero target.
pub fn profile_application(
    app: Application,
    corpus: &[GrayImage],
    target_ops_per_fu: usize,
) -> ApplicationProfile {
    assert!(!corpus.is_empty(), "empty corpus");
    assert!(target_ops_per_fu > 0, "zero operand target");
    let per_image = target_ops_per_fu.div_ceil(corpus.len());
    let mut merged = ProfilingArithmetic::new();
    for image in corpus {
        let mut prof = ProfilingArithmetic::new();
        let _ = app.run(image, &mut prof);
        // Re-order each image's stream from program order (all ops of
        // pixel 0, then pixel 1, ...) to the order a SIMT machine's FU
        // actually sees: work-items dispatched in 8x8 tiles, and within
        // each 16-item wavefront one instruction slot across all items,
        // then the next slot. Multi2Sim, the paper's profiler, executes
        // kernels across work-items in lock-step the same way — and this
        // ordering is what makes the history input x[t-1] (the
        // neighbouring work-item's operands) genuinely informative rather
        // than implied by x[t].
        let pixels = image.width() * image.height();
        let order = tile_order(image.width(), image.height());
        let simt = prof.wavefront_transposed_by(&order, WAVEFRONT);
        for fu in FunctionalUnit::ALL {
            // Contribute whole wavefront blocks (K slots x WAVEFRONT
            // items) so every op slot is represented.
            let k = simt.count(fu) / pixels;
            let block = k * WAVEFRONT;
            let take = per_image.div_ceil(block.max(1)).max(1) * block.max(1);
            merged.extend_from(&simt, fu, take);
        }
    }
    let name = match app {
        Application::Sobel => "sobel_data",
        Application::Gaussian => "gauss_data",
    };
    let workloads =
        FunctionalUnit::ALL.iter().map(|&fu| (fu, merged.workload(fu, name, None))).collect();
    ApplicationProfile { app, workloads }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::synthetic_corpus;

    #[test]
    fn profiles_every_fu_in_whole_blocks() {
        let corpus = synthetic_corpus(2, 16, 16, 9);
        let profile = profile_application(Application::Sobel, &corpus, 100);
        let pixels = 16 * 16;
        for fu in FunctionalUnit::ALL {
            let w = profile.workload(fu);
            assert!(w.len() >= 100, "{fu}: {} ops below target", w.len());
            assert_eq!(w.name(), "sobel_data");
            // Whole-block contribution: a multiple of K x WAVEFRONT per
            // image, summed over two images.
            let mut check = ProfilingArithmetic::new();
            let _ = Application::Sobel.run(&corpus[0], &mut check);
            let k = check.count(fu) / pixels;
            assert_eq!(w.len() % (k * super::WAVEFRONT), 0, "{fu} partial block");
        }
        assert_eq!(profile.application(), Application::Sobel);
    }

    #[test]
    fn application_operands_mix_pixels_and_addresses() {
        // The profiled integer streams contain both narrow pixel-valued
        // operands and wide address-arithmetic operands — but their
        // distribution is still far from uniform random (the property
        // behind Fig. 3's dataset gap).
        let corpus = synthetic_corpus(1, 24, 24, 4);
        let profile = profile_application(Application::Gaussian, &corpus, 800);
        let w = profile.workload(FunctionalUnit::IntAdd);
        let narrow = w.operands().iter().filter(|&&(a, b)| a.max(b) < 1 << 12).count();
        let wide = w.operands().iter().filter(|&&(a, b)| a.max(b) > 1 << 24).count();
        assert!(narrow > 0, "no pixel-valued operands recorded");
        assert!(wide > 0, "no address-valued operands recorded");
    }

    #[test]
    fn gauss_name_matches_paper() {
        let corpus = synthetic_corpus(1, 8, 8, 1);
        let profile = profile_application(Application::Gaussian, &corpus, 10);
        assert_eq!(profile.workload(FunctionalUnit::FpAdd).name(), "gauss_data");
    }
}
