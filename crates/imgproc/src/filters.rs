//! The two application kernels of the paper's case study (Sec. V-D):
//! the Sobel edge detector and the Gaussian smoothing filter from the AMD
//! APP SDK, re-expressed over pluggable FU arithmetic.
//!
//! Every add/multiply goes through a [`FuArithmetic`]; shifts, negations,
//! square roots and clamps are free (they are not functional-unit
//! operations in the modeled pipeline).

use crate::arith::FuArithmetic;
use crate::image::GrayImage;

/// Base virtual address the kernels pretend the image buffer lives at.
/// Every neighbour access computes `base + y * width + x` through the
/// integer units, exactly like the compiled OpenCL kernels the paper
/// profiles — address arithmetic is a large share of a real kernel's
/// integer-FU traffic and, unlike the pixel data, uses wide operands.
const IMAGE_BASE_ADDR: i32 = 0x20C0_0040u32 as i32;

/// Loads the clamped pixel at `(x + dx, y + dy)`, issuing the load-address
/// computation through the integer FUs.
fn load_pixel(
    img: &GrayImage,
    arith: &mut impl FuArithmetic,
    x: usize,
    y: usize,
    dx: isize,
    dy: isize,
) -> i32 {
    let xx = (x as isize + dx).clamp(0, img.width() as isize - 1) as i32;
    let yy = (y as isize + dy).clamp(0, img.height() as isize - 1) as i32;
    let row = arith.mul_i32(img.width() as i32, yy);
    let offset = arith.add_i32(row, xx);
    let addr = arith.add_i32(IMAGE_BASE_ADDR, offset);
    let exact = IMAGE_BASE_ADDR.wrapping_add(yy.wrapping_mul(img.width() as i32)).wrapping_add(xx);
    if addr != exact {
        // A timing error corrupted the address computation: the load reads
        // whatever lives at the bogus (buffer-wrapped) location.
        let idx = addr.wrapping_sub(IMAGE_BASE_ADDR) as u32 as usize % img.pixels().len();
        return img.pixels()[idx] as i32;
    }
    img.get(xx as usize, yy as usize) as i32
}

/// The applications of the paper's quality study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Application {
    /// 3x3 Sobel edge detection with a floating-point gradient magnitude.
    Sobel,
    /// 5x5 Gaussian smoothing with integer accumulation and floating-point
    /// normalization.
    Gaussian,
}

impl Application {
    /// Both applications, in the paper's Table IV order.
    pub const ALL: [Application; 2] = [Application::Sobel, Application::Gaussian];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Application::Sobel => "Sobel",
            Application::Gaussian => "Gauss",
        }
    }

    /// Runs the kernel over `input` with the supplied arithmetic.
    pub fn run(self, input: &GrayImage, arith: &mut impl FuArithmetic) -> GrayImage {
        match self {
            Application::Sobel => sobel(input, arith),
            Application::Gaussian => gaussian(input, arith),
        }
    }
}

impl std::fmt::Display for Application {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// 3x3 Sobel edge detector.
///
/// The horizontal/vertical gradients are accumulated through the integer
/// adder and multiplier; the magnitude `sqrt(gx^2 + gy^2) / 2` (as in the
/// AMD APP SDK kernel) goes through the FP multiplier and adder.
pub fn sobel(input: &GrayImage, arith: &mut impl FuArithmetic) -> GrayImage {
    let (w, h) = (input.width(), input.height());
    let mut out = GrayImage::new(w, h);
    for y in 0..h {
        for x in 0..w {
            // The 3x3 neighbourhood, each access paying its address
            // arithmetic through the integer FUs.
            let mut n = [[0i32; 3]; 3];
            for (j, row) in n.iter_mut().enumerate() {
                for (i, cell) in row.iter_mut().enumerate() {
                    *cell = load_pixel(input, arith, x, y, i as isize - 1, j as isize - 1);
                }
            }
            let p = |dx: isize, dy: isize| n[(dy + 1) as usize][(dx + 1) as usize];
            // gx = (p(+1,-1) - p(-1,-1)) + 2*(p(+1,0) - p(-1,0))
            //      + (p(+1,+1) - p(-1,+1))
            let top = arith.add_i32(p(1, -1), -p(-1, -1));
            let mid = arith.add_i32(p(1, 0), -p(-1, 0));
            let mid = arith.mul_i32(2, mid);
            let bot = arith.add_i32(p(1, 1), -p(-1, 1));
            let gx = arith.add_i32(top, mid);
            let gx = arith.add_i32(gx, bot);

            let top = arith.add_i32(p(-1, 1), -p(-1, -1));
            let mid = arith.add_i32(p(0, 1), -p(0, -1));
            let mid = arith.mul_i32(2, mid);
            let bot = arith.add_i32(p(1, 1), -p(1, -1));
            let gy = arith.add_i32(top, mid);
            let gy = arith.add_i32(gy, bot);

            let gx2 = arith.fp_mul(gx as f32, gx as f32);
            let gy2 = arith.fp_mul(gy as f32, gy as f32);
            let sum = arith.fp_add(gx2, gy2);
            let mag = sum.max(0.0).sqrt() / 2.0;
            out.set(x, y, if mag.is_nan() { 0 } else { mag.clamp(0.0, 255.0) as u8 });
        }
    }
    out
}

/// The 5x5 binomial Gaussian kernel rows (outer product, sum 256).
const GAUSS_ROW: [i32; 5] = [1, 4, 6, 4, 1];

/// 5x5 Gaussian smoothing filter.
///
/// Weighted pixels are accumulated through the integer multiplier and
/// adder; the 1/256 normalization and the rounding offset go through the
/// FP multiplier and adder.
pub fn gaussian(input: &GrayImage, arith: &mut impl FuArithmetic) -> GrayImage {
    let (w, h) = (input.width(), input.height());
    let mut out = GrayImage::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let mut acc: i32 = 0;
            for (j, &wy) in GAUSS_ROW.iter().enumerate() {
                for (i, &wx) in GAUSS_ROW.iter().enumerate() {
                    let pix = load_pixel(input, arith, x, y, i as isize - 2, j as isize - 2);
                    let weighted = arith.mul_i32(wx * wy, pix);
                    acc = arith.add_i32(acc, weighted);
                }
            }
            let scaled = arith.fp_mul(acc as f32, 1.0 / 256.0);
            let rounded = arith.fp_add(scaled, 0.5);
            out.set(x, y, if rounded.is_nan() { 0 } else { rounded.clamp(0.0, 255.0) as u8 });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::{ExactArithmetic, FaultyArithmetic, FuErrorRates, ProfilingArithmetic};
    use crate::image::psnr_db;
    use crate::synth::synthetic_image;
    use tevot_netlist::fu::FunctionalUnit;

    #[test]
    fn sobel_flat_image_is_black() {
        let flat = GrayImage::from_pixels(8, 8, vec![77; 64]);
        let out = sobel(&flat, &mut ExactArithmetic);
        assert!(out.pixels().iter().all(|&p| p == 0));
    }

    #[test]
    fn sobel_detects_vertical_edge() {
        let mut img = GrayImage::new(8, 8);
        for y in 0..8 {
            for x in 4..8 {
                img.set(x, y, 200);
            }
        }
        let out = sobel(&img, &mut ExactArithmetic);
        // Edge columns (3 and 4) light up; flat regions stay black.
        assert!(out.get(3, 4) > 100, "edge response {}", out.get(3, 4));
        assert!(out.get(4, 4) > 100);
        assert_eq!(out.get(1, 4), 0);
        assert_eq!(out.get(6, 4), 0);
    }

    #[test]
    fn gaussian_preserves_flat_regions_and_smooths_noise() {
        let flat = GrayImage::from_pixels(8, 8, vec![100; 64]);
        let out = gaussian(&flat, &mut ExactArithmetic);
        assert!(out.pixels().iter().all(|&p| p == 100), "flat stays flat");

        // An impulse spreads out: center keeps the largest share.
        let mut impulse = GrayImage::new(9, 9);
        impulse.set(4, 4, 255);
        let sm = gaussian(&impulse, &mut ExactArithmetic);
        assert!(sm.get(4, 4) > 0 && sm.get(4, 4) < 255);
        assert!(sm.get(4, 4) > sm.get(3, 3));
        assert!(sm.get(3, 3) > 0);
    }

    #[test]
    fn both_apps_exercise_all_four_fus() {
        let img = synthetic_image(16, 16, 1);
        for app in Application::ALL {
            let mut prof = ProfilingArithmetic::new();
            let _ = app.run(&img, &mut prof);
            for fu in FunctionalUnit::ALL {
                assert!(prof.count(fu) > 0, "{app} never used {fu}");
            }
        }
    }

    #[test]
    fn zero_ter_injection_is_exact() {
        let img = synthetic_image(16, 16, 2);
        for app in Application::ALL {
            let reference = app.run(&img, &mut ExactArithmetic);
            let mut faulty = FaultyArithmetic::new(FuErrorRates::default(), 5);
            let out = app.run(&img, &mut faulty);
            assert_eq!(out, reference, "{app} with zero TER must be exact");
        }
    }

    #[test]
    fn high_ter_degrades_quality() {
        let img = synthetic_image(24, 24, 3);
        for app in Application::ALL {
            let reference = app.run(&img, &mut ExactArithmetic);
            let rates = FuErrorRates { int_add: 0.2, int_mul: 0.2, fp_add: 0.2, fp_mul: 0.2 };
            let mut faulty = FaultyArithmetic::new(rates, 6);
            let out = app.run(&img, &mut faulty);
            let q = psnr_db(&reference, &out);
            assert!(q < 30.0, "{app} PSNR {q} suspiciously high at 20% TER");
        }
    }
}
