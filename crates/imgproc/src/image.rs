//! Grayscale images and quality metrics.

/// An 8-bit grayscale image.
///
/// # Examples
///
/// ```
/// use tevot_imgproc::GrayImage;
///
/// let mut img = GrayImage::new(4, 3);
/// img.set(2, 1, 200);
/// assert_eq!(img.get(2, 1), 200);
/// assert_eq!(img.pixels().len(), 12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrayImage {
    width: usize,
    height: usize,
    pixels: Vec<u8>,
}

impl GrayImage {
    /// Creates an all-black image.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image must have non-zero dimensions");
        GrayImage { width, height, pixels: vec![0; width * height] }
    }

    /// Wraps raw row-major pixel data.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != width * height`.
    pub fn from_pixels(width: usize, height: usize, pixels: Vec<u8>) -> Self {
        assert_eq!(pixels.len(), width * height, "pixel buffer size mismatch");
        assert!(width > 0 && height > 0, "image must have non-zero dimensions");
        GrayImage { width, height, pixels }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Row-major pixel data.
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// The image's `(min, max)` pixel values. Total because an image is
    /// never empty (the constructors reject zero dimensions).
    pub fn pixel_range(&self) -> (u8, u8) {
        pixel_range(&self.pixels).expect("images have at least one pixel")
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        assert!(x < self.width && y < self.height, "pixel ({x}, {y}) out of bounds");
        self.pixels[y * self.width + x]
    }

    /// Pixel at `(x, y)` with edge clamping (for kernel borders).
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> u8 {
        let x = x.clamp(0, self.width as isize - 1) as usize;
        let y = y.clamp(0, self.height as isize - 1) as usize;
        self.pixels[y * self.width + x]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: u8) {
        assert!(x < self.width && y < self.height, "pixel ({x}, {y}) out of bounds");
        self.pixels[y * self.width + x] = value;
    }

    /// Serializes as a binary PGM (P5) document — the artifact format for
    /// the Fig. 4 output images.
    pub fn to_pgm(&self) -> Vec<u8> {
        let mut out = format!("P5\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.extend_from_slice(&self.pixels);
        out
    }
}

/// The `(min, max)` of a pixel buffer in one pass, or `None` when it is
/// empty — the graceful alternative to `iter().min().unwrap()` on
/// possibly-empty slices.
pub fn pixel_range(pixels: &[u8]) -> Option<(u8, u8)> {
    pixels.iter().fold(None, |range, &p| match range {
        None => Some((p, p)),
        Some((lo, hi)) => Some((lo.min(p), hi.max(p))),
    })
}

/// Peak signal-to-noise ratio of `image` against `reference`, in decibels.
/// Identical images yield `f64::INFINITY`.
///
/// # Panics
///
/// Panics if the dimensions differ.
pub fn psnr_db(reference: &GrayImage, image: &GrayImage) -> f64 {
    assert_eq!(reference.width(), image.width(), "width mismatch");
    assert_eq!(reference.height(), image.height(), "height mismatch");
    let n = reference.pixels().len() as f64;
    let mse: f64 = reference
        .pixels()
        .iter()
        .zip(image.pixels())
        .map(|(&a, &b)| {
            let d = a as f64 - b as f64;
            d * d
        })
        .sum::<f64>()
        / n;
    if mse == 0.0 {
        return f64::INFINITY;
    }
    10.0 * (255.0f64 * 255.0 / mse).log10()
}

/// The paper's acceptability threshold: an output image is acceptable iff
/// its PSNR is at least 30 dB (Sec. V-D).
pub const ACCEPTABLE_PSNR_DB: f64 = 30.0;

/// Classifies an output image against the fault-free reference.
pub fn is_acceptable(reference: &GrayImage, image: &GrayImage) -> bool {
    psnr_db(reference, image) >= ACCEPTABLE_PSNR_DB
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_images_have_infinite_psnr() {
        let img = GrayImage::from_pixels(2, 2, vec![1, 2, 3, 4]);
        assert_eq!(psnr_db(&img, &img), f64::INFINITY);
        assert!(is_acceptable(&img, &img));
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let reference = GrayImage::from_pixels(2, 2, vec![100, 100, 100, 100]);
        let slightly = GrayImage::from_pixels(2, 2, vec![101, 100, 100, 100]);
        let badly = GrayImage::from_pixels(2, 2, vec![0, 255, 0, 255]);
        assert!(psnr_db(&reference, &slightly) > psnr_db(&reference, &badly));
        assert!(is_acceptable(&reference, &slightly));
        assert!(!is_acceptable(&reference, &badly));
    }

    #[test]
    fn known_psnr_value() {
        // Uniform error of 1 on every pixel: MSE = 1, PSNR = 20 log10(255).
        let a = GrayImage::from_pixels(1, 4, vec![10, 20, 30, 40]);
        let b = GrayImage::from_pixels(1, 4, vec![11, 21, 31, 41]);
        let expect = 20.0 * 255.0f64.log10();
        assert!((psnr_db(&a, &b) - expect).abs() < 1e-9);
    }

    #[test]
    fn pixel_range_handles_empty_and_degenerate_buffers() {
        assert_eq!(pixel_range(&[]), None);
        assert_eq!(pixel_range(&[42]), Some((42, 42)));
        assert_eq!(pixel_range(&[9, 3, 200, 3]), Some((3, 200)));
        let img = GrayImage::from_pixels(2, 2, vec![7, 1, 9, 4]);
        assert_eq!(img.pixel_range(), (1, 9));
    }

    #[test]
    fn clamped_access() {
        let img = GrayImage::from_pixels(2, 2, vec![1, 2, 3, 4]);
        assert_eq!(img.get_clamped(-5, 0), 1);
        assert_eq!(img.get_clamped(5, 5), 4);
    }

    #[test]
    fn pgm_header() {
        let img = GrayImage::from_pixels(3, 2, vec![0, 1, 2, 3, 4, 5]);
        let pgm = img.to_pgm();
        assert!(pgm.starts_with(b"P5\n3 2\n255\n"));
        assert_eq!(pgm.len(), 11 + 6);
    }
}
