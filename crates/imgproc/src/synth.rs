//! Deterministic synthetic image corpus.
//!
//! The paper uses the butterfly category of Caltech-101 (ref. 9); that dataset
//! is not redistributable here, so the corpus is synthesized with the same
//! properties the experiments rely on: smooth regions, strong edges and
//! mid-frequency texture, i.e. pixel-valued operands whose statistics are
//! far from uniform random (the contrast that drives Fig. 3's
//! `random_data` vs `sobel_data`/`gauss_data` gap).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::image::GrayImage;

/// Generates one synthetic textured image.
///
/// The composition is a low-frequency illumination gradient, a couple of
/// sinusoidal textures, several soft-edged elliptical blobs ("wings") and
/// light deterministic noise.
pub fn synthetic_image(width: usize, height: usize, seed: u64) -> GrayImage {
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
    let mut img = GrayImage::new(width, height);

    let base: f64 = rng.gen_range(60.0..160.0);
    let grad_x: f64 = rng.gen_range(-40.0..40.0);
    let grad_y: f64 = rng.gen_range(-40.0..40.0);
    let tex_fx: f64 = rng.gen_range(0.05..0.35);
    let tex_fy: f64 = rng.gen_range(0.05..0.35);
    let tex_amp: f64 = rng.gen_range(5.0..25.0);

    struct Blob {
        cx: f64,
        cy: f64,
        rx: f64,
        ry: f64,
        angle: f64,
        level: f64,
    }
    let blobs: Vec<Blob> = (0..rng.gen_range(3..7))
        .map(|_| Blob {
            cx: rng.gen_range(0.0..width as f64),
            cy: rng.gen_range(0.0..height as f64),
            rx: rng.gen_range(width as f64 * 0.08..width as f64 * 0.35),
            ry: rng.gen_range(height as f64 * 0.08..height as f64 * 0.35),
            angle: rng.gen_range(0.0..std::f64::consts::PI),
            level: rng.gen_range(-90.0..90.0),
        })
        .collect();

    for y in 0..height {
        for x in 0..width {
            let (fx, fy) = (x as f64 / width as f64, y as f64 / height as f64);
            let mut v = base + grad_x * fx + grad_y * fy;
            v += tex_amp * (tex_fx * x as f64).sin() * (tex_fy * y as f64).cos();
            for b in &blobs {
                let (dx, dy) = (x as f64 - b.cx, y as f64 - b.cy);
                let (c, s) = (b.angle.cos(), b.angle.sin());
                let (u, w) = (dx * c + dy * s, -dx * s + dy * c);
                let d = (u / b.rx).powi(2) + (w / b.ry).powi(2);
                if d < 1.0 {
                    // Soft edge: full contribution inside, fading at rim.
                    v += b.level * (1.0 - d).min(0.25) * 4.0;
                }
            }
            // Very light pixel noise; photographic images are locally
            // smooth, so gradients in flat regions stay near zero instead
            // of flipping sign at every pixel.
            v += rng.gen_range(-0.8..0.8);
            img.set(x, y, v.clamp(0.0, 255.0) as u8);
        }
    }
    img
}

/// Generates a deterministic corpus of `count` images.
///
/// # Panics
///
/// Panics if `count` is zero.
pub fn synthetic_corpus(count: usize, width: usize, height: usize, seed: u64) -> Vec<GrayImage> {
    assert!(count > 0, "empty corpus requested");
    (0..count).map(|i| synthetic_image(width, height, seed ^ (i as u64) << 32 | i as u64)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = synthetic_image(32, 24, 7);
        let b = synthetic_image(32, 24, 7);
        let c = synthetic_image(32, 24, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn images_have_texture_and_edges() {
        let img = synthetic_image(64, 64, 3);
        // Pixel value diversity: a natural-ish image uses a wide range.
        let (min, max) = img.pixel_range();
        assert!(max - min > 60, "dynamic range {min}..{max} too flat");
        // Horizontal gradient energy must be non-trivial (edges exist).
        let mut grad_energy = 0u64;
        for y in 0..64 {
            for x in 1..64 {
                grad_energy += (img.get(x, y) as i64 - img.get(x - 1, y) as i64).unsigned_abs();
            }
        }
        assert!(grad_energy / (63 * 64) >= 2, "almost no edges");
    }

    #[test]
    fn corpus_images_differ() {
        let corpus = synthetic_corpus(4, 16, 16, 1);
        assert_eq!(corpus.len(), 4);
        assert_ne!(corpus[0], corpus[1]);
        assert_ne!(corpus[2], corpus[3]);
    }
}
