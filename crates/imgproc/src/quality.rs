//! Application output-quality estimation (Sec. V-D, Table IV, Eq. 5).
//!
//! At each (condition, clock-speed) point the paper derives per-FU timing
//! error rates from (a) gate-level simulation and (b) each error model,
//! injects errors at those rates into the application, and classifies each
//! output image as acceptable (PSNR >= 30 dB) or not. A model's
//! *estimation accuracy* is the fraction of points where its verdict
//! matches simulation's.

use crate::arith::{ExactArithmetic, FaultyArithmetic, FuErrorRates};
use crate::filters::Application;
use crate::image::{is_acceptable, psnr_db, GrayImage};

/// The outcome of injecting one TER set into one application run.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectionOutcome {
    /// PSNR (dB) of each output image against the fault-free reference.
    pub psnr_db: Vec<f64>,
    /// Acceptability verdict per image.
    pub acceptable: Vec<bool>,
}

impl InjectionOutcome {
    /// Fraction of acceptable images.
    pub fn acceptance_rate(&self) -> f64 {
        if self.acceptable.is_empty() {
            return 0.0;
        }
        self.acceptable.iter().filter(|&&a| a).count() as f64 / self.acceptable.len() as f64
    }

    /// Mean PSNR over the corpus, with infinite (bit-exact) images capped
    /// at 99 dB for averaging.
    pub fn mean_psnr_db(&self) -> f64 {
        if self.psnr_db.is_empty() {
            return 0.0;
        }
        self.psnr_db.iter().map(|&p| p.min(99.0)).sum::<f64>() / self.psnr_db.len() as f64
    }
}

/// Runs `app` over `corpus` with timing errors injected at `rates`,
/// scoring every output against the fault-free reference.
///
/// # Panics
///
/// Panics on an empty corpus or out-of-range rates.
pub fn inject_and_score(
    app: Application,
    corpus: &[GrayImage],
    rates: FuErrorRates,
    seed: u64,
) -> InjectionOutcome {
    assert!(!corpus.is_empty(), "empty corpus");
    let mut psnrs = Vec::with_capacity(corpus.len());
    let mut flags = Vec::with_capacity(corpus.len());
    for (i, image) in corpus.iter().enumerate() {
        let reference = app.run(image, &mut ExactArithmetic);
        let mut faulty = FaultyArithmetic::new(rates, seed ^ (i as u64) << 17 | i as u64);
        let out = app.run(image, &mut faulty);
        psnrs.push(psnr_db(&reference, &out));
        flags.push(is_acceptable(&reference, &out));
    }
    InjectionOutcome { psnr_db: psnrs, acceptable: flags }
}

/// Eq. 5: the fraction of estimation points where the model's verdict
/// matches the simulation-derived verdict.
///
/// # Panics
///
/// Panics on empty or mismatched verdict sequences.
pub fn estimation_accuracy(model_verdicts: &[bool], simulation_verdicts: &[bool]) -> f64 {
    assert_eq!(
        model_verdicts.len(),
        simulation_verdicts.len(),
        "verdict sequences differ in length"
    );
    assert!(!model_verdicts.is_empty(), "no estimation points");
    let matched = model_verdicts.iter().zip(simulation_verdicts).filter(|(m, s)| m == s).count();
    matched as f64 / model_verdicts.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::synthetic_corpus;

    #[test]
    fn zero_rates_are_always_acceptable() {
        let corpus = synthetic_corpus(2, 16, 16, 5);
        for app in Application::ALL {
            let outcome = inject_and_score(app, &corpus, FuErrorRates::default(), 1);
            assert_eq!(outcome.acceptance_rate(), 1.0, "{app}");
            assert!(outcome.psnr_db.iter().all(|&p| p == f64::INFINITY));
            assert_eq!(outcome.mean_psnr_db(), 99.0);
        }
    }

    #[test]
    fn heavy_rates_are_unacceptable() {
        let corpus = synthetic_corpus(2, 16, 16, 6);
        let rates = FuErrorRates { int_add: 0.3, int_mul: 0.3, fp_add: 0.3, fp_mul: 0.3 };
        for app in Application::ALL {
            let outcome = inject_and_score(app, &corpus, rates, 2);
            assert_eq!(outcome.acceptance_rate(), 0.0, "{app}");
        }
    }

    #[test]
    fn estimation_accuracy_counts_matches() {
        let model = [true, false, true, true];
        let sim = [true, true, true, false];
        assert!((estimation_accuracy(&model, &sim) - 0.5).abs() < 1e-12);
        assert_eq!(estimation_accuracy(&sim, &sim), 1.0);
    }

    #[test]
    fn injection_is_seed_deterministic() {
        let corpus = synthetic_corpus(1, 16, 16, 7);
        let rates = FuErrorRates { int_add: 0.05, ..Default::default() };
        let a = inject_and_score(Application::Sobel, &corpus, rates, 3);
        let b = inject_and_score(Application::Sobel, &corpus, rates, 3);
        let c = inject_and_score(Application::Sobel, &corpus, rates, 4);
        assert_eq!(a, b);
        assert_ne!(a.psnr_db, c.psnr_db);
    }
}
