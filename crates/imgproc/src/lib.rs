//! Image-processing application workloads and timing-error injection for
//! the TEVoT (DAC 2020) reproduction.
//!
//! The paper's case study (Sec. V-D) exposes circuit-level timing errors
//! to the application level: Sobel and Gaussian filters from the AMD APP
//! SDK run over Caltech-101 butterfly images inside the Multi2Sim
//! simulator, which both profiles the FU operand streams and replays
//! timing error rates into the kernels. This crate rebuilds that loop:
//!
//! * [`GrayImage`] + [`synth`] — a deterministic synthetic image corpus
//!   standing in for the butterflies (see DESIGN.md for why the
//!   substitution preserves the experiment);
//! * [`Application`] ([`filters::sobel`], [`filters::gaussian`]) — the
//!   kernels, computing through pluggable [`FuArithmetic`];
//! * [`ProfilingArithmetic`] / [`profile`] — records the `sobel_data` /
//!   `gauss_data` operand workloads used throughout the paper;
//! * [`FaultyArithmetic`] / [`quality`] — TER-driven error injection
//!   (erroneous ops return random values, per ref. 12) and the PSNR >= 30 dB
//!   acceptability pipeline of Table IV.
//!
//! # Examples
//!
//! ```
//! use tevot_imgproc::arith::{FuErrorRates, ExactArithmetic};
//! use tevot_imgproc::quality::inject_and_score;
//! use tevot_imgproc::synth::synthetic_corpus;
//! use tevot_imgproc::Application;
//!
//! let corpus = synthetic_corpus(2, 24, 24, 42);
//! // 2% errors in the integer adder only.
//! let rates = FuErrorRates { int_add: 0.02, ..Default::default() };
//! let outcome = inject_and_score(Application::Sobel, &corpus, rates, 0);
//! assert_eq!(outcome.psnr_db.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod arith;
mod filters;
mod image;
pub mod profile;
pub mod quality;
pub mod synth;

pub use arith::{
    ExactArithmetic, FaultyArithmetic, FuArithmetic, FuErrorRates, ProfilingArithmetic,
};
pub use filters::{gaussian, sobel, Application};
pub use image::{is_acceptable, pixel_range, psnr_db, GrayImage, ACCEPTABLE_PSNR_DB};
