//! Pluggable functional-unit arithmetic for the application kernels.
//!
//! Every arithmetic operation of the Sobel/Gaussian filters is routed
//! through a [`FuArithmetic`] so that one kernel source serves three
//! roles, exactly as Multi2Sim does for the paper:
//!
//! * [`ExactArithmetic`] — fault-free execution (the quality reference);
//! * [`ProfilingArithmetic`] — records every operand pair per FU,
//!   producing the `sobel_data` / `gauss_data` workloads;
//! * [`FaultyArithmetic`] — injects timing errors at per-FU timing error
//!   rates, an erroneous op returning a random value (the paper follows
//!   ref. 12 with the same semantics).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tevot::Workload;
use tevot_netlist::fu::{golden, FunctionalUnit};

/// The arithmetic interface the application kernels compute through.
///
/// Integer results follow the FU port semantics of `tevot-netlist`: the
/// adder returns the exact 33-bit sum, the multiplier the full 64-bit
/// product. Signed kernel arithmetic uses two's-complement operands and
/// truncates to the low 32 bits, like the hardware it models.
pub trait FuArithmetic {
    /// 32-bit integer addition (33-bit result).
    fn int_add(&mut self, a: u32, b: u32) -> u64;
    /// 32-bit integer multiplication (64-bit result).
    fn int_mul(&mut self, a: u32, b: u32) -> u64;
    /// Single-precision addition.
    fn fp_add(&mut self, a: f32, b: f32) -> f32;
    /// Single-precision multiplication.
    fn fp_mul(&mut self, a: f32, b: f32) -> f32;

    /// Signed 32-bit add through the integer adder (low 32 bits).
    fn add_i32(&mut self, a: i32, b: i32) -> i32 {
        self.int_add(a as u32, b as u32) as u32 as i32
    }

    /// Signed 32-bit multiply through the integer multiplier (low 32
    /// bits).
    fn mul_i32(&mut self, a: i32, b: i32) -> i32 {
        self.int_mul(a as u32, b as u32) as u32 as i32
    }
}

/// Fault-free arithmetic backed by the FU reference models.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExactArithmetic;

impl FuArithmetic for ExactArithmetic {
    fn int_add(&mut self, a: u32, b: u32) -> u64 {
        a as u64 + b as u64
    }

    fn int_mul(&mut self, a: u32, b: u32) -> u64 {
        a as u64 * b as u64
    }

    fn fp_add(&mut self, a: f32, b: f32) -> f32 {
        f32::from_bits(golden::fp_add(a.to_bits(), b.to_bits()))
    }

    fn fp_mul(&mut self, a: f32, b: f32) -> f32 {
        f32::from_bits(golden::fp_mul(a.to_bits(), b.to_bits()))
    }
}

/// Records every operand pair issued to each FU while delegating to exact
/// arithmetic — the paper's application profiling step.
#[derive(Debug, Clone, Default)]
pub struct ProfilingArithmetic {
    int_add: Vec<(u32, u32)>,
    int_mul: Vec<(u32, u32)>,
    fp_add: Vec<(u32, u32)>,
    fp_mul: Vec<(u32, u32)>,
}

impl ProfilingArithmetic {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of operations recorded for `fu`.
    pub fn count(&self, fu: FunctionalUnit) -> usize {
        self.stream(fu).len()
    }

    fn stream(&self, fu: FunctionalUnit) -> &[(u32, u32)] {
        match fu {
            FunctionalUnit::IntAdd => &self.int_add,
            FunctionalUnit::IntMul => &self.int_mul,
            FunctionalUnit::FpAdd => &self.fp_add,
            FunctionalUnit::FpMul => &self.fp_mul,
        }
    }

    /// Re-orders every stream from program order to the order a lock-step
    /// SIMD machine's FU sees: work-items are grouped into *wavefronts* of
    /// `wavefront` items, and within each wavefront the ops are emitted
    /// instruction-major (`[slot 0 of items 0..w][slot 1 of items 0..w]
    /// ...`). `groups` is the total number of work-items; each must have
    /// issued the same branch-free op sequence.
    ///
    /// # Panics
    ///
    /// Panics if a stream's length is not a multiple of `groups`, or if
    /// `wavefront` is zero.
    pub fn wavefront_transposed(&self, groups: usize, wavefront: usize) -> ProfilingArithmetic {
        let order: Vec<usize> = (0..groups).collect();
        self.wavefront_transposed_by(&order, wavefront)
    }

    /// Like [`Self::wavefront_transposed`], with an explicit work-item
    /// traversal order (e.g. 8x8 workgroup tiles): `order[i]` is the
    /// original work-item executed as the `i`-th item of the dispatch.
    ///
    /// # Panics
    ///
    /// Panics if a stream's length is not a multiple of `order.len()`, or
    /// if `wavefront` is zero.
    pub fn wavefront_transposed_by(
        &self,
        order: &[usize],
        wavefront: usize,
    ) -> ProfilingArithmetic {
        let groups = order.len();
        assert!(groups > 0, "need at least one work-item");
        assert!(wavefront > 0, "need a non-empty wavefront");
        let transpose = |src: &[(u32, u32)]| -> Vec<(u32, u32)> {
            assert_eq!(
                src.len() % groups,
                0,
                "stream length {} is not a multiple of {groups} work-items",
                src.len()
            );
            let k = src.len() / groups;
            let mut out = Vec::with_capacity(src.len());
            let mut base = 0;
            while base < groups {
                let end = (base + wavefront).min(groups);
                for slot in 0..k {
                    for &item in &order[base..end] {
                        out.push(src[item * k + slot]);
                    }
                }
                base = end;
            }
            out
        };
        ProfilingArithmetic {
            int_add: transpose(&self.int_add),
            int_mul: transpose(&self.int_mul),
            fp_add: transpose(&self.fp_add),
            fp_mul: transpose(&self.fp_mul),
        }
    }

    /// Appends up to `max` leading pairs of `other`'s stream for `fu` to
    /// this profiler's stream (used to merge per-image profiles).
    pub fn extend_from(&mut self, other: &ProfilingArithmetic, fu: FunctionalUnit, max: usize) {
        let src = other.stream(fu);
        let take = max.min(src.len());
        let dst = match fu {
            FunctionalUnit::IntAdd => &mut self.int_add,
            FunctionalUnit::IntMul => &mut self.int_mul,
            FunctionalUnit::FpAdd => &mut self.fp_add,
            FunctionalUnit::FpMul => &mut self.fp_mul,
        };
        dst.extend_from_slice(&src[..take]);
    }

    /// Extracts the recorded operand stream for `fu` as a [`Workload`]
    /// named `name`, optionally capped at `max_len` pairs.
    ///
    /// # Panics
    ///
    /// Panics if nothing was recorded for `fu`.
    pub fn workload(&self, fu: FunctionalUnit, name: &str, max_len: Option<usize>) -> Workload {
        let ops = self.stream(fu);
        assert!(!ops.is_empty(), "no operations recorded for {fu}");
        let take = max_len.unwrap_or(ops.len()).min(ops.len());
        Workload::new(name, ops[..take].to_vec())
    }
}

impl FuArithmetic for ProfilingArithmetic {
    fn int_add(&mut self, a: u32, b: u32) -> u64 {
        self.int_add.push((a, b));
        a as u64 + b as u64
    }

    fn int_mul(&mut self, a: u32, b: u32) -> u64 {
        self.int_mul.push((a, b));
        a as u64 * b as u64
    }

    fn fp_add(&mut self, a: f32, b: f32) -> f32 {
        self.fp_add.push((a.to_bits(), b.to_bits()));
        ExactArithmetic.fp_add(a, b)
    }

    fn fp_mul(&mut self, a: f32, b: f32) -> f32 {
        self.fp_mul.push((a.to_bits(), b.to_bits()));
        ExactArithmetic.fp_mul(a, b)
    }
}

/// Per-FU timing error rates driving an injection run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FuErrorRates {
    /// TER of the integer adder.
    pub int_add: f64,
    /// TER of the integer multiplier.
    pub int_mul: f64,
    /// TER of the FP adder.
    pub fp_add: f64,
    /// TER of the FP multiplier.
    pub fp_mul: f64,
}

impl FuErrorRates {
    /// Builds rates from a per-FU lookup.
    pub fn from_fn(mut f: impl FnMut(FunctionalUnit) -> f64) -> Self {
        FuErrorRates {
            int_add: f(FunctionalUnit::IntAdd),
            int_mul: f(FunctionalUnit::IntMul),
            fp_add: f(FunctionalUnit::FpAdd),
            fp_mul: f(FunctionalUnit::FpMul),
        }
    }

    /// The rate for one FU.
    pub fn rate(&self, fu: FunctionalUnit) -> f64 {
        match fu {
            FunctionalUnit::IntAdd => self.int_add,
            FunctionalUnit::IntMul => self.int_mul,
            FunctionalUnit::FpAdd => self.fp_add,
            FunctionalUnit::FpMul => self.fp_mul,
        }
    }
}

/// Error-injecting arithmetic: each operation fails independently with its
/// FU's TER; a failed operation returns a random value ("we let the FUs
/// return a random value each time they have timing errors", Sec. V-D).
#[derive(Debug, Clone)]
pub struct FaultyArithmetic {
    rates: FuErrorRates,
    rng: SmallRng,
    injected: u64,
}

impl FaultyArithmetic {
    /// Creates an injector with the given rates and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if any rate is outside `[0, 1]`.
    pub fn new(rates: FuErrorRates, seed: u64) -> Self {
        for fu in FunctionalUnit::ALL {
            let r = rates.rate(fu);
            assert!((0.0..=1.0).contains(&r), "TER {r} for {fu} out of range");
        }
        FaultyArithmetic { rates, rng: SmallRng::seed_from_u64(seed), injected: 0 }
    }

    /// Number of errors injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    fn fails(&mut self, fu: FunctionalUnit) -> bool {
        let f = self.rng.gen::<f64>() < self.rates.rate(fu);
        if f {
            self.injected += 1;
        }
        f
    }

    /// A random finite f32 bit pattern (exponent 255 is remapped so that a
    /// NaN/infinity never enters the pixel pipeline).
    fn random_f32(&mut self) -> f32 {
        let mut bits = self.rng.gen::<u32>();
        if bits >> 23 & 0xFF == 0xFF {
            bits &= !(1 << 30);
        }
        f32::from_bits(bits)
    }
}

impl FuArithmetic for FaultyArithmetic {
    fn int_add(&mut self, a: u32, b: u32) -> u64 {
        if self.fails(FunctionalUnit::IntAdd) {
            self.rng.gen::<u64>() & 0x1_FFFF_FFFF
        } else {
            a as u64 + b as u64
        }
    }

    fn int_mul(&mut self, a: u32, b: u32) -> u64 {
        if self.fails(FunctionalUnit::IntMul) {
            self.rng.gen::<u64>()
        } else {
            a as u64 * b as u64
        }
    }

    fn fp_add(&mut self, a: f32, b: f32) -> f32 {
        if self.fails(FunctionalUnit::FpAdd) {
            self.random_f32()
        } else {
            ExactArithmetic.fp_add(a, b)
        }
    }

    fn fp_mul(&mut self, a: f32, b: f32) -> f32 {
        if self.fails(FunctionalUnit::FpMul) {
            self.random_f32()
        } else {
            ExactArithmetic.fp_mul(a, b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_matches_native_semantics() {
        let mut a = ExactArithmetic;
        assert_eq!(a.int_add(u32::MAX, 1), 1 << 32);
        assert_eq!(a.int_mul(1 << 16, 1 << 16), 1 << 32);
        assert_eq!(a.fp_add(1.5, 2.25), 3.75);
        assert_eq!(a.fp_mul(3.0, -2.0), -6.0);
        assert_eq!(a.add_i32(-5, 3), -2);
        assert_eq!(a.mul_i32(-4, 3), -12);
    }

    #[test]
    fn profiler_records_streams() {
        let mut p = ProfilingArithmetic::new();
        let _ = p.int_add(1, 2);
        let _ = p.int_add(3, 4);
        let _ = p.fp_mul(1.5, 2.0);
        assert_eq!(p.count(FunctionalUnit::IntAdd), 2);
        assert_eq!(p.count(FunctionalUnit::FpMul), 1);
        assert_eq!(p.count(FunctionalUnit::IntMul), 0);
        let w = p.workload(FunctionalUnit::IntAdd, "sobel_data", Some(1));
        assert_eq!(w.operands(), &[(1, 2)]);
        assert_eq!(w.name(), "sobel_data");
    }

    #[test]
    fn transpose_is_instruction_major_within_wavefronts() {
        let mut p = ProfilingArithmetic::new();
        // Three "work-items", each issuing two int adds; wavefront of 2.
        for item in 0..3u32 {
            for slot in 0..2u32 {
                let _ = p.int_add(item, slot);
            }
        }
        let t = p.wavefront_transposed(3, 2);
        let w = t.workload(FunctionalUnit::IntAdd, "x", None);
        assert_eq!(
            w.operands(),
            &[(0, 0), (1, 0), (0, 1), (1, 1), (2, 0), (2, 1)],
            "slot-major inside each wavefront, wavefronts in order"
        );
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn transpose_requires_uniform_op_count() {
        let mut p = ProfilingArithmetic::new();
        let _ = p.int_add(1, 1);
        let _ = p.wavefront_transposed(2, 2);
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let mut f = FaultyArithmetic::new(FuErrorRates::default(), 1);
        for i in 0..100u32 {
            assert_eq!(f.int_add(i, 1), i as u64 + 1);
        }
        assert_eq!(f.injected(), 0);
    }

    #[test]
    fn unit_rate_always_injects() {
        let rates = FuErrorRates { int_add: 1.0, ..Default::default() };
        let mut f = FaultyArithmetic::new(rates, 1);
        let mut corrupted = 0;
        for i in 0..200u32 {
            if f.int_add(i, 1) != i as u64 + 1 {
                corrupted += 1;
            }
        }
        assert_eq!(f.injected(), 200);
        // A random 33-bit value occasionally equals the true sum; nearly
        // all must differ.
        assert!(corrupted > 190);
        // FP path untouched at rate 0.
        assert_eq!(f.fp_add(1.0, 2.0), 3.0);
    }

    #[test]
    fn injection_rate_is_statistical() {
        let rates = FuErrorRates { fp_mul: 0.25, ..Default::default() };
        let mut f = FaultyArithmetic::new(rates, 42);
        for _ in 0..4000 {
            let _ = f.fp_mul(1.0, 1.0);
        }
        let freq = f.injected() as f64 / 4000.0;
        assert!((freq - 0.25).abs() < 0.03, "observed rate {freq}");
    }

    #[test]
    fn injected_floats_are_finite() {
        let rates = FuErrorRates { fp_add: 1.0, ..Default::default() };
        let mut f = FaultyArithmetic::new(rates, 9);
        for _ in 0..500 {
            let v = f.fp_add(1.0, 1.0);
            assert!(!v.is_nan() && !v.is_infinite(), "injected {v}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_rate() {
        let rates = FuErrorRates { int_add: 1.5, ..Default::default() };
        let _ = FaultyArithmetic::new(rates, 0);
    }
}
