//! Linear support vector machine trained with Pegasos (primal
//! sub-gradient descent on the hinge loss).
//!
//! The paper evaluates an SVM among its Table II candidates; consistent
//! with its observation that SVM training dominates wall-clock time, this
//! is the most iteration-hungry estimator in the crate.

use rand::Rng;

use crate::dataset::{Dataset, Scaler};

/// Hyper-parameters of the [`LinearSvm`].
#[derive(Debug, Clone, PartialEq)]
pub struct SvmParams {
    /// Regularization strength (Pegasos lambda).
    pub lambda: f64,
    /// Number of passes over the training data.
    pub epochs: usize,
}

impl Default for SvmParams {
    fn default() -> Self {
        SvmParams { lambda: 1e-4, epochs: 20 }
    }
}

/// A binary linear SVM classifier.
///
/// Labels are 0.0 / 1.0 externally and mapped to -1 / +1 internally.
/// Features are standardized by a fitted [`Scaler`] so that the margin is
/// not dominated by large-scale features (temperature vs. bit values).
///
/// # Examples
///
/// ```
/// use tevot_ml::{Dataset, LinearSvm, SvmParams};
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let mut data = Dataset::new(2);
/// for i in 0..200 {
///     let (a, b) = ((i % 14) as f64, (i % 11) as f64);
///     data.push(&[a, b], (2.0 * a + b > 17.0) as u8 as f64);
/// }
/// let mut rng = SmallRng::seed_from_u64(3);
/// let svm = LinearSvm::fit(&data, &SvmParams::default(), &mut rng);
/// assert!(svm.predict(&[13.0, 10.0]));
/// assert!(!svm.predict(&[0.0, 0.0]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearSvm {
    weights: Vec<f64>,
    bias: f64,
    scaler: Scaler,
}

impl LinearSvm {
    /// Trains with Pegasos on binary labels.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset, non-positive `lambda` or zero epochs.
    pub fn fit(data: &Dataset, params: &SvmParams, rng: &mut impl Rng) -> Self {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        assert!(params.lambda > 0.0, "lambda must be positive");
        assert!(params.epochs > 0, "need at least one epoch");
        let scaler = Scaler::fit(data);
        let train = scaler.transform(data);
        let n = train.len();
        let d = train.num_features();
        let mut w = vec![0.0; d];
        let mut bias = 0.0;
        let mut t: u64 = 0;
        for _ in 0..params.epochs {
            tevot_obs::metrics::ML_TRAIN_ITERATIONS.incr();
            for _ in 0..n {
                t += 1;
                let i = rng.gen_range(0..n);
                let row = train.row(i);
                let y = if train.label(i) >= 0.5 { 1.0 } else { -1.0 };
                let eta = 1.0 / (params.lambda * t as f64);
                let margin = y * (dot(&w, row) + bias);
                // w <- (1 - eta*lambda) w [+ eta*y*x if margin violated]
                let shrink = 1.0 - eta * params.lambda;
                for wi in &mut w {
                    *wi *= shrink;
                }
                if margin < 1.0 {
                    for (wi, &x) in w.iter_mut().zip(row) {
                        *wi += eta * y * x;
                    }
                    bias += eta * y;
                }
            }
        }
        LinearSvm { weights: w, bias, scaler }
    }

    /// Signed decision value (positive means class 1).
    pub fn decision(&self, row: &[f64]) -> f64 {
        let mut scaled = Vec::with_capacity(row.len());
        self.scaler.transform_into(row, &mut scaled);
        dot(&self.weights, &scaled) + self.bias
    }

    /// Class decision for one row.
    pub fn predict(&self, row: &[f64]) -> bool {
        self.decision(row) >= 0.0
    }

    /// Predicts every row of a dataset.
    pub fn predict_batch(&self, data: &Dataset) -> Vec<bool> {
        (0..data.len()).map(|i| self.predict(data.row(i))).collect()
    }

    /// The learned weight vector (in standardized feature space).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(11)
    }

    #[test]
    fn separates_clearly_separable_data() {
        let mut d = Dataset::new(2);
        let mut r = rng();
        for _ in 0..300 {
            let a: f64 = r.gen_range(-1.0..1.0);
            let b: f64 = r.gen_range(-1.0..1.0);
            d.push(&[a, b], (a - b > 0.0) as u8 as f64);
        }
        let svm = LinearSvm::fit(&d, &SvmParams::default(), &mut r);
        let acc = (0..d.len()).filter(|&i| svm.predict(d.row(i)) == (d.label(i) == 1.0)).count()
            as f64
            / d.len() as f64;
        assert!(acc > 0.97, "accuracy {acc}");
    }

    #[test]
    fn decision_scales_with_margin() {
        let mut d = Dataset::new(1);
        for i in 0..100 {
            let x = i as f64 / 50.0 - 1.0;
            d.push(&[x], (x > 0.0) as u8 as f64);
        }
        let svm = LinearSvm::fit(&d, &SvmParams::default(), &mut rng());
        assert!(svm.decision(&[0.9]) > svm.decision(&[0.1]));
        assert!(svm.decision(&[-0.9]) < 0.0);
    }

    #[test]
    fn weights_highlight_informative_features() {
        // Feature 2 is the label; features 0 and 1 are noise.
        let mut d = Dataset::new(3);
        let mut r = rng();
        for _ in 0..500 {
            let label = r.gen_range(0..2) as f64;
            d.push(&[r.gen_range(0.0..1.0), r.gen_range(0.0..1.0), label], label);
        }
        let svm = LinearSvm::fit(&d, &SvmParams::default(), &mut r);
        let w = svm.weights();
        assert!(w[2].abs() > 3.0 * w[0].abs(), "w = {w:?}");
        assert!(w[2].abs() > 3.0 * w[1].abs(), "w = {w:?}");
    }

    #[test]
    #[should_panic(expected = "lambda must be positive")]
    fn rejects_bad_lambda() {
        let mut d = Dataset::new(1);
        d.push(&[0.0], 0.0);
        let _ = LinearSvm::fit(&d, &SvmParams { lambda: 0.0, epochs: 1 }, &mut rng());
    }
}
