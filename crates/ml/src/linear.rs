//! Linear (ridge) regression via the normal equations, and its thresholded
//! classifier form.
//!
//! "LR and SVM can learn weights w on each feature including each bit
//! position. By using these two methods, we consider the disparity of
//! significance of different bit positions in sensitizing paths" (paper
//! Sec. IV-B2).

use crate::dataset::Dataset;

/// Dense symmetric positive-definite solver (Cholesky decomposition),
/// sized for TEVoT's 130-feature problems.
fn cholesky_solve(mut a: Vec<f64>, mut b: Vec<f64>, n: usize) -> Option<Vec<f64>> {
    // Decompose A = L L^T in place (lower triangle).
    for j in 0..n {
        let mut diag = a[j * n + j];
        for k in 0..j {
            diag -= a[j * n + k] * a[j * n + k];
        }
        if diag <= 0.0 {
            return None;
        }
        let diag = diag.sqrt();
        a[j * n + j] = diag;
        for i in j + 1..n {
            let mut v = a[i * n + j];
            for k in 0..j {
                v -= a[i * n + k] * a[j * n + k];
            }
            a[i * n + j] = v / diag;
        }
    }
    // Forward substitution: L y = b.
    for i in 0..n {
        let mut v = b[i];
        for k in 0..i {
            v -= a[i * n + k] * b[k];
        }
        b[i] = v / a[i * n + i];
    }
    // Back substitution: L^T x = y.
    for i in (0..n).rev() {
        let mut v = b[i];
        for k in i + 1..n {
            v -= a[k * n + i] * b[k];
        }
        b[i] = v / a[i * n + i];
    }
    Some(b)
}

/// Ridge-regularized linear regression fitted by the normal equations.
///
/// # Examples
///
/// ```
/// use tevot_ml::{Dataset, LinearRegression};
///
/// let mut data = Dataset::new(2);
/// for i in 0..50 {
///     let (x, y) = (i as f64, (i * i % 7) as f64);
///     data.push(&[x, y], 3.0 * x - 2.0 * y + 5.0);
/// }
/// let lr = LinearRegression::fit(&data, 1e-9);
/// assert!((lr.predict(&[10.0, 3.0]) - (30.0 - 6.0 + 5.0)).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearRegression {
    weights: Vec<f64>,
    intercept: f64,
}

impl LinearRegression {
    /// Fits `w, b` minimizing `||Xw + b - y||^2 + lambda ||w||^2`.
    ///
    /// A small `lambda` (e.g. `1e-6`) keeps the normal equations
    /// well-conditioned when features are collinear; the ridge penalty is
    /// raised automatically (up to 1e3 times) in the rare case the system
    /// is still singular.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset or a negative `lambda`.
    pub fn fit(data: &Dataset, lambda: f64) -> Self {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        assert!(lambda >= 0.0, "negative ridge penalty");
        let d = data.num_features();
        let n = data.len() as f64;
        // Augment with a bias column handled implicitly by centering.
        let mut x_mean = vec![0.0; d];
        let mut y_mean = 0.0;
        for (row, label) in data.iter() {
            for (m, &x) in x_mean.iter_mut().zip(row) {
                *m += x;
            }
            y_mean += label;
        }
        for m in &mut x_mean {
            *m /= n;
        }
        y_mean /= n;

        // Gram matrix of centered features.
        let mut gram = vec![0.0; d * d];
        let mut xty = vec![0.0; d];
        let mut centered = vec![0.0; d];
        for (row, label) in data.iter() {
            for (c, (&x, &m)) in centered.iter_mut().zip(row.iter().zip(&x_mean)) {
                *c = x - m;
            }
            let yc = label - y_mean;
            for i in 0..d {
                let ci = centered[i];
                if ci == 0.0 {
                    continue;
                }
                xty[i] += ci * yc;
                let grow = &mut gram[i * d..(i + 1) * d];
                for (g, &cj) in grow[i..].iter_mut().zip(&centered[i..]) {
                    *g += ci * cj;
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..d {
            for j in 0..i {
                gram[i * d + j] = gram[j * d + i];
            }
        }

        let mut ridge = lambda.max(1e-9);
        let weights = loop {
            let mut a = gram.clone();
            for i in 0..d {
                a[i * d + i] += ridge;
            }
            if let Some(w) = cholesky_solve(a, xty.clone(), d) {
                break w;
            }
            ridge *= 10.0;
            assert!(ridge <= lambda.max(1e-9) * 1e3, "normal equations remained singular");
        };

        let intercept = y_mean - weights.iter().zip(&x_mean).map(|(&w, &m)| w * m).sum::<f64>();
        LinearRegression { weights, intercept }
    }

    /// The fitted weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Predicts one row.
    ///
    /// # Panics
    ///
    /// Panics on a width mismatch.
    pub fn predict(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.weights.len(), "feature width mismatch");
        self.intercept + self.weights.iter().zip(row).map(|(&w, &x)| w * x).sum::<f64>()
    }

    /// Predicts every row of a dataset.
    pub fn predict_batch(&self, data: &Dataset) -> Vec<f64> {
        (0..data.len()).map(|i| self.predict(data.row(i))).collect()
    }
}

/// Linear regression on 0/1 labels, thresholded at 0.5 — the "LR"
/// classifier row of the paper's Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearClassifier {
    inner: LinearRegression,
}

impl LinearClassifier {
    /// Fits on binary labels.
    ///
    /// # Panics
    ///
    /// See [`LinearRegression::fit`].
    pub fn fit(data: &Dataset, lambda: f64) -> Self {
        LinearClassifier { inner: LinearRegression::fit(data, lambda) }
    }

    /// Class decision for one row.
    pub fn predict(&self, row: &[f64]) -> bool {
        self.inner.predict(row) >= 0.5
    }

    /// Predicts every row of a dataset.
    pub fn predict_batch(&self, data: &Dataset) -> Vec<bool> {
        (0..data.len()).map(|i| self.predict(data.row(i))).collect()
    }

    /// The underlying regression (weights per bit position, etc.).
    pub fn regression(&self) -> &LinearRegression {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_function() {
        let mut d = Dataset::new(3);
        for i in 0..60 {
            let x = [(i % 5) as f64, (i % 7) as f64, (i % 3) as f64];
            d.push(&x, 2.0 * x[0] - 1.5 * x[1] + 0.25 * x[2] + 7.0);
        }
        let lr = LinearRegression::fit(&d, 1e-9);
        assert!((lr.weights()[0] - 2.0).abs() < 1e-6);
        assert!((lr.weights()[1] + 1.5).abs() < 1e-6);
        assert!((lr.intercept() - 7.0).abs() < 1e-5);
    }

    #[test]
    fn handles_collinear_features() {
        // Feature 1 duplicates feature 0: the Gram matrix is singular
        // without the ridge term.
        let mut d = Dataset::new(2);
        for i in 0..30 {
            let x = i as f64;
            d.push(&[x, x], 4.0 * x);
        }
        let lr = LinearRegression::fit(&d, 1e-6);
        assert!((lr.predict(&[10.0, 10.0]) - 40.0).abs() < 1e-3);
    }

    #[test]
    fn classifier_separates_linear_boundary() {
        let mut d = Dataset::new(2);
        for i in 0..100 {
            let a = (i % 10) as f64;
            let b = (i / 10) as f64;
            d.push(&[a, b], (a + b > 9.0) as u8 as f64);
        }
        let clf = LinearClassifier::fit(&d, 1e-6);
        assert!(clf.predict(&[9.0, 9.0]));
        assert!(!clf.predict(&[0.0, 0.0]));
        let acc = (0..d.len()).filter(|&i| clf.predict(d.row(i)) == (d.label(i) == 1.0)).count()
            as f64
            / d.len() as f64;
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn constant_labels_give_zero_weights() {
        let mut d = Dataset::new(2);
        for i in 0..20 {
            d.push(&[i as f64, (i * i) as f64], 5.0);
        }
        let lr = LinearRegression::fit(&d, 1e-6);
        assert!(lr.weights().iter().all(|w| w.abs() < 1e-9));
        assert!((lr.intercept() - 5.0).abs() < 1e-9);
    }
}
