//! Gradient-boosted regression trees.
//!
//! The paper's Sec. V-E leaves "applying more advanced learning
//! algorithms" to follow-up work; boosted trees are the natural next step
//! above the random forest — they fit the *residuals* of the ensemble so
//! far, which targets exactly the regression-to-the-mean bias that makes
//! a bagged forest under-predict the extreme tail of a delay
//! distribution.

use rand::Rng;

use crate::dataset::Dataset;
use crate::tree::{DecisionTree, Task, ThresholdTable, TreeParams};

/// Hyper-parameters for [`GradientBoostedRegressor`].
#[derive(Debug, Clone, PartialEq)]
pub struct BoostParams {
    /// Number of boosting rounds (trees).
    pub num_rounds: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// Per-tree parameters; boosted trees are conventionally shallow.
    pub tree: TreeParams,
    /// Fraction of rows sampled (without replacement) per round —
    /// stochastic gradient boosting; `1.0` uses every row.
    pub subsample: f64,
}

impl Default for BoostParams {
    fn default() -> Self {
        BoostParams {
            num_rounds: 60,
            learning_rate: 0.2,
            tree: TreeParams { max_depth: 6, ..TreeParams::default() },
            subsample: 0.8,
        }
    }
}

/// A gradient-boosted regression tree ensemble (squared loss).
///
/// # Examples
///
/// ```
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
/// use tevot_ml::{BoostParams, Dataset, GradientBoostedRegressor};
///
/// let mut data = Dataset::new(1);
/// for i in 0..200 {
///     let x = i as f64 / 200.0;
///     data.push(&[x], (x * 10.0).sin() * 50.0);
/// }
/// let mut rng = SmallRng::seed_from_u64(0);
/// let gbt = GradientBoostedRegressor::fit(&data, &BoostParams::default(), &mut rng);
/// let err = (gbt.predict(&[0.25]) - (2.5f64).sin() * 50.0).abs();
/// assert!(err < 5.0, "error {err}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GradientBoostedRegressor {
    base: f64,
    learning_rate: f64,
    trees: Vec<DecisionTree>,
}

impl GradientBoostedRegressor {
    /// Fits the ensemble with squared-loss gradient boosting.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset, zero rounds, a non-positive learning
    /// rate or a subsample fraction outside `(0, 1]`.
    pub fn fit(data: &Dataset, params: &BoostParams, rng: &mut impl Rng) -> Self {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        assert!(params.num_rounds > 0, "need at least one boosting round");
        assert!(params.learning_rate > 0.0, "learning rate must be positive");
        assert!(
            params.subsample > 0.0 && params.subsample <= 1.0,
            "subsample fraction out of range"
        );
        let n = data.len();
        let base = data.labels().iter().sum::<f64>() / n as f64;
        let table = ThresholdTable::build(data);

        let mut prediction = vec![base; n];
        let sample_len = ((n as f64 * params.subsample).round() as usize).clamp(1, n);
        let mut indices: Vec<u32> = (0..n as u32).collect();
        let mut trees = Vec::with_capacity(params.num_rounds);
        for _ in 0..params.num_rounds {
            tevot_obs::metrics::ML_TRAIN_ITERATIONS.incr();
            // Residuals are the squared-loss negative gradients.
            let residual = data.clone_with_labels(|i| data.label(i) - prediction[i]);
            if params.subsample < 1.0 {
                // Partial Fisher-Yates for a fresh subsample each round.
                for i in 0..sample_len {
                    let j = rng.gen_range(i..n);
                    indices.swap(i, j);
                }
            }
            let tree = DecisionTree::fit_with_table(
                &residual,
                &indices[..sample_len],
                Task::Regression,
                &params.tree,
                &table,
                rng,
            );
            for (i, p) in prediction.iter_mut().enumerate() {
                *p += params.learning_rate * tree.predict(data.row(i));
            }
            trees.push(tree);
        }
        GradientBoostedRegressor { base, learning_rate: params.learning_rate, trees }
    }

    /// Predicts one row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        self.base + self.learning_rate * self.trees.iter().map(|t| t.predict(row)).sum::<f64>()
    }

    /// Predicts every row of a dataset.
    pub fn predict_batch(&self, data: &Dataset) -> Vec<f64> {
        (0..data.len()).map(|i| self.predict(data.row(i))).collect()
    }

    /// Number of boosting rounds performed.
    pub fn num_rounds(&self) -> usize {
        self.trees.len()
    }
}

impl Dataset {
    /// Clones this dataset with labels recomputed from the row index —
    /// the residual-update primitive of gradient boosting.
    pub fn clone_with_labels(&self, f: impl Fn(usize) -> f64) -> Dataset {
        let mut out = Dataset::with_capacity(self.num_features(), self.len());
        for i in 0..self.len() {
            out.push(self.row(i), f(i));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::root_mean_square_error;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn wiggly() -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..400 {
            let x = i as f64 / 400.0;
            let z = (i % 7) as f64;
            d.push(&[x, z], (x * 12.0).sin() * 40.0 + z * 3.0);
        }
        d
    }

    #[test]
    fn boosting_fits_nonlinear_targets() {
        let d = wiggly();
        let mut rng = SmallRng::seed_from_u64(0);
        let gbt = GradientBoostedRegressor::fit(&d, &BoostParams::default(), &mut rng);
        let pred = gbt.predict_batch(&d);
        let rmse = root_mean_square_error(&pred, d.labels());
        assert!(rmse < 5.0, "training RMSE {rmse}");
        assert_eq!(gbt.num_rounds(), 60);
    }

    #[test]
    fn more_rounds_reduce_training_error() {
        let d = wiggly();
        let fit = |rounds| {
            let mut rng = SmallRng::seed_from_u64(1);
            let params = BoostParams { num_rounds: rounds, subsample: 1.0, ..Default::default() };
            let gbt = GradientBoostedRegressor::fit(&d, &params, &mut rng);
            root_mean_square_error(&gbt.predict_batch(&d), d.labels())
        };
        let short = fit(5);
        let long = fit(50);
        assert!(long < short, "50 rounds ({long}) should beat 5 ({short})");
    }

    #[test]
    fn single_round_predicts_near_mean_plus_tree() {
        let d = wiggly();
        let mut rng = SmallRng::seed_from_u64(2);
        let params =
            BoostParams { num_rounds: 1, learning_rate: 1.0, subsample: 1.0, ..Default::default() };
        let gbt = GradientBoostedRegressor::fit(&d, &params, &mut rng);
        // One full-rate round on the residuals of the mean: prediction is
        // within the label range.
        let lo = d.labels().iter().copied().fold(f64::INFINITY, f64::min);
        let hi = d.labels().iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for i in 0..d.len() {
            let p = gbt.predict(d.row(i));
            assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_bad_learning_rate() {
        let d = wiggly();
        let mut rng = SmallRng::seed_from_u64(0);
        let params = BoostParams { learning_rate: 0.0, ..Default::default() };
        let _ = GradientBoostedRegressor::fit(&d, &params, &mut rng);
    }

    #[test]
    fn clone_with_labels_replaces_labels_only() {
        let d = wiggly();
        let r = d.clone_with_labels(|i| i as f64);
        assert_eq!(r.len(), d.len());
        assert_eq!(r.row(5), d.row(5));
        assert_eq!(r.label(5), 5.0);
    }
}
