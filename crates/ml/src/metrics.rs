//! Evaluation metrics and timing helpers.

use std::time::{Duration, Instant};

/// Fraction of positions where the two label sequences agree — the paper's
/// "prediction accuracy" (Eq. 4: matched cycles over total cycles).
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn accuracy(predicted: &[bool], actual: &[bool]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    assert!(!predicted.is_empty(), "empty label sequences");
    let matched = predicted.iter().zip(actual).filter(|(p, a)| p == a).count();
    matched as f64 / predicted.len() as f64
}

/// Binary confusion matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionMatrix {
    /// Predicted positive, actually positive.
    pub true_positives: usize,
    /// Predicted positive, actually negative.
    pub false_positives: usize,
    /// Predicted negative, actually negative.
    pub true_negatives: usize,
    /// Predicted negative, actually positive.
    pub false_negatives: usize,
}

impl ConfusionMatrix {
    /// Tallies predictions against ground truth.
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch.
    pub fn from_labels(predicted: &[bool], actual: &[bool]) -> Self {
        assert_eq!(predicted.len(), actual.len(), "length mismatch");
        let mut m = ConfusionMatrix::default();
        for (&p, &a) in predicted.iter().zip(actual) {
            match (p, a) {
                (true, true) => m.true_positives += 1,
                (true, false) => m.false_positives += 1,
                (false, false) => m.true_negatives += 1,
                (false, true) => m.false_negatives += 1,
            }
        }
        m
    }

    /// Total samples.
    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// Accuracy.
    pub fn accuracy(&self) -> f64 {
        (self.true_positives + self.true_negatives) as f64 / self.total() as f64
    }

    /// Precision for the positive (timing-erroneous) class.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            return 0.0;
        }
        self.true_positives as f64 / denom as f64
    }

    /// Recall for the positive class.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            return 0.0;
        }
        self.true_positives as f64 / denom as f64
    }
}

/// Mean absolute error between predictions and targets.
///
/// # Panics
///
/// Panics on a length mismatch or empty input.
pub fn mean_absolute_error(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    assert!(!predicted.is_empty(), "empty sequences");
    predicted.iter().zip(actual).map(|(&p, &a)| (p - a).abs()).sum::<f64>() / predicted.len() as f64
}

/// Root-mean-square error between predictions and targets.
///
/// # Panics
///
/// Panics on a length mismatch or empty input.
pub fn root_mean_square_error(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    assert!(!predicted.is_empty(), "empty sequences");
    (predicted.iter().zip(actual).map(|(&p, &a)| (p - a) * (p - a)).sum::<f64>()
        / predicted.len() as f64)
        .sqrt()
}

/// Coefficient of determination (R²).
///
/// # Panics
///
/// Panics on a length mismatch or empty input.
pub fn r_squared(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    assert!(!predicted.is_empty(), "empty sequences");
    let mean = actual.iter().sum::<f64>() / actual.len() as f64;
    let ss_tot: f64 = actual.iter().map(|&a| (a - mean) * (a - mean)).sum();
    let ss_res: f64 = predicted.iter().zip(actual).map(|(&p, &a)| (a - p) * (a - p)).sum();
    if ss_tot == 0.0 {
        return if ss_res == 0.0 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

/// Runs `f` and returns its result together with the elapsed wall time —
/// used for the training/testing-time columns of Table II.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        let p = [true, false, true, true];
        let a = [true, true, true, false];
        assert!((accuracy(&p, &a) - 0.5).abs() < 1e-12);
        assert_eq!(accuracy(&p, &p), 1.0);
    }

    #[test]
    fn confusion_matrix_cells() {
        let p = [true, true, false, false, true];
        let a = [true, false, false, true, true];
        let m = ConfusionMatrix::from_labels(&p, &a);
        assert_eq!(m.true_positives, 2);
        assert_eq!(m.false_positives, 1);
        assert_eq!(m.true_negatives, 1);
        assert_eq!(m.false_negatives, 1);
        assert_eq!(m.total(), 5);
        assert!((m.accuracy() - 0.6).abs() < 1e-12);
        assert!((m.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn regression_metrics() {
        let p = [1.0, 2.0, 3.0];
        let a = [1.0, 2.0, 5.0];
        assert!((mean_absolute_error(&p, &a) - 2.0 / 3.0).abs() < 1e-12);
        assert!((root_mean_square_error(&p, &a) - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(r_squared(&a, &a), 1.0);
        assert!(r_squared(&p, &a) < 1.0);
    }

    #[test]
    fn timed_measures_something() {
        let (value, dt) = timed(|| (0..100_000u64).sum::<u64>());
        assert_eq!(value, 4999950000);
        assert!(dt.as_nanos() > 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_rejects_mismatch() {
        let _ = accuracy(&[true], &[true, false]);
    }
}
