//! From-scratch supervised learning for the TEVoT (DAC 2020) reproduction.
//!
//! The paper evaluates four scikit-learn estimators for predicting timing
//! errors (Table II) and settles on a random forest for TEVoT itself. The
//! Rust ML ecosystem being thin, this crate implements all four natively:
//!
//! * [`DecisionTree`] / [`RandomForestRegressor`] /
//!   [`RandomForestClassifier`] — histogram-based CART and bagged forests
//!   (the paper's configuration: 10 trees, all features per split);
//! * [`KnnRegressor`] / [`KnnClassifier`] — brute-force k-nearest
//!   neighbours;
//! * [`LinearRegression`] / [`LinearClassifier`] — ridge regression by
//!   Cholesky-solved normal equations;
//! * [`LinearSvm`] — a Pegasos-trained linear SVM.
//!
//! Supporting cast: [`Dataset`] and [`Scaler`] for data handling,
//! [`metrics`] for accuracy/confusion/regression scores and wall-clock
//! timing, and [`persist`] for saving pre-trained forests (the paper
//! promises to publish its trained models; this is that artifact format).
//!
//! # Examples
//!
//! ```
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//! use tevot_ml::{metrics, Dataset, ForestParams, RandomForestClassifier};
//!
//! // A binary concept with an interaction: class = x0 XOR x1.
//! let mut data = Dataset::new(2);
//! for i in 0..400u32 {
//!     let (a, b) = ((i & 1) as f64, (i >> 1 & 1) as f64);
//!     data.push(&[a, b], if a != b { 1.0 } else { 0.0 });
//! }
//! let mut rng = SmallRng::seed_from_u64(0);
//! let (train, test) = data.split(0.8, &mut rng);
//! let model = RandomForestClassifier::fit(&train, &ForestParams::default(), &mut rng);
//! let predicted = model.predict_batch(&test);
//! let actual: Vec<bool> = test.labels().iter().map(|&l| l == 1.0).collect();
//! assert_eq!(metrics::accuracy(&predicted, &actual), 1.0);
//! ```

#![warn(missing_docs)]

mod boost;
mod dataset;
mod forest;
mod knn;
mod linear;
pub mod metrics;
pub mod persist;
mod svm;
mod tree;

pub use boost::{BoostParams, GradientBoostedRegressor};
pub use dataset::{Dataset, Scaler};
pub use forest::{ForestParams, RandomForestClassifier, RandomForestRegressor};
pub use knn::{KnnClassifier, KnnRegressor};
pub use linear::{LinearClassifier, LinearRegression};
pub use svm::{LinearSvm, SvmParams};
pub use tree::{DecisionTree, Task, ThresholdTable, TreeParams, MAX_THRESHOLDS};
