//! Binary persistence for trained forests.
//!
//! The paper promises to "open-source the pre-trained models for the
//! research community" (sic); this module makes TEVoT's forests serializable to
//! a small self-describing binary format (magic + version + tree node
//! arrays, all little-endian), independent of any serialization crate.

use std::io::{self, Read, Write};

use crate::forest::{RandomForestClassifier, RandomForestRegressor};
use crate::tree::{DecisionTree, Task};

const MAGIC: &[u8; 8] = b"TEVOTRF\0";
const VERSION: u32 = 2;

/// An error produced while loading a persisted model.
#[derive(Debug)]
pub enum LoadModelError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The data is not a persisted model, or uses an unknown version.
    Format(String),
}

impl std::fmt::Display for LoadModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadModelError::Io(e) => write!(f, "i/o error while loading model: {e}"),
            LoadModelError::Format(m) => write!(f, "invalid model data: {m}"),
        }
    }
}

impl std::error::Error for LoadModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadModelError::Io(e) => Some(e),
            LoadModelError::Format(_) => None,
        }
    }
}

impl From<io::Error> for LoadModelError {
    fn from(e: io::Error) -> Self {
        LoadModelError::Io(e)
    }
}

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f64(w: &mut impl Write, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn write_trees(
    w: &mut impl Write,
    trees: &[DecisionTree],
    task_tag: u32,
    num_features: usize,
) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_u32(w, VERSION)?;
    write_u32(w, task_tag)?;
    write_u64(w, num_features as u64)?;
    write_u64(w, trees.len() as u64)?;
    for tree in trees {
        let nodes: Vec<_> = tree.nodes_raw().collect();
        write_u64(w, nodes.len() as u64)?;
        for (feature, value, left, right, gain) in nodes {
            write_u32(w, feature)?;
            write_f64(w, value)?;
            write_u32(w, left)?;
            write_u32(w, right)?;
            write_f64(w, gain)?;
        }
    }
    Ok(())
}

fn read_trees(
    r: &mut impl Read,
    expect_tag: u32,
) -> Result<(Vec<DecisionTree>, usize), LoadModelError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(LoadModelError::Format("bad magic".into()));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(LoadModelError::Format(format!("unsupported version {version}")));
    }
    let tag = read_u32(r)?;
    if tag != expect_tag {
        return Err(LoadModelError::Format(format!(
            "model task tag {tag} does not match expected {expect_tag}"
        )));
    }
    let num_features = read_u64(r)? as usize;
    let num_trees = read_u64(r)? as usize;
    if num_trees == 0 || num_trees > 1_000_000 {
        return Err(LoadModelError::Format(format!("implausible tree count {num_trees}")));
    }
    let task = if expect_tag == 0 { Task::Regression } else { Task::Classification };
    let mut trees = Vec::with_capacity(num_trees);
    for _ in 0..num_trees {
        let num_nodes = read_u64(r)? as usize;
        if num_nodes == 0 || num_nodes > 100_000_000 {
            return Err(LoadModelError::Format(format!("implausible node count {num_nodes}")));
        }
        let mut nodes = Vec::with_capacity(num_nodes);
        for _ in 0..num_nodes {
            let feature = read_u32(r)?;
            let value = read_f64(r)?;
            let left = read_u32(r)?;
            let right = read_u32(r)?;
            let gain = read_f64(r)?;
            if feature != u32::MAX
                && (feature as usize >= num_features
                    || left as usize >= num_nodes
                    || right as usize >= num_nodes)
            {
                return Err(LoadModelError::Format("node reference out of range".into()));
            }
            nodes.push((feature, value, left, right, gain));
        }
        trees.push(DecisionTree::from_raw(nodes, num_features, task));
    }
    Ok((trees, num_features))
}

/// Serializes a regressor forest to `writer`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn save_regressor(model: &RandomForestRegressor, mut writer: impl Write) -> io::Result<()> {
    let width = forest_width(model.trees());
    write_trees(&mut writer, model.trees(), 0, width)
}

/// Serializes a classifier forest to `writer`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn save_classifier(model: &RandomForestClassifier, mut writer: impl Write) -> io::Result<()> {
    let width = forest_width(model.trees());
    write_trees(&mut writer, model.trees(), 1, width)
}

fn forest_width(trees: &[DecisionTree]) -> usize {
    trees.first().map_or(0, DecisionTree::num_features_raw)
}

/// Deserializes a regressor forest from `reader`.
///
/// # Errors
///
/// Returns [`LoadModelError`] on I/O failure or malformed data.
pub fn load_regressor(mut reader: impl Read) -> Result<RandomForestRegressor, LoadModelError> {
    let (trees, _) = read_trees(&mut reader, 0)?;
    Ok(RandomForestRegressor::from_trees(trees))
}

/// Deserializes a classifier forest from `reader`.
///
/// # Errors
///
/// Returns [`LoadModelError`] on I/O failure or malformed data.
pub fn load_classifier(mut reader: impl Read) -> Result<RandomForestClassifier, LoadModelError> {
    let (trees, _) = read_trees(&mut reader, 1)?;
    Ok(RandomForestClassifier::from_trees(trees))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::forest::ForestParams;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn sample_data() -> Dataset {
        let mut d = Dataset::new(3);
        for i in 0..200 {
            let x = [(i % 7) as f64, (i % 2) as f64, (i % 5) as f64];
            d.push(&x, x[0] * 10.0 + x[1] * 100.0);
        }
        d
    }

    #[test]
    fn regressor_roundtrip_is_bit_identical() {
        let data = sample_data();
        let mut rng = SmallRng::seed_from_u64(5);
        let model = RandomForestRegressor::fit(&data, &ForestParams::default(), &mut rng);
        let mut buf = Vec::new();
        save_regressor(&model, &mut buf).unwrap();
        let loaded = load_regressor(buf.as_slice()).unwrap();
        for i in 0..data.len() {
            assert_eq!(model.predict(data.row(i)), loaded.predict(data.row(i)));
        }
    }

    #[test]
    fn classifier_roundtrip_is_bit_identical() {
        let data = sample_data().map_labels(|l| (l > 300.0) as u8 as f64);
        let mut rng = SmallRng::seed_from_u64(5);
        let model = RandomForestClassifier::fit(&data, &ForestParams::default(), &mut rng);
        let mut buf = Vec::new();
        save_classifier(&model, &mut buf).unwrap();
        let loaded = load_classifier(buf.as_slice()).unwrap();
        for i in 0..data.len() {
            assert_eq!(model.predict(data.row(i)), loaded.predict(data.row(i)));
        }
    }

    #[test]
    fn rejects_wrong_magic() {
        let err = load_regressor(&b"NOTAMODELxxxxxxxxxxxxxxx"[..]).unwrap_err();
        assert!(matches!(err, LoadModelError::Format(_)));
    }

    #[test]
    fn rejects_task_mismatch() {
        let data = sample_data();
        let mut rng = SmallRng::seed_from_u64(5);
        let model = RandomForestRegressor::fit(&data, &ForestParams::default(), &mut rng);
        let mut buf = Vec::new();
        save_regressor(&model, &mut buf).unwrap();
        let err = load_classifier(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("task tag"));
    }

    #[test]
    fn rejects_truncated_data() {
        let data = sample_data();
        let mut rng = SmallRng::seed_from_u64(5);
        let model = RandomForestRegressor::fit(&data, &ForestParams::default(), &mut rng);
        let mut buf = Vec::new();
        save_regressor(&model, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load_regressor(buf.as_slice()).is_err());
    }
}
