//! Binary persistence for trained forests.
//!
//! The paper promises to "open-source the pre-trained models for the
//! research community" (sic); this module makes TEVoT's forests serializable to
//! a small self-describing binary format (magic + version + tree node
//! arrays, all little-endian), independent of any serialization crate.
//!
//! Loading is fully defensive: a truncated or corrupt file produces a
//! typed [`LoadModelError`] naming the byte offset where decoding
//! stopped (and, through the `*_path` functions, the file path), never a
//! panic. The file-based entry points carry the `model.save` /
//! `model.load` failpoints for chaos testing.

use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use crate::forest::{RandomForestClassifier, RandomForestRegressor};
use crate::tree::{DecisionTree, Task};

const MAGIC: &[u8; 8] = b"TEVOTRF\0";
const VERSION: u32 = 2;

/// An error produced while loading a persisted model.
#[derive(Debug)]
pub enum LoadModelError {
    /// Underlying I/O failure, at the byte offset where reading stopped.
    Io {
        /// Bytes successfully consumed before the failure.
        offset: u64,
        /// The operating-system error.
        source: io::Error,
    },
    /// The data is not a persisted model, or uses an unknown version.
    Format {
        /// Byte offset at which validation failed.
        offset: u64,
        /// What was wrong.
        message: String,
    },
    /// A failure attributed to a specific model file.
    AtPath {
        /// The file being loaded.
        path: PathBuf,
        /// The underlying failure.
        source: Box<LoadModelError>,
    },
}

impl LoadModelError {
    /// A [`LoadModelError::Format`] error at `offset`.
    pub fn format(offset: u64, message: impl Into<String>) -> Self {
        LoadModelError::Format { offset, message: message.into() }
    }

    /// Wraps this error with the path of the file it came from.
    pub fn at_path(self, path: impl Into<PathBuf>) -> Self {
        LoadModelError::AtPath { path: path.into(), source: Box::new(self) }
    }

    /// The byte offset the innermost failure occurred at.
    pub fn offset(&self) -> u64 {
        match self {
            LoadModelError::Io { offset, .. } | LoadModelError::Format { offset, .. } => *offset,
            LoadModelError::AtPath { source, .. } => source.offset(),
        }
    }
}

impl std::fmt::Display for LoadModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadModelError::Io { offset, source } => {
                write!(f, "i/o error while loading model at byte {offset}: {source}")
            }
            LoadModelError::Format { offset, message } => {
                write!(f, "invalid model data at byte {offset}: {message}")
            }
            LoadModelError::AtPath { path, source } => {
                write!(f, "load model {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for LoadModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadModelError::Io { source, .. } => Some(source),
            LoadModelError::Format { .. } => None,
            LoadModelError::AtPath { source, .. } => Some(source),
        }
    }
}

impl From<io::Error> for LoadModelError {
    /// Classifies a raw I/O error with an unknown offset (0); prefer the
    /// offset-tracking [`ModelReader`] inside this module.
    fn from(e: io::Error) -> Self {
        LoadModelError::Io { offset: 0, source: e }
    }
}

impl From<LoadModelError> for tevot_resil::TevotError {
    fn from(e: LoadModelError) -> Self {
        let kind = match innermost(&e) {
            LoadModelError::Io { .. } => tevot_resil::ErrorKind::Io,
            _ => tevot_resil::ErrorKind::Corrupt,
        };
        // Classification only: the LoadModelError renders the full
        // path/offset story itself, so this layer adds no message.
        tevot_resil::TevotError::new(kind, "").with_source(e)
    }
}

fn innermost(e: &LoadModelError) -> &LoadModelError {
    match e {
        LoadModelError::AtPath { source, .. } => innermost(source),
        other => other,
    }
}

/// A byte-counting reader: every persisted-model read goes through this,
/// so failures can name the exact offset where decoding stopped.
#[derive(Debug)]
pub struct ModelReader<R> {
    inner: R,
    offset: u64,
}

impl<R: Read> ModelReader<R> {
    /// Wraps `inner`, counting from offset 0.
    pub fn new(inner: R) -> Self {
        ModelReader { inner, offset: 0 }
    }

    /// Bytes consumed so far.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// A format error at the current offset.
    pub fn format_err(&self, message: impl Into<String>) -> LoadModelError {
        LoadModelError::format(self.offset, message)
    }

    fn read_exact(&mut self, buf: &mut [u8]) -> Result<(), LoadModelError> {
        match self.inner.read_exact(buf) {
            Ok(()) => {
                self.offset += buf.len() as u64;
                Ok(())
            }
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                Err(self.format_err(format!("truncated: needed {} more bytes", buf.len())))
            }
            Err(e) => Err(LoadModelError::Io { offset: self.offset, source: e }),
        }
    }

    fn u32(&mut self) -> Result<u32, LoadModelError> {
        let mut b = [0u8; 4];
        self.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, LoadModelError> {
        let mut b = [0u8; 8];
        self.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    fn f64(&mut self) -> Result<f64, LoadModelError> {
        let mut b = [0u8; 8];
        self.read_exact(&mut b)?;
        Ok(f64::from_le_bytes(b))
    }
}

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f64(w: &mut impl Write, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_trees(
    w: &mut impl Write,
    trees: &[DecisionTree],
    task_tag: u32,
    num_features: usize,
) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_u32(w, VERSION)?;
    write_u32(w, task_tag)?;
    write_u64(w, num_features as u64)?;
    write_u64(w, trees.len() as u64)?;
    for tree in trees {
        let nodes: Vec<_> = tree.nodes_raw().collect();
        write_u64(w, nodes.len() as u64)?;
        for (feature, value, left, right, gain) in nodes {
            write_u32(w, feature)?;
            write_f64(w, value)?;
            write_u32(w, left)?;
            write_u32(w, right)?;
            write_f64(w, gain)?;
        }
    }
    Ok(())
}

fn read_trees<R: Read>(
    r: &mut ModelReader<R>,
    expect_tag: u32,
) -> Result<(Vec<DecisionTree>, usize), LoadModelError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(LoadModelError::format(0, "bad magic"));
    }
    let at = r.offset();
    let version = r.u32()?;
    if version != VERSION {
        return Err(LoadModelError::format(at, format!("unsupported version {version}")));
    }
    let at = r.offset();
    let tag = r.u32()?;
    if tag != expect_tag {
        return Err(LoadModelError::format(
            at,
            format!("model task tag {tag} does not match expected {expect_tag}"),
        ));
    }
    let num_features = r.u64()? as usize;
    let at = r.offset();
    let num_trees = r.u64()? as usize;
    if num_trees == 0 || num_trees > 1_000_000 {
        return Err(LoadModelError::format(at, format!("implausible tree count {num_trees}")));
    }
    let task = if expect_tag == 0 { Task::Regression } else { Task::Classification };
    let mut trees = Vec::with_capacity(num_trees);
    for _ in 0..num_trees {
        let at = r.offset();
        let num_nodes = r.u64()? as usize;
        if num_nodes == 0 || num_nodes > 100_000_000 {
            return Err(LoadModelError::format(at, format!("implausible node count {num_nodes}")));
        }
        let mut nodes = Vec::with_capacity(num_nodes);
        for _ in 0..num_nodes {
            let at = r.offset();
            let feature = r.u32()?;
            let value = r.f64()?;
            let left = r.u32()?;
            let right = r.u32()?;
            let gain = r.f64()?;
            if feature != u32::MAX
                && (feature as usize >= num_features
                    || left as usize >= num_nodes
                    || right as usize >= num_nodes)
            {
                return Err(LoadModelError::format(at, "node reference out of range"));
            }
            nodes.push((feature, value, left, right, gain));
        }
        trees.push(DecisionTree::from_raw(nodes, num_features, task));
    }
    Ok((trees, num_features))
}

/// Serializes a regressor forest to `writer`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn save_regressor(model: &RandomForestRegressor, mut writer: impl Write) -> io::Result<()> {
    let width = forest_width(model.trees());
    write_trees(&mut writer, model.trees(), 0, width)
}

/// Serializes a classifier forest to `writer`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn save_classifier(model: &RandomForestClassifier, mut writer: impl Write) -> io::Result<()> {
    let width = forest_width(model.trees());
    write_trees(&mut writer, model.trees(), 1, width)
}

fn forest_width(trees: &[DecisionTree]) -> usize {
    trees.first().map_or(0, DecisionTree::num_features_raw)
}

/// Deserializes a regressor forest from `reader`. Errors name the byte
/// offset where decoding stopped (relative to the start of the forest
/// block).
///
/// # Errors
///
/// Returns [`LoadModelError`] on I/O failure or malformed data.
pub fn load_regressor(reader: impl Read) -> Result<RandomForestRegressor, LoadModelError> {
    let (trees, _) = read_trees(&mut ModelReader::new(reader), 0)?;
    Ok(RandomForestRegressor::from_trees(trees))
}

/// Deserializes a classifier forest from `reader`; see
/// [`load_regressor`].
///
/// # Errors
///
/// Returns [`LoadModelError`] on I/O failure or malformed data.
pub fn load_classifier(reader: impl Read) -> Result<RandomForestClassifier, LoadModelError> {
    let (trees, _) = read_trees(&mut ModelReader::new(reader), 1)?;
    Ok(RandomForestClassifier::from_trees(trees))
}

/// Saves a regressor forest to `path`. Failpoint: `model.save`.
///
/// # Errors
///
/// Propagates I/O errors (including injected ones).
pub fn save_regressor_path(model: &RandomForestRegressor, path: &Path) -> io::Result<()> {
    tevot_resil::fail::eval("model.save")?;
    save_regressor(model, std::fs::File::create(path)?)
}

/// Loads a regressor forest from `path`; errors name both the path and
/// the byte offset. Failpoint: `model.load`.
///
/// # Errors
///
/// Returns [`LoadModelError::AtPath`] wrapping the underlying failure.
pub fn load_regressor_path(path: &Path) -> Result<RandomForestRegressor, LoadModelError> {
    open_model(path)
        .and_then(|f| load_regressor(io::BufReader::new(f)))
        .map_err(|e| e.at_path(path))
}

/// Loads a classifier forest from `path`; see [`load_regressor_path`].
///
/// # Errors
///
/// Returns [`LoadModelError::AtPath`] wrapping the underlying failure.
pub fn load_classifier_path(path: &Path) -> Result<RandomForestClassifier, LoadModelError> {
    open_model(path)
        .and_then(|f| load_classifier(io::BufReader::new(f)))
        .map_err(|e| e.at_path(path))
}

/// Opens a model file, evaluating the `model.load` failpoint first.
///
/// # Errors
///
/// Returns [`LoadModelError::Io`] at offset 0 when the file cannot be
/// opened (or the failpoint injects a failure).
pub fn open_model(path: &Path) -> Result<std::fs::File, LoadModelError> {
    let open = || -> io::Result<std::fs::File> {
        tevot_resil::fail::eval("model.load")?;
        std::fs::File::open(path)
    };
    open().map_err(|e| LoadModelError::Io { offset: 0, source: e })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::forest::ForestParams;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn sample_data() -> Dataset {
        let mut d = Dataset::new(3);
        for i in 0..200 {
            let x = [(i % 7) as f64, (i % 2) as f64, (i % 5) as f64];
            d.push(&x, x[0] * 10.0 + x[1] * 100.0);
        }
        d
    }

    fn sample_regressor() -> RandomForestRegressor {
        let mut rng = SmallRng::seed_from_u64(5);
        RandomForestRegressor::fit(&sample_data(), &ForestParams::default(), &mut rng)
    }

    #[test]
    fn regressor_roundtrip_is_bit_identical() {
        let data = sample_data();
        let model = sample_regressor();
        let mut buf = Vec::new();
        save_regressor(&model, &mut buf).unwrap();
        let loaded = load_regressor(buf.as_slice()).unwrap();
        for i in 0..data.len() {
            assert_eq!(model.predict(data.row(i)), loaded.predict(data.row(i)));
        }
    }

    #[test]
    fn classifier_roundtrip_is_bit_identical() {
        let data = sample_data().map_labels(|l| (l > 300.0) as u8 as f64);
        let mut rng = SmallRng::seed_from_u64(5);
        let model = RandomForestClassifier::fit(&data, &ForestParams::default(), &mut rng);
        let mut buf = Vec::new();
        save_classifier(&model, &mut buf).unwrap();
        let loaded = load_classifier(buf.as_slice()).unwrap();
        for i in 0..data.len() {
            assert_eq!(model.predict(data.row(i)), loaded.predict(data.row(i)));
        }
    }

    #[test]
    fn rejects_wrong_magic() {
        let err = load_regressor(&b"NOTAMODELxxxxxxxxxxxxxxx"[..]).unwrap_err();
        assert!(matches!(err, LoadModelError::Format { .. }));
    }

    #[test]
    fn rejects_task_mismatch() {
        let model = sample_regressor();
        let mut buf = Vec::new();
        save_regressor(&model, &mut buf).unwrap();
        let err = load_classifier(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("task tag"));
        assert_eq!(err.offset(), 12, "tag sits after magic + version");
    }

    #[test]
    fn truncation_at_every_offset_names_the_offset() {
        let model = sample_regressor();
        let mut buf = Vec::new();
        save_regressor(&model, &mut buf).unwrap();
        // Every truncation point: a typed error whose offset never
        // exceeds the cut, never a panic.
        for cut in 0..buf.len() - 1 {
            let err = load_regressor(&buf[..cut]).unwrap_err();
            assert!(
                err.offset() <= cut as u64,
                "cut {cut}: reported offset {} past the data",
                err.offset()
            );
        }
    }

    #[test]
    fn path_loader_names_path_and_offset() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("tevot_model_{}.bin", std::process::id()));
        let model = sample_regressor();
        let mut buf = Vec::new();
        save_regressor(&model, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        std::fs::write(&path, &buf).unwrap();
        let err = load_regressor_path(&path).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains(&path.display().to_string()), "{msg}");
        assert!(msg.contains("at byte"), "{msg}");
        std::fs::remove_file(&path).unwrap();

        let err = load_regressor_path(Path::new("/nonexistent/model.bin")).unwrap_err();
        assert!(matches!(
            err,
            LoadModelError::AtPath { ref source, .. } if matches!(**source, LoadModelError::Io { .. })
        ));
    }

    #[test]
    fn save_and_load_failpoints_fire() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("tevot_model_fp_{}.bin", std::process::id()));
        let model = sample_regressor();
        {
            let _scope = tevot_resil::fail::scoped("model.save=io");
            assert!(save_regressor_path(&model, &path).is_err());
        }
        save_regressor_path(&model, &path).unwrap();
        {
            let _scope = tevot_resil::fail::scoped("model.load=io");
            let err = load_regressor_path(&path).unwrap_err();
            let tev: tevot_resil::TevotError = err.into();
            assert_eq!(tev.kind(), tevot_resil::ErrorKind::Io);
            assert!(tev.is_injected());
        }
        load_regressor_path(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn taxonomy_conversion_classifies_corruption() {
        let err = load_regressor(&b"NOTAMODELxxxxxxxxxxxxxxx"[..]).unwrap_err();
        let tev: tevot_resil::TevotError = err.at_path("model.bin").into();
        assert_eq!(tev.kind(), tevot_resil::ErrorKind::Corrupt);
        assert_eq!(tev.exit_code(), 4);
    }
}
