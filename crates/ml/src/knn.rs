//! k-nearest-neighbour estimators (brute force, Euclidean distance).
//!
//! "k-NN provides useful theoretical properties and has limited parameters
//! to train. k-NN predicts the target by local interpolation of the targets
//! associated of the K nearest neighbors in the training set" (paper
//! Sec. IV-B2). As in the paper's Table II, training is trivially fast and
//! testing dominates the cost.

use crate::dataset::{Dataset, Scaler};

/// Shared k-NN machinery: standardized training matrix + neighbour search.
#[derive(Debug, Clone, PartialEq)]
struct KnnIndex {
    k: usize,
    train: Dataset,
    scaler: Scaler,
}

impl KnnIndex {
    fn fit(data: &Dataset, k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert!(data.len() >= k, "k ({k}) larger than the training set ({})", data.len());
        let scaler = Scaler::fit(data);
        KnnIndex { k, train: scaler.transform(data), scaler }
    }

    /// Labels of the `k` nearest training rows.
    fn neighbor_labels(&self, row: &[f64], out: &mut Vec<f64>) {
        let mut scaled = Vec::with_capacity(row.len());
        self.scaler.transform_into(row, &mut scaled);
        // Max-heap of (distance, label) capped at k — O(n log k).
        let mut heap: Vec<(f64, f64)> = Vec::with_capacity(self.k + 1);
        for (train_row, label) in self.train.iter() {
            let mut dist = 0.0;
            for (&a, &b) in scaled.iter().zip(train_row) {
                let d = a - b;
                dist += d * d;
                if !heap.is_empty() && heap.len() == self.k && dist > heap[0].0 {
                    break;
                }
            }
            if heap.len() < self.k {
                heap.push((dist, label));
                heap.sort_by(|a, b| b.0.total_cmp(&a.0));
            } else if dist < heap[0].0 {
                heap[0] = (dist, label);
                heap.sort_by(|a, b| b.0.total_cmp(&a.0));
            }
        }
        out.clear();
        out.extend(heap.iter().map(|&(_, l)| l));
    }
}

/// k-NN regressor: predicts the mean label of the `k` nearest neighbours.
///
/// # Examples
///
/// ```
/// use tevot_ml::{Dataset, KnnRegressor};
///
/// let mut data = Dataset::new(1);
/// for i in 0..10 {
///     data.push(&[i as f64], i as f64 * 10.0);
/// }
/// let knn = KnnRegressor::fit(&data, 3);
/// let p = knn.predict(&[5.0]);
/// assert!((p - 50.0).abs() < 10.0 + 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KnnRegressor {
    index: KnnIndex,
}

impl KnnRegressor {
    /// Stores (standardized) training data for neighbour lookup.
    ///
    /// # Panics
    ///
    /// Panics if `k < 1` or the dataset has fewer than `k` rows.
    pub fn fit(data: &Dataset, k: usize) -> Self {
        KnnRegressor { index: KnnIndex::fit(data, k) }
    }

    /// Mean label of the `k` nearest neighbours.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let mut labels = Vec::new();
        self.index.neighbor_labels(row, &mut labels);
        labels.iter().sum::<f64>() / labels.len() as f64
    }

    /// Predicts every row of a dataset.
    pub fn predict_batch(&self, data: &Dataset) -> Vec<f64> {
        (0..data.len()).map(|i| self.predict(data.row(i))).collect()
    }
}

/// k-NN classifier: majority vote among the `k` nearest neighbours.
#[derive(Debug, Clone, PartialEq)]
pub struct KnnClassifier {
    index: KnnIndex,
}

impl KnnClassifier {
    /// Stores (standardized) training data for neighbour lookup.
    ///
    /// # Panics
    ///
    /// Panics if `k < 1` or the dataset has fewer than `k` rows.
    pub fn fit(data: &Dataset, k: usize) -> Self {
        KnnClassifier { index: KnnIndex::fit(data, k) }
    }

    /// Majority vote (ties break towards class 1, matching `>= 0.5`).
    pub fn predict(&self, row: &[f64]) -> bool {
        let mut labels = Vec::new();
        self.index.neighbor_labels(row, &mut labels);
        labels.iter().sum::<f64>() / labels.len() as f64 >= 0.5
    }

    /// Predicts every row of a dataset.
    pub fn predict_batch(&self, data: &Dataset) -> Vec<bool> {
        (0..data.len()).map(|i| self.predict(data.row(i))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_nn_memorizes_training_data() {
        let mut d = Dataset::new(2);
        d.push(&[0.0, 0.0], 1.0);
        d.push(&[10.0, 0.0], 2.0);
        d.push(&[0.0, 10.0], 3.0);
        let knn = KnnRegressor::fit(&d, 1);
        assert_eq!(knn.predict(&[0.1, 0.1]), 1.0);
        assert_eq!(knn.predict(&[9.0, 0.0]), 2.0);
        assert_eq!(knn.predict(&[0.0, 11.0]), 3.0);
    }

    #[test]
    fn classifier_majority_vote() {
        let mut d = Dataset::new(1);
        for i in 0..6 {
            d.push(&[i as f64], if i < 3 { 0.0 } else { 1.0 });
        }
        let knn = KnnClassifier::fit(&d, 3);
        assert!(!knn.predict(&[0.5]));
        assert!(knn.predict(&[4.8]));
    }

    #[test]
    fn standardization_prevents_scale_domination() {
        // Feature 1 is the real signal but tiny in magnitude; feature 0 is
        // large-scale noise. Without standardization the noise dominates.
        let mut d = Dataset::new(2);
        for i in 0..40 {
            let noise = ((i * 2654435761u64 as usize) % 1000) as f64;
            let signal = (i % 2) as f64 * 0.001;
            d.push(&[noise, signal], (i % 2) as f64);
        }
        let knn = KnnClassifier::fit(&d, 5);
        let mut correct = 0;
        for i in 0..d.len() {
            // Query with the raw (unstandardized) row.
            let row = [d.row(i)[0], d.row(i)[1]];
            if knn.predict(&row) == (d.label(i) == 1.0) {
                correct += 1;
            }
        }
        assert!(correct >= 38, "only {correct}/40 correct");
    }

    #[test]
    #[should_panic(expected = "larger than the training set")]
    fn k_larger_than_data_panics() {
        let mut d = Dataset::new(1);
        d.push(&[0.0], 0.0);
        let _ = KnnRegressor::fit(&d, 2);
    }
}
