//! Random forests (bagged CART ensembles).
//!
//! The paper's chosen estimator: "RF is an ensemble learning method that
//! constructs multiple decision trees and uses majority votes to improve
//! accuracy and prevent overfitting" (Sec. IV-B2), trained with the
//! scikit-learn defaults of the time — 10 trees, all features considered
//! at every split.
//!
//! Trees fit in parallel (`tevot-par`, honoring `--jobs`/`TEVOT_JOBS`):
//! the caller's RNG is consumed **serially** to derive one independent
//! splitmix-expanded seed per tree before fanning out, so each tree's
//! bootstrap sample and split randomness come from its own stream and
//! the trained forest is bit-identical at every worker count.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;
use crate::tree::{DecisionTree, Task, ThresholdTable, TreeParams};

/// Hyper-parameters of a random forest.
#[derive(Debug, Clone, PartialEq)]
pub struct ForestParams {
    /// Number of trees (paper default: 10).
    pub num_trees: usize,
    /// Per-tree parameters.
    pub tree: TreeParams,
    /// Whether each tree trains on a bootstrap resample.
    pub bootstrap: bool,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams { num_trees: 10, tree: TreeParams::default(), bootstrap: true }
    }
}

fn fit_trees(
    data: &Dataset,
    task: Task,
    params: &ForestParams,
    rng: &mut impl Rng,
) -> Vec<DecisionTree> {
    assert!(!data.is_empty(), "cannot fit a forest on an empty dataset");
    assert!(params.num_trees > 0, "forest needs at least one tree");
    let table = ThresholdTable::build(data);
    let n = data.len();
    // One seed per tree, drawn serially from the caller's RNG: each
    // tree's bootstrap sample and split randomness then come from its
    // own splitmix-expanded stream, independent of which worker fits it
    // or in what order — so parallel training is bit-identical to
    // serial.
    let seeds: Vec<u64> = (0..params.num_trees).map(|_| rng.gen()).collect();
    tevot_par::map(&seeds, |&seed| {
        // The span makes per-tree fitting visible to the statistical
        // sampler on whichever worker thread runs it.
        let _span = tevot_obs::span!("tree", "{n} rows");
        let mut tree_rng = SmallRng::seed_from_u64(seed);
        let mut indices: Vec<u32> = (0..n as u32).collect();
        if params.bootstrap {
            for slot in indices.iter_mut() {
                *slot = tree_rng.gen_range(0..n) as u32;
            }
        }
        tevot_obs::metrics::ML_TRAIN_ITERATIONS.incr();
        tevot_obs::instant!("ml.tree_fitted");
        DecisionTree::fit_with_table(data, &indices, task, &params.tree, &table, &mut tree_rng)
    })
}

/// Random-forest regressor: trees average their leaf means.
///
/// This is the estimator behind TEVoT itself — it regresses the dynamic
/// delay, from which error classes follow for any clock period.
///
/// # Examples
///
/// ```
/// use tevot_ml::{Dataset, ForestParams, RandomForestRegressor};
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let mut data = Dataset::new(1);
/// for i in 0..200 {
///     let x = i as f64;
///     data.push(&[x], if x < 100.0 { 250.0 } else { 700.0 });
/// }
/// let mut rng = SmallRng::seed_from_u64(1);
/// let rf = RandomForestRegressor::fit(&data, &ForestParams::default(), &mut rng);
/// assert!((rf.predict(&[10.0]) - 250.0).abs() < 50.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForestRegressor {
    trees: Vec<DecisionTree>,
}

impl RandomForestRegressor {
    /// Fits the forest.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset or zero trees.
    pub fn fit(data: &Dataset, params: &ForestParams, rng: &mut impl Rng) -> Self {
        RandomForestRegressor { trees: fit_trees(data, Task::Regression, params, rng) }
    }

    /// Mean prediction across all trees.
    pub fn predict(&self, row: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict(row)).sum::<f64>() / self.trees.len() as f64
    }

    /// Predicts every row of a dataset.
    pub fn predict_batch(&self, data: &Dataset) -> Vec<f64> {
        (0..data.len()).map(|i| self.predict(data.row(i))).collect()
    }

    /// The individual trees.
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Normalized impurity-decrease feature importances (summing to 1
    /// unless no split ever gained anything) — the interpretability the
    /// paper credits the random forest with: "it can interpret the
    /// significance disparity between different features" (Sec. IV-B2).
    pub fn feature_importances(&self) -> Vec<f64> {
        feature_importances(&self.trees)
    }

    pub(crate) fn from_trees(trees: Vec<DecisionTree>) -> Self {
        RandomForestRegressor { trees }
    }
}

fn feature_importances(trees: &[DecisionTree]) -> Vec<f64> {
    let num_features = trees.first().map(DecisionTree::num_features_raw).unwrap_or(0);
    let mut acc = vec![0.0; num_features];
    for tree in trees {
        tree.accumulate_importances(&mut acc);
    }
    let total: f64 = acc.iter().sum();
    if total > 0.0 {
        for v in &mut acc {
            *v /= total;
        }
    }
    acc
}

/// Random-forest classifier: trees vote with their leaf class-1
/// probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForestClassifier {
    trees: Vec<DecisionTree>,
}

impl RandomForestClassifier {
    /// Fits the forest on binary labels (0.0 / 1.0).
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset or zero trees.
    pub fn fit(data: &Dataset, params: &ForestParams, rng: &mut impl Rng) -> Self {
        RandomForestClassifier { trees: fit_trees(data, Task::Classification, params, rng) }
    }

    /// Mean class-1 probability across trees.
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict(row)).sum::<f64>() / self.trees.len() as f64
    }

    /// Majority-vote class label.
    pub fn predict(&self, row: &[f64]) -> bool {
        self.predict_proba(row) >= 0.5
    }

    /// Predicts every row of a dataset.
    pub fn predict_batch(&self, data: &Dataset) -> Vec<bool> {
        (0..data.len()).map(|i| self.predict(data.row(i))).collect()
    }

    /// The individual trees.
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Normalized impurity-decrease feature importances; see
    /// [`RandomForestRegressor::feature_importances`].
    pub fn feature_importances(&self) -> Vec<f64> {
        feature_importances(&self.trees)
    }

    pub(crate) fn from_trees(trees: Vec<DecisionTree>) -> Self {
        RandomForestClassifier { trees }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn regressor_beats_single_noisy_tree_on_average() {
        // y = x1 + noise-ish via deterministic hash pattern.
        let mut d = Dataset::new(2);
        for i in 0..500 {
            let x = (i % 50) as f64;
            let noise = ((i * 2654435761u64 as usize) % 100) as f64 / 100.0 - 0.5;
            d.push(&[x, (i % 3) as f64], x * 2.0 + noise);
        }
        let rf = RandomForestRegressor::fit(&d, &ForestParams::default(), &mut rng());
        for x in [5.0, 25.0, 45.0] {
            let p = rf.predict(&[x, 1.0]);
            assert!((p - 2.0 * x).abs() < 1.0, "predict({x}) = {p}");
        }
        assert_eq!(rf.trees().len(), 10);
    }

    #[test]
    fn classifier_learns_interaction() {
        let mut d = Dataset::new(3);
        for a in [0.0, 1.0] {
            for b in [0.0, 1.0] {
                for c in [0.0, 1.0] {
                    for _ in 0..5 {
                        d.push(&[a, b, c], if a != b { 1.0 } else { 0.0 });
                    }
                }
            }
        }
        let rf = RandomForestClassifier::fit(&d, &ForestParams::default(), &mut rng());
        assert!(rf.predict(&[1.0, 0.0, 0.0]));
        assert!(!rf.predict(&[1.0, 1.0, 1.0]));
        let p = rf.predict_proba(&[0.0, 1.0, 0.0]);
        assert!(p > 0.8, "probability {p}");
    }

    #[test]
    fn bootstrap_produces_diverse_trees() {
        let mut d = Dataset::new(1);
        let mut r = rng();
        for _ in 0..200 {
            let x: f64 = r.gen_range(0.0..1.0);
            d.push(&[x], x + r.gen_range(-0.2..0.2));
        }
        let rf = RandomForestRegressor::fit(&d, &ForestParams::default(), &mut r);
        let preds: Vec<f64> = rf.trees().iter().map(|t| t.predict(&[0.5])).collect();
        let distinct = preds.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-12);
        assert!(distinct, "bootstrapped trees should differ");
    }

    #[test]
    fn importances_rank_the_informative_feature_first() {
        // Label depends on feature 1 only; features 0 and 2 are noise.
        let mut d = Dataset::new(3);
        let mut r = rng();
        for _ in 0..500 {
            let signal = r.gen_range(0..2) as f64;
            d.push(&[r.gen_range(0.0..1.0), signal, r.gen_range(0.0..1.0)], signal * 100.0);
        }
        let rf = RandomForestRegressor::fit(&d, &ForestParams::default(), &mut r);
        let imp = rf.feature_importances();
        assert_eq!(imp.len(), 3);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9, "importances sum to 1");
        assert!(imp[1] > 0.9, "signal feature importance {imp:?}");
        assert!(imp[1] > imp[0] && imp[1] > imp[2]);
    }

    #[test]
    fn no_bootstrap_on_deterministic_data_gives_identical_trees() {
        let mut d = Dataset::new(1);
        for i in 0..50 {
            d.push(&[i as f64], (i * 3) as f64);
        }
        let params = ForestParams { bootstrap: false, ..ForestParams::default() };
        let rf = RandomForestRegressor::fit(&d, &params, &mut rng());
        let p0 = rf.trees()[0].predict(&[20.0]);
        assert!(rf.trees().iter().all(|t| t.predict(&[20.0]) == p0));
    }
}
