//! CART decision trees (regression and binary classification).
//!
//! The implementation is histogram-based: candidate thresholds for each
//! feature come from its globally observed distinct values (capped at
//! [`MAX_THRESHOLDS`], beyond which quantiles are used). TEVoT's feature
//! space — 128 bit-features plus the small discrete voltage/temperature
//! axes — makes this both exact and fast: a bit feature has one candidate
//! threshold, voltage twenty.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::dataset::Dataset;

/// Maximum number of candidate thresholds kept per feature.
pub const MAX_THRESHOLDS: usize = 256;

/// Hyper-parameters shared by single trees and forests.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeParams {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum number of samples required to split a node.
    pub min_samples_split: usize,
    /// Minimum number of samples in each child.
    pub min_samples_leaf: usize,
    /// Number of features examined per split; `None` means all (the
    /// paper's scikit-learn default for its random forest).
    pub max_features: Option<usize>,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams { max_depth: 24, min_samples_split: 2, min_samples_leaf: 1, max_features: None }
    }
}

/// What the tree optimizes at each split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Variance reduction; leaves predict the mean label.
    Regression,
    /// Gini impurity on binary labels (0.0 / 1.0); leaves predict the
    /// class-1 fraction.
    Classification,
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Node {
    /// Split feature, or `u32::MAX` for a leaf.
    feature: u32,
    /// Split threshold (`x <= threshold` goes left), or the leaf's
    /// prediction.
    value: f64,
    /// Children (pushed independently, so both are stored).
    left: u32,
    right: u32,
    /// Sample-weighted impurity decrease of this split (0 for leaves) —
    /// the raw material of feature importances.
    gain: f64,
}

const LEAF: u32 = u32::MAX;

/// A fitted CART decision tree.
///
/// # Examples
///
/// ```
/// use tevot_ml::{Dataset, DecisionTree, Task, TreeParams};
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let mut data = Dataset::new(1);
/// for i in 0..100 {
///     let x = i as f64 / 100.0;
///     data.push(&[x], if x < 0.5 { 1.0 } else { 9.0 });
/// }
/// let mut rng = SmallRng::seed_from_u64(0);
/// let tree = DecisionTree::fit(&data, Task::Regression, &TreeParams::default(), &mut rng);
/// assert_eq!(tree.predict(&[0.2]), 1.0);
/// assert_eq!(tree.predict(&[0.9]), 9.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    num_features: usize,
    task: Task,
}

/// Per-feature candidate thresholds, shared across the trees of a forest.
#[derive(Debug, Clone)]
pub struct ThresholdTable {
    /// Sorted candidate thresholds per feature (midpoints between adjacent
    /// observed distinct values).
    cuts: Vec<Vec<f64>>,
}

impl ThresholdTable {
    /// Scans `data` once and derives the candidate thresholds of every
    /// feature.
    pub fn build(data: &Dataset) -> Self {
        let d = data.num_features();
        let n = data.len();
        let mut cuts = Vec::with_capacity(d);
        let mut values: Vec<f64> = Vec::with_capacity(n);
        for f in 0..d {
            values.clear();
            values.extend((0..n).map(|i| data.row(i)[f]));
            values.sort_by(f64::total_cmp);
            values.dedup();
            let distinct = &values[..];
            let mut c: Vec<f64> = if distinct.len() <= MAX_THRESHOLDS + 1 {
                distinct.windows(2).map(|w| 0.5 * (w[0] + w[1])).collect()
            } else {
                // Quantile subsample.
                (1..=MAX_THRESHOLDS)
                    .map(|k| {
                        let idx = k * (distinct.len() - 1) / (MAX_THRESHOLDS + 1);
                        0.5 * (distinct[idx] + distinct[idx + 1])
                    })
                    .collect()
            };
            c.dedup();
            cuts.push(c);
        }
        ThresholdTable { cuts }
    }

    /// Candidate thresholds for feature `f`.
    pub fn cuts(&self, f: usize) -> &[f64] {
        &self.cuts[f]
    }
}

/// Running label statistics sufficient for both impurity criteria.
#[derive(Debug, Clone, Copy, Default)]
struct Stats {
    n: f64,
    sum: f64,
    sum_sq: f64,
}

impl Stats {
    #[inline]
    fn add(&mut self, label: f64) {
        self.n += 1.0;
        self.sum += label;
        self.sum_sq += label * label;
    }

    #[inline]
    fn merge(&mut self, other: &Stats) {
        self.n += other.n;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
    }

    /// Weighted impurity: SSE for regression, `n * gini` for binary
    /// classification (labels in {0, 1} make `sum` the class-1 count).
    #[inline]
    fn impurity(&self, task: Task) -> f64 {
        if self.n == 0.0 {
            return 0.0;
        }
        match task {
            Task::Regression => self.sum_sq - self.sum * self.sum / self.n,
            Task::Classification => {
                let p = self.sum / self.n;
                2.0 * self.n * p * (1.0 - p)
            }
        }
    }

    #[inline]
    fn prediction(&self, task: Task) -> f64 {
        let _ = task;
        if self.n == 0.0 {
            0.0
        } else {
            self.sum / self.n
        }
    }
}

impl DecisionTree {
    /// Fits a tree on `data`.
    ///
    /// `rng` is only consulted when `params.max_features` restricts the
    /// per-split feature subset.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset.
    pub fn fit(data: &Dataset, task: Task, params: &TreeParams, rng: &mut impl Rng) -> Self {
        let table = ThresholdTable::build(data);
        let indices: Vec<u32> = (0..data.len() as u32).collect();
        Self::fit_with_table(data, &indices, task, params, &table, rng)
    }

    /// Fits a tree on the rows of `data` selected (with multiplicity) by
    /// `indices`, reusing a prebuilt [`ThresholdTable`] — the forest
    /// training path.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty.
    pub fn fit_with_table(
        data: &Dataset,
        indices: &[u32],
        task: Task,
        params: &TreeParams,
        table: &ThresholdTable,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(!indices.is_empty(), "cannot fit a tree on zero samples");
        let mut builder = TreeBuilder {
            data,
            task,
            params,
            table,
            nodes: Vec::new(),
            all_features: (0..data.num_features() as u32).collect(),
        };
        let mut idx = indices.to_vec();
        let root_stats = stats_of(data, &idx, task);
        builder.grow(&mut idx, root_stats, 0, rng);
        DecisionTree { nodes: builder.nodes, num_features: data.num_features(), task }
    }

    /// Predicts the target for one feature row (mean label for regression,
    /// class-1 probability for classification).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the training data.
    pub fn predict(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.num_features, "feature width mismatch");
        let mut at = 0u32;
        loop {
            let node = &self.nodes[at as usize];
            if node.feature == LEAF {
                return node.value;
            }
            at = if row[node.feature as usize] <= node.value { node.left } else { node.right };
        }
    }

    /// Number of nodes (internal + leaves).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Maximum depth actually reached.
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], at: u32) -> usize {
            let n = &nodes[at as usize];
            if n.feature == LEAF {
                0
            } else {
                1 + walk(nodes, n.left).max(walk(nodes, n.right))
            }
        }
        walk(&self.nodes, 0)
    }

    /// The task this tree was trained for.
    pub fn task(&self) -> Task {
        self.task
    }

    /// Accumulates this tree's impurity-decrease feature importances into
    /// `acc` (length = feature count).
    ///
    /// Importance of a feature is the total impurity decrease achieved by
    /// the splits that use it, weighted by the number of training samples
    /// that reached each split. Stored per node at fit time.
    ///
    /// # Panics
    ///
    /// Panics if `acc.len()` differs from the training feature count.
    pub fn accumulate_importances(&self, acc: &mut [f64]) {
        assert_eq!(acc.len(), self.num_features, "importance buffer width mismatch");
        for node in &self.nodes {
            if node.feature != LEAF {
                acc[node.feature as usize] += node.gain;
            }
        }
    }

    pub(crate) fn num_features_raw(&self) -> usize {
        self.num_features
    }

    pub(crate) fn nodes_raw(&self) -> impl Iterator<Item = (u32, f64, u32, u32, f64)> + '_ {
        self.nodes.iter().map(|n| (n.feature, n.value, n.left, n.right, n.gain))
    }

    pub(crate) fn from_raw(
        nodes: Vec<(u32, f64, u32, u32, f64)>,
        num_features: usize,
        task: Task,
    ) -> Self {
        let nodes = nodes
            .into_iter()
            .map(|(feature, value, left, right, gain)| Node { feature, value, left, right, gain })
            .collect();
        DecisionTree { nodes, num_features, task }
    }
}

fn stats_of(data: &Dataset, indices: &[u32], _task: Task) -> Stats {
    let mut s = Stats::default();
    for &i in indices {
        s.add(data.label(i as usize));
    }
    s
}

struct TreeBuilder<'a, 'p> {
    data: &'a Dataset,
    task: Task,
    params: &'p TreeParams,
    table: &'a ThresholdTable,
    nodes: Vec<Node>,
    all_features: Vec<u32>,
}

impl TreeBuilder<'_, '_> {
    /// Grows a subtree over `indices` (mutated in place by partitioning)
    /// and returns its root node index.
    fn grow(&mut self, indices: &mut [u32], stats: Stats, depth: usize, rng: &mut impl Rng) -> u32 {
        let node_impurity = stats.impurity(self.task);
        let make_leaf = indices.len() < self.params.min_samples_split
            || depth >= self.params.max_depth
            || node_impurity <= 1e-12;

        let split = if make_leaf { None } else { self.best_split(indices, &stats, rng) };
        let Some((gain, feature, threshold, left_stats)) = split else {
            let id = self.nodes.len() as u32;
            self.nodes.push(Node {
                feature: LEAF,
                value: stats.prediction(self.task),
                left: 0,
                right: 0,
                gain: 0.0,
            });
            return id;
        };

        // Partition in place: `x <= threshold` first.
        let mut lo = 0;
        let mut hi = indices.len();
        while lo < hi {
            if self.data.row(indices[lo] as usize)[feature as usize] <= threshold {
                lo += 1;
            } else {
                hi -= 1;
                indices.swap(lo, hi);
            }
        }
        debug_assert!(lo > 0 && lo < indices.len(), "degenerate split");

        let mut right_stats = stats;
        right_stats.n -= left_stats.n;
        right_stats.sum -= left_stats.sum;
        right_stats.sum_sq -= left_stats.sum_sq;

        let id = self.nodes.len() as u32;
        self.nodes.push(Node { feature, value: threshold, left: 0, right: 0, gain });
        tevot_obs::metrics::ML_NODE_SPLITS.incr();
        let (left_idx, right_idx) = indices.split_at_mut(lo);
        let left = self.grow(left_idx, left_stats, depth + 1, rng);
        let right = self.grow(right_idx, right_stats, depth + 1, rng);
        self.nodes[id as usize].left = left;
        self.nodes[id as usize].right = right;
        id
    }

    /// Finds the impurity-minimizing split, returning
    /// `(feature, threshold, left_stats)`.
    fn best_split(
        &mut self,
        indices: &[u32],
        stats: &Stats,
        rng: &mut impl Rng,
    ) -> Option<(f64, u32, f64, Stats)> {
        let parent_impurity = stats.impurity(self.task);
        let min_leaf = self.params.min_samples_leaf as f64;
        let mut best: Option<(f64, u32, f64, Stats)> = None;

        let feature_count = self
            .params
            .max_features
            .map(|m| m.min(self.all_features.len()))
            .unwrap_or(self.all_features.len());
        if feature_count < self.all_features.len() {
            self.all_features.partial_shuffle(rng, feature_count);
        }

        // Scratch histogram over candidate thresholds.
        let mut bucket: Vec<Stats> = Vec::new();
        for fi in 0..feature_count {
            let f = self.all_features[fi] as usize;
            let cuts = self.table.cuts(f);
            if cuts.is_empty() {
                continue;
            }
            bucket.clear();
            bucket.resize(cuts.len() + 1, Stats::default());
            for &i in indices {
                let x = self.data.row(i as usize)[f];
                // First cut > x  ==  number of cuts <= x.
                let b = cuts.partition_point(|&c| c < x);
                bucket[b].add(self.data.label(i as usize));
            }
            // Prefix-scan: left side of cut j = buckets 0..=j.
            let mut left = Stats::default();
            for (j, b) in bucket[..cuts.len()].iter().enumerate() {
                left.merge(b);
                let right_n = stats.n - left.n;
                if left.n < min_leaf || right_n < min_leaf || left.n == 0.0 || right_n == 0.0 {
                    continue;
                }
                let mut right = *stats;
                right.n -= left.n;
                right.sum -= left.sum;
                right.sum_sq -= left.sum_sq;
                // A zero-gain split is still accepted (mirroring CART as
                // implemented in scikit-learn): concepts like XOR have no
                // first-level gain yet are perfectly separable below.
                let gain = parent_impurity - left.impurity(self.task) - right.impurity(self.task);
                if best.map_or(gain > -1e-12, |(g, ..)| gain > g) {
                    best = Some((gain, f as u32, cuts[j], left));
                }
            }
        }
        best.map(|(g, f, t, l)| (g.max(0.0), f, t, l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn threshold_table_binary_feature() {
        let mut d = Dataset::new(2);
        d.push(&[0.0, 5.0], 1.0);
        d.push(&[1.0, 7.0], 2.0);
        d.push(&[0.0, 9.0], 3.0);
        let t = ThresholdTable::build(&d);
        assert_eq!(t.cuts(0), &[0.5]);
        assert_eq!(t.cuts(1), &[6.0, 8.0]);
    }

    #[test]
    fn fits_xor_exactly() {
        // XOR is the classic interaction no linear model captures.
        let mut d = Dataset::new(2);
        for a in [0.0, 1.0] {
            for b in [0.0, 1.0] {
                for _ in 0..10 {
                    d.push(&[a, b], if a != b { 1.0 } else { 0.0 });
                }
            }
        }
        let tree = DecisionTree::fit(&d, Task::Classification, &TreeParams::default(), &mut rng());
        for a in [0.0, 1.0] {
            for b in [0.0, 1.0] {
                let expect = if a != b { 1.0 } else { 0.0 };
                assert_eq!(tree.predict(&[a, b]), expect, "xor({a},{b})");
            }
        }
    }

    #[test]
    fn regression_piecewise_constant() {
        let mut d = Dataset::new(1);
        for i in 0..300 {
            let x = i as f64 / 300.0;
            let y = if x < 0.3 {
                10.0
            } else if x < 0.7 {
                20.0
            } else {
                5.0
            };
            d.push(&[x], y);
        }
        let tree = DecisionTree::fit(&d, Task::Regression, &TreeParams::default(), &mut rng());
        assert_eq!(tree.predict(&[0.1]), 10.0);
        assert_eq!(tree.predict(&[0.5]), 20.0);
        assert_eq!(tree.predict(&[0.9]), 5.0);
    }

    #[test]
    fn max_depth_limits_tree() {
        let mut d = Dataset::new(1);
        for i in 0..128 {
            d.push(&[i as f64], i as f64);
        }
        let params = TreeParams { max_depth: 2, ..TreeParams::default() };
        let tree = DecisionTree::fit(&d, Task::Regression, &params, &mut rng());
        assert!(tree.depth() <= 2);
        assert!(tree.num_nodes() <= 7);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let mut d = Dataset::new(1);
        for i in 0..20 {
            d.push(&[i as f64], (i % 2) as f64);
        }
        let params = TreeParams { min_samples_leaf: 8, ..TreeParams::default() };
        let tree = DecisionTree::fit(&d, Task::Classification, &params, &mut rng());
        // With min leaf 8 on 20 alternating samples the tree stays tiny.
        assert!(tree.num_nodes() <= 5, "got {} nodes", tree.num_nodes());
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let mut d = Dataset::new(3);
        for i in 0..50 {
            d.push(&[i as f64, (i * 7 % 13) as f64, 0.0], 3.5);
        }
        let tree = DecisionTree::fit(&d, Task::Regression, &TreeParams::default(), &mut rng());
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(tree.predict(&[99.0, 99.0, 99.0]), 3.5);
    }

    #[test]
    fn classification_prediction_is_probability() {
        let mut d = Dataset::new(1);
        for i in 0..10 {
            // x = 0 -> 30% positive; x = 1 -> all positive.
            d.push(&[0.0], if i < 3 { 1.0 } else { 0.0 });
            d.push(&[1.0], 1.0);
        }
        let params = TreeParams { max_depth: 1, ..TreeParams::default() };
        let tree = DecisionTree::fit(&d, Task::Classification, &params, &mut rng());
        assert!((tree.predict(&[0.0]) - 0.3).abs() < 1e-9);
        assert_eq!(tree.predict(&[1.0]), 1.0);
    }

    #[test]
    fn max_features_subsampling_still_learns() {
        let mut d = Dataset::new(4);
        let mut r = rng();
        for _ in 0..400 {
            let row: Vec<f64> = (0..4).map(|_| r.gen_range(0..2) as f64).collect();
            let label = row[2];
            d.push(&row, label);
        }
        let params = TreeParams { max_features: Some(2), ..TreeParams::default() };
        let tree = DecisionTree::fit(&d, Task::Classification, &params, &mut r);
        let mut correct = 0;
        for i in 0..d.len() {
            if (tree.predict(d.row(i)) >= 0.5) as u8 as f64 == d.label(i) {
                correct += 1;
            }
        }
        assert!(correct as f64 / d.len() as f64 > 0.95);
    }
}
