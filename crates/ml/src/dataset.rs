//! In-memory datasets for supervised learning.

use rand::seq::SliceRandom;
use rand::Rng;

/// A dense, row-major feature matrix with one numeric label per row.
///
/// Labels are `f64` for both regression (e.g. dynamic delay in ps) and
/// binary classification (0.0 / 1.0); the estimators decide how to
/// interpret them.
///
/// # Examples
///
/// ```
/// use tevot_ml::Dataset;
///
/// let mut data = Dataset::new(2);
/// data.push(&[0.0, 1.0], 10.0);
/// data.push(&[1.0, 0.0], 20.0);
/// assert_eq!(data.len(), 2);
/// assert_eq!(data.row(1), &[1.0, 0.0]);
/// assert_eq!(data.label(1), 20.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dataset {
    num_features: usize,
    features: Vec<f64>,
    labels: Vec<f64>,
}

impl Dataset {
    /// Creates an empty dataset whose rows have `num_features` columns.
    ///
    /// # Panics
    ///
    /// Panics if `num_features` is zero.
    pub fn new(num_features: usize) -> Self {
        assert!(num_features > 0, "dataset must have at least one feature");
        Dataset { num_features, features: Vec::new(), labels: Vec::new() }
    }

    /// Creates a dataset with rows preallocated for `capacity` samples.
    pub fn with_capacity(num_features: usize, capacity: usize) -> Self {
        let mut d = Dataset::new(num_features);
        d.features.reserve(capacity * num_features);
        d.labels.reserve(capacity);
        d
    }

    /// Number of feature columns.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from [`Self::num_features`].
    pub fn push(&mut self, row: &[f64], label: f64) {
        assert_eq!(row.len(), self.num_features, "row width mismatch");
        self.features.extend_from_slice(row);
        self.labels.push(label);
    }

    /// Feature row `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.features[i * self.num_features..(i + 1) * self.num_features]
    }

    /// Label of row `i`.
    pub fn label(&self, i: usize) -> f64 {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[f64] {
        &self.labels
    }

    /// Iterates `(row, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], f64)> + '_ {
        (0..self.len()).map(move |i| (self.row(i), self.labels[i]))
    }

    /// Returns a dataset containing the given rows (by index, duplicates
    /// allowed — this is also the bootstrap-sampling primitive).
    pub fn select(&self, indices: &[usize]) -> Dataset {
        let mut out = Dataset::with_capacity(self.num_features, indices.len());
        for &i in indices {
            out.push(self.row(i), self.labels[i]);
        }
        out
    }

    /// Appends every row of `other` (same feature width) to `self` — the
    /// ordered-concatenation primitive behind parallel featurization.
    ///
    /// # Panics
    ///
    /// Panics if the feature widths differ.
    pub fn append(&mut self, other: &Dataset) {
        assert_eq!(self.num_features, other.num_features, "dataset width mismatch");
        self.features.extend_from_slice(&other.features);
        self.labels.extend_from_slice(&other.labels);
    }

    /// Splits into `(train, test)` with `train_fraction` of the rows (after
    /// a shuffle driven by `rng`) in the training set.
    ///
    /// With at least two rows, both halves are guaranteed non-empty: the
    /// rounded cut is clamped into `1..=len-1`, so extreme fractions on
    /// tiny datasets (`round(len * fraction)` hitting `0` or `len`) no
    /// longer produce an empty train or test set that the estimators
    /// would panic on.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < train_fraction < 1`.
    pub fn split(&self, train_fraction: f64, rng: &mut impl Rng) -> (Dataset, Dataset) {
        assert!(
            (0.0..1.0).contains(&train_fraction) && train_fraction > 0.0,
            "train fraction {train_fraction} out of range"
        );
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        let mut cut = (self.len() as f64 * train_fraction).round() as usize;
        if self.len() >= 2 {
            cut = cut.clamp(1, self.len() - 1);
        }
        (self.select(&idx[..cut]), self.select(&idx[cut..]))
    }

    /// Relabels every row through `f`, e.g. to turn delay labels into
    /// error-class labels for a specific clock period.
    pub fn map_labels(&self, f: impl Fn(f64) -> f64) -> Dataset {
        let mut out = self.clone();
        for l in &mut out.labels {
            *l = f(*l);
        }
        out
    }
}

/// Per-feature standardization (zero mean, unit variance), required by the
/// distance- and margin-based estimators (k-NN, SVM) when features live on
/// very different scales — e.g. voltage in volts next to temperature in
/// degrees.
#[derive(Debug, Clone, PartialEq)]
pub struct Scaler {
    means: Vec<f64>,
    inv_stds: Vec<f64>,
}

impl Scaler {
    /// Learns the per-feature mean and standard deviation of `data`.
    /// Constant features get an identity scaling instead of a division by
    /// zero.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset.
    pub fn fit(data: &Dataset) -> Self {
        assert!(!data.is_empty(), "cannot fit a scaler on an empty dataset");
        let d = data.num_features();
        let n = data.len() as f64;
        let mut means = vec![0.0; d];
        for (row, _) in data.iter() {
            for (m, &x) in means.iter_mut().zip(row) {
                *m += x;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; d];
        for (row, _) in data.iter() {
            for ((v, &m), &x) in vars.iter_mut().zip(&means).zip(row) {
                *v += (x - m) * (x - m);
            }
        }
        let inv_stds = vars
            .iter()
            .map(|&v| {
                let s = (v / n).sqrt();
                if s > 1e-12 {
                    1.0 / s
                } else {
                    1.0
                }
            })
            .collect();
        Scaler { means, inv_stds }
    }

    /// Standardizes one row into `out`.
    ///
    /// # Panics
    ///
    /// Panics if widths mismatch.
    pub fn transform_into(&self, row: &[f64], out: &mut Vec<f64>) {
        assert_eq!(row.len(), self.means.len(), "row width mismatch");
        out.clear();
        out.extend(
            row.iter().zip(&self.means).zip(&self.inv_stds).map(|((&x, &m), &inv)| (x - m) * inv),
        );
    }

    /// Standardizes a whole dataset (labels pass through).
    pub fn transform(&self, data: &Dataset) -> Dataset {
        let mut out = Dataset::with_capacity(data.num_features(), data.len());
        let mut buf = Vec::with_capacity(data.num_features());
        for (row, label) in data.iter() {
            self.transform_into(row, &mut buf);
            out.push(&buf, label);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..10 {
            d.push(&[i as f64, (i % 2) as f64], i as f64 * 10.0);
        }
        d
    }

    #[test]
    fn push_and_access() {
        let d = toy();
        assert_eq!(d.len(), 10);
        assert_eq!(d.num_features(), 2);
        assert_eq!(d.row(3), &[3.0, 1.0]);
        assert_eq!(d.label(3), 30.0);
    }

    #[test]
    fn split_partitions_rows() {
        let d = toy();
        let mut rng = SmallRng::seed_from_u64(7);
        let (train, test) = d.split(0.7, &mut rng);
        assert_eq!(train.len(), 7);
        assert_eq!(test.len(), 3);
        // Every original label appears exactly once across the two halves.
        let mut all: Vec<f64> = train.labels().iter().chain(test.labels()).copied().collect();
        all.sort_by(f64::total_cmp);
        assert_eq!(all, (0..10).map(|i| i as f64 * 10.0).collect::<Vec<_>>());
    }

    #[test]
    fn split_of_tiny_datasets_keeps_both_halves_non_empty() {
        let mut rng = SmallRng::seed_from_u64(3);
        for len in 2..=5usize {
            let mut d = Dataset::new(1);
            for i in 0..len {
                d.push(&[i as f64], i as f64);
            }
            for fraction in [0.01, 0.5, 0.99] {
                let (train, test) = d.split(fraction, &mut rng);
                assert!(!train.is_empty(), "len {len} fraction {fraction}: empty train");
                assert!(!test.is_empty(), "len {len} fraction {fraction}: empty test");
                assert_eq!(train.len() + test.len(), len);
            }
        }
    }

    #[test]
    fn split_of_single_row_dataset_does_not_panic() {
        let mut d = Dataset::new(1);
        d.push(&[1.0], 2.0);
        let mut rng = SmallRng::seed_from_u64(4);
        let (train, test) = d.split(0.9, &mut rng);
        assert_eq!(train.len() + test.len(), 1);
        let (train, test) = Dataset::new(1).split(0.5, &mut rng);
        assert!(train.is_empty() && test.is_empty());
    }

    #[test]
    fn append_concatenates_in_order() {
        let d = toy();
        let mut a = d.select(&[0, 1, 2]);
        let b = d.select(&[3, 4]);
        a.append(&b);
        assert_eq!(a.len(), 5);
        assert_eq!(a.row(3), d.row(3));
        assert_eq!(a.label(4), d.label(4));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn append_rejects_width_mismatch() {
        let mut a = Dataset::new(2);
        a.append(&Dataset::new(3));
    }

    #[test]
    fn select_allows_duplicates() {
        let d = toy();
        let boot = d.select(&[0, 0, 5]);
        assert_eq!(boot.len(), 3);
        assert_eq!(boot.label(0), 0.0);
        assert_eq!(boot.label(1), 0.0);
        assert_eq!(boot.label(2), 50.0);
    }

    #[test]
    fn map_labels_transforms() {
        let d = toy().map_labels(|l| (l > 40.0) as u8 as f64);
        assert_eq!(d.label(0), 0.0);
        assert_eq!(d.label(9), 1.0);
    }

    #[test]
    fn scaler_standardizes() {
        let d = toy();
        let scaler = Scaler::fit(&d);
        let t = scaler.transform(&d);
        let n = t.len() as f64;
        for col in 0..2 {
            let mean: f64 = (0..t.len()).map(|i| t.row(i)[col]).sum::<f64>() / n;
            let var: f64 = (0..t.len()).map(|i| t.row(i)[col].powi(2)).sum::<f64>() / n;
            assert!(mean.abs() < 1e-9, "column {col} mean {mean}");
            assert!((var - 1.0).abs() < 1e-9, "column {col} variance {var}");
        }
        // Labels untouched.
        assert_eq!(t.labels(), d.labels());
    }

    #[test]
    fn scaler_handles_constant_features() {
        let mut d = Dataset::new(1);
        d.push(&[5.0], 0.0);
        d.push(&[5.0], 1.0);
        let t = Scaler::fit(&d).transform(&d);
        assert_eq!(t.row(0), &[0.0]);
    }
}
