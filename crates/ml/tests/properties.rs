//! Property tests over the learning machinery: invariants that must hold
//! for any data, not just the unit-test fixtures.

use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tevot_ml::{
    metrics, Dataset, DecisionTree, ForestParams, KnnRegressor, LinearRegression,
    RandomForestClassifier, RandomForestRegressor, Scaler, Task, TreeParams,
};

/// Builds a dataset from generated rows.
fn dataset(rows: &[(Vec<f64>, f64)]) -> Dataset {
    let mut d = Dataset::new(rows[0].0.len());
    for (row, label) in rows {
        d.push(row, *label);
    }
    d
}

fn rows(
    num_features: usize,
    len: std::ops::Range<usize>,
) -> impl Strategy<Value = Vec<(Vec<f64>, f64)>> {
    vec(
        (
            vec(prop_oneof![Just(0.0), Just(1.0), (-100.0f64..100.0)], num_features),
            -1000.0f64..1000.0,
        ),
        len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A decision tree's prediction on a training row lies within the
    /// label range of the training set (it predicts leaf means).
    #[test]
    fn tree_predictions_stay_in_label_range(data in rows(4, 5..60)) {
        let d = dataset(&data);
        let mut rng = SmallRng::seed_from_u64(0);
        let tree = DecisionTree::fit(&d, Task::Regression, &TreeParams::default(), &mut rng);
        let lo = d.labels().iter().copied().fold(f64::INFINITY, f64::min);
        let hi = d.labels().iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for (row, _) in d.iter() {
            let p = tree.predict(row);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
        }
    }

    /// With distinct rows and no depth pressure, a tree memorizes its
    /// training data exactly.
    #[test]
    fn tree_memorizes_distinct_rows(seed in 0u64..1000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        use rand::Rng;
        let mut d = Dataset::new(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..40 {
            let row: Vec<f64> = (0..3).map(|_| rng.gen_range(0..16) as f64).collect();
            let key = row.iter().map(|&x| x as i64).collect::<Vec<_>>();
            if seen.insert(key) {
                let label = rng.gen_range(-10.0..10.0);
                d.push(&row, label);
            }
        }
        let params = TreeParams { max_depth: 64, ..TreeParams::default() };
        let tree = DecisionTree::fit(&d, Task::Regression, &params, &mut rng);
        for (row, label) in d.iter() {
            prop_assert!((tree.predict(row) - label).abs() < 1e-9);
        }
    }

    /// Forest predictions are permutation-invariant in the feature rows
    /// (training on shuffled rows with the same seed differs, but
    /// prediction on any row is always the mean over its trees).
    #[test]
    fn forest_prediction_is_mean_of_trees(data in rows(3, 10..40)) {
        let d = dataset(&data);
        let mut rng = SmallRng::seed_from_u64(1);
        let rf = RandomForestRegressor::fit(&d, &ForestParams::default(), &mut rng);
        let row = d.row(0);
        let mean: f64 =
            rf.trees().iter().map(|t| t.predict(row)).sum::<f64>() / rf.trees().len() as f64;
        prop_assert!((rf.predict(row) - mean).abs() < 1e-12);
    }

    /// The classifier's probability is always in [0, 1] and consistent
    /// with its hard decision.
    #[test]
    fn classifier_probability_is_calibrated(data in rows(3, 10..40)) {
        let d = dataset(&data).map_labels(|l| (l > 0.0) as u8 as f64);
        let mut rng = SmallRng::seed_from_u64(2);
        let rf = RandomForestClassifier::fit(&d, &ForestParams::default(), &mut rng);
        for (row, _) in d.iter() {
            let p = rf.predict_proba(row);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert_eq!(rf.predict(row), p >= 0.5);
        }
    }

    /// Linear regression is exact on exactly-linear data.
    #[test]
    fn linear_regression_recovers_plane(
        w0 in -5.0f64..5.0,
        w1 in -5.0f64..5.0,
        b in -10.0f64..10.0,
    ) {
        let mut d = Dataset::new(2);
        for i in 0..30 {
            let x = [(i % 6) as f64, (i / 6) as f64];
            d.push(&x, w0 * x[0] + w1 * x[1] + b);
        }
        let lr = LinearRegression::fit(&d, 1e-9);
        prop_assert!((lr.predict(&[2.0, 3.0]) - (2.0 * w0 + 3.0 * w1 + b)).abs() < 1e-5);
    }

    /// Standardization is idempotent up to scaling: applying a scaler
    /// fitted on already-standardized data is the identity.
    #[test]
    fn scaler_is_idempotent(data in rows(3, 5..30)) {
        let d = dataset(&data);
        let once = Scaler::fit(&d).transform(&d);
        let twice = Scaler::fit(&once).transform(&once);
        for i in 0..once.len() {
            for (a, b) in once.row(i).iter().zip(twice.row(i)) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }

    /// 1-NN prediction on a training row returns that row's label.
    #[test]
    fn one_nn_is_exact_on_training_rows(data in rows(2, 3..25)) {
        let d = dataset(&data);
        // Deduplicate rows (ties would be legitimate mismatches).
        let mut seen = std::collections::HashMap::new();
        let mut unique = Dataset::new(2);
        for (row, label) in d.iter() {
            let key: Vec<i64> = row.iter().map(|&x| (x * 1e6) as i64).collect();
            if seen.insert(key, label).is_none() {
                unique.push(row, label);
            }
        }
        prop_assume!(unique.len() >= 1);
        let knn = KnnRegressor::fit(&unique, 1);
        for (row, label) in unique.iter() {
            prop_assert_eq!(knn.predict(row), label);
        }
    }

    /// Accuracy is symmetric and bounded.
    #[test]
    fn accuracy_properties(labels in vec((any::<bool>(), any::<bool>()), 1..100)) {
        let (a, b): (Vec<bool>, Vec<bool>) = labels.into_iter().unzip();
        let acc = metrics::accuracy(&a, &b);
        prop_assert!((0.0..=1.0).contains(&acc));
        prop_assert_eq!(acc, metrics::accuracy(&b, &a));
        prop_assert_eq!(metrics::accuracy(&a, &a), 1.0);
    }

    /// The confusion matrix partitions the sample count.
    #[test]
    fn confusion_matrix_partitions(labels in vec((any::<bool>(), any::<bool>()), 1..100)) {
        let (p, a): (Vec<bool>, Vec<bool>) = labels.into_iter().unzip();
        let m = metrics::ConfusionMatrix::from_labels(&p, &a);
        prop_assert_eq!(m.total(), p.len());
        prop_assert!((m.accuracy() - metrics::accuracy(&p, &a)).abs() < 1e-12);
    }
}
