//! Gate-level netlist IR and functional-unit generators for the TEVoT
//! (DAC 2020) reproduction.
//!
//! The paper characterizes *dynamic delay* — the arrival time of the last
//! output toggle in a cycle — of four functional units under voltage and
//! temperature variation. That requires real gate-level circuits whose
//! sensitized path length depends on the operands. This crate provides:
//!
//! * a compact combinational netlist IR ([`Netlist`], [`Gate`],
//!   [`GateKind`], [`NetId`]) with gates stored in topological order;
//! * an incremental [`NetlistBuilder`] plus word-level combinators in
//!   [`words`] (adders, shifters, reduction trees, normalizers);
//! * generators for the paper's four functional units in [`fu`]: 32-bit
//!   integer add/multiply and IEEE-754 single-precision add/multiply,
//!   together with bit-exact software reference models.
//!
//! # Examples
//!
//! Build the integer adder and evaluate it functionally:
//!
//! ```
//! use tevot_netlist::fu::FunctionalUnit;
//!
//! let fu = FunctionalUnit::IntAdd;
//! let netlist = fu.build();
//! let out = netlist.evaluate(&fu.encode_operands(40, 2));
//! assert_eq!(fu.decode_output(&out), 42);
//! ```

#![warn(missing_docs)]

mod builder;
pub mod fu;
mod gate;
mod netlist;
pub mod words;

pub use builder::NetlistBuilder;
pub use gate::{Gate, GateKind, NetId};
pub use netlist::{FanoutCsr, Levelization, Netlist, NetlistStats, PortGroup};
