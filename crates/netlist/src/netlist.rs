//! The [`Netlist`] container: a combinational gate-level circuit.

use std::collections::BTreeMap;
use std::fmt;

use crate::gate::{Gate, GateKind, NetId};

/// A named group of nets forming a port (bus) of the circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortGroup {
    name: String,
    nets: Vec<NetId>,
}

impl PortGroup {
    pub(crate) fn new(name: impl Into<String>, nets: Vec<NetId>) -> Self {
        PortGroup { name: name.into(), nets }
    }

    /// Port name, e.g. `"a"` or `"sum"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Nets of the bus, least-significant bit first.
    pub fn nets(&self) -> &[NetId] {
        &self.nets
    }

    /// Bus width in bits.
    pub fn width(&self) -> usize {
        self.nets.len()
    }
}

/// A combinational gate-level circuit.
///
/// Gates are stored in topological order by construction (a
/// [`NetlistBuilder`](crate::NetlistBuilder) can only reference nets that
/// already exist), so evaluation, static timing analysis and simulation all
/// run as a single forward pass over `gates`.
///
/// # Examples
///
/// ```
/// use tevot_netlist::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new("half_adder");
/// let a = b.input("a");
/// let c = b.input("b");
/// let sum = b.xor(a, c);
/// let carry = b.and(a, c);
/// b.output("sum", sum);
/// b.output("carry", carry);
/// let nl = b.finish();
///
/// assert_eq!(nl.evaluate(&[true, true]), vec![false, true]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Netlist {
    pub(crate) name: String,
    pub(crate) gates: Vec<Gate>,
    pub(crate) inputs: Vec<NetId>,
    pub(crate) outputs: Vec<NetId>,
    pub(crate) input_ports: Vec<PortGroup>,
    pub(crate) output_ports: Vec<PortGroup>,
}

impl Netlist {
    /// Name given to the circuit at construction.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All gates (including primary inputs and tie cells) in topological
    /// order. Gate `i` drives net `i`.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The gate driving `net`.
    pub fn gate(&self, net: NetId) -> &Gate {
        &self.gates[net.index()]
    }

    /// Total number of nets (== number of gates).
    pub fn num_nets(&self) -> usize {
        self.gates.len()
    }

    /// Number of real logic cells (excluding primary inputs and ties).
    pub fn num_cells(&self) -> usize {
        self.gates.iter().filter(|g| g.kind().is_cell()).count()
    }

    /// Primary-input nets in declaration order (bus LSB first).
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary-output nets in declaration order (bus LSB first).
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Named input buses.
    pub fn input_ports(&self) -> &[PortGroup] {
        &self.input_ports
    }

    /// Named output buses.
    pub fn output_ports(&self) -> &[PortGroup] {
        &self.output_ports
    }

    /// Zero-delay functional evaluation: applies `inputs` (one `bool` per
    /// primary input, in [`Self::inputs`] order) and returns the settled
    /// primary-output values in [`Self::outputs`] order.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of primary inputs.
    pub fn evaluate(&self, inputs: &[bool]) -> Vec<bool> {
        let values = self.evaluate_nets(inputs);
        self.outputs.iter().map(|&n| values[n.index()]).collect()
    }

    /// Zero-delay functional evaluation returning the value of *every* net.
    ///
    /// Useful for initializing a timing simulation or inspecting internal
    /// signals.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of primary inputs.
    pub fn evaluate_nets(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(
            inputs.len(),
            self.inputs.len(),
            "netlist {} expects {} input bits, got {}",
            self.name,
            self.inputs.len(),
            inputs.len()
        );
        let mut values = vec![false; self.gates.len()];
        for (&net, &v) in self.inputs.iter().zip(inputs) {
            values[net.index()] = v;
        }
        let mut pins = [false; GateKind::MAX_ARITY];
        for (i, gate) in self.gates.iter().enumerate() {
            if gate.kind() == GateKind::Input {
                continue;
            }
            let ins = gate.inputs();
            for (p, &n) in ins.iter().enumerate() {
                pins[p] = values[n.index()];
            }
            values[i] = gate.eval(&pins[..ins.len()]);
        }
        values
    }

    /// Number of loads (fanout) of each net. Nets that feed a primary
    /// output register count that sink as one load.
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.gates.len()];
        for gate in &self.gates {
            for &n in gate.inputs() {
                counts[n.index()] += 1;
            }
        }
        for &n in &self.outputs {
            counts[n.index()] += 1;
        }
        counts
    }

    /// Fanout adjacency in compressed sparse row form: for net `n`, the
    /// gates it feeds are `sinks[offsets[n]..offsets[n + 1]]`.
    pub fn fanout_csr(&self) -> FanoutCsr {
        let mut counts = vec![0u32; self.gates.len()];
        for gate in &self.gates {
            for &n in gate.inputs() {
                counts[n.index()] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(self.gates.len() + 1);
        let mut acc = 0u32;
        for &c in &counts {
            offsets.push(acc);
            acc += c;
        }
        offsets.push(acc);
        let mut cursor = offsets.clone();
        let mut sinks = vec![0u32; acc as usize];
        for (gi, gate) in self.gates.iter().enumerate() {
            for &n in gate.inputs() {
                let slot = cursor[n.index()];
                sinks[slot as usize] = gi as u32;
                cursor[n.index()] += 1;
            }
        }
        FanoutCsr { offsets, sinks }
    }

    /// Logic depth: the maximum number of cells on any input-to-output path.
    pub fn depth(&self) -> usize {
        self.levelize().depth()
    }

    /// The widest fan-in of any gate in this netlist (0 for a circuit of
    /// nothing but inputs and ties). Simulators size per-pin scratch
    /// buffers from this instead of hard-coding a library-wide maximum.
    pub fn max_fan_in(&self) -> usize {
        self.gates.iter().map(|g| g.kind().arity()).max().unwrap_or(0)
    }

    /// Topological levelization: assigns every net the length of the
    /// longest cell chain feeding it (primary inputs and ties sit at level
    /// 0, a cell sits one past its deepest input). Because gates are stored
    /// topologically, this is a single forward pass; the levelized
    /// simulator uses the result to schedule its arrival-time recovery so
    /// that every fan-in is final before a gate is replayed.
    pub fn levelize(&self) -> Levelization {
        let mut levels = vec![0u32; self.gates.len()];
        let mut max = 0u32;
        for (i, gate) in self.gates.iter().enumerate() {
            if !gate.kind().is_cell() {
                continue;
            }
            let l = 1 + gate.inputs().iter().map(|n| levels[n.index()]).max().unwrap_or(0);
            levels[i] = l;
            max = max.max(l);
        }
        let num_levels = if self.gates.is_empty() { 0 } else { max as usize + 1 };
        Levelization { levels, num_levels }
    }

    /// Per-kind cell counts plus totals.
    pub fn stats(&self) -> NetlistStats {
        let mut per_kind = BTreeMap::new();
        for gate in &self.gates {
            *per_kind.entry(gate.kind().name()).or_insert(0usize) += 1;
        }
        NetlistStats {
            name: self.name.clone(),
            num_nets: self.num_nets(),
            num_cells: self.num_cells(),
            depth: self.depth(),
            per_kind,
        }
    }

    /// Checks structural invariants: topological ordering, pin arity, and
    /// port references. Returns a description of the first violation.
    ///
    /// Netlists produced by [`NetlistBuilder`](crate::NetlistBuilder) always
    /// pass; this is a safety net for hand-assembled or deserialized data.
    pub fn validate(&self) -> Result<(), String> {
        for (i, gate) in self.gates.iter().enumerate() {
            for &n in gate.inputs() {
                if n.index() >= i {
                    return Err(format!(
                        "gate {i} ({}) reads net {n} that is not before it",
                        gate.kind()
                    ));
                }
            }
        }
        for &n in &self.inputs {
            if n.index() >= self.gates.len() {
                return Err(format!("primary input {n} out of range"));
            }
            if self.gates[n.index()].kind() != GateKind::Input {
                return Err(format!("primary input {n} is not driven by an input gate"));
            }
        }
        for &n in &self.outputs {
            if n.index() >= self.gates.len() {
                return Err(format!("primary output {n} out of range"));
            }
        }
        let declared: usize = self.input_ports.iter().map(PortGroup::width).sum();
        if declared != self.inputs.len() {
            return Err("input port groups do not cover all primary inputs".into());
        }
        Ok(())
    }
}

/// Per-net topological levels of a [`Netlist`], as computed by
/// [`Netlist::levelize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Levelization {
    levels: Vec<u32>,
    num_levels: usize,
}

impl Levelization {
    /// The level of `net`: 0 for primary inputs and ties, `1 + max(input
    /// levels)` for cells. Every gate's level is strictly greater than all
    /// of its fan-ins' levels.
    #[inline]
    pub fn level(&self, net: NetId) -> u32 {
        self.levels[net.index()]
    }

    /// Per-net levels indexed by raw net index.
    pub fn levels(&self) -> &[u32] {
        &self.levels
    }

    /// Number of distinct levels (`max level + 1`; 0 for an empty circuit).
    pub fn num_levels(&self) -> usize {
        self.num_levels
    }

    /// The maximum level — the circuit's logic depth in cells.
    pub fn depth(&self) -> usize {
        self.num_levels.saturating_sub(1)
    }
}

/// Fanout adjacency of a [`Netlist`] in compressed sparse row form.
#[derive(Debug, Clone)]
pub struct FanoutCsr {
    offsets: Vec<u32>,
    sinks: Vec<u32>,
}

impl FanoutCsr {
    /// Gates fed by `net`.
    #[inline]
    pub fn sinks(&self, net: NetId) -> &[u32] {
        let lo = self.offsets[net.index()] as usize;
        let hi = self.offsets[net.index() + 1] as usize;
        &self.sinks[lo..hi]
    }
}

/// Summary statistics of a netlist, as produced by [`Netlist::stats`].
#[derive(Debug, Clone)]
pub struct NetlistStats {
    /// Circuit name.
    pub name: String,
    /// Total nets (gates + inputs + ties).
    pub num_nets: usize,
    /// Logic cells only.
    pub num_cells: usize,
    /// Maximum logic depth in cells.
    pub depth: usize,
    /// Instance count per cell kind name.
    pub per_kind: BTreeMap<&'static str, usize>,
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} cells, {} nets, depth {}",
            self.name, self.num_cells, self.num_nets, self.depth
        )?;
        for (kind, count) in &self.per_kind {
            writeln!(f, "  {kind:>6}: {count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::NetlistBuilder;

    #[test]
    fn evaluate_full_adder() {
        let mut b = NetlistBuilder::new("fa");
        let a = b.input("a");
        let x = b.input("b");
        let c = b.input("cin");
        let s = b.xor3(a, x, c);
        let co = b.maj(a, x, c);
        b.output("s", s);
        b.output("co", co);
        let nl = b.finish();
        nl.validate().unwrap();
        for bits in 0..8u8 {
            let (a, x, c) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0);
            let total = a as u8 + x as u8 + c as u8;
            let out = nl.evaluate(&[a, x, c]);
            assert_eq!(out[0], total % 2 == 1, "sum for {bits:03b}");
            assert_eq!(out[1], total >= 2, "carry for {bits:03b}");
        }
    }

    #[test]
    fn fanout_counts_and_csr_agree() {
        let mut b = NetlistBuilder::new("fan");
        let a = b.input("a");
        let x = b.input("b");
        let y = b.and(a, x);
        let z = b.or(a, y);
        b.output("z", z);
        let nl = b.finish();
        let counts = nl.fanout_counts();
        // `a` feeds the AND and the OR.
        assert_eq!(counts[a.index()], 2);
        // `z` feeds only the output register.
        assert_eq!(counts[z.index()], 1);
        let csr = nl.fanout_csr();
        assert_eq!(csr.sinks(a).len(), 2);
        // CSR tracks gate sinks only, not the output register.
        assert_eq!(csr.sinks(z).len(), 0);
    }

    #[test]
    fn depth_counts_cells() {
        let mut b = NetlistBuilder::new("chain");
        let a = b.input("a");
        let mut x = a;
        for _ in 0..5 {
            x = b.not(x);
        }
        b.output("y", x);
        let nl = b.finish();
        assert_eq!(nl.depth(), 5);
    }

    #[test]
    fn levelize_orders_every_fan_in_below_its_gate() {
        let mut b = NetlistBuilder::new("lvl");
        let a = b.input("a");
        let x = b.input("b");
        let n1 = b.not(a); // level 1
        let n2 = b.and(n1, x); // level 2
        let n3 = b.or(n2, a); // level 3
        b.output("y", n3);
        let nl = b.finish();
        let lv = nl.levelize();
        assert_eq!(lv.level(a), 0);
        assert_eq!(lv.level(n1), 1);
        assert_eq!(lv.level(n2), 2);
        assert_eq!(lv.level(n3), 3);
        assert_eq!(lv.num_levels(), 4);
        assert_eq!(lv.depth(), nl.depth());
        for (i, gate) in nl.gates().iter().enumerate() {
            for &n in gate.inputs() {
                assert!(lv.levels()[n.index()] < lv.levels()[i], "fan-in level inversion");
            }
        }
    }

    #[test]
    fn max_fan_in_tracks_the_widest_gate() {
        let mut b = NetlistBuilder::new("fanin");
        let a = b.input("a");
        let y = b.not(a);
        b.output("y", y);
        assert_eq!(b.finish().max_fan_in(), 1);

        let mut b = NetlistBuilder::new("fanin4");
        let a = b.input("a");
        let x = b.input("b");
        let c = b.input("c");
        let d = b.input("d");
        let y = b.and4(a, x, c, d);
        b.output("y", y);
        assert_eq!(b.finish().max_fan_in(), 4);
    }

    #[test]
    fn stats_display_is_nonempty() {
        let mut b = NetlistBuilder::new("s");
        let a = b.input("a");
        let y = b.not(a);
        b.output("y", y);
        let nl = b.finish();
        let s = nl.stats();
        assert_eq!(s.num_cells, 1);
        assert!(s.to_string().contains("inv"));
    }
}
