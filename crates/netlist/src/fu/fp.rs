//! Gate-level IEEE-754 single-precision adder and multiplier.
//!
//! Both datapaths are structural translations of the reference algorithms
//! in [`super::golden`] and are tested to match them bit for bit. See the
//! module docs there for the (documented) semantic simplifications.

use crate::builder::NetlistBuilder;
use crate::fu::int_mul::csa_multiplier;
use crate::gate::NetId;
use crate::netlist::Netlist;
use crate::words;

/// Unpacked operand: LSB-first field buses.
struct Unpacked {
    sign: NetId,
    exp: Vec<NetId>, // 8 bits
    sig: Vec<NetId>, // 24 bits, hidden bit at [23], flushed if exp == 0
    nonzero: NetId,  // exp != 0
}

fn unpack(b: &mut NetlistBuilder, bits: &[NetId], flush_frac: bool) -> Unpacked {
    assert_eq!(bits.len(), 32);
    let frac = &bits[0..23];
    let exp = bits[23..31].to_vec();
    let sign = bits[31];
    let nonzero = words::or_reduce(b, &exp);
    let mut sig = if flush_frac { words::mask_bus(b, frac, nonzero) } else { frac.to_vec() };
    sig.push(nonzero); // hidden bit
    Unpacked { sign, exp, sig, nonzero }
}

/// Shared rounding + packing stage.
///
/// `n` is the 27-bit normalized value (hidden bit at index 26, GRS at
/// indices 2..0); `e2` is the 10-bit two's-complement exponent. Returns the
/// 32-bit packed result before any zero/special-case override.
fn round_and_pack(
    b: &mut NetlistBuilder,
    sign: NetId,
    e2: &[NetId],
    n: &[NetId],
) -> (Vec<NetId>, NetId, NetId) {
    assert_eq!(n.len(), 27);
    assert_eq!(e2.len(), 10);
    let sig24 = &n[3..27];
    let g = n[2];
    let rs = b.or(n[1], n[0]);
    let near = b.or(rs, sig24[0]); // round or sticky or odd lsb
    let round_up = b.and(g, near);

    let (inc24, inc_cout) = words::prefix_incrementer(b, sig24);
    let sig_rounded = words::mux_bus(b, round_up, sig24, &inc24);
    let ovf = b.and(round_up, inc_cout);

    // On increment overflow the fraction is all zeros either way, so the
    // plain mux result is already correct; only the exponent bumps.
    let frac = &sig_rounded[0..23];
    let (e_inc, _) = words::prefix_incrementer(b, e2);
    let e3 = words::mux_bus(b, ovf, e2, &e_inc);

    // Underflow: e3 <= 0 (two's-complement sign set, or all bits zero).
    let e3_zero = words::is_zero(b, &e3);
    let underflow = b.or(e3[9], e3_zero);
    // Overflow: e3 >= 255 (bit 8 set, or bits 0..8 all ones).
    let low_ones = words::and_reduce(b, &e3[0..8]);
    let ge255 = b.or(e3[8], low_ones);
    let not_under = b.not(underflow);
    let overflow = b.and(not_under, ge255);

    let mut packed: Vec<NetId> = frac.to_vec();
    packed.extend_from_slice(&e3[0..8]);
    packed.push(sign);

    // Overflow -> infinity encoding (exp 255, frac 0, same sign).
    let zero = b.constant(false);
    let one = b.constant(true);
    let mut inf: Vec<NetId> = vec![zero; 23];
    inf.extend(vec![one; 8]);
    inf.push(sign);
    let packed = words::mux_bus(b, overflow, &packed, &inf);

    // Underflow -> signed zero.
    let mut szero: Vec<NetId> = vec![zero; 31];
    szero.push(sign);
    let packed = words::mux_bus(b, underflow, &packed, &szero);

    (packed, underflow, overflow)
}

/// Replaces `packed` with a zero of sign `sign` when `cond` is high.
fn override_with_zero(
    b: &mut NetlistBuilder,
    cond: NetId,
    packed: &[NetId],
    sign: NetId,
) -> Vec<NetId> {
    let zero = b.constant(false);
    let mut z: Vec<NetId> = vec![zero; 31];
    z.push(sign);
    words::mux_bus(b, cond, packed, &z)
}

/// Builds the single-precision floating-point adder.
///
/// Ports: inputs `a[31:0]`, `b[31:0]` (IEEE-754 bit patterns); output
/// `result[31:0]`. Alignment, significand add/subtract, normalization and
/// round-to-nearest-even all happen in one combinational cone, which gives
/// this unit the richest input-dependent delay profile of the four FUs.
pub fn build_fp_add() -> Netlist {
    let mut b = NetlistBuilder::new("fp_add32");
    let a_bits = b.input_bus("a", 32);
    let b_bits = b.input_bus("b", 32);
    let ua = unpack(&mut b, &a_bits, true);
    let ub = unpack(&mut b, &b_bits, true);

    // Magnitude comparison via the 32-bit key {exp, significand}.
    let mut key_a = ua.sig.clone();
    key_a.extend_from_slice(&ua.exp);
    let mut key_b = ub.sig.clone();
    key_b.extend_from_slice(&ub.exp);
    let (_, a_ge_b) = words::kogge_stone_sub(&mut b, &key_a, &key_b);
    let swap = b.not(a_ge_b);

    let el = words::mux_bus(&mut b, swap, &ua.exp, &ub.exp);
    let es = words::mux_bus(&mut b, swap, &ub.exp, &ua.exp);
    let ml = words::mux_bus(&mut b, swap, &ua.sig, &ub.sig);
    let ms = words::mux_bus(&mut b, swap, &ub.sig, &ua.sig);
    let sl = b.mux(swap, ua.sign, ub.sign);

    // Exponent difference (always >= 0 after the swap).
    let (d, _) = words::rca_sub(&mut b, &el, &es);

    // Align the smaller significand into the 27-bit (3 guard bits) frame.
    let zero = b.constant(false);
    let mut ms27 = vec![zero; 3];
    ms27.extend_from_slice(&ms);
    let (aligned, sticky_near) = words::shift_right_sticky(&mut b, &ms27, &d[0..5]);
    let far = {
        let hi = b.or(d[5], d[6]);
        b.or(hi, d[7])
    };
    let ms_any = words::or_reduce(&mut b, &ms27);
    let sticky_far = b.and(far, ms_any);
    let zeros27 = vec![zero; 27];
    let aligned = words::mux_bus(&mut b, far, &aligned, &zeros27);
    let sticky = b.mux(far, sticky_near, sticky_far);
    let mut aligned = aligned;
    aligned[0] = b.or(aligned[0], sticky);

    // 28-bit add / subtract of the significand frames.
    let eff_sub = b.xor(ua.sign, ub.sign);
    let mut big_l = vec![zero; 3];
    big_l.extend_from_slice(&ml);
    big_l.push(zero); // 28 bits
    let mut small = aligned;
    small.push(zero);
    let small_x: Vec<NetId> = small.iter().map(|&s| b.xor(s, eff_sub)).collect();
    let (sum, _) = words::kogge_stone_add(&mut b, &big_l, &small_x, eff_sub);

    let sum_zero = words::is_zero(&mut b, &sum);
    let carry_out = sum[27];

    // Right-normalization path (addition overflowed the 27-bit frame).
    let mut n_right: Vec<NetId> = sum[1..28].to_vec();
    n_right[0] = b.or(n_right[0], sum[0]);
    // Left-normalization path (cancellation).
    let (n_left, lshift) = words::normalize_left(&mut b, &sum[0..27]);

    let n = words::mux_bus(&mut b, carry_out, &n_left, &n_right);

    // 10-bit exponent arithmetic.
    let el10 = words::zero_extend(&mut b, &el, 10);
    let (el10_inc, _) = words::prefix_incrementer(&mut b, &el10);
    let lshift10 = words::zero_extend(&mut b, &lshift, 10);
    let (e_left, _) = words::rca_sub(&mut b, &el10, &lshift10);
    let e2 = words::mux_bus(&mut b, carry_out, &e_left, &el10_inc);

    let (packed, _, _) = round_and_pack(&mut b, sl, &e2, &n);

    // Exact cancellation: +0 unless both operands were the same-signed zero.
    let not_sub = b.not(eff_sub);
    let zsign = b.and(sl, not_sub);
    let result = override_with_zero(&mut b, sum_zero, &packed, zsign);

    b.output_bus("result", &result);
    b.finish()
}

/// Builds the single-precision floating-point multiplier.
///
/// Ports: inputs `a[31:0]`, `b[31:0]` (IEEE-754 bit patterns); output
/// `result[31:0]`. The 24x24 significand array multiplier dominates both
/// area and delay.
pub fn build_fp_mul() -> Netlist {
    let mut b = NetlistBuilder::new("fp_mul32");
    let a_bits = b.input_bus("a", 32);
    let b_bits = b.input_bus("b", 32);
    // The zero override below makes flushing the fraction unnecessary.
    let ua = unpack(&mut b, &a_bits, false);
    let ub = unpack(&mut b, &b_bits, false);

    let sign = b.xor(ua.sign, ub.sign);
    let both = b.and(ua.nonzero, ub.nonzero);
    let any_zero = b.not(both);

    let p = csa_multiplier(&mut b, &ua.sig, &ub.sig); // 48 bits

    // Normalize: the product of two [1,2) significands lies in [1,4).
    let hi = p[47];
    let sticky_hi = words::or_reduce(&mut b, &p[0..21]);
    let mut n_hi: Vec<NetId> = p[21..48].to_vec();
    n_hi[0] = b.or(n_hi[0], sticky_hi);
    let sticky_lo = words::or_reduce(&mut b, &p[0..20]);
    let mut n_lo: Vec<NetId> = p[20..47].to_vec();
    n_lo[0] = b.or(n_lo[0], sticky_lo);
    let n = words::mux_bus(&mut b, hi, &n_lo, &n_hi);

    // e2 = ea + eb - 127 + hi, in 10-bit two's complement.
    let ea10 = words::zero_extend(&mut b, &ua.exp, 10);
    let eb10 = words::zero_extend(&mut b, &ub.exp, 10);
    let (esum, _) = words::rca_add(&mut b, &ea10, &eb10, hi);
    let bias = words::const_bus(&mut b, 127, 10);
    let (e2, _) = words::rca_sub(&mut b, &esum, &bias);

    let (packed, _, _) = round_and_pack(&mut b, sign, &e2, &n);
    let result = override_with_zero(&mut b, any_zero, &packed, sign);

    b.output_bus("result", &result);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fu::golden;
    use crate::fu::{decode_bus, encode_pair};

    fn eval(nl: &crate::Netlist, a: u32, b: u32) -> u32 {
        decode_bus(&nl.evaluate(&encode_pair(a, b))) as u32
    }

    const CASES: &[(f32, f32)] = &[
        (1.0, 2.0),
        (0.1, 0.2),
        (1.5e30, -1.5e30),
        (-1.0, -2.0),
        (1.0, 0.0),
        (0.0, -7.25),
        (16777216.0, 1.0),
        (16777216.0, 2.0),
        (1.000_000_2, -1.0),
        (5.5, -5.5),
        (-0.0, -0.0),
        (3.0, 4.0),
        (f32::MAX, f32::MAX),
        (f32::MIN_POSITIVE, 0.5),
        (1e-30, -1e-38),
        (1234.5678, 0.00042),
    ];

    #[test]
    fn fp_add_matches_golden() {
        let nl = build_fp_add();
        nl.validate().unwrap();
        for &(x, y) in CASES {
            let (a, b) = (x.to_bits(), y.to_bits());
            assert_eq!(eval(&nl, a, b), golden::fp_add(a, b), "fp_add({x}, {y})");
        }
    }

    #[test]
    fn fp_mul_matches_golden() {
        let nl = build_fp_mul();
        nl.validate().unwrap();
        for &(x, y) in CASES {
            let (a, b) = (x.to_bits(), y.to_bits());
            assert_eq!(eval(&nl, a, b), golden::fp_mul(a, b), "fp_mul({x}, {y})");
        }
    }

    #[test]
    fn fp_add_raw_patterns_match_golden() {
        // Raw bit patterns, including exponent-255 and subnormal encodings,
        // must still agree with the reference algorithm (total function).
        let nl = build_fp_add();
        let patterns = [0u32, 1, 0x7F80_0000, 0xFF80_0001, 0x0012_3456, 0xDEAD_BEEF, u32::MAX];
        for &a in &patterns {
            for &b in &patterns {
                assert_eq!(eval(&nl, a, b), golden::fp_add(a, b), "fp_add({a:#x}, {b:#x})");
            }
        }
    }

    #[test]
    fn fp_mul_raw_patterns_match_golden() {
        let nl = build_fp_mul();
        let patterns = [0u32, 1, 0x7F80_0000, 0xFF80_0001, 0x0012_3456, 0xDEAD_BEEF, u32::MAX];
        for &a in &patterns {
            for &b in &patterns {
                assert_eq!(eval(&nl, a, b), golden::fp_mul(a, b), "fp_mul({a:#x}, {b:#x})");
            }
        }
    }
}
