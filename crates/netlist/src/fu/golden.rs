//! Bit-exact software reference models for the floating-point units.
//!
//! These functions are the *specification* of the gate-level FP datapaths
//! (module `fu::fp`): the circuits are tested to match them bit for bit on
//! all inputs. The arithmetic follows IEEE-754 single precision with
//! round-to-nearest-even, with the simplifications documented in DESIGN.md:
//!
//! * **Flush-to-zero**: subnormal inputs are treated as zero and subnormal
//!   results are flushed to (signed) zero.
//! * **No NaN/infinity special cases**: an input with exponent 255 is
//!   processed as an ordinary value with that exponent; results that
//!   overflow the exponent range are clamped to the infinity encoding.
//!
//! Workload generators in this workspace only produce finite operands, so
//! the simplification never changes an experiment; on normal operands with
//! normal results the models agree with native `f32` arithmetic (see the
//! property tests).

/// Splits an IEEE-754 single into `(sign, biased_exponent, fraction)`.
#[inline]
pub fn unpack(bits: u32) -> (bool, u32, u32) {
    (bits >> 31 != 0, bits >> 23 & 0xFF, bits & 0x7F_FFFF)
}

/// Assembles an IEEE-754 single from `(sign, biased_exponent, fraction)`.
///
/// # Panics
///
/// Panics (debug builds) if the fields exceed their widths.
#[inline]
pub fn pack(sign: bool, exp: u32, frac: u32) -> u32 {
    debug_assert!(exp <= 0xFF && frac <= 0x7F_FFFF);
    (sign as u32) << 31 | exp << 23 | frac
}

fn pack_zero(sign: bool) -> u32 {
    pack(sign, 0, 0)
}

fn pack_inf(sign: bool) -> u32 {
    pack(sign, 0xFF, 0)
}

/// The 24-bit significand with the hidden bit made explicit; zero for
/// flushed (exponent-0) inputs.
#[inline]
fn significand(exp: u32, frac: u32) -> u32 {
    if exp == 0 {
        0
    } else {
        1 << 23 | frac
    }
}

/// Rounds a normalized 27-bit value `n` (hidden bit at position 26, GRS in
/// bits 2..0) at exponent `exp`, then packs with overflow/underflow clamps.
fn round_and_pack(sign: bool, mut exp: i32, n: u64) -> u32 {
    debug_assert!(n >> 26 == 1, "round_and_pack expects a normalized value");
    let mut sig = (n >> 3) as u32;
    let grs = (n & 7) as u32;
    if grs > 4 || (grs == 4 && sig & 1 == 1) {
        sig += 1;
    }
    if sig >> 24 != 0 {
        sig >>= 1;
        exp += 1;
    }
    if exp <= 0 {
        return pack_zero(sign);
    }
    if exp >= 255 {
        return pack_inf(sign);
    }
    pack(sign, exp as u32, sig & 0x7F_FFFF)
}

/// Reference single-precision addition (see module docs for semantics).
pub fn fp_add(a: u32, b: u32) -> u32 {
    let (sa, ea, fa) = unpack(a);
    let (sb, eb, fb) = unpack(b);
    let ma = significand(ea, fa);
    let mb = significand(eb, fb);
    // Magnitude ordering key: exponent concatenated with significand. The
    // significand embeds the flush, so a flushed input always loses.
    let key_a = (ea << 24 | ma) as u64;
    let key_b = (eb << 24 | mb) as u64;
    let swap = key_b > key_a;
    let (el, ml, sl) = if swap { (eb, mb, sb) } else { (ea, ma, sa) };
    let (es, ms, _ss) = if swap { (ea, ma, sa) } else { (eb, mb, sb) };
    let d = el - es;

    let big_l = (ml as u64) << 3; // 27 bits
    let ms27 = (ms as u64) << 3;
    let (shifted, sticky) =
        if d >= 32 { (0, ms27 != 0) } else { ((ms27 >> d), ms27 & ((1u64 << d) - 1) != 0) };
    let aligned = shifted | sticky as u64;

    let eff_sub = sa != sb;
    let sum = if eff_sub { big_l - aligned } else { big_l + aligned };
    if sum == 0 {
        // Exact cancellation yields +0 under round-to-nearest; only
        // (-0) + (-0) keeps the sign.
        return pack_zero(sl && !eff_sub);
    }
    let (n, exp) = if sum >> 27 != 0 {
        // Carry out of the 27-bit frame: shift right once, keep sticky.
        ((sum >> 1) | (sum & 1), el as i32 + 1)
    } else {
        let lz = sum.leading_zeros() as i32 - 37; // leading zeros within 27 bits
        (sum << lz, el as i32 - lz)
    };
    round_and_pack(sl, exp, n)
}

/// Reference single-precision multiplication (see module docs for
/// semantics).
pub fn fp_mul(a: u32, b: u32) -> u32 {
    let (sa, ea, fa) = unpack(a);
    let (sb, eb, fb) = unpack(b);
    let sign = sa != sb;
    if ea == 0 || eb == 0 {
        return pack_zero(sign);
    }
    let ma = (1u64 << 23 | fa as u64) * (1u64 << 23 | fb as u64); // 48-bit product
    let (n, exp) = if ma >> 47 != 0 {
        let sticky = ma & ((1 << 21) - 1) != 0;
        ((ma >> 21) | sticky as u64, ea as i32 + eb as i32 - 127 + 1)
    } else {
        let sticky = ma & ((1 << 20) - 1) != 0;
        ((ma >> 20) | sticky as u64, ea as i32 + eb as i32 - 127)
    };
    round_and_pack(sign, exp, n)
}

/// True iff `bits` encodes a value the reference models treat exactly like
/// IEEE-754 `f32` arithmetic does: a normal number or zero.
pub fn is_exactly_modeled(bits: u32) -> bool {
    let (_, exp, frac) = unpack(bits);
    exp != 0xFF && (exp != 0 || frac == 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add_f32(a: f32, b: f32) -> f32 {
        f32::from_bits(fp_add(a.to_bits(), b.to_bits()))
    }

    fn mul_f32(a: f32, b: f32) -> f32 {
        f32::from_bits(fp_mul(a.to_bits(), b.to_bits()))
    }

    #[test]
    fn add_simple_cases() {
        assert_eq!(add_f32(1.0, 2.0), 3.0);
        assert_eq!(add_f32(0.1, 0.2), 0.1f32 + 0.2f32);
        assert_eq!(add_f32(1.5e30, -1.5e30), 0.0);
        assert_eq!(add_f32(-1.0, -2.0), -3.0);
        assert_eq!(add_f32(1.0, 0.0), 1.0);
        assert_eq!(add_f32(0.0, -7.25), -7.25);
        assert_eq!(add_f32(16777216.0, 1.0), 16777216.0f32 + 1.0f32);
        // Round-to-nearest-even at the half-way point.
        assert_eq!(add_f32(16777216.0, 2.0), 16777218.0);
    }

    #[test]
    fn add_cancellation() {
        let a = 1.000_000_2_f32;
        let b = -1.0_f32;
        assert_eq!(add_f32(a, b), a + b);
        // Opposite equal values cancel to +0.
        assert_eq!(add_f32(5.5, -5.5).to_bits(), 0);
        // Negative zeros keep their sign.
        assert_eq!(add_f32(-0.0, -0.0).to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn add_overflow_clamps_to_inf() {
        let big = f32::MAX;
        assert_eq!(add_f32(big, big), f32::INFINITY);
        assert_eq!(add_f32(-big, -big), f32::NEG_INFINITY);
    }

    #[test]
    fn add_flushes_subnormals() {
        let sub = f32::from_bits(1); // smallest subnormal
        assert_eq!(add_f32(sub, sub).to_bits(), 0, "subnormal inputs flush to zero");
        let min_normal = f32::MIN_POSITIVE;
        // min_normal - (min_normal / 2): exact result is subnormal -> flushed.
        let half = f32::from_bits(min_normal.to_bits() - (1 << 23)); // exp-1 -> subnormal? no: exp 0
        let _ = half;
        let r = fp_add(min_normal.to_bits(), (-min_normal / 2.0).to_bits());
        // -min_normal/2 is subnormal, flushed to -0; so result is min_normal.
        assert_eq!(f32::from_bits(r), min_normal);
    }

    #[test]
    fn mul_simple_cases() {
        assert_eq!(mul_f32(3.0, 4.0), 12.0);
        assert_eq!(mul_f32(-3.5, 2.0), -7.0);
        assert_eq!(mul_f32(0.1, 0.2), 0.1f32 * 0.2f32);
        assert_eq!(mul_f32(1.0, 1.0), 1.0);
        assert_eq!(mul_f32(0.0, 123.25), 0.0);
        assert_eq!(mul_f32(f32::MAX, 2.0), f32::INFINITY);
        assert_eq!(mul_f32(f32::MIN_POSITIVE, 0.5).to_bits() & 0x7FFF_FFFF, 0, "underflow flushes");
    }

    #[test]
    fn mul_sign_of_zero() {
        assert_eq!(mul_f32(-1.0, 0.0).to_bits(), (-0.0f32).to_bits());
        assert_eq!(mul_f32(-0.0, -2.0).to_bits(), 0);
    }

    #[test]
    fn exactly_modeled_predicate() {
        assert!(is_exactly_modeled(1.0f32.to_bits()));
        assert!(is_exactly_modeled(0u32));
        assert!(!is_exactly_modeled(f32::INFINITY.to_bits()));
        assert!(!is_exactly_modeled(f32::NAN.to_bits()));
        assert!(!is_exactly_modeled(1)); // subnormal
    }
}
