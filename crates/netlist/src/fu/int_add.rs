//! 32-bit integer adder functional unit.

use crate::builder::NetlistBuilder;
use crate::netlist::Netlist;
use crate::words;

/// Micro-architecture of the integer adder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AdderStyle {
    /// Ripple-carry: minimal area, carry chain equal to the operand's
    /// longest carry run — maximal workload sensitivity, but a delay
    /// profile no timing-driven synthesis run would produce (kept for the
    /// micro-architecture ablation).
    RippleCarry,
    /// Carry-lookahead with 4-bit blocks: shorter carry chains, but block
    /// propagate runs still scale with the data.
    CarryLookahead,
    /// Kogge-Stone parallel prefix: `log2(W)` carry depth independent of
    /// propagate-run length — the topology timing-driven synthesis
    /// produces, and the default used by all paper experiments.
    #[default]
    KoggeStone,
}

/// Builds the 32-bit integer adder.
///
/// Ports: inputs `a[31:0]`, `b[31:0]`; output `sum[32:0]` (sum plus carry
/// out, so the unit computes the exact 33-bit result of `a + b`).
pub fn build(style: AdderStyle) -> Netlist {
    let name = match style {
        AdderStyle::RippleCarry => "int_add32_rca",
        AdderStyle::CarryLookahead => "int_add32_cla",
        AdderStyle::KoggeStone => "int_add32_ks",
    };
    let mut b = NetlistBuilder::new(name);
    let a = b.input_bus("a", 32);
    let y = b.input_bus("b", 32);
    let zero = b.constant(false);
    let (mut sum, cout) = match style {
        AdderStyle::RippleCarry => words::rca_add(&mut b, &a, &y, zero),
        AdderStyle::CarryLookahead => words::cla_add(&mut b, &a, &y, zero),
        AdderStyle::KoggeStone => words::kogge_stone_add(&mut b, &a, &y, zero),
    };
    sum.push(cout);
    b.output_bus("sum", &sum);
    b.finish()
}

/// Bit-exact reference model: the 33-bit sum of two 32-bit operands.
pub fn golden(a: u32, b: u32) -> u64 {
    a as u64 + b as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fu::{decode_bus, encode_pair};

    fn check(style: AdderStyle) {
        let nl = build(style);
        nl.validate().unwrap();
        for (a, b) in [
            (0u32, 0u32),
            (u32::MAX, 1),
            (u32::MAX, u32::MAX),
            (0x8000_0000, 0x8000_0000),
            (0xDEAD_BEEF, 0x1234_5678),
            (1, 0),
        ] {
            let out = nl.evaluate(&encode_pair(a, b));
            assert_eq!(decode_bus(&out), golden(a, b), "{a:#x} + {b:#x} ({style:?})");
        }
    }

    #[test]
    fn rca_correct() {
        check(AdderStyle::RippleCarry);
    }

    #[test]
    fn cla_correct() {
        check(AdderStyle::CarryLookahead);
    }

    #[test]
    fn kogge_stone_correct() {
        check(AdderStyle::KoggeStone);
    }

    #[test]
    fn styles_flatten_the_carry_chain_progressively() {
        let rca = build(AdderStyle::RippleCarry);
        let cla = build(AdderStyle::CarryLookahead);
        let ks = build(AdderStyle::KoggeStone);
        assert!(cla.depth() < rca.depth(), "CLA should flatten the carry chain");
        assert!(ks.depth() < cla.depth(), "Kogge-Stone should flatten it further");
    }
}
