//! Integer array multiplier functional units.

use crate::builder::NetlistBuilder;
use crate::gate::NetId;
use crate::netlist::Netlist;
use crate::words;

/// Appends a carry-save array multiplier with a Kogge-Stone final adder
/// and returns the full-width product bus (`xs.len() + ys.len()` bits,
/// LSB first).
///
/// Each partial-product row is absorbed by a 3:2 compressor row (no
/// horizontal carry propagation), and the surviving sum/carry vectors meet
/// in a parallel-prefix adder — the structure timing-driven synthesis
/// produces. The delay still depends strongly on operand magnitude (small
/// operands light up only the first rows), but without the extreme
/// horizontal-ripple outliers of the textbook array.
pub fn csa_multiplier(b: &mut NetlistBuilder, xs: &[NetId], ys: &[NetId]) -> Vec<NetId> {
    assert!(!xs.is_empty() && !ys.is_empty(), "csa_multiplier: empty bus");
    let n = xs.len();
    let m = ys.len();
    let zero = b.constant(false);
    let mut product = Vec::with_capacity(n + m);

    // Row 0: plain partial products; no carries yet.
    let mut s: Vec<NetId> = xs.iter().map(|&x| b.and(x, ys[0])).collect();
    let mut c: Vec<NetId> = vec![zero; n];
    product.push(s[0]);

    // Row i absorbs partial product `x * ys[i]` (weight offset i): cell j
    // compresses {pp[j], s_prev[j+1], c_prev[j]}, all of weight i + j.
    for &ybit in &ys[1..] {
        let mut next_s = Vec::with_capacity(n);
        let mut next_c = Vec::with_capacity(n);
        for j in 0..n {
            let pp = b.and(xs[j], ybit);
            let hi = if j + 1 < n { s[j + 1] } else { zero };
            let (sum, carry) = words::full_adder(b, pp, hi, c[j]);
            next_s.push(sum);
            next_c.push(carry);
        }
        s = next_s;
        c = next_c;
        product.push(s[0]);
    }

    // Final carry-propagate add of the surviving vectors: s[1..] (weights
    // m .. m+n-2) plus c[0..] (weights m .. m+n-1).
    let mut a_vec: Vec<NetId> = s[1..].to_vec();
    a_vec.push(zero);
    let (high, _cout) = words::kogge_stone_add(b, &a_vec, &c, zero);
    product.extend(high);
    debug_assert_eq!(product.len(), n + m);
    product
}

/// Appends an unsigned array multiplier to `b` and returns the full-width
/// product bus (`xs.len() + ys.len()` bits, LSB first).
///
/// The structure is the classic row-ripple array: one row of partial
/// products per multiplier bit, accumulated with ripple-carry rows. Its
/// sensitized path length varies strongly with operand magnitude — small
/// operands light up only the lower-left corner of the array — which is
/// exactly the workload dependence the paper exploits.
pub fn array_multiplier(b: &mut NetlistBuilder, xs: &[NetId], ys: &[NetId]) -> Vec<NetId> {
    assert!(!xs.is_empty() && !ys.is_empty(), "array_multiplier: empty bus");
    let n = xs.len();
    let zero = b.constant(false);
    let mut product = Vec::with_capacity(n + ys.len());

    // Row 0: plain partial products.
    let mut acc: Vec<NetId> = xs.iter().map(|&x| b.and(x, ys[0])).collect();
    product.push(acc[0]);
    acc.remove(0);
    acc.push(zero);

    // Each further row adds x * ys[row] into the running accumulator.
    for &ybit in &ys[1..] {
        let pp: Vec<NetId> = xs.iter().map(|&x| b.and(x, ybit)).collect();
        let mut carry = zero;
        let mut next = Vec::with_capacity(n);
        for i in 0..n {
            let (s, c) = words::full_adder(b, acc[i], pp[i], carry);
            next.push(s);
            carry = c;
        }
        product.push(next[0]);
        next.remove(0);
        next.push(carry);
        acc = next;
    }
    product.extend(acc);
    product
}

/// Appends a radix-4 Booth-recoded multiplier and returns the full-width
/// product bus (`xs.len() + ys.len()` bits, LSB first).
///
/// The multiplier `ys` is recoded into base-4 digits in `{-2..2}`
/// (halving the partial-product count); negative partial products use the
/// shift-then-complement identity `-(v << s) = (!v << s) + (1 << s)` with
/// a separate correction row, and everything meets in a carry-save
/// reduction followed by a Kogge-Stone adder — the structure commercial
/// multiplier generators produce.
pub fn booth_multiplier(b: &mut NetlistBuilder, xs: &[NetId], ys: &[NetId]) -> Vec<NetId> {
    assert!(!xs.is_empty() && !ys.is_empty(), "booth_multiplier: empty bus");
    let n = xs.len();
    let m = ys.len();
    let w = n + m + 2;
    let zero = b.constant(false);
    // Enough digits to cover the zero-extended multiplier: the top digit
    // reads the (always-zero) bits above y's MSB, keeping the recoding of
    // an unsigned operand non-negative overall.
    let digits = (m + 1).div_ceil(2);

    let ybit = |i: isize| -> NetId {
        if i < 0 || i as usize >= m {
            zero
        } else {
            ys[i as usize]
        }
    };

    let mut rows: Vec<Vec<NetId>> = Vec::with_capacity(digits + 1);
    let mut corrections = vec![zero; w];
    for i in 0..digits {
        let y0 = ybit(2 * i as isize - 1);
        let y1 = ybit(2 * i as isize);
        let y2 = ybit(2 * i as isize + 1);
        // Digit d = y0 + y1 - 2*y2 in {-2..2}: |d| = 1 iff y0 != y1;
        // |d| = 2 iff y0 == y1 and y0 != y2; d < 0 iff y2 (d == 0 with
        // y2 = 1 complements zero, which is still zero mod 2^w).
        let one = b.xor(y0, y1);
        let same = b.xnor(y0, y1);
        let diff2 = b.xor(y0, y2);
        let two = b.and(same, diff2);
        let neg = y2;

        // Magnitude |d| * x over n + 1 bits: (one ? x : 0) | (two ? 2x : 0).
        let mut mag = Vec::with_capacity(n + 1);
        for j in 0..=n {
            let from_one = if j < n { b.and(one, xs[j]) } else { zero };
            let from_two = if j >= 1 { b.and(two, xs[j - 1]) } else { zero };
            mag.push(b.or(from_one, from_two));
        }

        // Row: zeros below weight 2i, (mag ^ neg) in the digit field,
        // sign extension (= neg) above; +neg at weight 2i via the
        // correction row.
        let mut row = Vec::with_capacity(w);
        row.extend(std::iter::repeat_n(zero, 2 * i));
        for &bit in &mag {
            row.push(b.xor(bit, neg));
        }
        row.resize(w, neg);
        row.truncate(w);
        rows.push(row);
        corrections[2 * i] = neg;
    }
    rows.push(corrections);

    let (s, c) = words::csa_reduce(b, &rows);
    let mut shifted_c = vec![zero];
    shifted_c.extend_from_slice(&c[..w - 1]);
    let (total, _) = words::kogge_stone_add(b, &s, &shifted_c, zero);
    total[..n + m].to_vec()
}

/// Multiplier micro-architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MultiplierStyle {
    /// Textbook row-ripple array: maximal depth and data-dependent delay
    /// spread (kept for the micro-architecture ablation).
    RippleArray,
    /// Carry-save array with a Kogge-Stone final adder — the default used
    /// by all paper experiments.
    #[default]
    CarrySave,
    /// Radix-4 Booth recoding over a carry-save reduction: half the
    /// partial products, the commercial-generator structure.
    Booth,
}

/// Builds the 32x32 -> 64-bit integer multiplier in the given style.
pub fn build_with_style(style: MultiplierStyle) -> Netlist {
    let name = match style {
        MultiplierStyle::RippleArray => "int_mul32_ripple",
        MultiplierStyle::CarrySave => "int_mul32",
        MultiplierStyle::Booth => "int_mul32_booth",
    };
    let mut b = NetlistBuilder::new(name);
    let a = b.input_bus("a", 32);
    let y = b.input_bus("b", 32);
    let p = match style {
        MultiplierStyle::RippleArray => array_multiplier(&mut b, &a, &y),
        MultiplierStyle::CarrySave => csa_multiplier(&mut b, &a, &y),
        MultiplierStyle::Booth => booth_multiplier(&mut b, &a, &y),
    };
    b.output_bus("product", &p);
    b.finish()
}

/// Builds the 32x32 -> 64-bit integer multiplier (carry-save array with a
/// Kogge-Stone final adder).
///
/// Ports: inputs `a[31:0]`, `b[31:0]`; output `product[63:0]`.
pub fn build() -> Netlist {
    build_with_style(MultiplierStyle::default())
}

/// Bit-exact reference model: the 64-bit product of two 32-bit operands.
pub fn golden(a: u32, b: u32) -> u64 {
    a as u64 * b as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fu::{decode_bus, encode_pair};

    fn exhaustive_4x4(build: impl Fn(&mut NetlistBuilder, &[NetId], &[NetId]) -> Vec<NetId>) {
        let mut b = NetlistBuilder::new("mul4");
        let xs = b.input_bus("a", 4);
        let ys = b.input_bus("b", 4);
        let p = build(&mut b, &xs, &ys);
        b.output_bus("p", &p);
        let nl = b.finish();
        for a in 0..16u64 {
            for c in 0..16u64 {
                let mut input: Vec<bool> = (0..4).map(|i| a >> i & 1 == 1).collect();
                input.extend((0..4).map(|i| c >> i & 1 == 1));
                let out = nl.evaluate(&input);
                let got = out.iter().enumerate().fold(0u64, |acc, (i, &v)| acc | (v as u64) << i);
                assert_eq!(got, a * c, "{a} * {c}");
            }
        }
    }

    #[test]
    fn small_ripple_multiplier_exhaustive() {
        exhaustive_4x4(array_multiplier);
    }

    #[test]
    fn small_csa_multiplier_exhaustive() {
        exhaustive_4x4(csa_multiplier);
    }

    #[test]
    fn small_booth_multiplier_exhaustive() {
        exhaustive_4x4(booth_multiplier);
    }

    #[test]
    fn booth_rectangular_and_odd_widths() {
        for (nw, mw) in [(5usize, 3usize), (3, 5), (7, 1), (1, 7), (6, 6)] {
            let mut b = NetlistBuilder::new("booth");
            let xs = b.input_bus("a", nw);
            let ys = b.input_bus("b", mw);
            let p = booth_multiplier(&mut b, &xs, &ys);
            assert_eq!(p.len(), nw + mw);
            b.output_bus("p", &p);
            let nl = b.finish();
            for a in 0..1u64 << nw {
                for c in 0..1u64 << mw {
                    let mut input: Vec<bool> = (0..nw).map(|i| a >> i & 1 == 1).collect();
                    input.extend((0..mw).map(|i| c >> i & 1 == 1));
                    let out = nl.evaluate(&input);
                    let got =
                        out.iter().enumerate().fold(0u64, |acc, (i, &v)| acc | (v as u64) << i);
                    assert_eq!(got, a * c, "{nw}x{mw}: {a} * {c}");
                }
            }
        }
    }

    #[test]
    fn booth_full_width_spot_checks() {
        let nl = build_with_style(MultiplierStyle::Booth);
        nl.validate().unwrap();
        for (a, b) in [
            (0u32, 0u32),
            (1, u32::MAX),
            (u32::MAX, u32::MAX),
            (0xFFFF, 0x10001),
            (0xDEAD_BEEF, 0x1234_5678),
            (0x8000_0000, 0x8000_0000),
        ] {
            let out = nl.evaluate(&encode_pair(a, b));
            assert_eq!(decode_bus(&out), golden(a, b), "booth {a:#x} * {b:#x}");
        }
    }

    #[test]
    fn booth_halves_the_reduction_rows() {
        // Booth's recoding should show up as a visibly shallower circuit
        // than the plain carry-save array (half the CSA rows).
        let csa = build_with_style(MultiplierStyle::CarrySave);
        let booth = build_with_style(MultiplierStyle::Booth);
        assert!(
            booth.depth() < csa.depth(),
            "booth depth {} vs csa depth {}",
            booth.depth(),
            csa.depth()
        );
    }

    #[test]
    fn rectangular_csa_multiplier() {
        let mut b = NetlistBuilder::new("mul5x3");
        let xs = b.input_bus("a", 5);
        let ys = b.input_bus("b", 3);
        let p = csa_multiplier(&mut b, &xs, &ys);
        assert_eq!(p.len(), 8);
        b.output_bus("p", &p);
        let nl = b.finish();
        for a in 0..32u64 {
            for c in 0..8u64 {
                let mut input: Vec<bool> = (0..5).map(|i| a >> i & 1 == 1).collect();
                input.extend((0..3).map(|i| c >> i & 1 == 1));
                let out = nl.evaluate(&input);
                let got = out.iter().enumerate().fold(0u64, |acc, (i, &v)| acc | (v as u64) << i);
                assert_eq!(got, a * c, "{a} * {c}");
            }
        }
    }

    #[test]
    fn csa_is_shallower_than_ripple_array() {
        let depth = |csa: bool| {
            let mut b = NetlistBuilder::new("d");
            let xs = b.input_bus("a", 16);
            let ys = b.input_bus("b", 16);
            let p = if csa {
                csa_multiplier(&mut b, &xs, &ys)
            } else {
                array_multiplier(&mut b, &xs, &ys)
            };
            b.output_bus("p", &p);
            b.finish().depth()
        };
        assert!(depth(true) < depth(false), "CSA should cut the critical depth");
    }

    #[test]
    fn full_multiplier_spot_checks() {
        let nl = build();
        nl.validate().unwrap();
        for (a, b) in [
            (0u32, 0u32),
            (1, u32::MAX),
            (u32::MAX, u32::MAX),
            (0xFFFF, 0x10001),
            (0xDEAD_BEEF, 0x1234_5678),
            (3, 5),
        ] {
            let out = nl.evaluate(&encode_pair(a, b));
            assert_eq!(decode_bus(&out), golden(a, b), "{a:#x} * {b:#x}");
        }
    }
}
