//! The four functional units studied by the paper.
//!
//! TEVoT models the 32-bit integer adder and multiplier and the IEEE-754
//! single-precision adder and multiplier — "basic computation blocks for
//! applications such as image-processing and deep learning" (paper
//! Sec. IV-A). [`FunctionalUnit`] enumerates them and bundles netlist
//! construction, operand encoding and the bit-exact reference (`golden`)
//! models used as simulation oracles.

mod fp;
pub mod golden;
mod int_add;
mod int_mul;

pub use int_add::AdderStyle;
pub use int_mul::{
    array_multiplier, booth_multiplier, build_with_style as int_mul_with_style, csa_multiplier,
    MultiplierStyle,
};

use crate::netlist::Netlist;

/// Encodes a 32-bit operand pair as the 64-bit primary-input vector of a
/// functional unit (operand `a` first, each LSB first).
pub fn encode_pair(a: u32, b: u32) -> Vec<bool> {
    let mut bits = Vec::with_capacity(64);
    bits.extend((0..32).map(|i| a >> i & 1 == 1));
    bits.extend((0..32).map(|i| b >> i & 1 == 1));
    bits
}

/// Decodes an LSB-first output bus into an integer.
///
/// # Panics
///
/// Panics if the bus is wider than 64 bits.
pub fn decode_bus(bits: &[bool]) -> u64 {
    assert!(bits.len() <= 64, "bus wider than 64 bits");
    bits.iter().enumerate().fold(0u64, |acc, (i, &b)| acc | (b as u64) << i)
}

/// One of the four functional units evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FunctionalUnit {
    /// 32-bit integer adder (`sum[32:0] = a + b`).
    IntAdd,
    /// 32-bit integer multiplier (`product[63:0] = a * b`).
    IntMul,
    /// IEEE-754 single-precision adder.
    FpAdd,
    /// IEEE-754 single-precision multiplier.
    FpMul,
}

impl FunctionalUnit {
    /// All four units in the paper's order (Table III rows are grouped
    /// ADD/MUL per type; we use declaration order everywhere).
    pub const ALL: [FunctionalUnit; 4] = [
        FunctionalUnit::IntAdd,
        FunctionalUnit::FpAdd,
        FunctionalUnit::IntMul,
        FunctionalUnit::FpMul,
    ];

    /// Builds the unit's gate-level netlist with default styles.
    pub fn build(self) -> Netlist {
        match self {
            FunctionalUnit::IntAdd => int_add::build(AdderStyle::default()),
            FunctionalUnit::IntMul => int_mul::build(),
            FunctionalUnit::FpAdd => fp::build_fp_add(),
            FunctionalUnit::FpMul => fp::build_fp_mul(),
        }
    }

    /// Builds the integer adder with an explicit micro-architecture; other
    /// units ignore `style`.
    pub fn build_with_adder_style(self, style: AdderStyle) -> Netlist {
        match self {
            FunctionalUnit::IntAdd => int_add::build(style),
            other => other.build(),
        }
    }

    /// The unit's display name, matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            FunctionalUnit::IntAdd => "INT ADD",
            FunctionalUnit::IntMul => "INT MUL",
            FunctionalUnit::FpAdd => "FP ADD",
            FunctionalUnit::FpMul => "FP MUL",
        }
    }

    /// The unit's machine-readable slug, as accepted by CLI `--fu` flags
    /// and the serve API (`int-add`, `int-mul`, `fp-add`, `fp-mul`).
    pub fn slug(self) -> &'static str {
        match self {
            FunctionalUnit::IntAdd => "int-add",
            FunctionalUnit::IntMul => "int-mul",
            FunctionalUnit::FpAdd => "fp-add",
            FunctionalUnit::FpMul => "fp-mul",
        }
    }

    /// Parses a [`slug`](Self::slug) back into a unit. The single source
    /// of truth for unit names: the CLI `--fu` parser and the serve API
    /// both go through here, so they accept exactly the same spellings.
    pub fn from_name(name: &str) -> Option<FunctionalUnit> {
        FunctionalUnit::ALL.into_iter().find(|fu| fu.slug() == name)
    }

    /// Whether this is one of the floating-point units.
    pub fn is_float(self) -> bool {
        matches!(self, FunctionalUnit::FpAdd | FunctionalUnit::FpMul)
    }

    /// Number of primary-input bits (two 32-bit operands).
    pub fn input_bits(self) -> usize {
        64
    }

    /// Number of primary-output bits.
    pub fn output_bits(self) -> usize {
        match self {
            FunctionalUnit::IntAdd => 33,
            FunctionalUnit::IntMul => 64,
            FunctionalUnit::FpAdd | FunctionalUnit::FpMul => 32,
        }
    }

    /// Encodes an operand pair as the unit's primary-input vector.
    pub fn encode_operands(self, a: u32, b: u32) -> Vec<bool> {
        encode_pair(a, b)
    }

    /// Encodes a floating-point operand pair.
    ///
    /// Provided for the FP units; the integer units would interpret the bit
    /// patterns as integers.
    pub fn encode_f32(self, a: f32, b: f32) -> Vec<bool> {
        encode_pair(a.to_bits(), b.to_bits())
    }

    /// Decodes the unit's output vector into an integer result.
    pub fn decode_output(self, bits: &[bool]) -> u64 {
        assert_eq!(bits.len(), self.output_bits(), "{} output width", self.name());
        decode_bus(bits)
    }

    /// Bit-exact reference result for an operand pair, as produced by the
    /// netlist's zero-delay evaluation.
    pub fn golden(self, a: u32, b: u32) -> u64 {
        match self {
            FunctionalUnit::IntAdd => int_add::golden(a, b),
            FunctionalUnit::IntMul => int_mul::golden(a, b),
            FunctionalUnit::FpAdd => golden::fp_add(a, b) as u64,
            FunctionalUnit::FpMul => golden::fp_mul(a, b) as u64,
        }
    }
}

impl std::fmt::Display for FunctionalUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let bits = encode_pair(0xDEAD_BEEF, 0x0BAD_F00D);
        assert_eq!(bits.len(), 64);
        assert_eq!(decode_bus(&bits[..32]), 0xDEAD_BEEF);
        assert_eq!(decode_bus(&bits[32..]), 0x0BAD_F00D);
    }

    #[test]
    fn all_units_build_and_evaluate_golden() {
        for fu in FunctionalUnit::ALL {
            let nl = fu.build();
            nl.validate().unwrap();
            assert_eq!(nl.inputs().len(), fu.input_bits(), "{fu} inputs");
            assert_eq!(nl.outputs().len(), fu.output_bits(), "{fu} outputs");
            for (a, b) in [(0u32, 0u32), (1, 2), (0x3F80_0000, 0x4000_0000), (0xDEAD_BEEF, 77)] {
                let out = nl.evaluate(&fu.encode_operands(a, b));
                assert_eq!(fu.decode_output(&out), fu.golden(a, b), "{fu}({a:#x}, {b:#x})");
            }
        }
    }

    #[test]
    fn unit_metadata() {
        assert_eq!(FunctionalUnit::IntAdd.name(), "INT ADD");
        assert!(FunctionalUnit::FpMul.is_float());
        assert!(!FunctionalUnit::IntMul.is_float());
        assert_eq!(FunctionalUnit::ALL.len(), 4);
    }

    #[test]
    fn slugs_round_trip_through_from_name() {
        for fu in FunctionalUnit::ALL {
            assert_eq!(FunctionalUnit::from_name(fu.slug()), Some(fu));
        }
        assert_eq!(FunctionalUnit::from_name("int-div"), None);
        assert_eq!(FunctionalUnit::from_name("INT ADD"), None);
        assert_eq!(FunctionalUnit::from_name(""), None);
    }
}
